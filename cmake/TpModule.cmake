# Warning policy and the per-module library helper.
#
# Libraries build with -Wall -Wextra -Werror (gated on TP_WERROR);
# test/bench/example executables get -Wall -Wextra without -Werror so a
# new compiler's novel diagnostics can't brick the harness itself.

add_library(tp_warnings INTERFACE)
target_compile_options(tp_warnings INTERFACE
  $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Wall -Wextra>)

add_library(tp_warnings_strict INTERFACE)
target_link_libraries(tp_warnings_strict INTERFACE tp_warnings)
if(TP_WERROR)
  target_compile_options(tp_warnings_strict INTERFACE
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Werror>)
endif()

# tp_add_module(<name> SOURCES ... DEPS ...): one static library per
# src/<module> directory, headers included as "module/header.hpp".
function(tp_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_library(${name} STATIC ${ARG_SOURCES})
  add_library(tp::${name} ALIAS ${name})
  target_include_directories(${name} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  target_link_libraries(${name} PUBLIC ${ARG_DEPS} PRIVATE tp_warnings_strict)
endfunction()
