// Unit tests for tp_common: RNG determinism and distributions, statistics,
// CSV round-trips, string utilities, thread pool behaviour, the shared
// FNV key-hash helpers (collision sanity), and wire serialization.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_set>

#include <string>
#include <thread>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/intern.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "common/stats.hpp"
#include "common/str.hpp"
#include "common/thread_pool.hpp"

namespace tp::common {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(5)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(29);
  Rng child = parent.split();
  EXPECT_NE(parent(), child());
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev({42}), 0.0);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, MedianAndPercentiles) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
}

TEST(Stats, PercentileSingleSampleAndInterpolation) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 100), 42.0);
  // Linear interpolation between ranks.
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 75), 7.5);
}

TEST(Stats, PercentileExactBoundaryRanks) {
  // p*(n-1) divisible by 100 must select an element *exactly* — the old
  // p/100*(n-1) formulation computed e.g. 0.95*20 as 18.999999999999996
  // and interpolated between the wrong pair of neighbors.
  std::vector<double> xs(21);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i);
  }
  EXPECT_DOUBLE_EQ(percentile(xs, 95), 19.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 5), 1.0);
  std::vector<double> small(5);
  for (std::size_t i = 0; i < small.size(); ++i) {
    small[i] = static_cast<double>(10 * i);
  }
  EXPECT_DOUBLE_EQ(percentile(small, 25), 10.0);
  EXPECT_DOUBLE_EQ(percentile(small, 75), 30.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  RunningStats rs;
  const std::vector<double> xs = {1.5, 2.5, -3.0, 7.25, 0.0};
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.25);
}

TEST(Stats, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {-2, -4, -6}), -1.0, 1e-12);
}

TEST(Str, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Str, Affixes) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("foobar", "bar"));
  EXPECT_FALSE(endsWith("foobar", "baz"));
}

TEST(Str, JoinAndThousands) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(withThousands(1234567), "1,234,567");
  EXPECT_EQ(withThousands(-1000), "-1,000");
  EXPECT_EQ(withThousands(42), "42");
}

TEST(Csv, RoundTrip) {
  Table t({"name", "value", "note"});
  t.addRow({"alpha", "1.5", "plain"});
  t.addRow({"beta", "-2", "has, comma"});
  t.addRow({"gamma", "3", "has \"quotes\""});
  std::ostringstream os;
  t.writeCsv(os);
  std::istringstream is(os.str());
  const Table back = Table::readCsv(is);
  ASSERT_EQ(back.numRows(), 3u);
  EXPECT_EQ(back.cell(1, "note"), "has, comma");
  EXPECT_EQ(back.cell(2, "note"), "has \"quotes\"");
  EXPECT_DOUBLE_EQ(back.cellDouble(0, "value"), 1.5);
  EXPECT_EQ(back.cellInt(1, "value"), -2);
}

TEST(Csv, TypedAccessorsThrowOnGarbage) {
  Table t({"v"});
  t.addRow({"not_a_number"});
  EXPECT_THROW(t.cellDouble(0, "v"), IoError);
  EXPECT_THROW(t.cellInt(0, "v"), IoError);
  EXPECT_THROW(t.columnIndex("missing"), IoError);
}

TEST(Csv, WrongColumnCountNamesSourceAndLine) {
  std::istringstream is("a,b\n1,2\n3\n");
  try {
    Table::readCsv(is, "traffic.csv");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("traffic.csv:3"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 2 columns, got 1"), std::string::npos)
        << what;
  }
}

TEST(Csv, WrongColumnCountDefaultsSourceName) {
  std::istringstream is("a,b\n1,2,3\n");
  try {
    Table::readCsv(is);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("<csv>:2"), std::string::npos)
        << e.what();
  }
}

TEST(Csv, UnterminatedQuoteNamesStartLine) {
  std::istringstream is("a,b\n1,\"open\n");
  try {
    Table::readCsv(is, "db.csv");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("db.csv:2"), std::string::npos) << what;
    EXPECT_NE(what.find("unterminated"), std::string::npos) << what;
  }
}

TEST(Csv, CellParseErrorCarriesRowProvenance) {
  std::istringstream is("name,value\nok,1.5\nbad,oops\n");
  const Table t = Table::readCsv(is, "feats.csv");
  EXPECT_DOUBLE_EQ(t.cellDouble(0, "value"), 1.5);
  try {
    t.cellDouble(1, "value");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("feats.csv:3"), std::string::npos)
        << e.what();
  }
}

TEST(Csv, QuotedNewlinesKeepLineNumbersAligned) {
  // The quoted field spans two physical lines; the row after it must be
  // reported at its true line number.
  std::istringstream is("a,b\n\"multi\nline\",2\n3\n");
  try {
    Table::readCsv(is, "multi.csv");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("multi.csv:4"), std::string::npos)
        << e.what();
  }
}

TEST(Csv, ProgrammaticRowsHaveNoProvenance) {
  Table t({"v"});
  t.addRow({"zzz"});
  EXPECT_EQ(t.rowLocation(0), "");
  try {
    t.cellDouble(0, "v");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    // No " (source:line)" suffix for rows that never came from CSV.
    EXPECT_EQ(std::string(e.what()).find(" ("), std::string::npos) << e.what();
  }
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(0, 1000, [&](std::size_t i) { hits[i]++; }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallelFor(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(0, 100,
                                [](std::size_t i) {
                                  if (i == 42) throw Error("boom");
                                },
                                1),
               Error);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter++; });
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    TP_REQUIRE(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

// ---- shared key hashing ----------------------------------------------------

TEST(Hash, FieldBoundariesCannotAlias) {
  // Both the serve decision cache and the adapt refiner hash
  // (machine, program, signature) through hashLaunchKey; the length
  // prefix keeps adjacent variable-length fields from aliasing.
  EXPECT_NE(hashLaunchKey("ab", "c", {}), hashLaunchKey("a", "bc", {}));
  EXPECT_NE(hashLaunchKey("", "abc", {}), hashLaunchKey("abc", "", {}));
  EXPECT_NE(hashLaunchKey("m", "p", {1.0, 2.0}),
            hashLaunchKey("m", "p", {2.0, 1.0}));
  EXPECT_NE(hashLaunchKey("m", "p", {1.0}),
            hashLaunchKey("m", "p", {1.0, 0.0}));
  // Deterministic across calls.
  EXPECT_EQ(hashLaunchKey("mc2", "fft/run", {65536.0, 64.0}),
            hashLaunchKey("mc2", "fft/run", {65536.0, 64.0}));
}

TEST(Hash, CollisionSanityOverRealisticKeySpace) {
  // The shapes real traffic produces: a few machines and programs
  // crossed with a dense grid of launch signatures. Any collision here
  // would put two distinct launches in one refiner entry, so demand
  // exactly zero across ~20k keys.
  std::unordered_set<std::uint64_t> seen;
  std::size_t keys = 0;
  for (const char* machine : {"mc1", "mc2"}) {
    for (const char* program : {"fft/run", "spmv/kernel", "nbody/step",
                                "md5/hash", "scale/scale"}) {
      for (int n = 0; n < 40; ++n) {
        for (int k = 0; k < 50; ++k) {
          const double size = static_cast<double>(1 << (n % 20)) + n;
          seen.insert(hashLaunchKey(machine, program,
                                    {size, 64.0, static_cast<double>(k)}));
          ++keys;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), keys);
}

// ---- wire serialization ----------------------------------------------------

TEST(Serial, RoundTripsEveryFieldType) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64(-1234.5678e-9);
  w.str("hello \0 world");  // string_view stops at the NUL here, fine
  w.str(std::string("bin\0ary", 7));
  w.doubles({1.0, -0.0, 5e-324, 1e308});

  WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5678e-9);
  EXPECT_EQ(r.str(), "hello ");
  EXPECT_EQ(r.str(), std::string("bin\0ary", 7));
  const auto values = r.doubles();
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values[0], 1.0);
  EXPECT_TRUE(std::signbit(values[1]));  // -0.0 survives bit-exactly
  EXPECT_EQ(values[2], 5e-324);
  EXPECT_EQ(values[3], 1e308);
  EXPECT_TRUE(r.atEnd());
  r.expectEnd();
}

TEST(Serial, TruncationAndTrailingBytesThrow) {
  WireWriter w;
  w.u32(7);
  w.str("payload");
  const std::string bytes = w.data();

  WireReader truncated(std::string_view(bytes).substr(0, bytes.size() - 2));
  EXPECT_EQ(truncated.u32(), 7u);
  EXPECT_THROW(truncated.str(), Error);

  const std::string padded = bytes + "x";
  WireReader trailing(padded);
  EXPECT_EQ(trailing.u32(), 7u);
  EXPECT_EQ(trailing.str(), "payload");
  EXPECT_FALSE(trailing.atEnd());
  EXPECT_THROW(trailing.expectEnd(), Error);

  // A length prefix larger than the remaining bytes must throw, not
  // allocate.
  WireWriter lying;
  lying.u32(0xffffffffu);
  WireReader r(lying.data());
  EXPECT_THROW(r.doubles(), Error);
  WireReader r2(lying.data());
  EXPECT_THROW(r2.str(), Error);
}

TEST(Serial, EncodingIsByteStable) {
  // The wire format is an interchange format: fixed little-endian bytes,
  // not host memory order.
  WireWriter w;
  w.u16(0x0102);
  w.u32(0x03040506u);
  const std::string& b = w.data();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(b[1]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(b[2]), 0x06);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x05);
  EXPECT_EQ(static_cast<unsigned char>(b[4]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(b[5]), 0x03);
}

TEST(Serial, CheckedCountRejectsHostileLengthPrefix) {
  // A length prefix claiming more elements than the input has bytes must
  // throw in checkedCount() — before any reserve() can turn it into a
  // multi-gigabyte allocation (lint rule R3 pins every decode loop to
  // this helper).
  WireWriter w;
  w.u32(0xFFFFFFFFu);  // claims ~4e9 elements...
  w.u32(7);            // ...with 4 bytes of payload behind it
  WireReader r(w.data());
  const std::uint32_t claimed = r.u32();
  EXPECT_THROW(r.checkedCount(claimed, 8), tp::Error);

  // An honest count passes through unchanged.
  WireWriter w2;
  w2.u32(2);
  w2.f64(1.0);
  w2.f64(2.0);
  WireReader r2(w2.data());
  EXPECT_EQ(r2.checkedCount(r2.u32(), 8), 2u);
}

TEST(InternerTest, InternFindRoundTrip) {
  PairInterner interner(16);
  const std::uint32_t a = interner.intern("m0", "prog/kernel");
  const std::uint32_t b = interner.intern("m1", "prog", "kernel");
  ASSERT_NE(a, PairInterner::kInvalid);
  ASSERT_NE(b, PairInterner::kInvalid);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("m0", "prog/kernel"), a);  // idempotent
  EXPECT_EQ(interner.find("m0", "prog/kernel"), a);
  EXPECT_EQ(interner.find("m1", "prog", "kernel"), b);
  EXPECT_EQ(interner.find("m1", "prog/kernel"), b);  // split == joined
  EXPECT_EQ(interner.find("m2", "prog/kernel"), PairInterner::kInvalid);
  EXPECT_EQ(interner.first(a), "m0");
  EXPECT_EQ(interner.second(a), "prog/kernel");
}

TEST(InternerTest, ConcurrentInternAndFind) {
  // Referenced by the TP_LOCK_FREE_AUDITED reasons on PairInterner's
  // read path: under TSan this is the race test for the slot publication
  // protocol. Writers intern disjoint pair sets while readers probe the
  // full key space; a reader may race the publishing store, so the only
  // legal outcomes are kInvalid (not yet visible) or the final id with
  // fully readable strings.
  PairInterner interner(512);
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kPairsPerWriter = 128;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&interner, w] {
      for (int i = 0; i < kPairsPerWriter; ++i) {
        const std::string machine = "machine" + std::to_string(w);
        const std::string program = "prog" + std::to_string(i) + "/k";
        ASSERT_NE(interner.intern(machine, program), PairInterner::kInvalid);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&interner, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int w = 0; w < kWriters; ++w) {
          for (int i = 0; i < kPairsPerWriter; ++i) {
            const std::string machine = "machine" + std::to_string(w);
            const std::string head = "prog" + std::to_string(i);
            const std::uint32_t id = interner.find(machine, head, "k");
            if (id != PairInterner::kInvalid) {
              ASSERT_EQ(interner.first(id), machine);
              ASSERT_EQ(interner.second(id), head + "/k");
            }
          }
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Every interned pair is findable once writers have quiesced.
  EXPECT_EQ(interner.size(),
            static_cast<std::size_t>(kWriters * kPairsPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPairsPerWriter; ++i) {
      const std::string machine = "machine" + std::to_string(w);
      const std::string program = "prog" + std::to_string(i) + "/k";
      EXPECT_NE(interner.find(machine, program), PairInterner::kInvalid);
    }
  }
  EXPECT_EQ(interner.fullRejections(), 0u);
}

TEST(InternerTest, CapacityRejectionDegradesAndCounts) {
  PairInterner interner(4);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(interner.intern("m", "p" + std::to_string(i)));
    ASSERT_NE(ids.back(), PairInterner::kInvalid);
  }
  EXPECT_EQ(interner.size(), 4u);
  EXPECT_EQ(interner.fullRejections(), 0u);

  // New pairs are rejected and counted; each rejection degrades the
  // caller to its uncached path but corrupts nothing.
  EXPECT_EQ(interner.intern("m", "p4"), PairInterner::kInvalid);
  EXPECT_EQ(interner.intern("m", "p5"), PairInterner::kInvalid);
  EXPECT_EQ(interner.fullRejections(), 2u);
  EXPECT_EQ(interner.size(), 4u);

  // Existing pairs keep their fast path: re-intern is a hit, not a
  // rejection, and lookups still resolve.
  EXPECT_EQ(interner.intern("m", "p0"), ids[0]);
  EXPECT_EQ(interner.fullRejections(), 2u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(interner.find("m", "p" + std::to_string(i)), ids[i]);
  }
  EXPECT_EQ(interner.find("m", "p4"), PairInterner::kInvalid);
}

TEST(InternerTest, ConcurrentReadersAtCapacity) {
  // The degrade path under contention: the table is full, writers keep
  // hammering intern() with fresh pairs (every call a counted
  // rejection), and concurrent readers must keep resolving the resident
  // pairs exactly — capacity pressure may slow new pairs down but can
  // never corrupt published ones.
  constexpr std::size_t kCapacity = 8;
  PairInterner interner(kCapacity);
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < kCapacity; ++i) {
    ids.push_back(interner.intern("m", "resident" + std::to_string(i)));
    ASSERT_NE(ids.back(), PairInterner::kInvalid);
  }

  constexpr int kAttemptsPerWriter = 200;
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&interner, w] {
      for (int i = 0; i < kAttemptsPerWriter; ++i) {
        const std::string program =
            "overflow" + std::to_string(w) + "_" + std::to_string(i);
        ASSERT_EQ(interner.intern("m", program), PairInterner::kInvalid);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&interner, &ids] {
      for (int pass = 0; pass < 200; ++pass) {
        for (std::size_t i = 0; i < kCapacity; ++i) {
          ASSERT_EQ(interner.find("m", "resident" + std::to_string(i)),
                    ids[i]);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(interner.size(), kCapacity);
  EXPECT_EQ(interner.fullRejections(),
            static_cast<std::uint64_t>(2 * kAttemptsPerWriter));
}

}  // namespace
}  // namespace tp::common
