// tp::fleet tests: wire-format round-trips and rejection of foreign
// bytes, loopback transport semantics, gossip bus rounds, snapshot store
// persistence, and the replicated-serving behaviors end to end — a win
// measured on one replica is adopted by peers without probing, snapshots
// round-trip to identical decisions and incumbent means, fleet retrain
// fans models out, and counters reconcile under concurrent gossip +
// retrain + traffic (the TSan-covered test).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "fleet/faulty_transport.hpp"
#include "fleet/fleet.hpp"
#include "runtime/compiler.hpp"
#include "runtime/evaluation.hpp"
#include "sim/machine.hpp"

namespace tp::fleet {
namespace {

// ---- wire ------------------------------------------------------------------

adapt::WinRecord sampleWin(const std::string& program, std::size_t label) {
  adapt::WinRecord rec;
  rec.key.machine = "mc2";
  rec.key.program = program;
  rec.key.signature = {65536.0, 64.0, 0.25};
  rec.modelVersion = 3;
  rec.baseLabel = 5;
  rec.incumbentLabel = label;
  rec.incumbentMean = 0.125;
  rec.arms = {{5, 2, 0.5}, {label, 3, 0.125}};
  return rec;
}

TEST(Wire, EnvelopeRoundTrips) {
  Envelope e;
  e.kind = MsgKind::ModelInstall;
  e.from = "replica-1";
  e.seq = 42;
  e.payload = std::string("binary\0payload", 14);
  const Envelope back = decodeEnvelope(encodeEnvelope(e));
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.from, e.from);
  EXPECT_EQ(back.seq, e.seq);
  EXPECT_EQ(back.payload, e.payload);
}

TEST(Wire, RejectsForeignAndTruncatedBytes) {
  Envelope e;
  e.kind = MsgKind::WinsGossip;
  e.from = "r0";
  const std::string bytes = encodeEnvelope(e);

  EXPECT_THROW(decodeEnvelope("not a fleet message"), Error);
  EXPECT_THROW(decodeEnvelope(bytes.substr(0, bytes.size() - 1)), Error);
  EXPECT_THROW(decodeEnvelope(bytes + "x"), Error);  // trailing bytes

  std::string wrongMagic = bytes;
  wrongMagic[0] ^= 0x5a;
  EXPECT_THROW(decodeEnvelope(wrongMagic), Error);

  std::string wrongVersion = bytes;
  wrongVersion[4] = 99;  // format version lives after the 4-byte magic
  EXPECT_THROW(decodeEnvelope(wrongVersion), Error);
}

TEST(Wire, WinRecordsRoundTrip) {
  const std::vector<adapt::WinRecord> wins = {sampleWin("fft/run", 7),
                                              sampleWin("spmv/kernel", 2)};
  const auto back = decodeWins(encodeWins(wins));
  ASSERT_EQ(back.size(), wins.size());
  for (std::size_t i = 0; i < wins.size(); ++i) {
    EXPECT_EQ(back[i].key, wins[i].key);
    EXPECT_EQ(back[i].modelVersion, wins[i].modelVersion);
    EXPECT_EQ(back[i].baseLabel, wins[i].baseLabel);
    EXPECT_EQ(back[i].incumbentLabel, wins[i].incumbentLabel);
    EXPECT_DOUBLE_EQ(back[i].incumbentMean, wins[i].incumbentMean);
    ASSERT_EQ(back[i].arms.size(), wins[i].arms.size());
    for (std::size_t a = 0; a < wins[i].arms.size(); ++a) {
      EXPECT_EQ(back[i].arms[a].label, wins[i].arms[a].label);
      EXPECT_EQ(back[i].arms[a].count, wins[i].arms[a].count);
      EXPECT_DOUBLE_EQ(back[i].arms[a].meanSeconds,
                       wins[i].arms[a].meanSeconds);
    }
  }
}

TEST(Wire, HostileCountsThrowInsteadOfAllocating) {
  // A corrupt length prefix claiming 4 billion elements must surface as
  // tp::Error from the count check — not as a multi-gigabyte reserve().
  common::WireWriter lyingWins;
  lyingWins.u32(0xffffffffu);
  EXPECT_THROW(decodeWins(lyingWins.data()), Error);

  common::WireWriter lyingModels;
  lyingModels.u64(1);           // model version
  lyingModels.u32(0xffffffffu);  // model blob count
  EXPECT_THROW(decodeModelInstall(lyingModels.data()), Error);

  common::WireWriter lyingFeedback;
  lyingFeedback.u64(4);          // numPartitionings
  lyingFeedback.u32(0xffffffffu);  // schema string count
  EXPECT_THROW(decodeFeedback(lyingFeedback.data()), Error);
}

TEST(Wire, FeedbackDatabaseRoundTrips) {
  runtime::FeatureDatabase db(4, {"s0", "s1"}, {"r0"});
  runtime::LaunchRecord rec;
  rec.program = "p";
  rec.machine = "mc1";
  rec.sizeLabel = "n=1024";
  rec.staticFeatures = {1.0, -2.5};
  rec.runtimeFeatures = {3.25};
  rec.times = {0.1, 0.2, 0.05, 0.4};
  db.add(rec);

  const auto back = decodeFeedback(encodeFeedback(db));
  EXPECT_EQ(back.numPartitionings(), db.numPartitionings());
  EXPECT_EQ(back.staticNames(), db.staticNames());
  EXPECT_EQ(back.runtimeNames(), db.runtimeNames());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.records()[0].program, "p");
  EXPECT_EQ(back.records()[0].times, rec.times);
}

// ---- transport -------------------------------------------------------------

TEST(LoopbackTransport, DeliversSerializedMessages) {
  LoopbackTransport transport;
  std::vector<std::string> aLog, bLog;
  transport.attach("a", [&](const Envelope& e) {
    aLog.push_back(e.from + ":" + e.payload);
  });
  transport.attach("b", [&](const Envelope& e) {
    bLog.push_back(e.from + ":" + e.payload);
  });
  EXPECT_EQ(transport.nodes(), (std::vector<std::string>{"a", "b"}));

  Envelope e;
  e.kind = MsgKind::WinsGossip;
  e.from = "a";
  e.payload = "hello";
  transport.send("a", "b", e);
  transport.broadcast("a", e);  // reaches b only (never the sender)
  transport.send("a", "ghost", e);  // unknown destination: dropped

  EXPECT_TRUE(aLog.empty());
  EXPECT_EQ(bLog, (std::vector<std::string>{"a:hello", "a:hello"}));

  const auto counters = transport.counters();
  EXPECT_EQ(counters.sent, 2u);
  EXPECT_EQ(counters.broadcasts, 1u);
  EXPECT_EQ(counters.delivered, 2u);
  EXPECT_EQ(counters.dropped, 1u);
  EXPECT_GT(counters.bytesMoved, 0u);

  transport.detach("b");
  transport.send("a", "b", e);
  EXPECT_EQ(transport.counters().dropped, 2u);
  EXPECT_EQ(bLog.size(), 2u);
}

TEST(LoopbackTransport, CountsAndRethrowsDeliveryFailures) {
  LoopbackTransport transport;
  transport.attach("bomb",
                   [](const Envelope&) { throw Error("handler exploded"); });
  Envelope e;
  e.kind = MsgKind::WinsGossip;
  e.from = "src";
  // The transport counts the failure but never swallows it: the sender
  // decides whether a failed delivery is fatal.
  EXPECT_THROW(transport.send("src", "bomb", e), Error);
  const auto counters = transport.counters();
  EXPECT_EQ(counters.delivered, 1u);
  EXPECT_EQ(counters.deliveryFailures, 1u);
}

TEST(LoopbackTransport, DetachDuringBroadcastReconciles) {
  // TSan target: broadcasters race a node flapping attach/detach. The
  // handler is copied out of the registry lock before invocation, so a
  // detach mid-broadcast must never free a handler under a caller — and
  // every delivery the transport counted must have run a handler.
  LoopbackTransport transport;
  std::atomic<std::uint64_t> received{0};
  transport.attach("sink", [&](const Envelope&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });

  std::atomic<bool> stop{false};
  std::thread flapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      transport.attach("flappy", [&](const Envelope&) {
        received.fetch_add(1, std::memory_order_relaxed);
      });
      std::this_thread::yield();
      transport.detach("flappy");
    }
  });

  constexpr std::size_t kSenders = 4;
  constexpr std::size_t kRounds = 200;
  Envelope e;
  e.kind = MsgKind::WinsGossip;
  e.from = "src";
  e.payload = "x";
  std::vector<std::thread> senders;
  for (std::size_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&] {
      for (std::size_t r = 0; r < kRounds; ++r) transport.broadcast("src", e);
    });
  }
  for (auto& s : senders) s.join();
  stop.store(true, std::memory_order_relaxed);
  flapper.join();

  const auto counters = transport.counters();
  // No handler throws, so every counted delivery completed in a handler;
  // broadcasts that snapshot "flappy" just before its detach count the
  // miss as dropped, never as a lost delivery.
  EXPECT_EQ(counters.delivered, received.load());
  EXPECT_EQ(counters.deliveryFailures, 0u);
  EXPECT_GE(counters.delivered, kSenders * kRounds);  // "sink" got them all
  EXPECT_EQ(counters.broadcasts, kSenders * kRounds);
}

TEST(LoopbackTransport, HandlersMaySendReentrantly) {
  LoopbackTransport transport;
  std::string echoed;
  transport.attach("server", [&](const Envelope& e) {
    Envelope reply;
    reply.kind = MsgKind::FeedbackPush;
    reply.from = "server";
    reply.payload = "re:" + e.payload;
    transport.send("server", e.from, reply);
  });
  transport.attach("client", [&](const Envelope& e) { echoed = e.payload; });

  Envelope e;
  e.kind = MsgKind::FeedbackPull;
  e.from = "client";
  e.payload = "ping";
  transport.send("client", "server", e);
  EXPECT_EQ(echoed, "re:ping");
}

// ---- gossip bus ------------------------------------------------------------

TEST(GossipBus, RunsParticipantsPerRound) {
  GossipBus bus;
  int a = 0, b = 0;
  bus.join("a", [&] { ++a; });
  bus.join("b", [&] { ++b; });
  EXPECT_EQ(bus.runRound(), 2u);
  bus.leave("a");
  EXPECT_EQ(bus.runRound(), 1u);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(bus.rounds(), 2u);
}

TEST(GossipBus, ThrowingParticipantIsCountedAndIsolated) {
  // Regression: a participant's exception used to propagate out of
  // runRound() — on the background thread that is std::terminate. The
  // failure boundary must count the error and still run everyone else.
  GossipBus bus;
  int healthy = 0;
  bus.join("bad", [] { throw Error("participant exploded"); });
  bus.join("good", [&] { ++healthy; });
  EXPECT_EQ(bus.runRound(), 2u);
  EXPECT_EQ(bus.roundErrors(), 1u);
  EXPECT_EQ(healthy, 1);
  // The bus stays usable; errors accumulate, never swallow silently.
  EXPECT_EQ(bus.runRound(), 2u);
  EXPECT_EQ(bus.roundErrors(), 2u);
  EXPECT_EQ(healthy, 2);
}

TEST(GossipBus, BackgroundThreadSurvivesThrowingParticipant) {
  GossipConfig config;
  config.intervalSeconds = 0.002;
  GossipBus bus(config);
  std::atomic<int> ticks{0};
  bus.join("bad", [] { throw Error("boom"); });
  bus.join("good", [&] { ticks.fetch_add(1); });
  bus.start();
  while (ticks.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bus.stop();
  EXPECT_GE(bus.roundErrors(), 3u);
  EXPECT_GE(bus.rounds(), 3u);
}

TEST(GossipBus, BackgroundThreadRunsRounds) {
  GossipConfig config;
  config.intervalSeconds = 0.002;
  GossipBus bus(config);
  std::atomic<int> ticks{0};
  bus.join("n", [&] { ticks.fetch_add(1); });
  bus.start();
  while (ticks.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bus.stop();
  EXPECT_FALSE(bus.running());
  EXPECT_GE(bus.rounds(), 3u);
}

// ---- faulty transport ------------------------------------------------------

Envelope gossipEnvelope(const std::string& from, std::uint64_t seq,
                        const std::string& payload = "payload") {
  Envelope e;
  e.kind = MsgKind::WinsGossip;
  e.from = from;
  e.seq = seq;
  e.payload = payload;
  return e;
}

TEST(FaultyTransport, CertainFaultsAreExactlyCounted) {
  LoopbackTransport inner;
  FaultyTransport net(inner, /*seed=*/7);
  std::vector<std::string> log;
  net.attach("b", [&](const Envelope& e) { log.push_back(e.payload); });

  FaultPlan plan;
  plan.dropProbability = 1.0;
  net.setDefaultPlan(plan);
  net.send("a", "b", gossipEnvelope("a", 1));
  EXPECT_TRUE(log.empty());

  plan = FaultPlan{};
  plan.throwProbability = 1.0;
  net.setDefaultPlan(plan);
  EXPECT_THROW(net.send("a", "b", gossipEnvelope("a", 2)), Error);

  plan = FaultPlan{};
  plan.corruptProbability = 1.0;
  net.setDefaultPlan(plan);
  net.send("a", "b", gossipEnvelope("a", 3, "0123456789"));
  // The envelope frame stays valid (it reached the handler); the payload
  // is a strict prefix, so the receiver's payload decode must fail.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.back(), "01234");

  plan = FaultPlan{};
  plan.duplicateProbability = 1.0;
  net.setDefaultPlan(plan);
  net.send("a", "b", gossipEnvelope("a", 4));
  EXPECT_EQ(log.size(), 3u);  // delivered twice back-to-back

  const auto f = net.faultCounters();
  EXPECT_EQ(f.seen, 4u);
  EXPECT_EQ(f.injectedDrops, 1u);
  EXPECT_EQ(f.injectedThrows, 1u);
  EXPECT_EQ(f.injectedCorruptions, 1u);
  EXPECT_EQ(f.injectedDuplicates, 1u);
  EXPECT_EQ(f.forwarded, 3u);
  EXPECT_EQ(inner.counters().delivered, 3u);
}

TEST(FaultyTransport, DelayReordersBehindFollowingTraffic) {
  LoopbackTransport inner;
  FaultyTransport net(inner, 7);
  std::vector<std::uint64_t> order;
  net.attach("b", [&](const Envelope& e) { order.push_back(e.seq); });

  FaultPlan delay;
  delay.delayProbability = 1.0;
  net.setDefaultPlan(delay);
  net.send("a", "b", gossipEnvelope("a", 1));
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(net.pendingDelayed(), 1u);

  net.clearFaults();  // plans drop; the delayed message stays pending
  net.send("a", "b", gossipEnvelope("a", 2));
  // True reordering: #2 forwards first, then releases the held-back #1.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(net.pendingDelayed(), 0u);

  // flushDelayed() releases stragglers when no follow-on traffic comes.
  net.setDefaultPlan(delay);
  net.send("a", "b", gossipEnvelope("a", 3));
  EXPECT_EQ(net.pendingDelayed(), 1u);
  EXPECT_EQ(net.flushDelayed(), 1u);
  EXPECT_EQ(order.back(), 3u);
  const auto f = net.faultCounters();
  EXPECT_EQ(f.injectedDelays, 2u);
  EXPECT_EQ(f.deliveredLate, 2u);
}

TEST(FaultyTransport, PartitionBlocksLinksUntilHealed) {
  LoopbackTransport inner;
  FaultyTransport net(inner, 7);
  std::size_t aHeard = 0, bHeard = 0;
  net.attach("a", [&](const Envelope&) { ++aHeard; });
  net.attach("b", [&](const Envelope&) { ++bHeard; });

  net.partition("a", "b");
  net.send("a", "b", gossipEnvelope("a", 1));
  net.send("b", "a", gossipEnvelope("b", 1));
  EXPECT_EQ(aHeard, 0u);
  EXPECT_EQ(bHeard, 0u);
  EXPECT_EQ(net.faultCounters().partitionedDrops, 2u);

  net.heal();
  net.send("a", "b", gossipEnvelope("a", 2));
  net.send("b", "a", gossipEnvelope("b", 2));
  EXPECT_EQ(aHeard, 1u);
  EXPECT_EQ(bHeard, 1u);

  // One-way partitions block only the named direction.
  net.partitionOneWay("a", "b");
  net.send("a", "b", gossipEnvelope("a", 3));
  net.send("b", "a", gossipEnvelope("b", 3));
  EXPECT_EQ(bHeard, 1u);
  EXPECT_EQ(aHeard, 2u);
}

TEST(FaultyTransport, ScheduleSwitchesPlansAtSeenCounts) {
  LoopbackTransport inner;
  FaultyTransport net(inner, 7);
  std::size_t heard = 0;
  net.attach("b", [&](const Envelope&) { ++heard; });

  // Drop storm starting at the 3rd message (seen == 2), calm again two
  // messages later — exact, reproducible points in the traffic.
  FaultPlan storm;
  storm.dropProbability = 1.0;
  net.scheduleDefaultPlan(2, storm);
  net.scheduleDefaultPlan(4, FaultPlan{});
  for (std::uint64_t i = 0; i < 6; ++i) {
    net.send("a", "b", gossipEnvelope("a", i + 1));
  }
  EXPECT_EQ(heard, 4u);
  EXPECT_EQ(net.faultCounters().injectedDrops, 2u);
}

TEST(FaultyTransport, SameSeedReproducesIdenticalFaults) {
  FaultPlan mixed;
  mixed.dropProbability = 0.2;
  mixed.corruptProbability = 0.2;
  mixed.duplicateProbability = 0.2;
  mixed.delayProbability = 0.2;

  const auto run = [&](std::uint64_t seed) {
    LoopbackTransport inner;
    FaultyTransport net(inner, seed);
    std::vector<std::string> log;
    net.attach("b", [&](const Envelope& e) { log.push_back(e.payload); });
    net.setDefaultPlan(mixed);
    for (std::uint64_t i = 0; i < 100; ++i) {
      net.send("a", "b", gossipEnvelope("a", i + 1, "payload" +
                                                        std::to_string(i)));
    }
    net.flushDelayed();
    return std::make_pair(net.faultCounters(), log);
  };

  const auto [f1, log1] = run(0xDECAF);
  const auto [f2, log2] = run(0xDECAF);
  EXPECT_EQ(f1.injectedDrops, f2.injectedDrops);
  EXPECT_EQ(f1.injectedCorruptions, f2.injectedCorruptions);
  EXPECT_EQ(f1.injectedDuplicates, f2.injectedDuplicates);
  EXPECT_EQ(f1.injectedDelays, f2.injectedDelays);
  EXPECT_EQ(f1.forwarded, f2.forwarded);
  EXPECT_EQ(log1, log2);  // byte-identical delivery sequence
  EXPECT_GT(f1.injectedDrops + f1.injectedCorruptions +
                f1.injectedDuplicates + f1.injectedDelays,
            0u);
}

// ---- snapshot store --------------------------------------------------------

std::string tempDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tp_fleet_test_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(SnapshotStore, SaveLoadLatestAndSequencing) {
  const std::string dir = tempDir("store");
  SnapshotStore store(dir);
  EXPECT_EQ(store.count(), 0u);
  EXPECT_FALSE(store.loadLatest().has_value());

  ReplicaSnapshot first;
  first.modelVersion = 1;
  first.wins = {sampleWin("a/b", 3)};
  EXPECT_EQ(store.save(first), 1u);

  ReplicaSnapshot second;
  second.modelVersion = 2;
  second.models = {ModelBlob{"mc2", "mostfreq 4 2\n"}};
  second.wins = {sampleWin("a/b", 7), sampleWin("c/d", 1)};
  EXPECT_EQ(store.save(second), 2u);
  EXPECT_EQ(store.count(), 2u);

  const auto latest = store.loadLatest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->modelVersion, 2u);
  ASSERT_EQ(latest->models.size(), 1u);
  EXPECT_EQ(latest->models[0].machine, "mc2");
  ASSERT_EQ(latest->wins.size(), 2u);
  EXPECT_EQ(latest->wins[1].key.program, "c/d");

  // A second store over the same directory continues the sequence.
  SnapshotStore reopened(dir);
  EXPECT_EQ(reopened.save(first), 3u);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotStore, KeepLastPrunesOldSnapshotsAfterSave) {
  const std::string dir = tempDir("retention");
  constexpr std::size_t kKeep = 3;
  SnapshotStore store(dir, kKeep);
  EXPECT_EQ(store.keepLast(), kKeep);

  ReplicaSnapshot snap;
  for (std::uint64_t seq = 1; seq <= kKeep + 4; ++seq) {
    snap.modelVersion = seq;
    EXPECT_EQ(store.save(snap), seq);
    // Never more than kKeep on disk, and the latest always survives.
    EXPECT_LE(store.count(), kKeep);
    const auto latest = store.loadLatest();
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->modelVersion, seq);
  }
  EXPECT_EQ(store.count(), kKeep);
  // The pruned files are genuinely gone (only the newest kKeep remain),
  // and the sequence numbering still continues past them.
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    std::ostringstream name;
    name << "snapshot-";
    name.width(8);
    name.fill('0');
    name << seq << ".tpsnap";
    EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) /
                                         name.str()))
        << name.str();
  }
  EXPECT_EQ(store.save(snap), kKeep + 5);

  // keepLast = 0 keeps everything (the pre-retention behavior).
  const std::string unboundedDir = tempDir("retention_unbounded");
  SnapshotStore unbounded(unboundedDir);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) (void)unbounded.save(snap);
  EXPECT_EQ(unbounded.count(), 5u);
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(unboundedDir);
}

TEST(SnapshotStore, HostileModelCountThrowsInsteadOfAllocating) {
  // Regression: the model-blob count in the snapshot header went straight
  // into models.reserve() unchecked (lint rule R3 caught it) — a corrupt
  // or hostile count claimed ~4e9 blobs against a few bytes of payload.
  ReplicaSnapshot snap;
  snap.modelVersion = 1;
  std::string bytes = encodeSnapshot(snap);
  // Header layout: u32 magic + u16 format version + u64 model version,
  // then the u32 model-blob count at offset 14.
  ASSERT_GE(bytes.size(), 18u);
  for (int i = 0; i < 4; ++i) bytes[14 + i] = static_cast<char>(0xff);
  EXPECT_THROW(decodeSnapshot(bytes), Error);
}

TEST(SnapshotStore, RejectsCorruptBytes) {
  EXPECT_THROW(decodeSnapshot("garbage"), Error);
  ReplicaSnapshot snap;
  snap.modelVersion = 9;
  const std::string bytes = encodeSnapshot(snap);
  EXPECT_THROW(decodeSnapshot(bytes.substr(0, bytes.size() / 2)), Error);
  const ReplicaSnapshot back = decodeSnapshot(bytes);
  EXPECT_EQ(back.modelVersion, 9u);
}

void corruptFile(const std::filesystem::path& path) {
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "garbage bytes, definitely not a snapshot";
}

std::filesystem::path snapshotPath(const std::string& dir, std::uint64_t seq) {
  std::ostringstream name;
  name << "snapshot-";
  name.width(8);
  name.fill('0');
  name << seq << ".tpsnap";
  return std::filesystem::path(dir) / name.str();
}

TEST(SnapshotStore, LoadLatestSalvagesOlderWhenNewestCorrupt) {
  const std::string dir = tempDir("salvage");
  SnapshotStore store(dir);
  ReplicaSnapshot snap;
  for (std::uint64_t v = 1; v <= 3; ++v) {
    snap.modelVersion = v;
    EXPECT_EQ(store.save(snap), v);
  }

  // Torn newest snapshot: warm start must degrade to the next-older
  // valid one instead of failing (or worse, trusting the bytes).
  corruptFile(snapshotPath(dir, 3));
  const auto salvaged = store.loadLatest();
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_EQ(salvaged->modelVersion, 2u);
  EXPECT_EQ(store.corruptSnapshotsSkipped(), 1u);

  // Everything corrupt: loadLatest reports nothing to recover, counting
  // every file it had to skip.
  corruptFile(snapshotPath(dir, 2));
  corruptFile(snapshotPath(dir, 1));
  EXPECT_FALSE(store.loadLatest().has_value());
  EXPECT_EQ(store.corruptSnapshotsSkipped(), 4u);  // 3 re-skipped + 2 + 1
  std::filesystem::remove_all(dir);
}

// ---- fleet end to end ------------------------------------------------------

const char* kScaleSrc = R"(
__kernel void scale(__global const float* in, __global float* out, int K) {
  int i = get_global_id(0);
  float x = in[i];
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    acc += x * 1.0001f;
  }
  out[i] = acc;
}
)";

runtime::Task makeScaleTask(std::size_t n, int k) {
  static const runtime::CompiledKernel compiled =
      runtime::CompiledKernel::compile(kScaleSrc);
  auto in = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  auto out = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  return runtime::TaskBuilder(compiled, "scale")
      .global(n)
      .local(64)
      .arg(in)
      .arg(out)
      .arg(k)
      .build();
}

/// Tasks + a deliberately pessimal model over mc2: always CPU-only (the
/// paper's "default strategy" failure mode), so on the GPU-favored mc2
/// the refiner has guaranteed headroom to win against the prediction.
struct FleetFixture {
  sim::MachineConfig machine = sim::makeMc2();
  std::vector<runtime::Task> tasks;
  std::shared_ptr<const ml::Classifier> weakModel;

  FleetFixture() {
    const runtime::PartitioningSpace space(machine.numDevices(), 10);
    for (const std::size_t n : {1u << 12, 1u << 16, 1u << 20}) {
      for (const int k : {10, 2000}) {
        tasks.push_back(makeScaleTask(n, k));
      }
    }
    ml::Dataset seed;
    seed.numClasses = static_cast<int>(space.size());
    seed.featureNames = {"f0"};
    seed.add({0.0}, static_cast<int>(space.cpuOnlyIndex()), "seed");
    auto model = ml::makeClassifier("mostfreq");
    model->train(seed);
    weakModel = std::shared_ptr<const ml::Classifier>(std::move(model));
  }

  FleetConfig config(std::size_t replicas, bool gossipEnabled) const {
    FleetConfig fc;
    fc.replicas = replicas;
    fc.gossipEnabled = gossipEnabled;
    fc.service.refine = true;
    fc.service.lanesPerMachine = 2;
    fc.service.refiner.exploreFraction = 0.5;
    // Finite probe budget; the simulation is deterministic, so one
    // sample per arm is the truth and probing converges. Merged remote
    // evidence (counts >= 1) therefore fills the budget: adopted wins
    // are never re-probed.
    fc.service.refiner.probeSamples = 1;
    fc.service.refiner.seed = 0xF1EE7;
    return fc;
  }

  serve::LaunchRequest request(std::size_t t) const {
    serve::LaunchRequest r;
    r.machine = machine.name;
    r.task = tasks[t % tasks.size()];
    return r;
  }
};

/// Drive traffic at one replica until its refiner has adopted wins.
void refineReplica(Replica& replica, const FleetFixture& fx,
                   std::size_t requests) {
  for (std::size_t i = 0; i < requests; ++i) {
    (void)replica.call(fx.request(i));
  }
}

TEST(Fleet, GossipedWinIsAdoptedWithoutProbing) {
  FleetFixture fx;
  Fleet fleet(fx.config(3, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  // Skewed traffic: only replica 0 sees (and probes) the workload.
  refineReplica(fleet.replica(0), fx, 400);
  const auto wins = fleet.replica(0).service().exportRefinedWins();
  ASSERT_FALSE(wins.empty()) << "replica 0 found no refinement wins";

  fleet.gossipRound();

  for (const std::size_t peer : {1u, 2u}) {
    Replica& replica = fleet.replica(peer);
    const auto stats = replica.stats();
    // Within one round peers that merged the wins re-offer them (their
    // own state changed), so a peer may hear each win more than once —
    // but only the first merge adopts; re-merges are idempotent updates.
    EXPECT_GE(stats.fleet.winsReceived, wins.size());
    EXPECT_EQ(stats.fleet.winsMerged, stats.fleet.winsReceived);
    EXPECT_EQ(stats.fleet.winsAdopted, wins.size());
    // Every gossiped win serves immediately — refined label, no probe.
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      const auto response = replica.call(fx.request(t));
      EXPECT_FALSE(response.explored);
    }
    const auto after = replica.stats();
    EXPECT_EQ(after.refiner.explorations, 0u)
        << "replica " << peer << " probed a gossiped win";
    // The adopted incumbents match the discovering replica's exactly.
    const auto version = replica.service().modelVersion();
    for (const auto& win : wins) {
      const auto inc =
          replica.service().refiner()->incumbent(win.key, version);
      ASSERT_TRUE(inc.tracked);
      EXPECT_EQ(inc.label, win.incumbentLabel);
      EXPECT_DOUBLE_EQ(inc.meanSeconds, win.incumbentMean);
    }
  }
  // The discovering replica re-hears its own wins but never re-adopts.
  EXPECT_EQ(fleet.replica(0).stats().fleet.winsAdopted, 0u);

  // Counter reconciliation on every replica.
  const auto stats = fleet.stats();
  for (const auto& s : stats.replicas) {
    EXPECT_EQ(s.fleet.winsReceived, s.fleet.winsMerged +
                                        s.fleet.winsRejectedStale +
                                        s.fleet.winsDropped);
  }
  EXPECT_EQ(stats.transport.dropped, 0u);
}

TEST(Fleet, GossipSkipsNoChangeRounds) {
  FleetFixture fx;
  Fleet fleet(fx.config(2, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  refineReplica(fleet.replica(0), fx, 300);
  fleet.gossipRound();
  const auto sentAfterFirst = fleet.replica(0).stats().fleet.winsSent;
  ASSERT_GT(sentAfterFirst, 0u);

  // No new wins: the digest is unchanged, the round sends nothing.
  fleet.gossipRound();
  fleet.gossipRound();
  const auto stats = fleet.replica(0).stats();
  EXPECT_EQ(stats.fleet.winsSent, sentAfterFirst);
  EXPECT_GE(stats.fleet.gossipRoundsSkipped, 2u);
}

TEST(Fleet, StaleVersionWinsAreRejected) {
  FleetFixture fx;
  Fleet fleet(fx.config(2, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  refineReplica(fleet.replica(0), fx, 300);
  auto wins = fleet.replica(0).service().exportRefinedWins();
  ASSERT_FALSE(wins.empty());

  // Tamper: a win learned against a generation the fleet never had.
  for (auto& win : wins) win.modelVersion += 10;
  const auto result = fleet.replica(1).service().mergeRemoteWins(wins);
  EXPECT_EQ(result.stale, wins.size());
  EXPECT_EQ(result.merged(), 0u);
}

TEST(Fleet, MergeRejectsOutOfSpaceLabels) {
  FleetFixture fx;
  Fleet fleet(fx.config(1, /*gossipEnabled=*/false));
  fleet.addMachine(fx.machine, fx.weakModel);
  auto& service = fleet.replica(0).service();
  const std::size_t spaceSize = service.space(fx.machine.name).size();

  // A hostile record whose labels lie outside the partitioning space: if
  // it were merged and cached, every warm request for the key would
  // throw instead of serving.
  adapt::WinRecord hostile = sampleWin("scale/scale", spaceSize + 5);
  hostile.modelVersion = service.modelVersion();
  hostile.baseLabel = 0;
  hostile.arms = {{0, 3, 1.0}, {spaceSize + 5, 3, 0.001}};
  const auto result = service.mergeRemoteWins({hostile});
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_EQ(result.merged(), 0u);

  // Out-of-space arm labels are equally rejected, even with a valid
  // incumbent.
  adapt::WinRecord badArm = sampleWin("scale/scale", 1);
  badArm.modelVersion = service.modelVersion();
  badArm.baseLabel = 0;
  badArm.arms = {{0, 3, 1.0}, {spaceSize, 3, 0.001}};
  EXPECT_EQ(service.mergeRemoteWins({badArm}).dropped, 1u);

  // The service still serves the launch normally.
  const auto response = fleet.replica(0).call(fx.request(0));
  EXPECT_LT(response.label, spaceSize);
  EXPECT_GT(response.execution.makespan, 0.0);
}

TEST(Fleet, SameGenerationInstallDropsCachedDecisions) {
  FleetFixture fx;
  // Refinement off: this test pins the cache/model path, and a refiner
  // entry surviving the same-generation install would (correctly) keep
  // serving its measured incumbent instead of the fresh prediction.
  FleetConfig fc = fx.config(1, /*gossipEnabled=*/false);
  fc.service.refine = false;
  Fleet fleet(fc);
  fleet.addMachine(fx.machine, fx.weakModel);
  auto& service = fleet.replica(0).service();
  // Warm the cache under the weak (CPU-only) model.
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    (void)fleet.replica(0).call(fx.request(t));
  }
  ASSERT_GT(service.cache().size(), 0u);

  // Install a different model AT the current generation (what a racing
  // second retrain coordinator produces): the old model's labels must
  // not keep serving as hits under the same version.
  const runtime::PartitioningSpace& space = service.space(fx.machine.name);
  ml::Dataset seed;
  seed.numClasses = static_cast<int>(space.size());
  seed.featureNames = {"f0"};
  seed.add({0.0}, static_cast<int>(space.singleDeviceIndex(1)), "seed");
  auto model = ml::makeClassifier("mostfreq");
  model->train(seed);
  service.installModels(
      {{fx.machine.name, std::shared_ptr<const ml::Classifier>(
                             std::move(model))}},
      service.modelVersion());

  EXPECT_EQ(service.cache().size(), 0u);
  // Served decisions now come from the new model, not stale cache hits.
  const auto response = fleet.replica(0).call(fx.request(0));
  EXPECT_FALSE(response.cacheHit);
  EXPECT_EQ(response.label, space.singleDeviceIndex(1));
}

TEST(Fleet, RetrainFansOutModelsAndInvalidatesCaches) {
  FleetFixture fx;
  Fleet fleet(fx.config(3, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  // Each replica records distinct feedback traffic.
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    for (std::size_t t = r; t < fx.tasks.size(); t += fleet.size()) {
      (void)fleet.replica(r).call(fx.request(t));
    }
  }
  const auto before = fleet.replica(1).service().modelVersion();
  const auto result = fleet.retrainFleet(/*leader=*/0);
  EXPECT_EQ(result.peersHeard, 2u);
  EXPECT_EQ(result.modelVersion, before + 1);
  // The union covers every distinct launch even though no single replica
  // saw them all.
  EXPECT_EQ(result.recordsUsed, fx.tasks.size());
  EXPECT_EQ(result.machinesRetrained, 1u);

  for (std::size_t r = 0; r < fleet.size(); ++r) {
    auto& service = fleet.replica(r).service();
    EXPECT_EQ(service.modelVersion(), result.modelVersion);
    // All replicas serve identical post-retrain decisions (byte-identical
    // models were fanned out).
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      EXPECT_EQ(service.predictLabel(fx.machine.name, fx.tasks[t]),
                fleet.replica(0).service().predictLabel(fx.machine.name,
                                                        fx.tasks[t]));
    }
    EXPECT_EQ(fleet.replica(r).stats().fleet.modelInstalls, 1u);
  }
}

// ---- snapshot round-trip property test -------------------------------------

TEST(Fleet, SnapshotRoundTripReproducesDecisionsAndIncumbents) {
  FleetFixture fx;
  const std::string dir = tempDir("roundtrip");

  FleetConfig fc = fx.config(1, /*gossipEnabled=*/false);
  fc.snapshotDir = dir;
  fc.replicas = 1;

  std::vector<std::size_t> decisions;
  std::vector<adapt::WinRecord> exported;
  std::uint64_t version = 0;
  {
    Fleet fleet(fc);
    fleet.addMachine(fx.machine, fx.weakModel);
    refineReplica(fleet.replica(0), fx, 500);
    auto& replica = fleet.replica(0);
    version = replica.service().modelVersion();
    exported = replica.service().exportRefinedWins(/*refinedOnly=*/false);
    ASSERT_FALSE(exported.empty());
    // Record the steady-state decision for every launch signature.
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto response = replica.call(fx.request(t));
        if (response.explored) continue;
        decisions.push_back(response.label);
        break;
      }
    }
    ASSERT_EQ(decisions.size(), fx.tasks.size());
    EXPECT_GT(replica.saveSnapshot(), 0u);
    EXPECT_EQ(replica.stats().fleet.snapshotsWritten, 1u);
  }  // fleet torn down: the "kill" half of kill + restart

  // A fresh replica over the same snapshot directory, seeded with the
  // same weak deployment model.
  Fleet restarted(fc);
  restarted.addMachine(fx.machine, fx.weakModel);
  auto& replica = restarted.replica(0);
  ASSERT_TRUE(replica.warmStart());
  EXPECT_EQ(replica.stats().fleet.snapshotsLoaded, 1u);
  EXPECT_EQ(replica.service().modelVersion(), version);

  // Identical incumbent (label AND mean) for every tracked key...
  for (const auto& win : exported) {
    const auto inc = replica.service().refiner()->incumbent(win.key, version);
    ASSERT_TRUE(inc.tracked);
    EXPECT_EQ(inc.label, win.incumbentLabel);
    EXPECT_DOUBLE_EQ(inc.meanSeconds, win.incumbentMean);
  }
  // ...and identical served decisions for every launch signature, with
  // zero probes (the snapshot's evidence fills the probe budget).
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    const auto response = replica.call(fx.request(t));
    EXPECT_FALSE(response.explored);
    EXPECT_EQ(response.label, decisions[t]) << "task " << t;
  }
  EXPECT_EQ(replica.stats().refiner.explorations, 0u);
  std::filesystem::remove_all(dir);
}

// ---- concurrency (TSan target) ---------------------------------------------

TEST(Fleet, CountersReconcileUnderConcurrentGossipAndRetrain) {
  FleetFixture fx;
  Fleet fleet(fx.config(3, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kRequestsPerClient = 120;
  std::atomic<std::uint64_t> faults{0};

  std::vector<std::thread> workers;
  for (std::size_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const auto response =
            fleet.submit(fx.request(c * kRequestsPerClient + i)).get();
        if (response.execution.makespan <= 0.0) faults.fetch_add(1);
      }
    });
  }
  workers.emplace_back([&] {
    for (int round = 0; round < 20; ++round) {
      fleet.gossipRound();
      std::this_thread::yield();
    }
  });
  workers.emplace_back([&] {
    for (int retrain = 0; retrain < 2; ++retrain) {
      (void)fleet.retrainFleet(0);
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  fleet.drainAll();

  EXPECT_EQ(faults.load(), 0u);
  const auto stats = fleet.stats();
  std::uint64_t completed = 0;
  for (const auto& s : stats.replicas) {
    completed += s.requestsCompleted;
    EXPECT_EQ(s.requestsFailed, 0u);
    EXPECT_EQ(s.requestsCompleted, s.requestsSubmitted);
    // Gossip/snapshot counters reconcile exactly.
    EXPECT_EQ(s.fleet.winsReceived, s.fleet.winsMerged +
                                        s.fleet.winsRejectedStale +
                                        s.fleet.winsDropped);
    // Cache and refiner counters stay consistent through concurrent
    // merges, invalidations and version bumps.
    EXPECT_EQ(s.cache.hits + s.cache.misses, s.cache.lookups);
    EXPECT_LE(s.cache.evictions, s.cache.insertions);
    EXPECT_EQ(s.refiner.decisions, s.refiner.explorations +
                                       s.refiner.exploitations +
                                       s.refiner.untracked);
    // Both fleet retrains were installed everywhere.
    EXPECT_EQ(s.fleet.modelInstalls, 2u);
  }
  EXPECT_EQ(completed, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.transport.dropped, 0u);
}

// ---- chaos: replicas over a faulty transport -------------------------------

/// Replica config for manual wiring over a FaultyTransport (what Fleet
/// does internally, minus the fleet so tests control every link).
/// Backoff base 0 = a failed peer is retried on the very next round;
/// retrainWaitSeconds small = partitioned coordinators abort fast.
ReplicaConfig chaosReplicaConfig(const FleetFixture& fx, const std::string& id,
                                 std::size_t index) {
  ReplicaConfig rc;
  rc.id = id;
  rc.service = fx.config(1, /*gossipEnabled=*/false).service;
  rc.service.refiner.seed += 0x9E3779B9ull * index;
  rc.retryBackoffBaseSeconds = 0.0;
  rc.retryBackoffCapSeconds = 0.0;
  rc.retrainWaitSeconds = 0.05;
  return rc;
}

TEST(Fleet, GossipSendFailureBacksOffAndRetries) {
  FleetFixture fx;
  LoopbackTransport inner;
  FaultyTransport net(inner, 0xC0FFEE);
  Replica r0(chaosReplicaConfig(fx, "r0", 0), net);
  Replica r1(chaosReplicaConfig(fx, "r1", 1), net);
  r0.addMachine(fx.machine, fx.weakModel);
  r1.addMachine(fx.machine, fx.weakModel);
  refineReplica(r0, fx, 400);
  const auto wins = r0.service().exportRefinedWins();
  ASSERT_FALSE(wins.empty());

  FaultPlan throwing;
  throwing.throwProbability = 1.0;
  net.setPlan("r0", "r1", throwing);
  r0.publishWins();
  auto g0 = r0.gossipCounters();
  EXPECT_EQ(g0.sendFailures, 1u);
  EXPECT_EQ(g0.sendRetries, 0u);
  EXPECT_EQ(r0.stats().fleet.winsSent, 0u);  // nothing delivered
  EXPECT_EQ(r1.stats().fleet.winsReceived, 0u);

  // The link heals. The next round is digest-quiet (no new local state),
  // but the failed peer is retried anyway — recovery must not be gated
  // on new wins.
  net.clearFaults();
  r0.publishWins();
  g0 = r0.gossipCounters();
  EXPECT_EQ(g0.sendFailures, 1u);
  EXPECT_EQ(g0.sendRetries, 1u);
  EXPECT_GT(r0.stats().fleet.winsSent, 0u);
  const auto s1 = r1.stats().fleet;
  EXPECT_GT(s1.winsReceived, 0u);
  EXPECT_EQ(s1.winsAdopted, wins.size());  // converged despite the outage

  // Healthy again: no further retries are recorded for this peer.
  r0.publishWins();
  EXPECT_EQ(r0.gossipCounters().sendRetries, 1u);
}

TEST(Fleet, DuplicatedDeliveriesAreRejectedByReplayWindow) {
  FleetFixture fx;
  LoopbackTransport inner;
  FaultyTransport net(inner, 0xD0D0);
  Replica r0(chaosReplicaConfig(fx, "r0", 0), net);
  Replica r1(chaosReplicaConfig(fx, "r1", 1), net);
  r0.addMachine(fx.machine, fx.weakModel);
  r1.addMachine(fx.machine, fx.weakModel);
  refineReplica(r0, fx, 400);
  const auto wins = r0.service().exportRefinedWins();
  ASSERT_FALSE(wins.empty());

  FaultPlan duplicating;
  duplicating.duplicateProbability = 1.0;
  net.setPlan("r0", "r1", duplicating);
  r0.publishWins();

  EXPECT_EQ(net.faultCounters().injectedDuplicates, 1u);
  const auto g1 = r1.gossipCounters();
  EXPECT_EQ(g1.envelopesReceived, 2u);  // both copies reached the handler
  EXPECT_EQ(g1.replaysRejected, 1u);    // the second was rejected by seq
  const auto s1 = r1.stats().fleet;
  // Merged exactly once: the duplicate never re-counted a win.
  EXPECT_EQ(s1.winsMerged, s1.winsReceived);
  EXPECT_EQ(s1.winsAdopted, wins.size());
}

TEST(Fleet, CorruptPayloadsAreCountedRejections) {
  FleetFixture fx;
  LoopbackTransport inner;
  FaultyTransport net(inner, 0xBAD);
  Replica r0(chaosReplicaConfig(fx, "r0", 0), net);
  Replica r1(chaosReplicaConfig(fx, "r1", 1), net);
  r0.addMachine(fx.machine, fx.weakModel);
  r1.addMachine(fx.machine, fx.weakModel);
  refineReplica(r0, fx, 400);

  FaultPlan corrupting;
  corrupting.corruptProbability = 1.0;
  net.setPlan("r0", "r1", corrupting);
  r0.publishWins();

  EXPECT_EQ(net.faultCounters().injectedCorruptions, 1u);
  const auto g1 = r1.gossipCounters();
  EXPECT_EQ(g1.envelopesReceived, 1u);
  EXPECT_EQ(g1.decodeFailures, 1u);  // injected corruption == observed
  EXPECT_EQ(r1.stats().fleet.winsReceived, 0u);
  // The replica's boundary absorbed it: the transport never saw the
  // handler throw, and the replica still serves traffic.
  EXPECT_EQ(inner.counters().deliveryFailures, 0u);
  EXPECT_GT(r1.call(fx.request(0)).execution.makespan, 0.0);
}

TEST(Fleet, PartitionedCoordinatorAbortsRetrainWithoutQuorum) {
  FleetFixture fx;
  LoopbackTransport inner;
  FaultyTransport net(inner, 0x5117);
  Replica r0(chaosReplicaConfig(fx, "r0", 0), net);
  Replica r1(chaosReplicaConfig(fx, "r1", 1), net);
  Replica r2(chaosReplicaConfig(fx, "r2", 2), net);
  for (Replica* r : {&r0, &r1, &r2}) {
    r->addMachine(fx.machine, fx.weakModel);
  }
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    (void)r0.call(fx.request(t));
  }

  // The coordinator is cut off from both peers: its lease requests die
  // in the partition, the self-grant alone misses quorum, and the
  // retrain must be a safe no-op.
  net.partition("r0", "r1");
  net.partition("r0", "r2");
  const auto before = r1.service().modelVersion();
  const auto result = r0.coordinateRetrain();
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.quorumNeeded, 2u);
  EXPECT_EQ(result.leaseGrants, 1u);  // only the self-grant
  EXPECT_EQ(r0.gossipCounters().retrainsAborted, 1u);
  EXPECT_EQ(r0.service().modelVersion(), before);
  EXPECT_EQ(r1.service().modelVersion(), before);
  EXPECT_GE(net.faultCounters().partitionedDrops, 2u);

  // Healed, the same coordinator wins quorum and fans out normally.
  net.heal();
  const auto again = r0.coordinateRetrain();
  EXPECT_FALSE(again.aborted);
  EXPECT_EQ(again.leaseGrants, 3u);
  EXPECT_EQ(r0.service().modelVersion(), again.modelVersion);
  EXPECT_EQ(r1.service().modelVersion(), again.modelVersion);
  EXPECT_EQ(r2.service().modelVersion(), again.modelVersion);
}

// ---- quorum / lease --------------------------------------------------------

TEST(Fleet, RetrainAbortsWhileLeaseHeldElsewhereAndResumesAfterExpiry) {
  FleetFixture fx;
  Fleet fleet(fx.config(3, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    for (std::size_t t = r; t < fx.tasks.size(); t += fleet.size()) {
      (void)fleet.replica(r).call(fx.request(t));
    }
  }
  const std::uint64_t generation =
      fleet.replica(0).service().modelVersion() + 1;

  // An "intruder" coordinator grabs the lease for the next generation on
  // both peers with a long TTL (then drops off the transport, as a
  // crashed coordinator would).
  auto& transport = fleet.transport();
  std::vector<LeaseReplyMsg> replies;
  transport.attach("intruder", [&](const Envelope& e) {
    if (e.kind == MsgKind::LeaseReply) {
      replies.push_back(decodeLeaseReply(e.payload));
    }
  });
  LeaseRequestMsg request;
  request.generation = generation;
  request.ttlNanos = static_cast<std::uint64_t>(3600e9);
  Envelope env;
  env.kind = MsgKind::LeaseRequest;
  env.from = "intruder";
  env.payload = encodeLeaseRequest(request);
  env.seq = 1;
  transport.send("intruder", "replica-1", env);
  env.seq = 2;
  transport.send("intruder", "replica-2", env);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(replies[0].granted && replies[1].granted);
  transport.detach("intruder");

  // The real coordinator self-grants but both peers refuse: safe no-op.
  const auto aborted = fleet.retrainFleet(0);
  EXPECT_TRUE(aborted.aborted);
  EXPECT_EQ(aborted.leaseGrants, 1u);
  EXPECT_EQ(aborted.quorumNeeded, 2u);
  EXPECT_EQ(fleet.replica(0).service().modelVersion(), generation - 1);
  EXPECT_EQ(fleet.replica(0).stats().fleet.retrainsAborted, 1u);
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    EXPECT_EQ(fleet.replica(r).stats().fleet.modelInstalls, 0u);
  }

  // The intruder "crashes": renew its lease with a ttl that is already
  // expired by the next clock read. Expiry frees the fleet — the same
  // coordinator now wins quorum and fans out.
  transport.attach("intruder", [](const Envelope&) {});
  request.ttlNanos = 0;
  env.payload = encodeLeaseRequest(request);
  env.seq = 3;
  transport.send("intruder", "replica-1", env);
  env.seq = 4;
  transport.send("intruder", "replica-2", env);
  transport.detach("intruder");

  const auto result = fleet.retrainFleet(0);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.modelVersion, generation);
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    EXPECT_EQ(fleet.replica(r).service().modelVersion(), generation);
    EXPECT_EQ(fleet.replica(r).stats().fleet.modelInstalls, 1u);
  }
}

TEST(Fleet, RacingCoordinatorsCannotFanOutConflictingGenerations) {
  FleetFixture fx;
  Fleet fleet(fx.config(3, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    for (std::size_t t = r; t < fx.tasks.size(); t += fleet.size()) {
      (void)fleet.replica(r).call(fx.request(t));
    }
  }
  const std::uint64_t before = fleet.replica(0).service().modelVersion();

  // Two coordinators race. Overlapping, at most one can win the lease
  // quorum (the third replica grants exactly one of them); sequential,
  // both may win but at distinct generations. Either way no two
  // successful retrains may share a generation.
  Replica::FleetRetrain ra, rb;
  std::thread ta([&] { ra = fleet.retrainFleet(0); });
  std::thread tb([&] { rb = fleet.retrainFleet(1); });
  ta.join();
  tb.join();

  const std::size_t succeeded =
      static_cast<std::size_t>(!ra.aborted) +
      static_cast<std::size_t>(!rb.aborted);
  EXPECT_GE(succeeded, 1u);  // somebody always wins the race
  if (succeeded == 2) {
    EXPECT_NE(ra.modelVersion, rb.modelVersion);
  }
  std::uint64_t abortsCounted = 0;
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    abortsCounted += fleet.replica(r).stats().fleet.retrainsAborted;
  }
  EXPECT_EQ(abortsCounted, 2u - succeeded);

  // One clean sequential retrain afterwards reconverges the fleet: every
  // replica serves the same generation and identical decisions.
  const auto final = fleet.retrainFleet(0);
  EXPECT_FALSE(final.aborted);
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    auto& service = fleet.replica(r).service();
    EXPECT_EQ(service.modelVersion(), final.modelVersion);
    EXPECT_GT(final.modelVersion, before);
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      EXPECT_EQ(service.predictLabel(fx.machine.name, fx.tasks[t]),
                fleet.replica(0).service().predictLabel(fx.machine.name,
                                                        fx.tasks[t]));
    }
  }
}

// ---- snapshot salvage through a replica ------------------------------------

TEST(Fleet, WarmStartSalvagesCorruptNewestSnapshot) {
  FleetFixture fx;
  const std::string dir = tempDir("salvage_fleet");
  FleetConfig fc = fx.config(1, /*gossipEnabled=*/false);
  fc.snapshotDir = dir;
  fc.replicas = 1;
  const std::string storeDir = dir + "/replica-0";

  {
    Fleet fleet(fc);
    fleet.addMachine(fx.machine, fx.weakModel);
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      (void)fleet.replica(0).call(fx.request(t));
    }
    (void)fleet.replica(0).service().retrain();  // -> generation 1
    EXPECT_EQ(fleet.replica(0).saveSnapshot(), 1u);
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      (void)fleet.replica(0).call(fx.request(t));
    }
    (void)fleet.replica(0).service().retrain();  // -> generation 2
    EXPECT_EQ(fleet.replica(0).saveSnapshot(), 2u);
  }

  // Bit rot on the newest snapshot: the restarted replica must fall back
  // to the older one instead of cold-starting (or crashing).
  corruptFile(snapshotPath(storeDir, 2));
  {
    Fleet restarted(fc);
    restarted.addMachine(fx.machine, fx.weakModel);
    ASSERT_TRUE(restarted.replica(0).warmStart());
    const auto stats = restarted.replica(0).stats();
    EXPECT_EQ(stats.fleet.snapshotsLoaded, 1u);
    EXPECT_EQ(stats.fleet.snapshotsSalvaged, 1u);
    EXPECT_EQ(restarted.replica(0).service().modelVersion(), 1u);
    // Salvaged state serves: warm decisions at the salvaged generation.
    const auto response = restarted.replica(0).call(fx.request(0));
    EXPECT_EQ(response.modelVersion, 1u);
  }

  // Everything corrupt: warm start reports false and the replica serves
  // from its cold deployment model instead of dying.
  corruptFile(snapshotPath(storeDir, 1));
  {
    Fleet cold(fc);
    cold.addMachine(fx.machine, fx.weakModel);
    EXPECT_FALSE(cold.replica(0).warmStart());
    EXPECT_EQ(cold.replica(0).stats().fleet.snapshotsSalvaged, 2u);
    EXPECT_EQ(cold.replica(0).service().modelVersion(), 0u);
    EXPECT_GT(cold.replica(0).call(fx.request(0)).execution.makespan, 0.0);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tp::fleet
