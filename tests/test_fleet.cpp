// tp::fleet tests: wire-format round-trips and rejection of foreign
// bytes, loopback transport semantics, gossip bus rounds, snapshot store
// persistence, and the replicated-serving behaviors end to end — a win
// measured on one replica is adopted by peers without probing, snapshots
// round-trip to identical decisions and incumbent means, fleet retrain
// fans models out, and counters reconcile under concurrent gossip +
// retrain + traffic (the TSan-covered test).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "fleet/fleet.hpp"
#include "runtime/compiler.hpp"
#include "runtime/evaluation.hpp"
#include "sim/machine.hpp"

namespace tp::fleet {
namespace {

// ---- wire ------------------------------------------------------------------

adapt::WinRecord sampleWin(const std::string& program, std::size_t label) {
  adapt::WinRecord rec;
  rec.key.machine = "mc2";
  rec.key.program = program;
  rec.key.signature = {65536.0, 64.0, 0.25};
  rec.modelVersion = 3;
  rec.baseLabel = 5;
  rec.incumbentLabel = label;
  rec.incumbentMean = 0.125;
  rec.arms = {{5, 2, 0.5}, {label, 3, 0.125}};
  return rec;
}

TEST(Wire, EnvelopeRoundTrips) {
  Envelope e;
  e.kind = MsgKind::ModelInstall;
  e.from = "replica-1";
  e.seq = 42;
  e.payload = std::string("binary\0payload", 14);
  const Envelope back = decodeEnvelope(encodeEnvelope(e));
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.from, e.from);
  EXPECT_EQ(back.seq, e.seq);
  EXPECT_EQ(back.payload, e.payload);
}

TEST(Wire, RejectsForeignAndTruncatedBytes) {
  Envelope e;
  e.kind = MsgKind::WinsGossip;
  e.from = "r0";
  const std::string bytes = encodeEnvelope(e);

  EXPECT_THROW(decodeEnvelope("not a fleet message"), Error);
  EXPECT_THROW(decodeEnvelope(bytes.substr(0, bytes.size() - 1)), Error);
  EXPECT_THROW(decodeEnvelope(bytes + "x"), Error);  // trailing bytes

  std::string wrongMagic = bytes;
  wrongMagic[0] ^= 0x5a;
  EXPECT_THROW(decodeEnvelope(wrongMagic), Error);

  std::string wrongVersion = bytes;
  wrongVersion[4] = 99;  // format version lives after the 4-byte magic
  EXPECT_THROW(decodeEnvelope(wrongVersion), Error);
}

TEST(Wire, WinRecordsRoundTrip) {
  const std::vector<adapt::WinRecord> wins = {sampleWin("fft/run", 7),
                                              sampleWin("spmv/kernel", 2)};
  const auto back = decodeWins(encodeWins(wins));
  ASSERT_EQ(back.size(), wins.size());
  for (std::size_t i = 0; i < wins.size(); ++i) {
    EXPECT_EQ(back[i].key, wins[i].key);
    EXPECT_EQ(back[i].modelVersion, wins[i].modelVersion);
    EXPECT_EQ(back[i].baseLabel, wins[i].baseLabel);
    EXPECT_EQ(back[i].incumbentLabel, wins[i].incumbentLabel);
    EXPECT_DOUBLE_EQ(back[i].incumbentMean, wins[i].incumbentMean);
    ASSERT_EQ(back[i].arms.size(), wins[i].arms.size());
    for (std::size_t a = 0; a < wins[i].arms.size(); ++a) {
      EXPECT_EQ(back[i].arms[a].label, wins[i].arms[a].label);
      EXPECT_EQ(back[i].arms[a].count, wins[i].arms[a].count);
      EXPECT_DOUBLE_EQ(back[i].arms[a].meanSeconds,
                       wins[i].arms[a].meanSeconds);
    }
  }
}

TEST(Wire, HostileCountsThrowInsteadOfAllocating) {
  // A corrupt length prefix claiming 4 billion elements must surface as
  // tp::Error from the count check — not as a multi-gigabyte reserve().
  common::WireWriter lyingWins;
  lyingWins.u32(0xffffffffu);
  EXPECT_THROW(decodeWins(lyingWins.data()), Error);

  common::WireWriter lyingModels;
  lyingModels.u64(1);           // model version
  lyingModels.u32(0xffffffffu);  // model blob count
  EXPECT_THROW(decodeModelInstall(lyingModels.data()), Error);

  common::WireWriter lyingFeedback;
  lyingFeedback.u64(4);          // numPartitionings
  lyingFeedback.u32(0xffffffffu);  // schema string count
  EXPECT_THROW(decodeFeedback(lyingFeedback.data()), Error);
}

TEST(Wire, FeedbackDatabaseRoundTrips) {
  runtime::FeatureDatabase db(4, {"s0", "s1"}, {"r0"});
  runtime::LaunchRecord rec;
  rec.program = "p";
  rec.machine = "mc1";
  rec.sizeLabel = "n=1024";
  rec.staticFeatures = {1.0, -2.5};
  rec.runtimeFeatures = {3.25};
  rec.times = {0.1, 0.2, 0.05, 0.4};
  db.add(rec);

  const auto back = decodeFeedback(encodeFeedback(db));
  EXPECT_EQ(back.numPartitionings(), db.numPartitionings());
  EXPECT_EQ(back.staticNames(), db.staticNames());
  EXPECT_EQ(back.runtimeNames(), db.runtimeNames());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.records()[0].program, "p");
  EXPECT_EQ(back.records()[0].times, rec.times);
}

// ---- transport -------------------------------------------------------------

TEST(LoopbackTransport, DeliversSerializedMessages) {
  LoopbackTransport transport;
  std::vector<std::string> aLog, bLog;
  transport.attach("a", [&](const Envelope& e) {
    aLog.push_back(e.from + ":" + e.payload);
  });
  transport.attach("b", [&](const Envelope& e) {
    bLog.push_back(e.from + ":" + e.payload);
  });
  EXPECT_EQ(transport.nodes(), (std::vector<std::string>{"a", "b"}));

  Envelope e;
  e.kind = MsgKind::WinsGossip;
  e.from = "a";
  e.payload = "hello";
  transport.send("a", "b", e);
  transport.broadcast("a", e);  // reaches b only (never the sender)
  transport.send("a", "ghost", e);  // unknown destination: dropped

  EXPECT_TRUE(aLog.empty());
  EXPECT_EQ(bLog, (std::vector<std::string>{"a:hello", "a:hello"}));

  const auto counters = transport.counters();
  EXPECT_EQ(counters.sent, 2u);
  EXPECT_EQ(counters.broadcasts, 1u);
  EXPECT_EQ(counters.delivered, 2u);
  EXPECT_EQ(counters.dropped, 1u);
  EXPECT_GT(counters.bytesMoved, 0u);

  transport.detach("b");
  transport.send("a", "b", e);
  EXPECT_EQ(transport.counters().dropped, 2u);
  EXPECT_EQ(bLog.size(), 2u);
}

TEST(LoopbackTransport, HandlersMaySendReentrantly) {
  LoopbackTransport transport;
  std::string echoed;
  transport.attach("server", [&](const Envelope& e) {
    Envelope reply;
    reply.kind = MsgKind::FeedbackPush;
    reply.from = "server";
    reply.payload = "re:" + e.payload;
    transport.send("server", e.from, reply);
  });
  transport.attach("client", [&](const Envelope& e) { echoed = e.payload; });

  Envelope e;
  e.kind = MsgKind::FeedbackPull;
  e.from = "client";
  e.payload = "ping";
  transport.send("client", "server", e);
  EXPECT_EQ(echoed, "re:ping");
}

// ---- gossip bus ------------------------------------------------------------

TEST(GossipBus, RunsParticipantsPerRound) {
  GossipBus bus;
  int a = 0, b = 0;
  bus.join("a", [&] { ++a; });
  bus.join("b", [&] { ++b; });
  EXPECT_EQ(bus.runRound(), 2u);
  bus.leave("a");
  EXPECT_EQ(bus.runRound(), 1u);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(bus.rounds(), 2u);
}

TEST(GossipBus, BackgroundThreadRunsRounds) {
  GossipConfig config;
  config.intervalSeconds = 0.002;
  GossipBus bus(config);
  std::atomic<int> ticks{0};
  bus.join("n", [&] { ticks.fetch_add(1); });
  bus.start();
  while (ticks.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bus.stop();
  EXPECT_FALSE(bus.running());
  EXPECT_GE(bus.rounds(), 3u);
}

// ---- snapshot store --------------------------------------------------------

std::string tempDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tp_fleet_test_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(SnapshotStore, SaveLoadLatestAndSequencing) {
  const std::string dir = tempDir("store");
  SnapshotStore store(dir);
  EXPECT_EQ(store.count(), 0u);
  EXPECT_FALSE(store.loadLatest().has_value());

  ReplicaSnapshot first;
  first.modelVersion = 1;
  first.wins = {sampleWin("a/b", 3)};
  EXPECT_EQ(store.save(first), 1u);

  ReplicaSnapshot second;
  second.modelVersion = 2;
  second.models = {ModelBlob{"mc2", "mostfreq 4 2\n"}};
  second.wins = {sampleWin("a/b", 7), sampleWin("c/d", 1)};
  EXPECT_EQ(store.save(second), 2u);
  EXPECT_EQ(store.count(), 2u);

  const auto latest = store.loadLatest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->modelVersion, 2u);
  ASSERT_EQ(latest->models.size(), 1u);
  EXPECT_EQ(latest->models[0].machine, "mc2");
  ASSERT_EQ(latest->wins.size(), 2u);
  EXPECT_EQ(latest->wins[1].key.program, "c/d");

  // A second store over the same directory continues the sequence.
  SnapshotStore reopened(dir);
  EXPECT_EQ(reopened.save(first), 3u);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotStore, KeepLastPrunesOldSnapshotsAfterSave) {
  const std::string dir = tempDir("retention");
  constexpr std::size_t kKeep = 3;
  SnapshotStore store(dir, kKeep);
  EXPECT_EQ(store.keepLast(), kKeep);

  ReplicaSnapshot snap;
  for (std::uint64_t seq = 1; seq <= kKeep + 4; ++seq) {
    snap.modelVersion = seq;
    EXPECT_EQ(store.save(snap), seq);
    // Never more than kKeep on disk, and the latest always survives.
    EXPECT_LE(store.count(), kKeep);
    const auto latest = store.loadLatest();
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->modelVersion, seq);
  }
  EXPECT_EQ(store.count(), kKeep);
  // The pruned files are genuinely gone (only the newest kKeep remain),
  // and the sequence numbering still continues past them.
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    std::ostringstream name;
    name << "snapshot-";
    name.width(8);
    name.fill('0');
    name << seq << ".tpsnap";
    EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) /
                                         name.str()))
        << name.str();
  }
  EXPECT_EQ(store.save(snap), kKeep + 5);

  // keepLast = 0 keeps everything (the pre-retention behavior).
  const std::string unboundedDir = tempDir("retention_unbounded");
  SnapshotStore unbounded(unboundedDir);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) (void)unbounded.save(snap);
  EXPECT_EQ(unbounded.count(), 5u);
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(unboundedDir);
}

TEST(SnapshotStore, HostileModelCountThrowsInsteadOfAllocating) {
  // Regression: the model-blob count in the snapshot header went straight
  // into models.reserve() unchecked (lint rule R3 caught it) — a corrupt
  // or hostile count claimed ~4e9 blobs against a few bytes of payload.
  ReplicaSnapshot snap;
  snap.modelVersion = 1;
  std::string bytes = encodeSnapshot(snap);
  // Header layout: u32 magic + u16 format version + u64 model version,
  // then the u32 model-blob count at offset 14.
  ASSERT_GE(bytes.size(), 18u);
  for (int i = 0; i < 4; ++i) bytes[14 + i] = static_cast<char>(0xff);
  EXPECT_THROW(decodeSnapshot(bytes), Error);
}

TEST(SnapshotStore, RejectsCorruptBytes) {
  EXPECT_THROW(decodeSnapshot("garbage"), Error);
  ReplicaSnapshot snap;
  snap.modelVersion = 9;
  const std::string bytes = encodeSnapshot(snap);
  EXPECT_THROW(decodeSnapshot(bytes.substr(0, bytes.size() / 2)), Error);
  const ReplicaSnapshot back = decodeSnapshot(bytes);
  EXPECT_EQ(back.modelVersion, 9u);
}

// ---- fleet end to end ------------------------------------------------------

const char* kScaleSrc = R"(
__kernel void scale(__global const float* in, __global float* out, int K) {
  int i = get_global_id(0);
  float x = in[i];
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    acc += x * 1.0001f;
  }
  out[i] = acc;
}
)";

runtime::Task makeScaleTask(std::size_t n, int k) {
  static const runtime::CompiledKernel compiled =
      runtime::CompiledKernel::compile(kScaleSrc);
  auto in = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  auto out = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  return runtime::TaskBuilder(compiled, "scale")
      .global(n)
      .local(64)
      .arg(in)
      .arg(out)
      .arg(k)
      .build();
}

/// Tasks + a deliberately pessimal model over mc2: always CPU-only (the
/// paper's "default strategy" failure mode), so on the GPU-favored mc2
/// the refiner has guaranteed headroom to win against the prediction.
struct FleetFixture {
  sim::MachineConfig machine = sim::makeMc2();
  std::vector<runtime::Task> tasks;
  std::shared_ptr<const ml::Classifier> weakModel;

  FleetFixture() {
    const runtime::PartitioningSpace space(machine.numDevices(), 10);
    for (const std::size_t n : {1u << 12, 1u << 16, 1u << 20}) {
      for (const int k : {10, 2000}) {
        tasks.push_back(makeScaleTask(n, k));
      }
    }
    ml::Dataset seed;
    seed.numClasses = static_cast<int>(space.size());
    seed.featureNames = {"f0"};
    seed.add({0.0}, static_cast<int>(space.cpuOnlyIndex()), "seed");
    auto model = ml::makeClassifier("mostfreq");
    model->train(seed);
    weakModel = std::shared_ptr<const ml::Classifier>(std::move(model));
  }

  FleetConfig config(std::size_t replicas, bool gossipEnabled) const {
    FleetConfig fc;
    fc.replicas = replicas;
    fc.gossipEnabled = gossipEnabled;
    fc.service.refine = true;
    fc.service.lanesPerMachine = 2;
    fc.service.refiner.exploreFraction = 0.5;
    // Finite probe budget; the simulation is deterministic, so one
    // sample per arm is the truth and probing converges. Merged remote
    // evidence (counts >= 1) therefore fills the budget: adopted wins
    // are never re-probed.
    fc.service.refiner.probeSamples = 1;
    fc.service.refiner.seed = 0xF1EE7;
    return fc;
  }

  serve::LaunchRequest request(std::size_t t) const {
    serve::LaunchRequest r;
    r.machine = machine.name;
    r.task = tasks[t % tasks.size()];
    return r;
  }
};

/// Drive traffic at one replica until its refiner has adopted wins.
void refineReplica(Replica& replica, const FleetFixture& fx,
                   std::size_t requests) {
  for (std::size_t i = 0; i < requests; ++i) {
    (void)replica.call(fx.request(i));
  }
}

TEST(Fleet, GossipedWinIsAdoptedWithoutProbing) {
  FleetFixture fx;
  Fleet fleet(fx.config(3, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  // Skewed traffic: only replica 0 sees (and probes) the workload.
  refineReplica(fleet.replica(0), fx, 400);
  const auto wins = fleet.replica(0).service().exportRefinedWins();
  ASSERT_FALSE(wins.empty()) << "replica 0 found no refinement wins";

  fleet.gossipRound();

  for (const std::size_t peer : {1u, 2u}) {
    Replica& replica = fleet.replica(peer);
    const auto stats = replica.stats();
    // Within one round peers that merged the wins re-offer them (their
    // own state changed), so a peer may hear each win more than once —
    // but only the first merge adopts; re-merges are idempotent updates.
    EXPECT_GE(stats.fleet.winsReceived, wins.size());
    EXPECT_EQ(stats.fleet.winsMerged, stats.fleet.winsReceived);
    EXPECT_EQ(stats.fleet.winsAdopted, wins.size());
    // Every gossiped win serves immediately — refined label, no probe.
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      const auto response = replica.call(fx.request(t));
      EXPECT_FALSE(response.explored);
    }
    const auto after = replica.stats();
    EXPECT_EQ(after.refiner.explorations, 0u)
        << "replica " << peer << " probed a gossiped win";
    // The adopted incumbents match the discovering replica's exactly.
    const auto version = replica.service().modelVersion();
    for (const auto& win : wins) {
      const auto inc =
          replica.service().refiner()->incumbent(win.key, version);
      ASSERT_TRUE(inc.tracked);
      EXPECT_EQ(inc.label, win.incumbentLabel);
      EXPECT_DOUBLE_EQ(inc.meanSeconds, win.incumbentMean);
    }
  }
  // The discovering replica re-hears its own wins but never re-adopts.
  EXPECT_EQ(fleet.replica(0).stats().fleet.winsAdopted, 0u);

  // Counter reconciliation on every replica.
  const auto stats = fleet.stats();
  for (const auto& s : stats.replicas) {
    EXPECT_EQ(s.fleet.winsReceived, s.fleet.winsMerged +
                                        s.fleet.winsRejectedStale +
                                        s.fleet.winsDropped);
  }
  EXPECT_EQ(stats.transport.dropped, 0u);
}

TEST(Fleet, GossipSkipsNoChangeRounds) {
  FleetFixture fx;
  Fleet fleet(fx.config(2, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  refineReplica(fleet.replica(0), fx, 300);
  fleet.gossipRound();
  const auto sentAfterFirst = fleet.replica(0).stats().fleet.winsSent;
  ASSERT_GT(sentAfterFirst, 0u);

  // No new wins: the digest is unchanged, the round sends nothing.
  fleet.gossipRound();
  fleet.gossipRound();
  const auto stats = fleet.replica(0).stats();
  EXPECT_EQ(stats.fleet.winsSent, sentAfterFirst);
  EXPECT_GE(stats.fleet.gossipRoundsSkipped, 2u);
}

TEST(Fleet, StaleVersionWinsAreRejected) {
  FleetFixture fx;
  Fleet fleet(fx.config(2, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  refineReplica(fleet.replica(0), fx, 300);
  auto wins = fleet.replica(0).service().exportRefinedWins();
  ASSERT_FALSE(wins.empty());

  // Tamper: a win learned against a generation the fleet never had.
  for (auto& win : wins) win.modelVersion += 10;
  const auto result = fleet.replica(1).service().mergeRemoteWins(wins);
  EXPECT_EQ(result.stale, wins.size());
  EXPECT_EQ(result.merged(), 0u);
}

TEST(Fleet, MergeRejectsOutOfSpaceLabels) {
  FleetFixture fx;
  Fleet fleet(fx.config(1, /*gossipEnabled=*/false));
  fleet.addMachine(fx.machine, fx.weakModel);
  auto& service = fleet.replica(0).service();
  const std::size_t spaceSize = service.space(fx.machine.name).size();

  // A hostile record whose labels lie outside the partitioning space: if
  // it were merged and cached, every warm request for the key would
  // throw instead of serving.
  adapt::WinRecord hostile = sampleWin("scale/scale", spaceSize + 5);
  hostile.modelVersion = service.modelVersion();
  hostile.baseLabel = 0;
  hostile.arms = {{0, 3, 1.0}, {spaceSize + 5, 3, 0.001}};
  const auto result = service.mergeRemoteWins({hostile});
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_EQ(result.merged(), 0u);

  // Out-of-space arm labels are equally rejected, even with a valid
  // incumbent.
  adapt::WinRecord badArm = sampleWin("scale/scale", 1);
  badArm.modelVersion = service.modelVersion();
  badArm.baseLabel = 0;
  badArm.arms = {{0, 3, 1.0}, {spaceSize, 3, 0.001}};
  EXPECT_EQ(service.mergeRemoteWins({badArm}).dropped, 1u);

  // The service still serves the launch normally.
  const auto response = fleet.replica(0).call(fx.request(0));
  EXPECT_LT(response.label, spaceSize);
  EXPECT_GT(response.execution.makespan, 0.0);
}

TEST(Fleet, SameGenerationInstallDropsCachedDecisions) {
  FleetFixture fx;
  // Refinement off: this test pins the cache/model path, and a refiner
  // entry surviving the same-generation install would (correctly) keep
  // serving its measured incumbent instead of the fresh prediction.
  FleetConfig fc = fx.config(1, /*gossipEnabled=*/false);
  fc.service.refine = false;
  Fleet fleet(fc);
  fleet.addMachine(fx.machine, fx.weakModel);
  auto& service = fleet.replica(0).service();
  // Warm the cache under the weak (CPU-only) model.
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    (void)fleet.replica(0).call(fx.request(t));
  }
  ASSERT_GT(service.cache().size(), 0u);

  // Install a different model AT the current generation (what a racing
  // second retrain coordinator produces): the old model's labels must
  // not keep serving as hits under the same version.
  const runtime::PartitioningSpace& space = service.space(fx.machine.name);
  ml::Dataset seed;
  seed.numClasses = static_cast<int>(space.size());
  seed.featureNames = {"f0"};
  seed.add({0.0}, static_cast<int>(space.singleDeviceIndex(1)), "seed");
  auto model = ml::makeClassifier("mostfreq");
  model->train(seed);
  service.installModels(
      {{fx.machine.name, std::shared_ptr<const ml::Classifier>(
                             std::move(model))}},
      service.modelVersion());

  EXPECT_EQ(service.cache().size(), 0u);
  // Served decisions now come from the new model, not stale cache hits.
  const auto response = fleet.replica(0).call(fx.request(0));
  EXPECT_FALSE(response.cacheHit);
  EXPECT_EQ(response.label, space.singleDeviceIndex(1));
}

TEST(Fleet, RetrainFansOutModelsAndInvalidatesCaches) {
  FleetFixture fx;
  Fleet fleet(fx.config(3, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  // Each replica records distinct feedback traffic.
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    for (std::size_t t = r; t < fx.tasks.size(); t += fleet.size()) {
      (void)fleet.replica(r).call(fx.request(t));
    }
  }
  const auto before = fleet.replica(1).service().modelVersion();
  const auto result = fleet.retrainFleet(/*leader=*/0);
  EXPECT_EQ(result.peersHeard, 2u);
  EXPECT_EQ(result.modelVersion, before + 1);
  // The union covers every distinct launch even though no single replica
  // saw them all.
  EXPECT_EQ(result.recordsUsed, fx.tasks.size());
  EXPECT_EQ(result.machinesRetrained, 1u);

  for (std::size_t r = 0; r < fleet.size(); ++r) {
    auto& service = fleet.replica(r).service();
    EXPECT_EQ(service.modelVersion(), result.modelVersion);
    // All replicas serve identical post-retrain decisions (byte-identical
    // models were fanned out).
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      EXPECT_EQ(service.predictLabel(fx.machine.name, fx.tasks[t]),
                fleet.replica(0).service().predictLabel(fx.machine.name,
                                                        fx.tasks[t]));
    }
    EXPECT_EQ(fleet.replica(r).stats().fleet.modelInstalls, 1u);
  }
}

// ---- snapshot round-trip property test -------------------------------------

TEST(Fleet, SnapshotRoundTripReproducesDecisionsAndIncumbents) {
  FleetFixture fx;
  const std::string dir = tempDir("roundtrip");

  FleetConfig fc = fx.config(1, /*gossipEnabled=*/false);
  fc.snapshotDir = dir;
  fc.replicas = 1;

  std::vector<std::size_t> decisions;
  std::vector<adapt::WinRecord> exported;
  std::uint64_t version = 0;
  {
    Fleet fleet(fc);
    fleet.addMachine(fx.machine, fx.weakModel);
    refineReplica(fleet.replica(0), fx, 500);
    auto& replica = fleet.replica(0);
    version = replica.service().modelVersion();
    exported = replica.service().exportRefinedWins(/*refinedOnly=*/false);
    ASSERT_FALSE(exported.empty());
    // Record the steady-state decision for every launch signature.
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto response = replica.call(fx.request(t));
        if (response.explored) continue;
        decisions.push_back(response.label);
        break;
      }
    }
    ASSERT_EQ(decisions.size(), fx.tasks.size());
    EXPECT_GT(replica.saveSnapshot(), 0u);
    EXPECT_EQ(replica.stats().fleet.snapshotsWritten, 1u);
  }  // fleet torn down: the "kill" half of kill + restart

  // A fresh replica over the same snapshot directory, seeded with the
  // same weak deployment model.
  Fleet restarted(fc);
  restarted.addMachine(fx.machine, fx.weakModel);
  auto& replica = restarted.replica(0);
  ASSERT_TRUE(replica.warmStart());
  EXPECT_EQ(replica.stats().fleet.snapshotsLoaded, 1u);
  EXPECT_EQ(replica.service().modelVersion(), version);

  // Identical incumbent (label AND mean) for every tracked key...
  for (const auto& win : exported) {
    const auto inc = replica.service().refiner()->incumbent(win.key, version);
    ASSERT_TRUE(inc.tracked);
    EXPECT_EQ(inc.label, win.incumbentLabel);
    EXPECT_DOUBLE_EQ(inc.meanSeconds, win.incumbentMean);
  }
  // ...and identical served decisions for every launch signature, with
  // zero probes (the snapshot's evidence fills the probe budget).
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    const auto response = replica.call(fx.request(t));
    EXPECT_FALSE(response.explored);
    EXPECT_EQ(response.label, decisions[t]) << "task " << t;
  }
  EXPECT_EQ(replica.stats().refiner.explorations, 0u);
  std::filesystem::remove_all(dir);
}

// ---- concurrency (TSan target) ---------------------------------------------

TEST(Fleet, CountersReconcileUnderConcurrentGossipAndRetrain) {
  FleetFixture fx;
  Fleet fleet(fx.config(3, /*gossipEnabled=*/true));
  fleet.addMachine(fx.machine, fx.weakModel);

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kRequestsPerClient = 120;
  std::atomic<std::uint64_t> faults{0};

  std::vector<std::thread> workers;
  for (std::size_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const auto response =
            fleet.submit(fx.request(c * kRequestsPerClient + i)).get();
        if (response.execution.makespan <= 0.0) faults.fetch_add(1);
      }
    });
  }
  workers.emplace_back([&] {
    for (int round = 0; round < 20; ++round) {
      fleet.gossipRound();
      std::this_thread::yield();
    }
  });
  workers.emplace_back([&] {
    for (int retrain = 0; retrain < 2; ++retrain) {
      (void)fleet.retrainFleet(0);
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  fleet.drainAll();

  EXPECT_EQ(faults.load(), 0u);
  const auto stats = fleet.stats();
  std::uint64_t completed = 0;
  for (const auto& s : stats.replicas) {
    completed += s.requestsCompleted;
    EXPECT_EQ(s.requestsFailed, 0u);
    EXPECT_EQ(s.requestsCompleted, s.requestsSubmitted);
    // Gossip/snapshot counters reconcile exactly.
    EXPECT_EQ(s.fleet.winsReceived, s.fleet.winsMerged +
                                        s.fleet.winsRejectedStale +
                                        s.fleet.winsDropped);
    // Cache and refiner counters stay consistent through concurrent
    // merges, invalidations and version bumps.
    EXPECT_EQ(s.cache.hits + s.cache.misses, s.cache.lookups);
    EXPECT_LE(s.cache.evictions, s.cache.insertions);
    EXPECT_EQ(s.refiner.decisions, s.refiner.explorations +
                                       s.refiner.exploitations +
                                       s.refiner.untracked);
    // Both fleet retrains were installed everywhere.
    EXPECT_EQ(s.fleet.modelInstalls, 2u);
  }
  EXPECT_EQ(completed, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.transport.dropped, 0u);
}

}  // namespace
}  // namespace tp::fleet
