// Differential property tests for the lock-free fingerprinted decision
// cache: drive serve::DecisionCache and a reference std::unordered_map
// model with identical operation streams and assert decision
// equivalence (every cache hit returns exactly the reference's value —
// the cache may forget, it may never lie), counter reconciliation, and
// correct behavior across model-version bumps. The concurrent phases run
// under ThreadSanitizer in CI (this suite matches the tsan preset
// filter), exercising the hit path under contention: hits perform no
// heap allocation and acquire no lock, so TSan sees only atomics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/intern.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "serve/cache.hpp"

namespace tp::serve {
namespace {

/// One synthetic key universe: keys are indexed 0..n-1, labels are a pure
/// function of the index, fingerprints flow through a PairInterner the
/// way PartitionService's do.
struct KeyUniverse {
  common::PairInterner interner{512};
  int roundDigits = 6;

  std::string machineOf(std::size_t i) const {
    return i % 2 == 0 ? "mc1" : "mc2";
  }
  std::string programOf(std::size_t i) const {
    return "prog" + std::to_string(i % 7) + "/kern" + std::to_string(i % 3);
  }
  std::vector<double> signatureOf(std::size_t i) const {
    return {static_cast<double>(1 + i) * 1024.0, 64.0,
            static_cast<double>(i % 5)};
  }
  static std::size_t labelOf(std::size_t i) { return (i * 31 + 7) % 97; }

  DecisionKey fullKey(const DecisionCache& cache, std::size_t i) const {
    return cache.makeKey(machineOf(i), programOf(i), signatureOf(i));
  }
  common::Fingerprint fingerprint(const DecisionKey& key) {
    const std::uint32_t pairId = interner.intern(key.machine, key.program);
    return launchFingerprint(pairId, key.features);
  }
};

using ReferenceModel =
    std::unordered_map<DecisionKey, std::size_t, DecisionKeyHash>;

TEST(DecisionCacheDifferential, SingleThreadedOperationStream) {
  // 20k random ops over 160 keys against a 64-slot cache: lookups,
  // inserts, occasional version bumps/advances and full clears. The
  // reference model never evicts, so: every cache hit must match the
  // reference exactly, and every key absent from the reference must miss.
  DecisionCache cache(64);
  KeyUniverse u;
  ReferenceModel reference;
  common::Rng rng(0xD1FFu);
  constexpr std::size_t kKeys = 160;
  constexpr std::size_t kOps = 20000;
  std::uint64_t hits = 0;

  for (std::size_t op = 0; op < kOps; ++op) {
    const std::uint64_t dice = rng.below(1000);
    if (dice < 3) {
      cache.bumpVersion();
      // Mirror the epoch sweep: the reference drops older generations.
      std::erase_if(reference, [&](const auto& kv) {
        return kv.first.modelVersion != cache.version();
      });
      continue;
    }
    if (dice < 5) {
      cache.advanceVersion(cache.version() + 1 + rng.below(3));
      std::erase_if(reference, [&](const auto& kv) {
        return kv.first.modelVersion != cache.version();
      });
      continue;
    }
    if (dice < 7) {
      cache.clear();
      reference.clear();
      continue;
    }
    const std::size_t i = rng.below(kKeys);
    const DecisionKey key = u.fullKey(cache, i);
    const common::Fingerprint fp = u.fingerprint(key);
    const auto hit = cache.lookup(fp, key.modelVersion);
    const auto ref = reference.find(key);
    if (hit.has_value()) {
      ++hits;
      // Decision equivalence: a hit may never disagree with the model.
      ASSERT_NE(ref, reference.end())
          << "cache served a key the reference never saw (op " << op << ")";
      ASSERT_EQ(*hit, ref->second) << "label mismatch at op " << op;
    } else {
      const std::size_t label = KeyUniverse::labelOf(i);
      cache.insert(fp, key, label);
      reference[key] = label;
    }
  }

  EXPECT_GT(hits, kOps / 10);  // the stream actually exercised the hit path
  const auto c = cache.counters();
  EXPECT_EQ(c.lookups, c.hits + c.misses);
  EXPECT_EQ(c.insertions - c.evictions - c.invalidations, cache.size());
  EXPECT_EQ(c.collisions, 0u);
  EXPECT_LE(cache.size(), cache.capacity());

  // Post-stream sweep equivalence: everything the cache still holds must
  // be served with the reference's value.
  std::size_t resident = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const DecisionKey key = u.fullKey(cache, i);
    const common::Fingerprint fp = u.fingerprint(key);
    if (const auto hit = cache.lookup(fp, key.modelVersion)) {
      const auto ref = reference.find(key);
      ASSERT_NE(ref, reference.end());
      EXPECT_EQ(*hit, ref->second);
      ++resident;
    }
  }
  EXPECT_EQ(resident, cache.size());
}

TEST(DecisionCacheDifferential, ConcurrentHitsUnderContentionStayExact) {
  // The warm-path property under contention: readers hammer a resident
  // working set (smaller than capacity, so nothing is ever evicted) while
  // writers refresh the same keys with the same labels. Every hit must
  // carry the key's one true label; counters must reconcile afterwards.
  DecisionCache cache(256);
  KeyUniverse u;
  constexpr std::size_t kKeys = 96;

  // Pre-resolve keys/fingerprints so worker threads do pure cache ops.
  std::vector<DecisionKey> keys;
  std::vector<common::Fingerprint> fps;
  for (std::size_t i = 0; i < kKeys; ++i) {
    keys.push_back(u.fullKey(cache, i));
    fps.push_back(u.fingerprint(keys.back()));
    cache.insert(fps.back(), keys.back(), KeyUniverse::labelOf(i));
  }
  ASSERT_EQ(cache.size(), kKeys);

  common::ThreadPool pool(8);
  std::atomic<std::uint64_t> wrong{0};
  std::atomic<std::uint64_t> misses{0};
  pool.parallelFor(0, 40000, [&](std::size_t op) {
    const std::size_t i = (op * 2654435761u) % kKeys;
    if (op % 16 == 0) {
      cache.insert(fps[i], keys[i], KeyUniverse::labelOf(i));  // refresh
      return;
    }
    const auto hit = cache.lookup(fps[i], 0);
    if (!hit.has_value()) {
      misses.fetch_add(1);
    } else if (*hit != KeyUniverse::labelOf(i)) {
      wrong.fetch_add(1);
    }
  });
  pool.waitIdle();

  EXPECT_EQ(wrong.load(), 0u);
  // Nothing is evicted (working set < capacity) and refreshes keep the
  // entries resident; a rare transient miss can only come from a seqlock
  // retry exhaustion during a concurrent refresh of the same slot.
  EXPECT_LE(misses.load(), 4000u);
  EXPECT_EQ(cache.size(), kKeys);
  const auto c = cache.counters();
  EXPECT_EQ(c.lookups, c.hits + c.misses);
  EXPECT_EQ(c.insertions - c.evictions - c.invalidations, cache.size());
}

TEST(DecisionCacheDifferential, ConcurrentStreamWithVersionBumps) {
  // Mixed readers/writers/version bumpers. Labels are a pure function of
  // (key, version): hits must always return the label inserted for the
  // version they were asked about — a bump may cost hits, never truth.
  DecisionCache cache(128);
  KeyUniverse u;
  constexpr std::size_t kKeys = 64;

  std::vector<std::string> machines;
  std::vector<std::string> programs;
  std::vector<std::vector<double>> signatures;
  std::vector<common::Fingerprint> fps;
  for (std::size_t i = 0; i < kKeys; ++i) {
    machines.push_back(u.machineOf(i));
    programs.push_back(u.programOf(i));
    signatures.push_back(u.signatureOf(i));
    const std::uint32_t pairId = u.interner.intern(machines[i], programs[i]);
    DecisionKey probe = cache.makeKey(machines[i], programs[i], signatures[i]);
    fps.push_back(launchFingerprint(pairId, probe.features));
  }

  common::ThreadPool pool(8);
  std::atomic<std::uint64_t> wrong{0};
  pool.parallelFor(0, 30000, [&](std::size_t op) {
    if (op % 4000 == 0) {
      cache.bumpVersion();
      return;
    }
    const std::size_t i = op % kKeys;
    // makeKey stamps the current version — exactly what the service does
    // at request start.
    const DecisionKey key =
        cache.makeKey(machines[i], programs[i], signatures[i]);
    const std::size_t expected =
        (KeyUniverse::labelOf(i) + key.modelVersion) % 97;
    if (const auto hit = cache.lookup(fps[i], key.modelVersion)) {
      if (*hit != expected) wrong.fetch_add(1);
    } else {
      cache.insert(fps[i], key, expected);
    }
  });
  pool.waitIdle();

  EXPECT_EQ(wrong.load(), 0u);
  const auto c = cache.counters();
  EXPECT_EQ(c.lookups, c.hits + c.misses);
  EXPECT_EQ(c.insertions - c.evictions - c.invalidations, cache.size());

  // After a final sweep only current-generation entries remain.
  cache.clearStale();
  const std::uint64_t v = cache.version();
  std::size_t resident = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    if (const auto hit = cache.lookup(fps[i], v)) {
      EXPECT_EQ(*hit, (KeyUniverse::labelOf(i) + v) % 97);
      ++resident;
    }
  }
  // >= rather than ==: two racing inserts of one fingerprint may occupy
  // two slots transiently (both carry the same label, so hits stay
  // correct); resident counts distinct fingerprints.
  EXPECT_GE(cache.size(), resident);
}

}  // namespace
}  // namespace tp::serve
