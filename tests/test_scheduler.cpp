// Scheduler tests: simulated-timeline properties (concurrency, transfer
// accounting, merge cost) and Compute-mode execution through the full
// TaskBuilder path, including slice enforcement.

#include <gtest/gtest.h>

#include "runtime/compiler.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/strategy.hpp"
#include "sim/machine.hpp"

namespace tp::runtime {
namespace {

const char* kScaleSrc = R"(
__kernel void scale(__global const float* in, __global float* out, int K) {
  int i = get_global_id(0);
  float x = in[i];
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    acc += x * 1.0001f;
  }
  out[i] = acc;
}
)";

Task makeScaleTask(std::size_t n, int k) {
  static const CompiledKernel compiled = CompiledKernel::compile(kScaleSrc);
  auto in = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  auto out = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  for (std::size_t i = 0; i < n; ++i) {
    in->data<float>()[i] = static_cast<float>(i % 17) * 0.25f;
  }
  return TaskBuilder(compiled, "scale")
      .global(n)
      .local(64)
      .arg(in)
      .arg(out)
      .arg(k)
      .native([](const vcl::WorkGroupCtx& wg, const vcl::LaunchArgs& args) {
        auto in = args.view<float>(0);
        auto out = args.view<float>(1);
        const int k = args.scalarInt(2);
        for (std::size_t l = 0; l < wg.localSize; ++l) {
          const std::size_t i = wg.globalId(l);
          const float x = in[i];
          float acc = 0.0f;
          for (int kk = 0; kk < k; ++kk) acc += x * 1.0001f;
          out[i] = acc;
        }
      })
      .build();
}

PartitioningSpace space3() { return PartitioningSpace(3, 10); }

// Shared invariants of any splitGroups result: chunks are contiguous in
// device order, cover exactly [0, totalGroups), and zero-share devices
// receive no work.
void expectValidChunks(
    const std::vector<std::pair<std::size_t, std::size_t>>& chunks,
    std::size_t totalGroups, const Partitioning& p) {
  ASSERT_EQ(chunks.size(), p.numDevices());
  std::size_t cursor = 0;
  for (std::size_t d = 0; d < chunks.size(); ++d) {
    EXPECT_EQ(chunks[d].first, cursor) << "gap before device " << d;
    EXPECT_LE(chunks[d].first, chunks[d].second);
    if (p.units[d] == 0) {
      EXPECT_EQ(chunks[d].first, chunks[d].second)
          << "zero-share device " << d << " received groups";
    }
    cursor = chunks[d].second;
  }
  EXPECT_EQ(cursor, totalGroups);
}

TEST(SplitGroups, ZeroGroupsYieldsEmptyChunks) {
  for (const auto& units : {std::vector<int>{10, 0, 0},
                            std::vector<int>{3, 3, 4},
                            std::vector<int>{0, 5, 5}}) {
    const Partitioning p{units, 10};
    const auto chunks = splitGroups(0, p);
    expectValidChunks(chunks, 0, p);
    for (const auto& [begin, end] : chunks) {
      EXPECT_EQ(begin, 0u);
      EXPECT_EQ(end, 0u);
    }
  }
}

TEST(SplitGroups, FewerGroupsThanActiveDevices) {
  // 3 active devices but only 2 (then 1) groups: the largest shares win
  // the scarce groups and coverage stays contiguous and exact.
  const Partitioning p{{4, 3, 3}, 10};
  for (const std::size_t totalGroups : {std::size_t{1}, std::size_t{2}}) {
    const auto chunks = splitGroups(totalGroups, p);
    expectValidChunks(chunks, totalGroups, p);
    std::size_t withWork = 0;
    for (const auto& [begin, end] : chunks) withWork += (end > begin) ? 1 : 0;
    EXPECT_EQ(withWork, totalGroups);  // nobody gets a partial group
  }
}

TEST(SplitGroups, SingleDevicePartitionings) {
  const std::size_t totalGroups = 100;
  for (std::size_t only = 0; only < 3; ++only) {
    std::vector<int> units(3, 0);
    units[only] = 10;
    const Partitioning p{units, 10};
    const auto chunks = splitGroups(totalGroups, p);
    expectValidChunks(chunks, totalGroups, p);
    EXPECT_EQ(chunks[only].first, 0u);
    EXPECT_EQ(chunks[only].second, totalGroups);
  }
}

TEST(SplitGroups, CoversRangeForEveryPartitioningAndAwkwardCounts) {
  const PartitioningSpace space(3, 10);
  // Group counts that do not divide evenly by any 10% share.
  for (const std::size_t totalGroups :
       {std::size_t{1}, std::size_t{7}, std::size_t{13}, std::size_t{999}}) {
    for (const auto& p : space.all()) {
      expectValidChunks(splitGroups(totalGroups, p), totalGroups, p);
    }
  }
}

TEST(Scheduler, SingleDeviceMakespanMatchesQueueTime) {
  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(ctx);
  const Task task = makeScaleTask(1 << 16, 200);
  const auto space = space3();

  const auto result = scheduler.execute(task, space.at(space.cpuOnlyIndex()));
  ASSERT_EQ(result.devices.size(), 1u);
  const auto& d = result.devices[0];
  EXPECT_EQ(d.device, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, d.endTime);
  EXPECT_NEAR(d.endTime,
              d.transferInSeconds + d.kernelSeconds + d.transferOutSeconds,
              1e-12);
  EXPECT_DOUBLE_EQ(result.mergeSeconds, 0.0);
}

TEST(Scheduler, DevicesRunConcurrently) {
  vcl::Context ctx(sim::makeMc2(), vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(ctx);
  const Task task = makeScaleTask(1 << 20, 2000);
  const auto space = space3();

  const double gpuOnly =
      scheduler.execute(task, space.at(space.singleDeviceIndex(1))).makespan;
  const double split =
      scheduler.execute(task, space.at(space.indexOf({{0, 5, 5}, 10})))
          .makespan;
  // Two GPUs each doing half of a saturated compute problem beat one GPU.
  EXPECT_LT(split, gpuOnly);
  EXPECT_GT(split, 0.4 * gpuOnly);
}

TEST(Scheduler, MakespanIsMaxOfDeviceEndTimes) {
  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(ctx);
  const Task task = makeScaleTask(1 << 18, 500);
  const auto result =
      scheduler.execute(task, Partitioning{{2, 4, 4}, 10});
  ASSERT_EQ(result.devices.size(), 3u);
  double maxEnd = 0.0;
  for (const auto& d : result.devices) maxEnd = std::max(maxEnd, d.endTime);
  EXPECT_DOUBLE_EQ(result.makespan, maxEnd + result.mergeSeconds);
}

TEST(Scheduler, SplitBuffersTransferOnlyTheirSlice) {
  vcl::Context ctx(sim::makeMc2(), vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(ctx);
  const Task task = makeScaleTask(1 << 20, 10);
  const auto space = space3();

  // 10% on GPU1 vs 100% on GPU1: the transfer-in time scales with the slice.
  const auto small =
      scheduler.execute(task, space.at(space.indexOf({{9, 1, 0}, 10})));
  const auto full =
      scheduler.execute(task, space.at(space.singleDeviceIndex(1)));
  const auto* gpuSmall = &small.devices[1];
  ASSERT_EQ(gpuSmall->device, 1u);
  EXPECT_NEAR(gpuSmall->transferInSeconds,
              full.devices[0].transferInSeconds * 0.1, 2e-5);
}

TEST(Scheduler, RejectsMismatchedPartitioning) {
  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(ctx);
  const Task task = makeScaleTask(1 << 10, 10);
  EXPECT_THROW(scheduler.execute(task, Partitioning{{10, 0}, 10}), Error);
}

TEST(Scheduler, ComputeModeProducesCorrectResultsUnderAnySplit) {
  const auto space = space3();
  for (const auto& units : {std::vector<int>{10, 0, 0},
                            std::vector<int>{0, 10, 0},
                            std::vector<int>{3, 3, 4},
                            std::vector<int>{1, 9, 0}}) {
    vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::Compute);
    Scheduler scheduler(ctx);
    const std::size_t n = 1 << 12;
    const int k = 3;
    Task task = makeScaleTask(n, k);
    scheduler.execute(task, Partitioning{units, 10});

    const auto& out = std::get<BufferArg>(task.args[1]).buffer;
    const auto& in = std::get<BufferArg>(task.args[0]).buffer;
    for (std::size_t i = 0; i < n; ++i) {
      const float x = in->data<float>()[i];
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += x * 1.0001f;
      ASSERT_FLOAT_EQ(out->data<float>()[i], acc) << "at index " << i;
    }
  }
}

TEST(Scheduler, TimeOnlyAndComputeReportIdenticalMakespans) {
  const Task t1 = makeScaleTask(1 << 12, 20);
  vcl::Context timeCtx(sim::makeMc2(), vcl::ExecMode::TimeOnly, nullptr);
  vcl::Context computeCtx(sim::makeMc2(), vcl::ExecMode::Compute);
  const Partitioning p{{3, 4, 3}, 10};
  const double tTime = Scheduler(timeCtx).execute(t1, p).makespan;
  const double tCompute = Scheduler(computeCtx).execute(t1, p).makespan;
  EXPECT_DOUBLE_EQ(tTime, tCompute);
}

TEST(OracleSearch, FindsArgminOfTimings) {
  const Task task = makeScaleTask(1 << 16, 100);
  const auto space = space3();
  std::vector<double> timings;
  const std::size_t best =
      oracleSearch(task, sim::makeMc2(), space, &timings);
  ASSERT_EQ(timings.size(), space.size());
  for (const double t : timings) EXPECT_GT(t, 0.0);
  for (std::size_t i = 0; i < timings.size(); ++i) {
    EXPECT_LE(timings[best], timings[i]);
  }
}

TEST(Strategies, DefaultsPickTheirCorners) {
  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::TimeOnly, nullptr);
  const auto space = space3();
  const Task task = makeScaleTask(1 << 10, 10);

  CpuOnlyStrategy cpu;
  EXPECT_EQ(cpu.choose(task, ctx, space), space.cpuOnlyIndex());
  GpuOnlyStrategy gpu;
  EXPECT_EQ(gpu.choose(task, ctx, space), space.singleDeviceIndex(1));
  StaticStrategy fixed(17);
  EXPECT_EQ(fixed.choose(task, ctx, space), 17u);
  OracleStrategy oracle;
  const std::size_t best = oracle.choose(task, ctx, space);
  EXPECT_LT(best, space.size());
}

}  // namespace
}  // namespace tp::runtime
