// Partitioning-space tests: enumeration size, invariants, corner lookups,
// family classification, group apportioning.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <set>

#include "runtime/partitioning.hpp"
#include "runtime/scheduler.hpp"

namespace tp::runtime {
namespace {

TEST(PartitioningSpace, SizeMatchesCompositionCount) {
  // Compositions of d units into k parts: C(d + k - 1, k - 1).
  EXPECT_EQ(PartitioningSpace(3, 10).size(), 66u);   // C(12,2)
  EXPECT_EQ(PartitioningSpace(2, 10).size(), 11u);   // C(11,1)
  EXPECT_EQ(PartitioningSpace(3, 5).size(), 21u);    // C(7,2)
  EXPECT_EQ(PartitioningSpace(3, 20).size(), 231u);  // C(22,2)
  EXPECT_EQ(PartitioningSpace(1, 10).size(), 1u);
}

TEST(PartitioningSpace, AllSumToDivisionsAndAreUnique) {
  const PartitioningSpace space(3, 10);
  std::set<std::vector<int>> seen;
  for (const auto& p : space.all()) {
    EXPECT_EQ(std::accumulate(p.units.begin(), p.units.end(), 0), 10);
    EXPECT_EQ(p.units.size(), 3u);
    for (const int u : p.units) EXPECT_GE(u, 0);
    EXPECT_TRUE(seen.insert(p.units).second) << "duplicate partitioning";
  }
}

TEST(PartitioningSpace, IndexOfRoundTrips) {
  const PartitioningSpace space(3, 10);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.indexOf(space.at(i)), i);
  }
  Partitioning bogus{{5, 5, 5}, 10};  // sums to 15
  EXPECT_THROW(space.indexOf(bogus), Error);
}

TEST(PartitioningSpace, CornerIndices) {
  const PartitioningSpace space(3, 10);
  const auto& cpu = space.at(space.cpuOnlyIndex());
  EXPECT_EQ(cpu.units, (std::vector<int>{10, 0, 0}));
  const auto& gpu1 = space.at(space.singleDeviceIndex(1));
  EXPECT_EQ(gpu1.units, (std::vector<int>{0, 10, 0}));
  EXPECT_THROW(space.singleDeviceIndex(7), Error);
}

TEST(Partitioning, Helpers) {
  Partitioning p{{5, 3, 2}, 10};
  EXPECT_DOUBLE_EQ(p.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(p.fraction(2), 0.2);
  EXPECT_FALSE(p.isSingleDevice());
  EXPECT_EQ(p.activeDevices(), 3);
  EXPECT_EQ(p.toString(), "50/30/20");

  Partitioning solo{{0, 10, 0}, 10};
  EXPECT_TRUE(solo.isSingleDevice());
  EXPECT_EQ(solo.singleDevice(), 1u);
}

TEST(PartitioningSpace, FamilyClassification) {
  const PartitioningSpace space(3, 10);
  EXPECT_EQ(space.family(space.cpuOnlyIndex()), PartitionFamily::CpuOnly);
  EXPECT_EQ(space.family(space.singleDeviceIndex(1)),
            PartitionFamily::SingleGpu);
  EXPECT_EQ(space.family(space.indexOf({{0, 5, 5}, 10})),
            PartitionFamily::MultiGpu);
  EXPECT_EQ(space.family(space.indexOf({{2, 4, 4}, 10})),
            PartitionFamily::Mixed);
  const auto labels = space.familyLabels();
  EXPECT_EQ(labels.size(), space.size());
}

// --- splitGroups properties ------------------------------------------------

class SplitGroupsProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitGroupsProperty, CoversRangeContiguouslyAndProportionally) {
  const auto [totalGroups, partitionIndex] = GetParam();
  const PartitioningSpace space(3, 10);
  const auto& p = space.at(static_cast<std::size_t>(partitionIndex) %
                           space.size());
  const auto chunks = splitGroups(static_cast<std::size_t>(totalGroups), p);

  std::size_t covered = 0;
  std::size_t expectedBegin = 0;
  for (std::size_t d = 0; d < chunks.size(); ++d) {
    EXPECT_EQ(chunks[d].first, expectedBegin);
    EXPECT_LE(chunks[d].first, chunks[d].second);
    covered += chunks[d].second - chunks[d].first;
    expectedBegin = chunks[d].second;
    // Zero-share devices receive nothing.
    if (p.units[d] == 0) {
      EXPECT_EQ(chunks[d].first, chunks[d].second);
    }
    // Within one group of the exact proportional share.
    const double exact = static_cast<double>(totalGroups) * p.fraction(d);
    EXPECT_NEAR(static_cast<double>(chunks[d].second - chunks[d].first),
                exact, 1.0);
  }
  EXPECT_EQ(covered, static_cast<std::size_t>(totalGroups));
}

INSTANTIATE_TEST_SUITE_P(
    ManyShapes, SplitGroupsProperty,
    ::testing::Combine(::testing::Values(1, 2, 7, 10, 64, 1000, 16384),
                       ::testing::Range(0, 66, 5)));

// --- apportion properties ---------------------------------------------------

TEST(Apportion, ExactSumAcrossOddSizesAndDeviceCounts) {
  // Property sweep: every partitioning of several spaces, awkward totals
  // included. The counts must sum to exactly the total, zero-share
  // devices must receive nothing, and every count must be within one of
  // the exact proportional share.
  for (const std::size_t devices : {1u, 2u, 3u, 4u, 5u}) {
    for (const int divisions : {1, 3, 7, 10, 13}) {
      const PartitioningSpace space(devices, divisions);
      for (const std::size_t total :
           {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{7},
            std::size_t{11}, std::size_t{64}, std::size_t{101},
            std::size_t{999}, std::size_t{16383}}) {
        for (std::size_t i = 0; i < space.size(); ++i) {
          const Partitioning& p = space.at(i);
          const auto counts = apportion(total, p);
          ASSERT_EQ(counts.size(), devices);
          std::size_t sum = 0;
          for (std::size_t d = 0; d < devices; ++d) {
            sum += counts[d];
            if (p.units[d] == 0) {
              EXPECT_EQ(counts[d], 0u)
                  << "zero-share device got work: " << p.toString();
            }
            const double exact =
                static_cast<double>(total) * p.fraction(d);
            EXPECT_NEAR(static_cast<double>(counts[d]), exact, 1.0)
                << p.toString() << " total=" << total;
          }
          ASSERT_EQ(sum, total) << p.toString() << " total=" << total;
        }
      }
    }
  }
}

TEST(Apportion, HandBuiltUnitSumsNeedNotMatchDivisions) {
  // The denominator is the actual unit sum, so an under/over-subscribed
  // hand-built partitioning still apportions exactly.
  const Partitioning p{{3, 1, 0}, 10};  // units sum to 4, not 10
  const auto counts = apportion(103, p);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 103u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_NEAR(static_cast<double>(counts[0]), 103.0 * 3.0 / 4.0, 1.0);
}

TEST(Apportion, RejectsAllZeroSharesAndNegativeUnits) {
  const Partitioning empty{{0, 0, 0}, 10};
  EXPECT_THROW(apportion(5, empty), Error);
  // total == 0 is fine even with no active device.
  EXPECT_EQ(apportion(0, empty), (std::vector<std::size_t>{0, 0, 0}));
  const Partitioning negative{{5, -1, 6}, 10};
  EXPECT_THROW(apportion(5, negative), Error);
}

TEST(Apportion, LeftoverGoesToLargestRemainders) {
  // 10 items over 3/3/4 of 10 units: floors are 3/3/4 exactly.
  EXPECT_EQ(apportion(10, Partitioning{{3, 3, 4}, 10}),
            (std::vector<std::size_t>{3, 3, 4}));
  // 11 items over 1/1/1: floors 3/3/3, remainders equal -> earliest
  // active device gets the leftover (deterministic tie-break).
  EXPECT_EQ(apportion(11, Partitioning{{1, 1, 1}, 3}),
            (std::vector<std::size_t>{4, 4, 3}));
}

// --- neighborhood enumeration ----------------------------------------------

TEST(Neighbors, SingleUnitMovesFromCorner) {
  const PartitioningSpace space(3, 10);
  const auto ns = space.neighbors(space.cpuOnlyIndex(), 1);
  // From {10,0,0} only moves out of device 0 exist: {9,1,0} and {9,0,1}.
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(space.at(ns[0]).units, (std::vector<int>{9, 0, 1}));
  EXPECT_EQ(space.at(ns[1]).units, (std::vector<int>{9, 1, 0}));
}

TEST(Neighbors, InteriorPointHasAllPairMoves) {
  const PartitioningSpace space(3, 10);
  const std::size_t center = space.indexOf({{5, 3, 2}, 10});
  const auto ns = space.neighbors(center, 1);
  EXPECT_EQ(ns.size(), 6u);  // 3 devices x 2 directions, all feasible
  for (const std::size_t n : ns) {
    EXPECT_NE(n, center);
    int l1 = 0;
    for (std::size_t d = 0; d < 3; ++d) {
      l1 += std::abs(space.at(n).units[d] - space.at(center).units[d]);
    }
    EXPECT_EQ(l1, 2);  // exactly one unit moved
  }
}

TEST(Neighbors, RadiusBoundsAndSymmetry) {
  const PartitioningSpace space(3, 10);
  const std::size_t center = space.indexOf({{5, 3, 2}, 10});
  EXPECT_TRUE(space.neighbors(center, 0).empty());
  const auto r1 = space.neighbors(center, 1);
  const auto r2 = space.neighbors(center, 2);
  EXPECT_GT(r2.size(), r1.size());
  // Every radius-1 neighbor is also a radius-2 neighbor.
  for (const std::size_t n : r1) {
    EXPECT_TRUE(std::find(r2.begin(), r2.end(), n) != r2.end());
  }
  // Radius-1 adjacency is symmetric.
  for (const std::size_t n : r1) {
    const auto back = space.neighbors(n, 1);
    EXPECT_TRUE(std::find(back.begin(), back.end(), center) != back.end());
  }
}

TEST(Neighbors, TwoDeviceLadder) {
  const PartitioningSpace space(2, 10);
  // at(i) == {i, 10-i}: interior rungs have two neighbors, ends one.
  const std::size_t mid = space.indexOf({{5, 5}, 10});
  EXPECT_EQ(space.neighbors(mid, 1).size(), 2u);
  EXPECT_EQ(space.neighbors(space.indexOf({{0, 10}, 10}), 1).size(), 1u);
  EXPECT_EQ(space.neighbors(space.indexOf({{10, 0}, 10}), 1).size(), 1u);
}

}  // namespace
}  // namespace tp::runtime
