// Partitioning-space tests: enumeration size, invariants, corner lookups,
// family classification, group apportioning.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "runtime/partitioning.hpp"
#include "runtime/scheduler.hpp"

namespace tp::runtime {
namespace {

TEST(PartitioningSpace, SizeMatchesCompositionCount) {
  // Compositions of d units into k parts: C(d + k - 1, k - 1).
  EXPECT_EQ(PartitioningSpace(3, 10).size(), 66u);   // C(12,2)
  EXPECT_EQ(PartitioningSpace(2, 10).size(), 11u);   // C(11,1)
  EXPECT_EQ(PartitioningSpace(3, 5).size(), 21u);    // C(7,2)
  EXPECT_EQ(PartitioningSpace(3, 20).size(), 231u);  // C(22,2)
  EXPECT_EQ(PartitioningSpace(1, 10).size(), 1u);
}

TEST(PartitioningSpace, AllSumToDivisionsAndAreUnique) {
  const PartitioningSpace space(3, 10);
  std::set<std::vector<int>> seen;
  for (const auto& p : space.all()) {
    EXPECT_EQ(std::accumulate(p.units.begin(), p.units.end(), 0), 10);
    EXPECT_EQ(p.units.size(), 3u);
    for (const int u : p.units) EXPECT_GE(u, 0);
    EXPECT_TRUE(seen.insert(p.units).second) << "duplicate partitioning";
  }
}

TEST(PartitioningSpace, IndexOfRoundTrips) {
  const PartitioningSpace space(3, 10);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.indexOf(space.at(i)), i);
  }
  Partitioning bogus{{5, 5, 5}, 10};  // sums to 15
  EXPECT_THROW(space.indexOf(bogus), Error);
}

TEST(PartitioningSpace, CornerIndices) {
  const PartitioningSpace space(3, 10);
  const auto& cpu = space.at(space.cpuOnlyIndex());
  EXPECT_EQ(cpu.units, (std::vector<int>{10, 0, 0}));
  const auto& gpu1 = space.at(space.singleDeviceIndex(1));
  EXPECT_EQ(gpu1.units, (std::vector<int>{0, 10, 0}));
  EXPECT_THROW(space.singleDeviceIndex(7), Error);
}

TEST(Partitioning, Helpers) {
  Partitioning p{{5, 3, 2}, 10};
  EXPECT_DOUBLE_EQ(p.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(p.fraction(2), 0.2);
  EXPECT_FALSE(p.isSingleDevice());
  EXPECT_EQ(p.activeDevices(), 3);
  EXPECT_EQ(p.toString(), "50/30/20");

  Partitioning solo{{0, 10, 0}, 10};
  EXPECT_TRUE(solo.isSingleDevice());
  EXPECT_EQ(solo.singleDevice(), 1u);
}

TEST(PartitioningSpace, FamilyClassification) {
  const PartitioningSpace space(3, 10);
  EXPECT_EQ(space.family(space.cpuOnlyIndex()), PartitionFamily::CpuOnly);
  EXPECT_EQ(space.family(space.singleDeviceIndex(1)),
            PartitionFamily::SingleGpu);
  EXPECT_EQ(space.family(space.indexOf({{0, 5, 5}, 10})),
            PartitionFamily::MultiGpu);
  EXPECT_EQ(space.family(space.indexOf({{2, 4, 4}, 10})),
            PartitionFamily::Mixed);
  const auto labels = space.familyLabels();
  EXPECT_EQ(labels.size(), space.size());
}

// --- splitGroups properties ------------------------------------------------

class SplitGroupsProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitGroupsProperty, CoversRangeContiguouslyAndProportionally) {
  const auto [totalGroups, partitionIndex] = GetParam();
  const PartitioningSpace space(3, 10);
  const auto& p = space.at(static_cast<std::size_t>(partitionIndex) %
                           space.size());
  const auto chunks = splitGroups(static_cast<std::size_t>(totalGroups), p);

  std::size_t covered = 0;
  std::size_t expectedBegin = 0;
  for (std::size_t d = 0; d < chunks.size(); ++d) {
    EXPECT_EQ(chunks[d].first, expectedBegin);
    EXPECT_LE(chunks[d].first, chunks[d].second);
    covered += chunks[d].second - chunks[d].first;
    expectedBegin = chunks[d].second;
    // Zero-share devices receive nothing.
    if (p.units[d] == 0) {
      EXPECT_EQ(chunks[d].first, chunks[d].second);
    }
    // Within one group of the exact proportional share.
    const double exact = static_cast<double>(totalGroups) * p.fraction(d);
    EXPECT_NEAR(static_cast<double>(chunks[d].second - chunks[d].first),
                exact, 1.0);
  }
  EXPECT_EQ(covered, static_cast<std::size_t>(totalGroups));
}

INSTANTIATE_TEST_SUITE_P(
    ManyShapes, SplitGroupsProperty,
    ::testing::Combine(::testing::Values(1, 2, 7, 10, 64, 1000, 16384),
                       ::testing::Range(0, 66, 5)));

}  // namespace
}  // namespace tp::runtime
