// Suite tests: every one of the 23 programs compiles through the pipeline,
// executes correctly on a single device AND under mixed partitionings
// (verifying both kernel semantics and the multi-device distribution), and
// carries a sane size ladder.

#include <gtest/gtest.h>

#include "runtime/scheduler.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

namespace tp::suite {
namespace {

TEST(Suite, HasExactly23Programs) {
  EXPECT_EQ(allBenchmarks().size(), 23u);
}

TEST(Suite, NamesAreUniqueAndFamiliesKnown) {
  std::set<std::string> names;
  std::map<std::string, int> families;
  for (const auto& b : allBenchmarks()) {
    EXPECT_TRUE(names.insert(b.name).second) << "duplicate " << b.name;
    ++families[b.family];
  }
  EXPECT_EQ(families["vendor"], 9);
  EXPECT_EQ(families["shoc"], 6);
  EXPECT_EQ(families["rodinia"], 6);
  EXPECT_EQ(families["polybench"], 2);
}

TEST(Suite, LookupByName) {
  EXPECT_EQ(benchmarkByName("matmul").name, "matmul");
  EXPECT_THROW(benchmarkByName("nope"), Error);
}

TEST(Suite, SizeLaddersAreIncreasing) {
  for (const auto& b : allBenchmarks()) {
    ASSERT_GE(b.sizes.size(), 4u) << b.name;
    for (std::size_t i = 1; i < b.sizes.size(); ++i) {
      EXPECT_LT(b.sizes[i - 1], b.sizes[i]) << b.name;
    }
  }
}

TEST(Suite, StaticFeaturesDiffer) {
  // The learner can only distinguish programs if their static features do.
  std::set<std::vector<double>> unique;
  for (const auto& b : allBenchmarks()) {
    unique.insert(features::staticFeatureVector(b.compiled.features()));
  }
  EXPECT_GE(unique.size(), 20u);  // allow a couple of near-twins
}

// ---------------------------------------------------------------------------
// Correctness under partitioning: run every program at its smallest ladder
// size under single-device and mixed partitionings; verify results.
// This doubles as validation of the access classification (BufferView
// bounds-checks abort the test if a split is wrong).
// ---------------------------------------------------------------------------

struct SuiteCase {
  std::string benchmark;
  std::vector<int> units;
};

class SuiteExecution : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(SuiteExecution, ComputesCorrectResults) {
  const auto& param = GetParam();
  const Benchmark& bench = benchmarkByName(param.benchmark);
  BenchmarkInstance inst = bench.make(bench.sizes.front());

  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::Compute);
  runtime::Scheduler scheduler(ctx);
  const runtime::Partitioning p{param.units, 10};
  const auto result = scheduler.execute(inst.task, p);
  EXPECT_GT(result.makespan, 0.0);

  std::string error;
  EXPECT_TRUE(inst.verify(&error)) << param.benchmark << " under "
                                   << p.toString() << ": " << error;
}

std::vector<SuiteCase> allCases() {
  const std::vector<std::vector<int>> partitionings = {
      {10, 0, 0},  // CPU only
      {0, 10, 0},  // GPU only
      {5, 5, 0},   // CPU + one GPU
      {4, 3, 3},   // everything
  };
  std::vector<SuiteCase> cases;
  for (const auto& b : allBenchmarks()) {
    for (const auto& units : partitionings) {
      cases.push_back({b.name, units});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All23TimesFourPartitionings, SuiteExecution,
    ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<SuiteCase>& info) {
      std::string name = info.param.benchmark;
      for (const int u : info.param.units) {
        name += "_" + std::to_string(u);
      }
      return name;
    });

// Determinism: building the same instance twice yields identical inputs.
TEST(Suite, InstanceDataIsDeterministic) {
  const Benchmark& bench = benchmarkByName("vecadd");
  auto a = bench.make(bench.sizes.front());
  auto b = bench.make(bench.sizes.front());
  const auto& bufA = std::get<runtime::BufferArg>(a.task.args[0]).buffer;
  const auto& bufB = std::get<runtime::BufferArg>(b.task.args[0]).buffer;
  ASSERT_EQ(bufA->size(), bufB->size());
  EXPECT_EQ(bufA->toVector<float>(), bufB->toVector<float>());
}

// The runtime features must be problem-size sensitive for every program.
TEST(Suite, RuntimeFeaturesChangeWithProblemSize) {
  for (const auto& b : allBenchmarks()) {
    auto small = b.make(b.sizes.front());
    auto large = b.make(b.sizes[1]);
    const auto fs = features::runtimeFeatureVector(small.task.features,
                                                   small.task.launchInfo());
    const auto fl = features::runtimeFeatureVector(large.task.features,
                                                   large.task.launchInfo());
    EXPECT_NE(fs, fl) << b.name;
  }
}

}  // namespace
}  // namespace tp::suite
