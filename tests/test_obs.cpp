// tp::obs: trace recorder (ring wraparound, sampling, epoch retirement,
// Chrome JSON), log-bucketed histogram (boundaries, merge algebra),
// metrics registry (exposition, ownership prefixes) and the common/log
// recent-events tap. The two Concurrent* tests are the named TSan
// coverage behind the TP_LOCK_FREE_AUDITED markers in obs/.

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using tp::obs::Histogram;
using tp::obs::Registry;
using tp::obs::TraceEvent;
using tp::obs::TraceRecorder;

// The process-wide recorder is shared across tests; each test that uses
// it calls enable() (which retires prior buffers and resets the session)
// and disable()s on exit.
class TraceSession {
public:
  explicit TraceSession(TraceRecorder::Config config) {
    tp::obs::traceRecorder().enable(config);
  }
  ~TraceSession() { tp::obs::traceRecorder().disable(); }
};

std::uint64_t countWithName(const TraceRecorder::Snapshot& snap,
                            const std::string& name) {
  std::uint64_t n = 0;
  for (const auto& thread : snap.threads) {
    for (const TraceEvent& ev : thread.events) {
      if (snap.names.at(ev.nameId) == name) ++n;
    }
  }
  return n;
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder& rec = tp::obs::traceRecorder();
  rec.disable();
  const auto before = rec.snapshot().totalEvents;
  { TP_TRACE_SPAN("test.disabled"); }
  TP_TRACE_INSTANT("test.disabled_instant", 1);
  EXPECT_EQ(rec.snapshot().totalEvents, before);
}

TEST(TraceRecorder, SpanAndInstantRoundTrip) {
  TraceRecorder::Config config;
  config.sampleEveryN = 1;
  TraceSession session(config);
  TraceRecorder& rec = tp::obs::traceRecorder();
  {
    TP_TRACE_SPAN_ARG("test.span", 42);
    TP_TRACE_INSTANT("test.instant", 7);
  }
  const auto snap = rec.snapshot();
  EXPECT_EQ(countWithName(snap, "test.span"), 1u);
  EXPECT_EQ(countWithName(snap, "test.instant"), 1u);
  for (const auto& thread : snap.threads) {
    for (const TraceEvent& ev : thread.events) {
      if (snap.names.at(ev.nameId) == "test.span") {
        EXPECT_EQ(ev.arg, 42u);
        EXPECT_GE(ev.end, ev.begin);
        EXPECT_GE(ev.begin, snap.baseTicks);
      }
      if (snap.names.at(ev.nameId) == "test.instant") {
        EXPECT_EQ(ev.arg, 7u);
        EXPECT_EQ(ev.end, 0u);  // instant marker
      }
    }
  }
}

TEST(TraceRecorder, RingWraparoundCountsDropsExactly) {
  TraceRecorder::Config config;
  config.ringCapacity = 8;
  config.sampleEveryN = 1;
  TraceSession session(config);
  TraceRecorder& rec = tp::obs::traceRecorder();
  const std::uint32_t id = rec.internName("test.wrap");
  for (std::uint64_t i = 0; i < 11; ++i) {
    rec.record(id, tp::obs::nowTicks(), 0, i);
  }
  const auto snap = rec.snapshot();
  EXPECT_EQ(snap.totalEvents, 8u);
  EXPECT_EQ(snap.totalDropped, 3u);
  // The survivors are the NEWEST 8, oldest first: args 3..10.
  for (const auto& thread : snap.threads) {
    if (thread.events.empty()) continue;
    ASSERT_EQ(thread.events.size(), 8u);
    EXPECT_EQ(thread.dropped, 3u);
    for (std::size_t i = 0; i < thread.events.size(); ++i) {
      EXPECT_EQ(thread.events[i].arg, i + 3);
    }
  }
}

TEST(TraceRecorder, SampledSpanKeepsOneInN) {
  TraceRecorder::Config config;
  config.sampleEveryN = 8;
  TraceSession session(config);
  for (int i = 0; i < 64; ++i) {
    TP_TRACE_SPAN_SAMPLED("test.sampled", i);
  }
  const auto snap = tp::obs::traceRecorder().snapshot();
  EXPECT_EQ(countWithName(snap, "test.sampled"), 8u);
}

TEST(TraceRecorder, NameIdsStableAcrossSessions) {
  TraceRecorder& rec = tp::obs::traceRecorder();
  const std::uint32_t id = rec.internName("test.stable_name");
  rec.enable(TraceRecorder::Config{});
  EXPECT_EQ(rec.internName("test.stable_name"), id);
  rec.disable();
  rec.enable(TraceRecorder::Config{});
  EXPECT_EQ(rec.internName("test.stable_name"), id);
  rec.disable();
}

TEST(TraceRecorder, EnableRetiresPreviousSessionBuffers) {
  TraceRecorder& rec = tp::obs::traceRecorder();
  TraceRecorder::Config config;
  config.sampleEveryN = 1;
  rec.enable(config);
  const std::uint32_t id = rec.internName("test.retired");
  rec.record(id, tp::obs::nowTicks(), 0, 1);
  // A new session must not see the previous session's events — even with
  // a different ring capacity (the old buffers are retired, not resized).
  config.ringCapacity = 4;
  rec.enable(config);
  rec.record(id, tp::obs::nowTicks(), 0, 2);
  const auto snap = rec.snapshot();
  rec.disable();
  EXPECT_EQ(snap.totalEvents, 1u);
  for (const auto& thread : snap.threads) {
    for (const TraceEvent& ev : thread.events) EXPECT_EQ(ev.arg, 2u);
  }
}

TEST(TraceRecorder, ChromeTraceJsonShape) {
  TraceRecorder::Config config;
  config.sampleEveryN = 1;
  TraceSession session(config);
  {
    TP_TRACE_SPAN_ARG("test.json_span", 5);
    TP_TRACE_INSTANT("test.json_instant", 6);
  }
  std::ostringstream os;
  tp::obs::traceRecorder().writeChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_instant\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceRecorder, ConcurrentRecordAndSnapshotUnderContention) {
  TraceRecorder::Config config;
  config.ringCapacity = 256;
  config.sampleEveryN = 1;
  TraceSession session(config);
  TraceRecorder& rec = tp::obs::traceRecorder();
  const std::uint32_t id = rec.internName("test.contended");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, id] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t t = tp::obs::nowTicks();
        rec.record(id, t, t + 1, i);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      const auto snap = rec.snapshot();
      // Per-buffer consistency: kept events never exceed capacity, and
      // kept + dropped never exceeds what was written in total.
      for (const auto& thread : snap.threads) {
        EXPECT_LE(thread.events.size(), 256u);
      }
      EXPECT_LE(snap.totalEvents, kWriters * 256u);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  const auto snap = rec.snapshot();
  std::uint64_t accounted = snap.totalEvents + snap.totalDropped;
  EXPECT_EQ(accounted, kWriters * kPerWriter);
}

// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex(7), 3u);
  EXPECT_EQ(Histogram::bucketIndex(8), 4u);
  EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), 64u);
  // Upper bounds invert the mapping: a value lands in the bucket whose
  // bound is the smallest one >= it.
  EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::bucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::bucketUpperBound(64), ~std::uint64_t{0});
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{5}, std::uint64_t{1000},
                          std::uint64_t{1} << 40}) {
    const std::size_t b = Histogram::bucketIndex(v);
    EXPECT_LE(v, Histogram::bucketUpperBound(b));
    if (b > 0) {
      EXPECT_GT(v, Histogram::bucketUpperBound(b - 1));
    }
  }
}

TEST(Histogram, RecordAndQuantile) {
  Histogram h(2);
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500u);
  EXPECT_NEAR(snap.mean(), 500.5, 1e-9);
  // Quantiles are bucket upper bounds: within 2x of the true value.
  EXPECT_GE(snap.quantile(0.5), 500u);
  EXPECT_LE(snap.quantile(0.5), 1023u);
  EXPECT_GE(snap.quantile(1.0), 1000u);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  // Property check over deterministic pseudo-random shards: merging
  // per-shard snapshots in any order/grouping equals one pooled count.
  constexpr int kShards = 4;
  std::vector<Histogram::Snapshot> parts(kShards);
  Histogram pooled(1);
  std::uint64_t state = 0x243F6A8885A308D3ull;
  for (int s = 0; s < kShards; ++s) {
    Histogram h(1);
    for (int i = 0; i < 500; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t v = state >> (state % 50);
      h.record(v);
      pooled.record(v);
    }
    parts[s] = h.snapshot();
  }
  // Left fold, right fold, and a pair-of-pairs grouping.
  Histogram::Snapshot left;
  for (int s = 0; s < kShards; ++s) left.merge(parts[s]);
  Histogram::Snapshot right;
  for (int s = kShards - 1; s >= 0; --s) right.merge(parts[s]);
  Histogram::Snapshot ab = parts[0];
  ab.merge(parts[1]);
  Histogram::Snapshot cd = parts[2];
  cd.merge(parts[3]);
  Histogram::Snapshot grouped = ab;
  grouped.merge(cd);
  const Histogram::Snapshot expect = pooled.snapshot();
  for (const Histogram::Snapshot* got : {&left, &right, &grouped}) {
    EXPECT_EQ(got->count, expect.count);
    EXPECT_EQ(got->sum, expect.sum);
    EXPECT_EQ(got->buckets, expect.buckets);
  }
}

TEST(Histogram, ConcurrentRecordAndSnapshotAgree) {
  Histogram h;  // auto stripes
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h] {
      for (std::uint64_t i = 1; i <= kPerWriter; ++i) h.record(i);
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      const auto snap = h.snapshot();
      // Monotone partial sums: sum is consistent with count under the
      // per-writer value schedule (each write adds between 1 and N).
      EXPECT_LE(snap.count, kWriters * kPerWriter);
      EXPECT_GE(snap.sum, snap.count);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kWriters * kPerWriter);
  EXPECT_EQ(snap.sum, kWriters * (kPerWriter * (kPerWriter + 1) / 2));
}

// ---------------------------------------------------------------------------

TEST(Registry, OwnedInstrumentsAndExposition) {
  Registry reg;
  reg.counter("test.requests").add(3);
  reg.gauge("test.depth").set(2.5);
  reg.histogram("test.latency_ns").record(1000);
  reg.registerCounter("test.external", [] { return std::uint64_t{7}; });
  reg.registerSummary("test.summary", [] {
    return tp::obs::SummarySnapshot{10, 0.001, 0.01, 0.001, 0.005};
  });
  EXPECT_EQ(reg.size(), 5u);

  const std::string json = reg.exportJson(/*includeRecentLog=*/false);
  EXPECT_NE(json.find("\"test.requests\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.external\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"test.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"test.summary\""), std::string::npos);

  const std::string prom = reg.exportPrometheus();
  EXPECT_NE(prom.find("tp_test_requests 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE tp_test_requests counter"), std::string::npos);
  EXPECT_NE(prom.find("tp_test_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

TEST(Registry, KindConflictThrows) {
  Registry reg;
  reg.counter("test.name");
  EXPECT_THROW(reg.gauge("test.name"), tp::Error);
  EXPECT_THROW(reg.histogram("test.name"), tp::Error);
  // Same kind re-lookup returns the same instrument.
  reg.counter("test.name").add();
  EXPECT_EQ(reg.counter("test.name").total(), 1u);
}

TEST(Registry, RemoveByPrefixScopesOwnership) {
  Registry reg;
  reg.counter("a.x");
  reg.counter("a.y");
  reg.counter("ab.z");  // shares the character prefix, not the scope "a."
  reg.counter("b.x");
  EXPECT_EQ(reg.removeByPrefix("a."), 2u);
  EXPECT_EQ(reg.size(), 2u);
  const std::string json = reg.exportJson(false);
  EXPECT_EQ(json.find("\"a.x\""), std::string::npos);
  EXPECT_NE(json.find("\"ab.z\""), std::string::npos);
  EXPECT_NE(json.find("\"b.x\""), std::string::npos);
}

// Exposition-format conformance: every metric carries a # HELP + # TYPE
// preamble, histograms expose cumulative _bucket/_sum/_count series,
// summaries expose quantile-labelled samples, and names outside the
// Prometheus charset are sanitized under the tp_ prefix.
TEST(Registry, PrometheusExpositionConformance) {
  Registry reg;
  reg.counter("test.requests").add(3);
  reg.setHelp("test.requests", "Requests served\nsince boot \\ total");
  reg.gauge("test.depth").set(2.5);
  Histogram& hist = reg.histogram("test.latency_ns");
  hist.record(1);     // bucket le="1"
  hist.record(1000);  // bucket le="1023"
  hist.record(1000);
  reg.registerSummary("test.summary", [] {
    return tp::obs::SummarySnapshot{10, 0.002, 0.01, 0.001, 0.005};
  });

  const std::string prom = reg.exportPrometheus();

  // HELP precedes TYPE precedes samples; newline/backslash escaped.
  const auto helpPos =
      prom.find("# HELP tp_test_requests Requests served\\nsince boot "
                "\\\\ total\n");
  const auto typePos = prom.find("# TYPE tp_test_requests counter\n");
  const auto samplePos = prom.find("tp_test_requests 3\n");
  ASSERT_NE(helpPos, std::string::npos);
  ASSERT_NE(typePos, std::string::npos);
  ASSERT_NE(samplePos, std::string::npos);
  EXPECT_LT(helpPos, typePos);
  EXPECT_LT(typePos, samplePos);

  // Unset help falls back to the registry name.
  EXPECT_NE(prom.find("# HELP tp_test_depth test.depth\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE tp_test_depth gauge\n"), std::string::npos);

  // Histogram: cumulative buckets, then _sum and _count.
  EXPECT_NE(prom.find("# TYPE tp_test_latency_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tp_test_latency_ns_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tp_test_latency_ns_bucket{le=\"1023\"} 3\n"),
            std::string::npos)
      << "buckets must be cumulative, not per-bucket";
  EXPECT_NE(prom.find("tp_test_latency_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tp_test_latency_ns_sum 2001\n"), std::string::npos);
  EXPECT_NE(prom.find("tp_test_latency_ns_count 3\n"), std::string::npos);

  // Summary: quantile-labelled samples plus _sum/_count.
  EXPECT_NE(prom.find("# TYPE tp_test_summary summary\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tp_test_summary{quantile=\"0.5\"} 0.001\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tp_test_summary{quantile=\"0.95\"} 0.005\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tp_test_summary_count 10\n"), std::string::npos);

  // '.' is legal in the registry but not in Prometheus: every exported
  // token must be sanitized ([a-zA-Z0-9_:] only after the tp_ prefix).
  EXPECT_EQ(prom.find("tp_test."), std::string::npos);
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# ", 0) == 0) continue;  // HELP/TYPE free text
    const auto nameEnd = line.find_first_of(" {");
    ASSERT_NE(nameEnd, std::string::npos) << line;
    for (const char c : line.substr(0, nameEnd)) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "bad exposition name char '" << c << "' in "
                      << line;
    }
  }
}

// Registration-time name validation: one malformed name would poison
// the whole exposition, so every path rejects it up front.
TEST(Registry, InvalidMetricNamesThrowOnEveryRegistrationPath) {
  Registry reg;
  for (const std::string bad :
       {"", "9starts.with.digit", "has space", "has-dash", "emoji\xF0\x9F",
        ".leading.dot"}) {
    EXPECT_THROW(reg.counter(bad), tp::Error) << "counter('" << bad << "')";
    EXPECT_THROW(reg.gauge(bad), tp::Error);
    EXPECT_THROW(reg.histogram(bad), tp::Error);
    EXPECT_THROW(reg.registerCounter(bad, [] { return std::uint64_t{0}; }),
                 tp::Error);
    EXPECT_THROW(reg.registerGauge(bad, [] { return 0.0; }), tp::Error);
    EXPECT_THROW(
        reg.registerHistogram(bad, [] { return Histogram::Snapshot{}; }),
        tp::Error);
    EXPECT_THROW(
        reg.registerSummary(bad, [] { return tp::obs::SummarySnapshot{}; }),
        tp::Error);
    EXPECT_THROW(reg.setHelp(bad, "help"), tp::Error);
  }
  EXPECT_EQ(reg.size(), 0u) << "rejected names must not leave entries";
  // The accepted charset: letters, digits, '_', '.', ':'.
  reg.counter("Ok_name.with:all4");
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, HelpSurvivesReRegistration) {
  Registry reg;
  reg.registerGauge("test.replaced", [] { return 1.0; });
  reg.setHelp("test.replaced", "the original help text");
  // Components re-register readouts on reconfiguration (addMachine does
  // this); operator-facing help must not vanish when they do.
  reg.registerGauge("test.replaced", [] { return 2.0; });
  const std::string prom = reg.exportPrometheus();
  EXPECT_NE(prom.find("# HELP tp_test_replaced the original help text\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tp_test_replaced 2\n"), std::string::npos)
      << "the new readout, with the old help";
}

// ---------------------------------------------------------------------------

TEST(LogTap, CapturesRecentRecordsBounded) {
  tp::common::setLogCaptureCapacity(4);
  for (int i = 0; i < 10; ++i) {
    TP_INFO("logtap message " << i);
  }
  const auto records = tp::common::recentLogRecords();
  ASSERT_EQ(records.size(), 4u);
  // The newest 4 survive, in order, with monotone sequence numbers.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_NE(records[i].message.find("logtap message " + std::to_string(6 + i)),
              std::string::npos);
    if (i > 0) {
      EXPECT_GT(records[i].seq, records[i - 1].seq);
    }
  }
  tp::common::setLogCaptureCapacity(0);
  TP_INFO("logtap not captured");
  EXPECT_TRUE(tp::common::recentLogRecords().empty());
  tp::common::setLogCaptureCapacity(256);  // restore the default
}

TEST(LogTap, AppearsInRegistryJson) {
  tp::common::setLogCaptureCapacity(8);
  TP_WARN("logtap registry marker");
  Registry reg;
  const std::string json = reg.exportJson(/*includeRecentLog=*/true);
  EXPECT_NE(json.find("\"recent_log\""), std::string::npos);
  EXPECT_NE(json.find("logtap registry marker"), std::string::npos);
  EXPECT_EQ(reg.exportJson(false).find("\"recent_log\""), std::string::npos);
}

}  // namespace
