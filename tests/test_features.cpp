// Feature-extraction tests: symbolic op counts on known kernels,
// loop-trip weighting, runtime feature evaluation, monotonicity.

#include <gtest/gtest.h>

#include "features/runtime_features.hpp"
#include "features/static_features.hpp"
#include "frontend/parser.hpp"

namespace tp::features {
namespace {

KernelFeatures featuresOf(const char* src) {
  const auto kernel = frontend::parseSingleKernel(src);
  return extractFeatures(*kernel);
}

TEST(StaticFeatures, VecaddShape) {
  const auto f = featuresOf(R"(
__kernel void vecadd(__global const float* a, __global const float* b,
                     __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) {
    c[i] = a[i] + b[i];
  }
}
)");
  const std::map<std::string, double> none;
  // Loads: a[i], b[i] inside a then-only guard (weight 0.9).
  EXPECT_NEAR(f.globalLoads.eval(none), 2 * kThenOnlyWeight, 1e-9);
  EXPECT_NEAR(f.globalStores.eval(none), 1 * kThenOnlyWeight, 1e-9);
  // One float add in the guarded body.
  EXPECT_NEAR(f.floatOps.eval(none), 1 * kThenOnlyWeight, 1e-9);
  // One branch (the guard).
  EXPECT_NEAR(f.branches.eval(none), 1.0, 1e-9);
  EXPECT_EQ(f.numLoops, 0);
  EXPECT_EQ(f.numBuffers, 3);
  EXPECT_FALSE(f.usesLocalMemory);
  EXPECT_TRUE(f.specialOps.isZero());
  EXPECT_TRUE(f.atomics.isZero());
}

TEST(StaticFeatures, LoopTripCountSymbolic) {
  const auto f = featuresOf(R"(
__kernel void scale(__global float* a, int K) {
  int i = get_global_id(0);
  for (int k = 0; k < K; k++) {
    a[i] = a[i] * 2.0f;
  }
}
)");
  // Per iteration: one load, one store, one float multiply — all scaled by K.
  EXPECT_NEAR(f.globalLoads.eval({{"K", 10.0}}), 10.0, 1e-9);
  EXPECT_NEAR(f.globalLoads.eval({{"K", 100.0}}), 100.0, 1e-9);
  EXPECT_NEAR(f.floatOps.eval({{"K", 64.0}}), 64.0, 1e-9);
  EXPECT_EQ(f.numLoops, 1);
  EXPECT_EQ(f.maxLoopDepth, 1);
  EXPECT_FALSE(f.hasUnboundedLoop);
}

TEST(StaticFeatures, NestedLoopsMultiply) {
  const auto f = featuresOf(R"(
__kernel void nest(__global float* a, int N, int M) {
  int i = get_global_id(0);
  float acc = 0.0f;
  for (int x = 0; x < N; x++) {
    for (int y = 0; y < M; y++) {
      acc += 1.0f;
    }
  }
  a[i] = acc;
}
)");
  EXPECT_NEAR(f.floatOps.eval({{"N", 4.0}, {"M", 8.0}}), 32.0, 1e-9);
  EXPECT_EQ(f.numLoops, 2);
  EXPECT_EQ(f.maxLoopDepth, 2);
}

TEST(StaticFeatures, LoopStepDividesTrip) {
  const auto f = featuresOf(R"(
__kernel void strided(__global float* a, int N) {
  float acc = 0.0f;
  for (int k = 0; k < N; k += 4) {
    acc += 1.0f;
  }
  a[get_global_id(0)] = acc;
}
)");
  EXPECT_NEAR(f.floatOps.eval({{"N", 100.0}}), 25.0, 1e-9);
}

TEST(StaticFeatures, SpecialOpsCounted) {
  const auto f = featuresOf(R"(
__kernel void specials(__global float* a) {
  int i = get_global_id(0);
  a[i] = sqrt(a[i]) + exp(a[i]) + sin(a[i]) + rsqrt(a[i]);
}
)");
  EXPECT_NEAR(f.specialOps.eval({}), 4.0, 1e-9);
}

TEST(StaticFeatures, AtomicsAndMemoryClasses) {
  const auto f = featuresOf(R"(
__kernel void atomics(__global const int* data, __global int* bins,
                      int numBins) {
  int i = get_global_id(0);
  atomic_add(bins[data[i] % numBins], 1);
}
)");
  const std::map<std::string, double> none;
  EXPECT_NEAR(f.atomics.eval(none), 1.0, 1e-9);
  // The atomic RMW counts as both a load and a store on global memory,
  // plus the data[i] load.
  EXPECT_NEAR(f.globalLoads.eval(none), 2.0, 1e-9);
  EXPECT_NEAR(f.globalStores.eval(none), 1.0, 1e-9);
}

TEST(StaticFeatures, LocalMemoryAndBarriers) {
  const auto f = featuresOf(R"(
__kernel void shmem(__global float* o, __local float* tile, int n) {
  int lid = get_local_id(0);
  tile[lid] = 1.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  o[get_global_id(0)] = tile[lid];
}
)");
  EXPECT_TRUE(f.usesLocalMemory);
  EXPECT_NEAR(f.barriers.eval({}), 1.0, 1e-9);
  EXPECT_NEAR(f.localAccesses.eval({}), 2.0, 1e-9);
}

TEST(StaticFeatures, WhileLoopUsesUnknownTripParameter) {
  const auto f = featuresOf(R"(
__kernel void wl(__global float* o, int n) {
  float x = 1.0f;
  int s = n;
  while (s > 0) {
    x = x * 0.5f;
    s = s / 2;
  }
  o[get_global_id(0)] = x;
}
)");
  EXPECT_TRUE(f.hasUnboundedLoop);
  // Binding the unknown-trip parameter scales the body counts.
  const double at8 = f.floatOps.eval({{kUnknownTripParam, 8.0}});
  const double at16 = f.floatOps.eval({{kUnknownTripParam, 16.0}});
  EXPECT_NEAR(at16, 2.0 * at8, 1e-9);
}

TEST(StaticFeatures, BranchArmsWeighted) {
  const auto f = featuresOf(R"(
__kernel void branchy(__global float* o, int n) {
  int i = get_global_id(0);
  if (i % 2 == 0) {
    o[i] = 1.0f;
  } else {
    o[i] = 2.0f;
  }
}
)");
  // Each arm has one store, weighted 0.5 → total 1.0.
  EXPECT_NEAR(f.globalStores.eval({}), 1.0, 1e-9);
  EXPECT_NEAR(f.branches.eval({}), 1.0, 1e-9);
}

TEST(StaticFeatures, VectorSchemaConsistent) {
  const auto names = staticFeatureNames();
  const auto f = featuresOf(R"(
__kernel void any(__global float* o) { o[get_global_id(0)] = 1.0f; }
)");
  const auto v = staticFeatureVector(f);
  EXPECT_EQ(v.size(), names.size());
}

TEST(RuntimeFeatures, SchemaAndScaling) {
  const auto f = featuresOf(R"(
__kernel void scale(__global const float* a, __global float* b, int K) {
  int i = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    acc += a[i] * 2.0f;
  }
  b[i] = acc;
}
)");
  LaunchInfo launch;
  launch.sizeBindings = {{"K", 32.0}};
  launch.globalSize = 1024;
  launch.localSize = 64;
  launch.bytesToDevice = 4096.0;
  launch.bytesFromDevice = 4096.0;

  const auto names = runtimeFeatureNames();
  const auto v = runtimeFeatureVector(f, launch);
  ASSERT_EQ(v.size(), names.size());

  // r_global_size
  EXPECT_DOUBLE_EQ(v[0], 1024.0);
  // Per-item flops scale linearly with K.
  LaunchInfo bigger = launch;
  bigger.sizeBindings["K"] = 64.0;
  const auto v2 = runtimeFeatureVector(f, bigger);
  const std::size_t flopsIdx = 3;  // r_per_item_flops
  EXPECT_EQ(names[flopsIdx], "r_per_item_flops");
  EXPECT_NEAR(v2[flopsIdx], 2.0 * v[flopsIdx], 1e-9);
}

TEST(RuntimeFeatures, CombinedConcatenation) {
  const auto f = featuresOf(R"(
__kernel void any(__global float* o) { o[get_global_id(0)] = 1.0f; }
)");
  LaunchInfo launch;
  launch.globalSize = 64;
  launch.localSize = 64;
  const auto combined = combinedFeatureVector(f, launch);
  EXPECT_EQ(combined.size(),
            staticFeatureNames().size() + runtimeFeatureNames().size());
  EXPECT_EQ(combinedFeatureNames().size(), combined.size());
}

TEST(ArithmeticIntensity, ComputeBoundKernelHasHighIntensity) {
  const auto streaming = featuresOf(R"(
__kernel void stream(__global const float* a, __global float* b) {
  int i = get_global_id(0);
  b[i] = a[i] * 2.0f;
}
)");
  const auto compute = featuresOf(R"(
__kernel void heavy(__global const float* a, __global float* b, int K) {
  int i = get_global_id(0);
  float x = a[i];
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    acc += x * x;
  }
  b[i] = acc;
}
)");
  const std::map<std::string, double> bind = {{"K", 1000.0}};
  EXPECT_GT(compute.arithmeticIntensity(bind),
            10.0 * streaming.arithmeticIntensity(bind));
}

}  // namespace
}  // namespace tp::features
