// tp::serve tests: cache key quantization, fingerprinted open-addressing
// cache semantics (capacity, CLOCK eviction, versioned invalidation,
// collision verification), counter consistency under ThreadPool
// contention, striped latency reservoirs, feedback deduplication, and the
// PartitionService end to end — served decisions (inline hits included)
// equal the unbatched predict path, retrain swaps models without
// deadlock, shutdown drains.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/intern.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/health.hpp"
#include "runtime/compiler.hpp"
#include "runtime/evaluation.hpp"
#include "serve/service.hpp"
#include "sim/machine.hpp"

namespace tp::serve {
namespace {

// ---- cache ----------------------------------------------------------------

/// Full key + its fingerprint, the pair every cache mutation needs. The
/// interner mimics what PartitionService does per (machine, program).
struct TestKey {
  DecisionKey key;
  common::Fingerprint fp;
};

common::PairInterner& testInterner() {
  static common::PairInterner interner(1024);
  return interner;
}

TestKey key(DecisionCache& cache, const std::string& program,
            std::vector<double> features,
            const std::string& machine = "mc2") {
  TestKey k;
  k.key = cache.makeKey(machine, program, std::move(features));
  const std::uint32_t pairId = testInterner().intern(machine, program);
  k.fp = launchFingerprint(pairId, k.key.features);
  return k;
}

TEST(RoundSignificant, QuantizesToSignificantDigits) {
  EXPECT_DOUBLE_EQ(roundSignificant(123456.789, 4), 123500.0);
  EXPECT_DOUBLE_EQ(roundSignificant(0.000123456, 3), 0.000123);
  EXPECT_DOUBLE_EQ(roundSignificant(-987.654, 2), -990.0);
  EXPECT_DOUBLE_EQ(roundSignificant(0.0, 6), 0.0);
  // digits <= 0 disables rounding.
  EXPECT_DOUBLE_EQ(roundSignificant(1.23456789, 0), 1.23456789);
}

TEST(RoundSignificant, SurvivesExtremeMagnitudes) {
  // Near the double range limits the internal scale can overflow; keys
  // must stay finite and self-equal (a NaN component never equals itself).
  for (const double v : {1e-305, -1e-305, 5e-324, 1e308, -1e308}) {
    const double r = roundSignificant(v, 6);
    EXPECT_TRUE(std::isfinite(r)) << v;
    EXPECT_EQ(r, roundSignificant(v, 6)) << v;
  }
  DecisionCache cache(4);
  const auto tiny = key(cache, "p", {1e-305});
  cache.insert(tiny.fp, tiny.key, 3);
  EXPECT_EQ(cache.lookup(tiny.fp, tiny.key.modelVersion).value(), 3u);
  EXPECT_EQ(cache.size(), 1u);
  const auto again = key(cache, "p", {1e-305});  // same key, no duplicate
  EXPECT_EQ(again.fp, tiny.fp);
  cache.insert(again.fp, again.key, 3);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RoundSignificant, CollapsesJitterAndNormalizesZero) {
  EXPECT_EQ(roundSignificant(1.0000000001, 6), roundSignificant(1.0, 6));
  EXPECT_EQ(roundSignificant(1e9 + 1.0, 6), roundSignificant(1e9, 6));
  // -0.0 and 0.0 must hash identically.
  EXPECT_FALSE(std::signbit(roundSignificant(-0.0, 6)));
  // A 1% difference stays distinct.
  EXPECT_NE(roundSignificant(1.00, 6), roundSignificant(1.01, 6));
}

TEST(DecisionCacheBasics, HitMissAndCapacityEviction) {
  DecisionCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  const auto a = key(cache, "a", {1.0});
  const auto b = key(cache, "b", {2.0});
  const auto c = key(cache, "c", {3.0});

  EXPECT_FALSE(cache.lookup(a.fp, 0).has_value());
  cache.insert(a.fp, a.key, 11);
  cache.insert(b.fp, b.key, 22);
  EXPECT_EQ(cache.lookup(a.fp, 0).value(), 11u);
  cache.insert(c.fp, c.key, 33);  // table full: CLOCK evicts one entry
  EXPECT_EQ(cache.size(), 2u);
  // Whichever two entries survived must serve their own labels.
  std::size_t present = 0;
  if (const auto hit = cache.lookup(a.fp, 0)) {
    EXPECT_EQ(*hit, 11u);
    ++present;
  }
  if (const auto hit = cache.lookup(b.fp, 0)) {
    EXPECT_EQ(*hit, 22u);
    ++present;
  }
  if (const auto hit = cache.lookup(c.fp, 0)) {
    EXPECT_EQ(*hit, 33u);
    ++present;
  }
  EXPECT_EQ(present, 2u);

  const auto counters = cache.counters();
  EXPECT_EQ(counters.lookups, 5u);
  EXPECT_EQ(counters.hits + counters.misses, counters.lookups);
  EXPECT_EQ(counters.insertions, 3u);
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.insertions - counters.evictions - counters.invalidations,
            cache.size());
}

TEST(DecisionCacheBasics, InsertRefreshesExistingEntry) {
  DecisionCache cache(4);
  const auto a = key(cache, "a", {1.0});
  cache.insert(a.fp, a.key, 1);
  cache.insert(a.fp, a.key, 7);  // refresh, not a second entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(a.fp, 0).value(), 7u);
  EXPECT_EQ(cache.counters().insertions, 1u);
  EXPECT_EQ(cache.counters().collisions, 0u);
}

TEST(DecisionCacheBasics, CapacityRoundsUpToPowerOfTwoAndBoundsOccupancy) {
  DecisionCache cache(10);
  EXPECT_EQ(cache.capacity(), 16u);  // rounded up, occupancy-bounded
  for (int i = 0; i < 200; ++i) {
    const auto k =
        key(cache, "p" + std::to_string(i), {static_cast<double>(i)});
    cache.insert(k.fp, k.key, static_cast<std::size_t>(i % 97));
  }
  EXPECT_LE(cache.size(), cache.capacity());
  const auto c = cache.counters();
  EXPECT_EQ(c.insertions - c.evictions - c.invalidations, cache.size());
}

TEST(DecisionCacheBasics, QuantizedKeysCollapseJitter) {
  DecisionCache cache(8, 6);
  const auto exact = key(cache, "p", {1048576.0, 64.0, 4194304.0});
  const auto jittered =
      key(cache, "p", {1048576.0 * (1.0 + 1e-12), 64.0, 4194304.0 + 1e-6});
  EXPECT_EQ(exact.key, jittered.key);
  EXPECT_EQ(exact.fp, jittered.fp);
  const auto different = key(cache, "p", {2097152.0, 64.0, 4194304.0});
  EXPECT_FALSE(exact.key == different.key);
  EXPECT_FALSE(exact.fp == different.fp);

  cache.insert(exact.fp, exact.key, 5);
  EXPECT_EQ(cache.lookup(jittered.fp, 0).value(), 5u);
  EXPECT_FALSE(cache.lookup(different.fp, 0).has_value());
}

TEST(DecisionCacheBasics, StreamingFingerprintMatchesVectorForm) {
  // The hit path streams quantized fields straight out of the Task; the
  // insert path folds the materialized key vector. They must agree, or
  // warm traffic would never hit its own insertions.
  const std::uint32_t pairId = 7;
  runtime::Task task;
  task.programName = "prog";
  task.kernelName = "kern";
  task.globalSize = 1 << 20;
  task.localSize = 64;
  task.transferScale = 0.25;
  task.sizeBindings["K"] = 2000.0;
  task.sizeBindings["n"] = 1048576.0 * (1.0 + 1e-13);  // quantized away

  std::vector<double> sig = launchSignature(task);
  for (double& f : sig) f = roundSignificant(f, 6);
  EXPECT_EQ(launchFingerprint(pairId, task, 6), launchFingerprint(pairId, sig));
  // A different pair id is a different fingerprint (same signature).
  EXPECT_FALSE(launchFingerprint(pairId, sig) ==
               launchFingerprint(pairId + 1, sig));
}

TEST(DecisionCacheBasics, OversizedLabelDegradesToUncachedServing) {
  // Labels beyond the packed meta width (pathologically large
  // partitioning spaces) must not throw on the miss path: the insert is
  // a no-op and the key simply serves uncached.
  DecisionCache cache(8);
  const auto a = key(cache, "a", {1.0});
  cache.insert(a.fp, a.key, std::size_t{1} << 20);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(a.fp, 0).has_value());
  cache.insert(a.fp, a.key, 5);  // in-range labels still cache
  EXPECT_EQ(cache.lookup(a.fp, 0).value(), 5u);
}

TEST(DecisionCacheBasics, InsertVerifiesFullKeyAndCountsCollisions) {
  // Force a "fingerprint collision": two different full keys presented
  // under the same fingerprint. The insert-time verification must detect
  // the mismatch, count it, and let the newest key win.
  DecisionCache cache(8);
  const auto a = key(cache, "a", {1.0});
  auto forged = key(cache, "b", {2.0});
  forged.fp = a.fp;

  cache.insert(a.fp, a.key, 3);
  EXPECT_EQ(cache.counters().collisions, 0u);
  cache.insert(forged.fp, forged.key, 9);
  EXPECT_EQ(cache.counters().collisions, 1u);
  EXPECT_EQ(cache.size(), 1u);  // replaced, not duplicated
  EXPECT_EQ(cache.lookup(a.fp, 0).value(), 9u);
  // Re-inserting the same identity is a refresh, not another collision.
  cache.insert(forged.fp, forged.key, 4);
  EXPECT_EQ(cache.counters().collisions, 1u);
}

TEST(DecisionCacheVersioning, FreshInsertSurvivesTheInvalidationSweep) {
  // Deterministic replay of the retrain-vs-insert interleaving: a lane
  // worker computes a decision under the *new* model version while
  // bumpVersion()'s sweep is still walking the table. The fresh entry
  // must survive the sweep; only stale-generation entries may be dropped.
  DecisionCache cache(8);
  const auto stale1 = key(cache, "p", {1.0});
  const auto stale2 = key(cache, "q", {2.0});
  cache.insert(stale1.fp, stale1.key, 1);
  cache.insert(stale2.fp, stale2.key, 2);

  // Step 1 of bumpVersion(): the version increments (and sweeps).
  const auto v = cache.bumpVersion();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.counters().invalidations, 2u);

  // Step 2: an in-flight insert stamped with the *new* version lands.
  const auto fresh = key(cache, "p", {1.0});
  EXPECT_EQ(fresh.key.modelVersion, v);
  EXPECT_EQ(fresh.fp, stale1.fp);  // same identity, version-free fingerprint
  cache.insert(fresh.fp, fresh.key, 7);

  // Step 3: the remainder of the sweep runs. The fresh entry survives and
  // the invalidation counter does not drift.
  cache.clearStale();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(fresh.fp, v).value(), 7u);
  EXPECT_EQ(cache.counters().invalidations, 2u);  // no drift

  // A stale-stamped in-flight insert is still rejected outright.
  cache.insert(stale1.fp, stale1.key, 9);
  EXPECT_EQ(cache.size(), 1u);
  const auto c = cache.counters();
  EXPECT_EQ(c.insertions - c.evictions - c.invalidations, cache.size());
}

TEST(DecisionCacheVersioning, VersionBumpInvalidatesAndDropsStaleInserts) {
  DecisionCache cache(8);
  const auto stale = key(cache, "p", {1.0});
  cache.insert(stale.fp, stale.key, 5);
  EXPECT_EQ(cache.size(), 1u);

  const auto v = cache.bumpVersion();
  EXPECT_EQ(v, cache.version());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GE(cache.counters().invalidations, 1u);

  // A key stamped before the bump can neither hit nor pollute the cache.
  EXPECT_FALSE(cache.lookup(stale.fp, stale.key.modelVersion).has_value());
  cache.insert(stale.fp, stale.key, 9);
  EXPECT_EQ(cache.size(), 0u);

  const auto fresh = key(cache, "p", {1.0});
  EXPECT_EQ(fresh.key.modelVersion, v);
  cache.insert(fresh.fp, fresh.key, 9);
  EXPECT_EQ(cache.lookup(fresh.fp, v).value(), 9u);
  // The old generation's stamp misses even though the entry is resident.
  EXPECT_FALSE(cache.lookup(fresh.fp, v - 1).has_value());
}

TEST(DecisionCacheContention, CountersAndCapacityStayConsistent) {
  // Hammer the table from ThreadPool workers: 64-entry cache, 300
  // distinct keys, 20k mixed lookup/insert operations.
  DecisionCache cache(64);
  common::ThreadPool pool(8);
  constexpr std::size_t kOps = 20000;
  constexpr std::size_t kDistinct = 300;
  std::atomic<std::uint64_t> wrongValues{0};

  pool.parallelFor(0, kOps, [&](std::size_t i) {
    const std::size_t k = (i * 2654435761u) % kDistinct;
    const auto tk = key(cache, "p" + std::to_string(k),
                        {static_cast<double>(k), 64.0}, "mc1");
    if (const auto hit = cache.lookup(tk.fp, 0)) {
      // Values are a pure function of the key, so hits can never be wrong.
      if (*hit != k) wrongValues.fetch_add(1);
    } else {
      cache.insert(tk.fp, tk.key, k);
    }
  });
  pool.waitIdle();

  EXPECT_EQ(wrongValues.load(), 0u);
  EXPECT_LE(cache.size(), 64u);
  const auto c = cache.counters();
  EXPECT_EQ(c.lookups, kOps);
  EXPECT_EQ(c.hits + c.misses, c.lookups);
  EXPECT_EQ(c.insertions - c.evictions - c.invalidations, cache.size());
  EXPECT_EQ(c.collisions, 0u);
}

TEST(DecisionCacheContention, SurvivesConcurrentInvalidation) {
  DecisionCache cache(32);
  common::ThreadPool pool(8);
  pool.parallelFor(0, 10000, [&](std::size_t i) {
    if (i % 2500 == 0) {
      cache.bumpVersion();
      return;
    }
    const std::size_t k = i % 90;
    const auto tk =
        key(cache, "p" + std::to_string(k), {static_cast<double>(k)});
    if (!cache.lookup(tk.fp, tk.key.modelVersion).has_value()) {
      cache.insert(tk.fp, tk.key, k);
    }
  });
  pool.waitIdle();

  EXPECT_LE(cache.size(), 32u);
  const auto c = cache.counters();
  EXPECT_EQ(c.hits + c.misses, c.lookups);
  EXPECT_EQ(c.insertions - c.evictions - c.invalidations, cache.size());
}

// ---- latency recorder -----------------------------------------------------

TEST(LatencyRecorder, EmptySummaryIsAllZero) {
  LatencyRecorder rec(16);
  const auto s = rec.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.meanSeconds, 0.0);
  EXPECT_DOUBLE_EQ(s.maxSeconds, 0.0);
  EXPECT_DOUBLE_EQ(s.p50Seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.p95Seconds, 0.0);
  EXPECT_THROW(LatencyRecorder(0), Error);
}

TEST(LatencyRecorder, SingleSampleIsEveryPercentile) {
  LatencyRecorder rec(16);
  rec.add(0.25);
  const auto s = rec.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.meanSeconds, 0.25);
  EXPECT_DOUBLE_EQ(s.maxSeconds, 0.25);
  EXPECT_DOUBLE_EQ(s.p50Seconds, 0.25);
  EXPECT_DOUBLE_EQ(s.p95Seconds, 0.25);
}

TEST(LatencyRecorder, ExactBoundaryPercentilesOverTheWindow) {
  // 21 samples 0..20 ms: p50 and p95 rank exactly onto elements 10 and
  // 19 — no interpolation drift allowed.
  LatencyRecorder rec(64);
  for (int i = 0; i <= 20; ++i) rec.add(static_cast<double>(i) * 1e-3);
  const auto s = rec.summary();
  EXPECT_EQ(s.count, 21u);
  EXPECT_DOUBLE_EQ(s.p50Seconds, 10e-3);
  EXPECT_DOUBLE_EQ(s.p95Seconds, 19e-3);
  EXPECT_DOUBLE_EQ(s.maxSeconds, 20e-3);
}

TEST(LatencyRecorder, WindowWrapsButLifetimeStatsPersist) {
  LatencyRecorder rec(4);
  for (int i = 1; i <= 8; ++i) rec.add(static_cast<double>(i));
  const auto s = rec.summary();
  // count/mean/max run over all 8 samples ...
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.meanSeconds, 4.5);
  EXPECT_DOUBLE_EQ(s.maxSeconds, 8.0);
  // ... but percentiles only over the surviving window {5,6,7,8}.
  EXPECT_DOUBLE_EQ(s.p50Seconds, 6.5);
  EXPECT_GE(s.p50Seconds, 5.0);
  EXPECT_LE(s.p95Seconds, 8.0);
}

TEST(LatencyRecorder, SnapshotRacesWithWritersCleanly) {
  // Writers hammer add() while readers snapshot; every summary must be
  // internally consistent (mean <= max, percentiles inside the observed
  // range). Runs under TSan in CI.
  LatencyRecorder rec(128);
  common::ThreadPool pool(6);
  std::atomic<std::uint64_t> inconsistencies{0};
  pool.parallelFor(0, 6000, [&](std::size_t i) {
    if (i % 5 == 0) {
      const auto s = rec.summary();
      if (s.count > 0) {
        const bool ok = s.meanSeconds <= s.maxSeconds + 1e-12 &&
                        s.p50Seconds <= s.p95Seconds + 1e-12 &&
                        s.p95Seconds <= s.maxSeconds + 1e-12 &&
                        s.p50Seconds >= 0.0;
        if (!ok) inconsistencies.fetch_add(1);
      }
    } else {
      rec.add(static_cast<double>(i % 97) * 1e-4);
    }
  });
  pool.waitIdle();
  EXPECT_EQ(inconsistencies.load(), 0u);
}

TEST(LatencyRecorder, MergedReservoirPercentilesMatchPooledSamples) {
  // Merge-order regression (the striped rework): summary() must compute
  // p50/p95 with common::percentile over the POOLED per-stripe windows,
  // not by combining per-stripe percentiles. Four threads land on
  // (potentially) different stripes with disjoint sample ranges; as long
  // as no stripe window overflows, the pooled pane holds every sample
  // and the percentiles must match the reference exactly.
  LatencyRecorder rec(128);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20;
  std::vector<double> all;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      all.push_back(static_cast<double>(t * 100 + i) * 1e-4);
    }
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        rec.add(static_cast<double>(t * 100 + i) * 1e-4);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = rec.summary();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(s.p50Seconds, common::percentile(all, 50.0));
  EXPECT_DOUBLE_EQ(s.p95Seconds, common::percentile(all, 95.0));
  EXPECT_DOUBLE_EQ(s.maxSeconds, common::maxOf(all));
  EXPECT_NEAR(s.meanSeconds, common::mean(all), 1e-12);
}

// ---- service --------------------------------------------------------------

const char* kScaleSrc = R"(
__kernel void scale(__global const float* in, __global float* out, int K) {
  int i = get_global_id(0);
  float x = in[i];
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    acc += x * 1.0001f;
  }
  out[i] = acc;
}
)";

runtime::Task makeScaleTask(std::size_t n, int k) {
  static const runtime::CompiledKernel compiled =
      runtime::CompiledKernel::compile(kScaleSrc);
  auto in = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  auto out = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  return runtime::TaskBuilder(compiled, "scale")
      .global(n)
      .local(64)
      .arg(in)
      .arg(out)
      .arg(k)
      .build();
}

/// A service over mc2 with a decision-tree model trained on a small sweep
/// of scale tasks, plus the tasks themselves for traffic.
struct ServiceFixture {
  std::vector<runtime::Task> tasks;
  sim::MachineConfig machine = sim::makeMc2();
  std::unique_ptr<PartitionService> service;

  explicit ServiceFixture(ServiceConfig config = {}) {
    const runtime::PartitioningSpace space(machine.numDevices(),
                                           config.divisions);
    auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
    for (const std::size_t n : {1u << 12, 1u << 16, 1u << 20}) {
      for (const int k : {10, 2000}) {
        runtime::Task task = makeScaleTask(n, k);
        db.add(runtime::measureLaunch(task, machine, space,
                                      "n=" + std::to_string(n)));
        tasks.push_back(std::move(task));
      }
    }
    service = std::make_unique<PartitionService>(config);
    service->addMachine(
        machine, std::shared_ptr<const ml::Classifier>(
                     runtime::trainDeploymentModel(db, machine.name, "tree")));
  }

  LaunchRequest request(std::size_t t) const {
    LaunchRequest r;
    r.machine = machine.name;
    r.task = tasks[t % tasks.size()];
    return r;
  }
};

TEST(PartitionService, ServesAndMatchesUnbatchedPath) {
  ServiceFixture fx;
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    const auto expected =
        fx.service->predictLabel(fx.machine.name, fx.tasks[t]);
    const auto response = fx.service->call(fx.request(t));
    EXPECT_EQ(response.label, expected);
    EXPECT_FALSE(response.cacheHit);  // first sighting of each launch
    EXPECT_EQ(response.partitioning, fx.service->space(fx.machine.name)
                                         .at(response.label));
    EXPECT_GT(response.execution.makespan, 0.0);

    const auto again = fx.service->call(fx.request(t));
    EXPECT_TRUE(again.cacheHit);
    EXPECT_EQ(again.label, expected);
    EXPECT_DOUBLE_EQ(again.execution.makespan, response.execution.makespan);
  }
}

TEST(PartitionService, ConcurrentClientsGetConsistentDecisions) {
  ServiceConfig config;
  config.lanesPerMachine = 3;
  ServiceFixture fx(config);

  std::vector<std::size_t> expected;
  for (const auto& task : fx.tasks) {
    expected.push_back(fx.service->predictLabel(fx.machine.name, task));
  }

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRequests = 50;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t r = 0; r < kRequests; ++r) {
        const std::size_t t = (c * kRequests + r) % fx.tasks.size();
        const auto response = fx.service->submit(fx.request(t)).get();
        if (response.label != expected[t]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = fx.service->stats();
  EXPECT_EQ(stats.requestsSubmitted, kClients * kRequests);
  EXPECT_EQ(stats.requestsCompleted, kClients * kRequests);
  EXPECT_EQ(stats.requestsFailed, 0u);
  EXPECT_GT(stats.cacheHitRate, 0.5);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.maxBatch, 1u);
  EXPECT_EQ(stats.latency.count, kClients * kRequests);
  EXPECT_LE(stats.latency.p50Seconds, stats.latency.p95Seconds);
  // Feedback deduplicates to the distinct launches.
  EXPECT_EQ(stats.feedbackRecords, fx.tasks.size());
  ASSERT_EQ(stats.machines.size(), 1u);
  EXPECT_EQ(stats.machines[0].requests, kClients * kRequests);
  EXPECT_GT(stats.machines[0].makespanSeconds, 0.0);
}

TEST(PartitionService, WarmHitsAreServedInline) {
  ServiceFixture fx;
  // Cold pass: every distinct launch misses and goes through the queue.
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    (void)fx.service->call(fx.request(t));
  }
  const auto cold = fx.service->stats();
  EXPECT_EQ(cold.requestsInline, 0u);
  EXPECT_GE(cold.batches, 1u);

  // Warm pass: every request hits the fingerprint cache and is served on
  // the calling thread — no new batches, inline counter tracks exactly.
  for (int round = 0; round < 3; ++round) {
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      const auto r = fx.service->call(fx.request(t));
      EXPECT_TRUE(r.cacheHit);
    }
  }
  const auto warm = fx.service->stats();
  EXPECT_EQ(warm.requestsInline, 3 * fx.tasks.size());
  EXPECT_EQ(warm.batches, cold.batches);  // the queue never woke up
  EXPECT_EQ(warm.requestsCompleted, warm.requestsSubmitted);
  // Inline serving skips the feedback recorder; the cold pass already
  // recorded every distinct signature.
  EXPECT_EQ(warm.feedbackRecords, fx.tasks.size());
}

TEST(PartitionService, RetrainSwapsModelAndInvalidatesCache) {
  ServiceFixture fx;
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    (void)fx.service->call(fx.request(t));
  }
  const auto before = fx.service->stats();
  EXPECT_EQ(before.modelVersion, 0u);
  EXPECT_EQ(before.feedbackRecords, fx.tasks.size());

  const auto result = fx.service->retrain();
  EXPECT_EQ(result.machinesRetrained, 1u);
  EXPECT_EQ(result.recordsUsed, fx.tasks.size());
  EXPECT_EQ(result.modelVersion, 1u);

  // Post-retrain decisions must again equal the unbatched path through
  // the swapped-in model, and the first sighting of each launch must miss
  // the invalidated cache.
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    const auto response = fx.service->call(fx.request(t));
    EXPECT_FALSE(response.cacheHit);  // cache was invalidated
    EXPECT_EQ(response.modelVersion, result.modelVersion);
    EXPECT_EQ(response.label,
              fx.service->predictLabel(fx.machine.name, fx.tasks[t]));
  }
  const auto after = fx.service->stats();
  EXPECT_EQ(after.retrains, 1u);
  EXPECT_EQ(after.modelVersion, 1u);
  EXPECT_EQ(after.requestsFailed, 0u);
  EXPECT_EQ(after.cache.hits + after.cache.misses, after.cache.lookups);
}

TEST(PartitionService, RetrainUnderLiveTrafficDoesNotDeadlock) {
  ServiceConfig config;
  config.lanesPerMachine = 2;
  ServiceFixture fx(config);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::size_t t = c;
      while (!stop.load()) {
        (void)fx.service->submit(fx.request(t++)).get();
      }
    });
  }
  for (int i = 0; i < 5; ++i) {
    (void)fx.service->retrain();
  }
  stop.store(true);
  for (auto& c : clients) c.join();
  fx.service->drain();

  const auto stats = fx.service->stats();
  EXPECT_EQ(stats.retrains, 5u);
  EXPECT_EQ(stats.modelVersion, 5u);
  EXPECT_EQ(stats.requestsCompleted, stats.requestsSubmitted);
  EXPECT_EQ(stats.requestsFailed, 0u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
}

TEST(PartitionService, ShutdownDrainsAndRejectsNewWork) {
  ServiceFixture fx;
  std::vector<std::future<LaunchResponse>> futures;
  for (std::size_t t = 0; t < 20; ++t) {
    futures.push_back(fx.service->submit(fx.request(t)));
  }
  fx.service->shutdown();
  for (auto& f : futures) {
    EXPECT_GT(f.get().execution.makespan, 0.0);  // all answered
  }
  EXPECT_THROW(fx.service->submit(fx.request(0)), Error);
  fx.service->shutdown();  // idempotent
  const auto stats = fx.service->stats();
  EXPECT_EQ(stats.requestsCompleted, 20u);
}

TEST(PartitionService, RejectsUnknownMachineAndBadConfig) {
  ServiceFixture fx;
  LaunchRequest request;
  request.machine = "mc9";
  request.task = fx.tasks[0];
  EXPECT_THROW(fx.service->submit(std::move(request)), Error);
  EXPECT_THROW(fx.service->space("mc9"), Error);
  EXPECT_THROW(
      fx.service->addMachine(fx.machine, std::shared_ptr<ml::Classifier>()),
      Error);
  // Re-registering the same machine is rejected.
  EXPECT_THROW(fx.service->addMachine(
                   fx.machine, std::shared_ptr<const ml::Classifier>(
                                   ml::makeClassifier("mostfreq"))),
               Error);
  // Machines must be registered before traffic starts: the worker pool is
  // sized to the lanes that exist at the first submit().
  (void)fx.service->call(fx.request(0));
  EXPECT_THROW(fx.service->addMachine(
                   sim::makeMc1(), std::shared_ptr<const ml::Classifier>(
                                       ml::makeClassifier("mostfreq"))),
               Error);
}

TEST(PartitionService, StatsConcurrentWithAddMachineIsConsistent) {
  // Regression: feedback_ (and the machine map) used to be read by
  // stats()/trafficSnapshot() without machinesMutex_, racing the write in
  // addMachine(). The thread-safety annotation pass surfaced it; under
  // TSan this test is the watchdog. stats() must stay callable — and
  // internally consistent — while registration is still in flight.
  auto service = std::make_unique<PartitionService>();
  std::atomic<bool> stop{false};
  std::vector<std::thread> observers;
  for (int i = 0; i < 2; ++i) {
    observers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s = service->stats();
        ASSERT_LE(s.machines.size(), 2u);
        ASSERT_EQ(s.requestsSubmitted, 0u);
      }
    });
  }
  for (const auto& machine : {sim::makeMc2(), sim::makeMc1()}) {
    service->addMachine(machine, std::shared_ptr<const ml::Classifier>(
                                     ml::makeClassifier("mostfreq")));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : observers) t.join();
  EXPECT_EQ(service->stats().machines.size(), 2u);
}

TEST(PartitionService, InternTableOverflowDegradesToUncachedServing) {
  ServiceConfig config;
  config.internCapacity = 1;  // one (machine, program) pair, ever
  ServiceFixture fx(config);

  // A second machine whose (machine, program) pair cannot be interned.
  const sim::MachineConfig other = sim::makeMc1();
  const runtime::PartitioningSpace space(other.numDevices(),
                                         config.divisions);
  auto db = runtime::FeatureDatabase::withDefaultSchema(space.size());
  for (auto& task : fx.tasks) {
    db.add(runtime::measureLaunch(task, other, space, "sweep"));
  }
  fx.service->addMachine(other, std::shared_ptr<const ml::Classifier>(
                                    runtime::trainDeploymentModel(
                                        db, other.name, "tree")));
  const auto requestOn = [&](const sim::MachineConfig& m, std::size_t t) {
    LaunchRequest r;
    r.machine = m.name;
    r.task = fx.tasks[t % fx.tasks.size()];
    return r;
  };

  // mc2 claims the single intern slot and keeps its full fast path:
  // fingerprinted, cached, warm repeats hit.
  const auto cold = fx.service->call(requestOn(fx.machine, 0));
  EXPECT_EQ(cold.label,
            fx.service->predictLabel(fx.machine.name, fx.tasks[0]));
  EXPECT_TRUE(fx.service->call(requestOn(fx.machine, 0)).cacheHit);

  // Every launch on the overflow machine serves uncached: never a cache
  // hit (no fingerprint without a pair id), but the decision still equals
  // the pure model prediction — capacity pressure degrades speed, never
  // correctness.
  constexpr int kRounds = 2;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
      const auto r = fx.service->call(requestOn(other, t));
      EXPECT_FALSE(r.cacheHit);
      EXPECT_EQ(r.label, fx.service->predictLabel(other.name, fx.tasks[t]));
    }
  }

  const auto stats = fx.service->stats();
  EXPECT_EQ(stats.internedPairs, 1u);
  EXPECT_GE(stats.internRejections,
            static_cast<std::uint64_t>(kRounds * fx.tasks.size()));
  EXPECT_EQ(stats.requestsFailed, 0u);
}

TEST(PartitionService, RefinementNeverWorseThanTheModelBaseline) {
  ServiceConfig config;
  config.refine = true;
  config.refiner.exploreFraction = 0.4;
  config.refiner.seed = 11;
  ServiceFixture fx(config);

  // First sighting of every launch serves the pure model prediction (the
  // refiner must measure its baseline before probing anything).
  std::vector<double> baseline;
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    const auto r = fx.service->call(fx.request(t));
    EXPECT_FALSE(r.explored);
    EXPECT_FALSE(r.refined);
    EXPECT_EQ(r.label, fx.service->predictLabel(fx.machine.name, fx.tasks[t]));
    baseline.push_back(r.execution.makespan);
  }

  // Warm traffic: the refiner probes neighbors and adopts measured wins.
  for (std::size_t i = 0; i < 40 * fx.tasks.size(); ++i) {
    (void)fx.service->call(fx.request(i));
  }

  // Steady state: exploitation can only ever serve a label whose measured
  // time is <= the baseline's (wins need strict improvement).
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto r = fx.service->call(fx.request(t));
      if (r.explored) continue;  // probes pay the exploration tax
      EXPECT_LE(r.execution.makespan, baseline[t] * (1.0 + 1e-9))
          << "task " << t;
      break;
    }
  }

  const auto stats = fx.service->stats();
  EXPECT_EQ(stats.refiner.decisions,
            stats.requestsCompleted);  // every request went through refine
  EXPECT_EQ(stats.refiner.explorations + stats.refiner.exploitations +
                stats.refiner.untracked,
            stats.refiner.decisions);
  EXPECT_EQ(stats.refinedKeys, fx.tasks.size());
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
  EXPECT_LE(stats.cache.evictions, stats.cache.insertions);
  EXPECT_EQ(stats.requestsFailed, 0u);

  // Retrain decays the refiner back to the (new) model prediction.
  const auto result = fx.service->retrain();
  EXPECT_GE(result.modelVersion, 1u);
  for (std::size_t t = 0; t < fx.tasks.size(); ++t) {
    (void)fx.service->call(fx.request(t));
  }
  const auto after = fx.service->stats();
  EXPECT_GE(after.refiner.resets, 1u);
  EXPECT_EQ(after.cache.hits + after.cache.misses, after.cache.lookups);
  EXPECT_LE(after.cache.evictions, after.cache.insertions);
  ASSERT_EQ(after.machines.size(), 1u);
  EXPECT_EQ(after.machines[0].modelVersion, result.modelVersion);
}

TEST(PartitionService, FeedbackRecorderDeduplicates) {
  const auto machine = sim::makeMc2();
  const runtime::PartitioningSpace space(machine.numDevices(), 10);
  FeedbackRecorder recorder(space.size());
  const runtime::Task small = makeScaleTask(1 << 12, 10);
  const runtime::Task large = makeScaleTask(1 << 16, 10);

  EXPECT_TRUE(recorder.record(small, machine, space, "n=4096"));
  EXPECT_FALSE(recorder.record(small, machine, space, "n=4096"));
  EXPECT_TRUE(recorder.record(large, machine, space, "n=65536"));
  EXPECT_EQ(recorder.size(), 2u);

  const auto db = recorder.snapshot();
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.records()[0].machine, machine.name);
  EXPECT_EQ(db.records()[0].times.size(), space.size());
}

// ---- admission breaker (load shedding) -------------------------------------

/// A config whose SLO is impossible (1 ns p99 target over a short
/// window), so every served request burns budget and the breaker's SLO
/// arm sees a breach as soon as minSamples have landed. evalEvery is
/// pushed out of reach: tests drive evaluations deterministically
/// through evaluateBreakerNow().
ServiceConfig overloadedConfig() {
  ServiceConfig config;
  config.slo.windowSeconds = 0.25;
  config.slo.subWindows = 2;
  config.slo.targetP99Seconds = 1e-9;
  config.slo.minSamples = 8;
  config.breaker.enabled = true;
  config.breaker.burnRateCeiling = 1.0;
  config.breaker.tripAfter = 2;
  config.breaker.clearAfter = 2;
  config.breaker.evalEvery = std::uint64_t{1} << 30;
  return config;
}

TEST(PartitionService, BreakerShedsUnderOverloadAndRecovers) {
  ServiceFixture fx(overloadedConfig());
  const std::string& machine = fx.machine.name;

  for (std::size_t i = 0; i < 32; ++i) {
    const auto response = fx.service->call(fx.request(i));
    EXPECT_FALSE(response.shed);  // breaker closed: everything serves
  }
  ASSERT_TRUE(fx.service->sloReport(machine).breached);

  // Hysteresis: one hot evaluation arms the trip streak, the second
  // opens the breaker.
  fx.service->evaluateBreakerNow(machine);
  EXPECT_FALSE(fx.service->breakerOpen(machine));
  fx.service->evaluateBreakerNow(machine);
  ASSERT_TRUE(fx.service->breakerOpen(machine));

  // Open breaker: the request is answered immediately as shed — not
  // decided, not executed, no latency recorded.
  const auto shed = fx.service->call(fx.request(0));
  EXPECT_TRUE(shed.shed);
  EXPECT_FALSE(shed.cacheHit);
  auto stats = fx.service->stats();
  EXPECT_EQ(stats.requestsShed, 1u);
  EXPECT_EQ(stats.breakerTrips, 1u);
  EXPECT_EQ(stats.requestsCompleted, stats.requestsSubmitted);

  // Shed responses record no latency, so the SLO window drains while the
  // breaker sheds; once the horizon passes, the breach clears and the
  // clear streak (again two evaluations) closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_FALSE(fx.service->sloReport(machine).breached);
  fx.service->evaluateBreakerNow(machine);
  EXPECT_TRUE(fx.service->breakerOpen(machine));  // hysteresis again
  fx.service->evaluateBreakerNow(machine);
  EXPECT_FALSE(fx.service->breakerOpen(machine));

  const auto served = fx.service->call(fx.request(0));
  EXPECT_FALSE(served.shed);
  stats = fx.service->stats();
  EXPECT_EQ(stats.requestsShed, 1u);    // shedding stopped
  EXPECT_EQ(stats.breakerTrips, 1u);    // no flapping
}

TEST(PartitionService, LoadShedHealthRuleEmitsOneBreachClearPair) {
  ServiceFixture fx(overloadedConfig());
  const std::string& machine = fx.machine.name;

  for (std::size_t i = 0; i < 32; ++i) (void)fx.service->call(fx.request(i));
  fx.service->evaluateBreakerNow(machine);
  fx.service->evaluateBreakerNow(machine);
  ASSERT_TRUE(fx.service->breakerOpen(machine));

  obs::HealthMonitor monitor;
  fx.service->registerHealthRules(monitor);
  (void)fx.service->call(fx.request(0));  // one shed while open

  // Sustained shedding: one breach event, then suppression.
  (void)monitor.evaluateOnce();
  (void)monitor.evaluateOnce();

  // Recovery: drain the window, close the breaker, and let the rule's
  // clear streak (clearAfter = 2) emit exactly one recovery event.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  fx.service->evaluateBreakerNow(machine);
  fx.service->evaluateBreakerNow(machine);
  ASSERT_FALSE(fx.service->breakerOpen(machine));
  (void)monitor.evaluateOnce();
  (void)monitor.evaluateOnce();

  std::size_t breaches = 0, clears = 0;
  for (const auto& event : monitor.events()) {
    if (event.rule.find("load_shed") == std::string::npos) continue;
    if (!event.cleared) EXPECT_EQ(event.severity, obs::Severity::Critical);
    event.cleared ? ++clears : ++breaches;
  }
  EXPECT_EQ(breaches, 1u);  // deduped: sustained shedding pages once
  EXPECT_EQ(clears, 1u);
}

}  // namespace
}  // namespace tp::serve
