// ML tests: each learner on separable synthetic problems, determinism,
// serialization round trips, cross-validation plumbing, PCA correctness.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ml/classifier.hpp"
#include "ml/crossval.hpp"
#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/mlp.hpp"
#include "ml/normalizer.hpp"
#include "ml/pca.hpp"
#include "ml/random_forest.hpp"
#include "ml/two_stage.hpp"

namespace tp::ml {
namespace {

/// Three Gaussian blobs in 2-D, one per class; the "group" cycles through
/// three pseudo-programs so LOGO-CV has something to hold out.
Dataset blobs(std::size_t perClass, double spread, std::uint64_t seed) {
  common::Rng rng(seed);
  Dataset data;
  data.featureNames = {"x", "y"};
  const double centers[3][2] = {{0, 0}, {6, 0}, {0, 6}};
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < perClass; ++i) {
      data.add({centers[c][0] + rng.gaussian(0.0, spread),
                centers[c][1] + rng.gaussian(0.0, spread)},
               c, "prog" + std::to_string(i % 3));
    }
  }
  data.numClasses = 3;
  return data;
}

double accuracyOn(const Classifier& model, const Dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.predict(data.X[i]) == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(Dataset, AddValidateSubset) {
  Dataset d = blobs(10, 0.5, 1);
  EXPECT_EQ(d.size(), 30u);
  EXPECT_EQ(d.numClasses, 3);
  EXPECT_NO_THROW(d.validate());
  const auto sub = d.subset({0, 5, 10});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.numFeatures(), 2u);
  EXPECT_EQ(d.uniqueGroups().size(), 3u);
}

TEST(Dataset, MajorityLabel) {
  Dataset d;
  d.featureNames = {"x"};
  d.add({0.0}, 2, "g");
  d.add({0.0}, 2, "g");
  d.add({0.0}, 1, "g");
  EXPECT_EQ(d.majorityLabel(), 2);
}

TEST(Normalizer, ZeroMeanUnitVariance) {
  Normalizer norm;
  std::vector<std::vector<double>> X;
  common::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    X.push_back({rng.uniform(0, 1e6), rng.gaussian(5.0, 2.0)});
  }
  norm.fit(X);
  common::RunningStats s0, s1;
  for (const auto& row : norm.transformAll(X)) {
    s0.add(row[0]);
    s1.add(row[1]);
  }
  EXPECT_NEAR(s0.mean(), 0.0, 1e-9);
  EXPECT_NEAR(s1.mean(), 0.0, 1e-9);
  EXPECT_NEAR(s0.stddev(), 1.0, 0.01);
  EXPECT_NEAR(s1.stddev(), 1.0, 0.01);
}

TEST(Normalizer, ConstantFeatureMapsToZero) {
  Normalizer norm;
  norm.fit({{7.0, 1.0}, {7.0, 2.0}, {7.0, 3.0}});
  for (const auto& row : norm.transformAll({{7.0, 1.5}, {7.0, 2.5}})) {
    EXPECT_DOUBLE_EQ(row[0], 0.0);
  }
}

TEST(Normalizer, DegenerateFeaturesStayFinite) {
  // Column 0 is constant at a large magnitude, column 1 is constant at 0,
  // column 2 varies. No output may be non-finite and the degenerate
  // columns must map to exactly 0 for *any* input value.
  Normalizer norm;
  norm.fit({{1e9, 0.0, 1.0}, {1e9, 0.0, 2.0}, {1e9, 0.0, 3.0}});
  for (const auto& x : {std::vector<double>{1e9, 0.0, 2.0},
                        std::vector<double>{2e9, 5.0, -7.0},
                        std::vector<double>{0.0, -1e12, 1e12}}) {
    const auto out = norm.transform(x);
    for (const double v : out) EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_DOUBLE_EQ(out[1], 0.0);
  }
}

TEST(Normalizer, NearConstantFeatureDoesNotExplode) {
  // A column whose variation is pure floating-point jitter (relative
  // ~1e-10) must be treated as constant: inverting its tiny stddev would
  // produce a ~1e10 scale factor that turns a moderate input difference
  // into an astronomically standardized value.
  Normalizer norm;
  std::vector<std::vector<double>> X;
  for (int i = 0; i < 8; ++i) {
    const double jitter = 1.0 + 1e-10 * static_cast<double>(i % 2);
    X.push_back({1e9 * jitter, static_cast<double>(i)});
  }
  norm.fit(X);
  const auto out = norm.transform({2e9, 4.0});  // 2x the near-constant value
  EXPECT_TRUE(std::isfinite(out[0]));
  EXPECT_DOUBLE_EQ(out[0], 0.0);  // no signal -> no contribution
  // The genuinely varying column still standardizes normally.
  EXPECT_TRUE(std::isfinite(out[1]));
  EXPECT_LT(std::fabs(out[1]), 10.0);
}

TEST(Normalizer, LoadRejectsNonFiniteParameters) {
  std::stringstream ss;
  ss << "normalizer 1\n0.0 inf\n";
  Normalizer norm;
  EXPECT_THROW(norm.load(ss), Error);
}

TEST(Normalizer, SerializationRoundTrip) {
  Normalizer norm;
  norm.fit({{1.0, 10.0}, {2.0, 20.0}, {3.0, 35.0}});
  std::stringstream ss;
  norm.save(ss);
  Normalizer back;
  back.load(ss);
  EXPECT_EQ(back.transform({2.5, 17.0}), norm.transform({2.5, 17.0}));
}

// --- learners on separable data ---------------------------------------------

class LearnerSeparable : public ::testing::TestWithParam<std::string> {};

TEST_P(LearnerSeparable, FitsBlobs) {
  const Dataset train = blobs(60, 0.7, 11);
  const Dataset test = blobs(30, 0.7, 99);
  auto model = makeClassifier(GetParam(), 42);
  model->train(train);
  EXPECT_GE(accuracyOn(*model, test), 0.95) << GetParam();
}

TEST_P(LearnerSeparable, DeterministicAcrossRuns) {
  const Dataset train = blobs(40, 1.0, 5);
  auto m1 = makeClassifier(GetParam(), 7);
  auto m2 = makeClassifier(GetParam(), 7);
  m1->train(train);
  m2->train(train);
  common::Rng rng(123);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.uniform(-2, 8), rng.uniform(-2, 8)};
    EXPECT_EQ(m1->predict(x), m2->predict(x));
  }
}

TEST_P(LearnerSeparable, SerializationPreservesPredictions) {
  if (GetParam() == "mostfreq") GTEST_SKIP();
  const Dataset train = blobs(40, 0.8, 21);
  auto model = makeClassifier(GetParam(), 42);
  model->train(train);

  const std::string path =
      ::testing::TempDir() + "/model_" + GetParam().substr(0, 4) + ".txt";
  model->saveFile(path);
  const auto loaded = loadClassifierFile(path);

  common::Rng rng(55);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {rng.uniform(-2, 8), rng.uniform(-2, 8)};
    EXPECT_EQ(loaded->predict(x), model->predict(x));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, LearnerSeparable,
                         ::testing::Values("tree", "forest:32", "knn:5",
                                           "mlp:16"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == ':' || c == ',') c = '_';
                           }
                           return name;
                         });

TEST(DecisionTree, PureLeafShortCircuit) {
  Dataset d;
  d.featureNames = {"x"};
  for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, 1, "g");
  DecisionTree tree;
  tree.train(d);
  EXPECT_EQ(tree.nodeCount(), 1u);
  EXPECT_EQ(tree.predict({3.0}), 1);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Dataset train = blobs(100, 2.5, 31);  // overlapping blobs
  TreeOptions opts;
  opts.maxDepth = 3;
  DecisionTree tree(opts, 42);
  tree.train(train);
  EXPECT_LE(tree.depth(), 3);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  const Dataset train = blobs(80, 2.2, 41);
  const Dataset test = blobs(60, 2.2, 142);
  DecisionTree tree(TreeOptions{}, 42);
  tree.train(train);
  RandomForest forest(ForestOptions{.numTrees = 64}, 42);
  forest.train(train);
  EXPECT_GE(accuracyOn(forest, test) + 0.02, accuracyOn(tree, test));
  EXPECT_EQ(forest.numTrees(), 64u);
}

TEST(RandomForest, ScoresSumToOne) {
  const Dataset train = blobs(30, 1.0, 51);
  RandomForest forest(ForestOptions{.numTrees = 16}, 42);
  forest.train(train);
  const auto s = forest.scores({1.0, 1.0});
  double sum = 0.0;
  for (const double v : s) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mlp, ConvergesOnSeparableData) {
  const Dataset train = blobs(50, 0.6, 61);
  MlpClassifier mlp(MlpOptions{.hiddenLayers = {16}, .epochs = 200}, 42);
  mlp.train(train);
  EXPECT_LT(mlp.finalTrainingLoss(), 0.2);
}

TEST(Knn, ExactNeighborWins) {
  Dataset d;
  d.featureNames = {"x", "y"};
  d.add({0.0, 0.0}, 0, "g");
  d.add({10.0, 10.0}, 1, "g");
  d.numClasses = 2;
  KnnClassifier knn(1);
  knn.train(d);
  EXPECT_EQ(knn.predict({0.1, 0.1}), 0);
  EXPECT_EQ(knn.predict({9.5, 9.9}), 1);
}

TEST(MostFrequent, PredictsMajorityEverywhere) {
  Dataset d = blobs(10, 1.0, 71);
  d.y.assign(d.size(), 2);
  auto model = makeClassifier("mostfreq");
  model->train(d);
  EXPECT_EQ(model->predict({100.0, -100.0}), 2);
}

TEST(Factory, RejectsUnknownSpec) {
  EXPECT_THROW(makeClassifier("svm"), Error);
}

TEST(TwoStage, RefinesWithinFamilies) {
  // 4 fine labels in 2 families: {0,1} → family 0 (x < 3), {2,3} → family 1.
  common::Rng rng(81);
  Dataset d;
  d.featureNames = {"x", "y"};
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(0.0, 6.0);
    const double y = rng.uniform(0.0, 1.0);
    const int family = x < 3.0 ? 0 : 1;
    const int fine = family * 2 + (y < 0.5 ? 0 : 1);
    d.add({x, y}, fine, "g" + std::to_string(i % 4));
  }
  d.numClasses = 4;

  TwoStageClassifier model(
      {0, 0, 1, 1}, [] { return makeClassifier("tree", 1); },
      [] { return makeClassifier("tree", 2); });
  model.train(d);
  EXPECT_EQ(model.numFamilies(), 2);
  EXPECT_GE(accuracyOn(model, d), 0.95);
  EXPECT_THROW(
      [&] {
        std::stringstream ss;
        model.save(ss);
      }(),
      Error);
}

TEST(CrossVal, KFoldCoversEverySample) {
  const Dataset d = blobs(30, 0.8, 91);
  const auto result =
      kFoldCrossVal(d, 5, [] { return makeClassifier("tree"); });
  EXPECT_EQ(result.predictions.size(), d.size());
  for (const int p : result.predictions) EXPECT_GE(p, 0);
  EXPECT_GE(result.accuracy, 0.9);
}

TEST(CrossVal, LeaveOneGroupOutHoldsOutGroups) {
  const Dataset d = blobs(30, 0.8, 101);
  const auto result =
      leaveOneGroupOut(d, [] { return makeClassifier("knn:3"); });
  EXPECT_EQ(result.perGroup.size(), 3u);
  EXPECT_GE(result.accuracy, 0.9);
  for (const auto& [group, acc] : result.perGroup) {
    EXPECT_GE(acc, 0.8) << group;
  }
}

TEST(CrossVal, ConfusionMatrixCounts) {
  const auto m = confusionMatrix({0, 0, 1, 1, 2}, {0, 1, 1, 1, 0}, 3);
  EXPECT_EQ(m[0][0], 1);
  EXPECT_EQ(m[0][1], 1);
  EXPECT_EQ(m[1][1], 2);
  EXPECT_EQ(m[2][0], 1);
  EXPECT_EQ(m[2][2], 0);
}

TEST(Pca, RecoversDominantDirection) {
  // Points along y = 2x with small noise: first component ∝ (1, 2)/√5.
  common::Rng rng(111);
  std::vector<std::vector<double>> X;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.gaussian(0.0, 3.0);
    X.push_back({t + rng.gaussian(0.0, 0.05), 2 * t + rng.gaussian(0.0, 0.05)});
  }
  Pca pca;
  pca.fit(X, 0.99);
  ASSERT_GE(pca.numComponents(), 1u);
  const auto z = pca.transform({1.0, 2.0});
  const auto z0 = pca.transform({0.0, 0.0});
  EXPECT_NEAR(std::fabs(z[0] - z0[0]), std::sqrt(5.0), 0.05);
}

TEST(Pca, ExplainedVarianceDescending) {
  common::Rng rng(121);
  std::vector<std::vector<double>> X;
  for (int i = 0; i < 200; ++i) {
    X.push_back({rng.gaussian(0, 5), rng.gaussian(0, 2), rng.gaussian(0, 1)});
  }
  Pca pca;
  pca.fit(X, 1.0);
  const auto& ev = pca.explainedVariance();
  for (std::size_t i = 1; i < ev.size(); ++i) EXPECT_GE(ev[i - 1], ev[i]);
  EXPECT_NEAR(ev[0], 25.0, 5.0);
}

TEST(Pca, SymmetricEigenIdentity) {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  Pca::symmetricEigen({{2, 0}, {0, 3}}, eigenvalues, eigenvectors);
  EXPECT_NEAR(eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(eigenvalues[1], 2.0, 1e-9);
}

TEST(Pca, SerializationRoundTrip) {
  common::Rng rng(131);
  std::vector<std::vector<double>> X;
  for (int i = 0; i < 100; ++i) {
    X.push_back({rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)});
  }
  Pca pca;
  pca.fit(X, 0.95);
  std::stringstream ss;
  pca.save(ss);
  Pca back;
  back.load(ss);
  EXPECT_EQ(back.transform(X[0]), pca.transform(X[0]));
}

}  // namespace
}  // namespace tp::ml
