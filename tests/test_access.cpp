// Buffer access analysis tests: Split proofs, conservative degradation,
// and the expected classification of every suite kernel's buffers.

#include <gtest/gtest.h>

#include <map>

#include "features/access_analysis.hpp"
#include "frontend/parser.hpp"
#include "suite/benchmark.hpp"

namespace tp::features {
namespace {

std::map<std::string, BufferAccess> analyze(const char* src) {
  const auto kernel = frontend::parseSingleKernel(src);
  std::map<std::string, BufferAccess> out;
  for (auto& a : analyzeBufferAccesses(*kernel)) out[a.param] = a;
  return out;
}

TEST(AccessAnalysis, DirectGidIsSplitOne) {
  const auto acc = analyze(R"(
__kernel void k(__global const float* in, __global float* out, int n) {
  int i = get_global_id(0);
  out[i] = in[i];
}
)");
  EXPECT_EQ(acc.at("in").kind, AccessKind::Split);
  EXPECT_DOUBLE_EQ(acc.at("in").blockSize.eval({}), 1.0);
  EXPECT_EQ(acc.at("out").kind, AccessKind::Split);
  EXPECT_TRUE(acc.at("out").isWritten);
  EXPECT_FALSE(acc.at("in").isWritten);
}

TEST(AccessAnalysis, RowBlockIsSplitWithSymbolicCoefficient) {
  const auto acc = analyze(R"(
__kernel void k(__global const float* A, __global float* y, int cols) {
  int row = get_global_id(0);
  float acc = 0.0f;
  for (int j = 0; j < cols; j++) {
    acc += A[row * cols + j];
  }
  y[row] = acc;
}
)");
  ASSERT_EQ(acc.at("A").kind, AccessKind::Split);
  EXPECT_DOUBLE_EQ(acc.at("A").blockSize.eval({{"cols", 256.0}}), 256.0);
  EXPECT_EQ(acc.at("y").kind, AccessKind::Split);
}

TEST(AccessAnalysis, StencilHaloDegradesToReplicate) {
  const auto acc = analyze(R"(
__kernel void k(__global const float* in, __global float* out, int n) {
  int i = get_global_id(0);
  float v = in[i];
  if (i > 0) {
    v += in[i - 1];
  }
  out[i] = v;
}
)");
  // in[i-1] reaches outside the per-item block → conservative Replicate.
  EXPECT_EQ(acc.at("in").kind, AccessKind::Replicate);
  EXPECT_EQ(acc.at("out").kind, AccessKind::Split);
}

TEST(AccessAnalysis, ColumnAccessIsReplicate) {
  const auto acc = analyze(R"(
__kernel void k(__global const float* A, __global float* s, int rows, int cols) {
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < rows; i++) {
    acc += A[i * cols + j];
  }
  s[j] = acc;
}
)");
  EXPECT_EQ(acc.at("A").kind, AccessKind::Replicate);
  EXPECT_EQ(acc.at("s").kind, AccessKind::Split);
}

TEST(AccessAnalysis, DataDependentWriteIsMergeSum) {
  const auto acc = analyze(R"(
__kernel void k(__global const int* data, __global int* bins, int nb) {
  int i = get_global_id(0);
  atomic_add(bins[data[i] % nb], 1);
}
)");
  EXPECT_EQ(acc.at("data").kind, AccessKind::Split);
  EXPECT_EQ(acc.at("bins").kind, AccessKind::MergeSum);
  EXPECT_TRUE(acc.at("bins").isWritten);
}

TEST(AccessAnalysis, GroupIndexedOutputIsMergeSum) {
  const auto acc = analyze(R"(
__kernel void k(__global float* partial) {
  if (get_local_id(0) == 0) {
    partial[get_group_id(0)] = 1.0f;
  }
}
)");
  EXPECT_EQ(acc.at("partial").kind, AccessKind::MergeSum);
}

TEST(AccessAnalysis, UnusedParameter) {
  const auto acc = analyze(R"(
__kernel void k(__global const float* unused, __global float* out) {
  out[get_global_id(0)] = 1.0f;
}
)");
  EXPECT_EQ(acc.at("unused").kind, AccessKind::Unused);
}

TEST(AccessAnalysis, CopyPropagationThroughLocals) {
  const auto acc = analyze(R"(
__kernel void k(__global float* out, int n) {
  int gid = get_global_id(0);
  int twice = gid * 2;
  out[twice] = 1.0f;
  out[twice + 1] = 2.0f;
}
)");
  ASSERT_EQ(acc.at("out").kind, AccessKind::Split);
  EXPECT_DOUBLE_EQ(acc.at("out").blockSize.eval({}), 2.0);
}

TEST(AccessAnalysis, ReassignedVariableNotPropagated) {
  const auto acc = analyze(R"(
__kernel void k(__global float* out, int n) {
  int j = get_global_id(0);
  j = j * 3 + 1;
  out[j] = 1.0f;
}
)");
  // j was reassigned → analysis must not treat out[j] as gid-affine.
  EXPECT_EQ(acc.at("out").kind, AccessKind::MergeSum);
}

TEST(AccessAnalysis, MixedGidAndLoopAccessReplicates) {
  const auto acc = analyze(R"(
__kernel void k(__global const float* p, __global float* f, int n) {
  int i = get_global_id(0);
  float xi = p[i];
  float acc = 0.0f;
  for (int j = 0; j < n; j++) {
    acc += p[j] - xi;
  }
  f[i] = acc;
}
)");
  EXPECT_EQ(acc.at("p").kind, AccessKind::Replicate);
  EXPECT_EQ(acc.at("f").kind, AccessKind::Split);
}

// ---------------------------------------------------------------------------
// Expected classification of every suite kernel's buffers — this is the
// contract between the compiler analysis and the scheduler's distribution.
// ---------------------------------------------------------------------------

struct SuiteExpectation {
  const char* benchmark;
  const char* param;
  AccessKind kind;
};

class SuiteAccess : public ::testing::TestWithParam<SuiteExpectation> {};

TEST_P(SuiteAccess, MatchesExpectedKind) {
  const auto& p = GetParam();
  const auto& bench = suite::benchmarkByName(p.benchmark);
  EXPECT_EQ(bench.compiled.accessFor(p.param).kind, p.kind)
      << p.benchmark << "." << p.param << " expected "
      << accessKindName(p.kind) << ", got "
      << accessKindName(bench.compiled.accessFor(p.param).kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllBuffers, SuiteAccess,
    ::testing::Values(
        SuiteExpectation{"vecadd", "a", AccessKind::Split},
        SuiteExpectation{"vecadd", "c", AccessKind::Split},
        SuiteExpectation{"saxpy", "y", AccessKind::Split},
        SuiteExpectation{"dotprod", "a", AccessKind::Split},
        SuiteExpectation{"dotprod", "partial", AccessKind::MergeSum},
        SuiteExpectation{"matmul", "A", AccessKind::Replicate},
        SuiteExpectation{"matmul", "B", AccessKind::Replicate},
        SuiteExpectation{"matmul", "C", AccessKind::Split},
        SuiteExpectation{"matvec", "A", AccessKind::Split},
        SuiteExpectation{"matvec", "x", AccessKind::Replicate},
        SuiteExpectation{"matvec", "y", AccessKind::Split},
        SuiteExpectation{"blackscholes", "sp", AccessKind::Split},
        SuiteExpectation{"blackscholes", "call", AccessKind::Split},
        SuiteExpectation{"mandelbrot", "out", AccessKind::Split},
        SuiteExpectation{"histogram", "data", AccessKind::Split},
        SuiteExpectation{"histogram", "bins", AccessKind::MergeSum},
        SuiteExpectation{"nbody", "px", AccessKind::Replicate},
        SuiteExpectation{"nbody", "ax", AccessKind::Split},
        SuiteExpectation{"reduction", "in", AccessKind::Split},
        SuiteExpectation{"reduction", "partial", AccessKind::MergeSum},
        SuiteExpectation{"spmv", "rowptr", AccessKind::Replicate},
        SuiteExpectation{"spmv", "colidx", AccessKind::Replicate},
        SuiteExpectation{"spmv", "x", AccessKind::Replicate},
        SuiteExpectation{"spmv", "y", AccessKind::Split},
        SuiteExpectation{"md", "neigh", AccessKind::Split},
        SuiteExpectation{"md", "px", AccessKind::Replicate},
        SuiteExpectation{"md", "fx", AccessKind::Split},
        SuiteExpectation{"stencil2d", "in", AccessKind::Replicate},
        SuiteExpectation{"stencil2d", "out", AccessKind::Split},
        SuiteExpectation{"sortrank", "in", AccessKind::Replicate},
        SuiteExpectation{"sortrank", "rank", AccessKind::Split},
        SuiteExpectation{"fftstage", "re", AccessKind::Replicate},
        SuiteExpectation{"fftstage", "outRe", AccessKind::Split},
        SuiteExpectation{"nn", "lat", AccessKind::Split},
        SuiteExpectation{"nn", "dist", AccessKind::Split},
        SuiteExpectation{"hotspot", "temp", AccessKind::Replicate},
        SuiteExpectation{"hotspot", "power", AccessKind::Split},
        SuiteExpectation{"hotspot", "out", AccessKind::Split},
        SuiteExpectation{"srad", "img", AccessKind::Replicate},
        SuiteExpectation{"srad", "out", AccessKind::Split},
        SuiteExpectation{"pathfinder", "src", AccessKind::Replicate},
        SuiteExpectation{"pathfinder", "wall", AccessKind::Split},
        SuiteExpectation{"pathfinder", "dst", AccessKind::Split},
        SuiteExpectation{"bfs", "rowptr", AccessKind::Replicate},
        SuiteExpectation{"bfs", "frontier", AccessKind::Split},
        SuiteExpectation{"bfs", "touched", AccessKind::MergeSum},
        SuiteExpectation{"kmeans", "points", AccessKind::Split},
        SuiteExpectation{"kmeans", "centroids", AccessKind::Replicate},
        SuiteExpectation{"kmeans", "assign", AccessKind::Split},
        SuiteExpectation{"conv2d", "in", AccessKind::Replicate},
        SuiteExpectation{"conv2d", "coef", AccessKind::Replicate},
        SuiteExpectation{"conv2d", "out", AccessKind::Split},
        SuiteExpectation{"bicg", "A", AccessKind::Replicate},
        SuiteExpectation{"bicg", "s", AccessKind::Split}),
    [](const ::testing::TestParamInfo<SuiteExpectation>& info) {
      return std::string(info.param.benchmark) + "_" + info.param.param;
    });

}  // namespace
}  // namespace tp::features
