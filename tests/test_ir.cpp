// IR tests: type algebra, node construction, deep clone, verifier findings,
// printer output on hand-built trees.

#include <gtest/gtest.h>

#include "ir/clone.hpp"
#include "ir/node.hpp"
#include "ir/printer.hpp"
#include "ir/verify.hpp"

namespace tp::ir {
namespace {

TEST(Type, ScalarProperties) {
  EXPECT_TRUE(Type::floatTy().isFloat());
  EXPECT_TRUE(Type::intTy().isIntegral());
  EXPECT_TRUE(Type::uintTy().isIntegral());
  EXPECT_TRUE(Type::boolTy().isIntegral());
  EXPECT_TRUE(Type::voidTy().isVoid());
  EXPECT_FALSE(Type::voidTy().isArithmetic());
  EXPECT_TRUE(Type::floatTy().isArithmetic());
}

TEST(Type, PointerProperties) {
  const Type p = Type::pointer(Scalar::Float, AddrSpace::Global);
  EXPECT_TRUE(p.isPointer());
  EXPECT_FALSE(p.isFloat());
  EXPECT_EQ(p.addrSpace(), AddrSpace::Global);
  EXPECT_EQ(p.element(), Type::floatTy());
  EXPECT_EQ(p.elementBytes(), 4);
  EXPECT_EQ(p.toString(), "__global float*");
}

TEST(Type, Equality) {
  EXPECT_EQ(Type::intTy(), Type::intTy());
  EXPECT_NE(Type::intTy(), Type::uintTy());
  EXPECT_NE(Type::pointer(Scalar::Float, AddrSpace::Global),
            Type::pointer(Scalar::Float, AddrSpace::Local));
}

ExprPtr makeVar(const std::string& name, Type t) {
  return std::make_unique<VarRef>(name, t);
}

TEST(Clone, DeepCopiesEveryNodeKind) {
  // sqrt((float)(a[i] + 1)) > 0.5 ? -x : x
  auto buffer = makeVar("a", Type::pointer(Scalar::Int, AddrSpace::Global));
  auto index = std::make_unique<IndexExpr>(std::move(buffer),
                                           makeVar("i", Type::intTy()));
  auto sum = std::make_unique<BinaryExpr>(BinaryOp::Add, std::move(index),
                                          std::make_unique<IntLit>(1),
                                          Type::intTy());
  auto cast = std::make_unique<CastExpr>(Type::floatTy(), std::move(sum));
  std::vector<ExprPtr> args;
  args.push_back(std::move(cast));
  auto call =
      std::make_unique<CallExpr>("sqrt", std::move(args), Type::floatTy());
  auto cmp = std::make_unique<BinaryExpr>(
      BinaryOp::Gt, std::move(call), std::make_unique<FloatLit>(0.5),
      Type::boolTy());
  auto neg = std::make_unique<UnaryExpr>(UnaryOp::Neg,
                                         makeVar("x", Type::floatTy()));
  auto select = std::make_unique<SelectExpr>(
      std::move(cmp), std::move(neg), makeVar("x", Type::floatTy()));

  const ExprPtr copy = cloneExpr(*select);
  EXPECT_EQ(printExpr(*copy), printExpr(*select));
  EXPECT_NE(copy.get(), select.get());
}

std::unique_ptr<KernelDecl> buildKernel(std::vector<StmtPtr> stmts,
                                        std::vector<Param> params) {
  auto body = std::make_unique<CompoundStmt>(std::move(stmts));
  return std::make_unique<KernelDecl>("k", std::move(params), std::move(body));
}

TEST(Verify, CleanKernelHasNoProblems) {
  std::vector<StmtPtr> stmts;
  stmts.push_back(std::make_unique<DeclStmt>("x", Type::intTy(),
                                             std::make_unique<IntLit>(1)));
  auto kernel = buildKernel(std::move(stmts),
                            {{"o", Type::pointer(Scalar::Float,
                                                 AddrSpace::Global)}});
  EXPECT_TRUE(verifyKernel(*kernel).empty());
  EXPECT_NO_THROW(verifyKernelOrThrow(*kernel));
}

TEST(Verify, FlagsUndeclaredVariable) {
  std::vector<StmtPtr> stmts;
  stmts.push_back(std::make_unique<ExprStmt>(makeVar("ghost", Type::intTy())));
  auto kernel = buildKernel(std::move(stmts), {});
  const auto problems = verifyKernel(*kernel);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("ghost"), std::string::npos);
  EXPECT_THROW(verifyKernelOrThrow(*kernel), Error);
}

TEST(Verify, FlagsDuplicateParams) {
  auto kernel = buildKernel(
      {}, {{"p", Type::intTy()}, {"p", Type::floatTy()}});
  EXPECT_FALSE(verifyKernel(*kernel).empty());
}

TEST(Verify, FlagsPointerArithmetic) {
  const Type ptr = Type::pointer(Scalar::Float, AddrSpace::Global);
  std::vector<StmtPtr> stmts;
  stmts.push_back(std::make_unique<ExprStmt>(std::make_unique<BinaryExpr>(
      BinaryOp::Add, makeVar("a", ptr), std::make_unique<IntLit>(1), ptr)));
  auto kernel = buildKernel(std::move(stmts), {{"a", ptr}});
  EXPECT_FALSE(verifyKernel(*kernel).empty());
}

TEST(Verify, FlagsValueReturningKernel) {
  std::vector<StmtPtr> stmts;
  stmts.push_back(std::make_unique<ReturnStmt>(std::make_unique<IntLit>(3)));
  auto kernel = buildKernel(std::move(stmts), {});
  EXPECT_FALSE(verifyKernel(*kernel).empty());
}

TEST(Verify, ForLoopVariableScoped) {
  // for (int i = 0; i < 4; i += 1) { int x = i; } — i visible in body only.
  std::vector<StmtPtr> body;
  body.push_back(std::make_unique<DeclStmt>("x", Type::intTy(),
                                            makeVar("i", Type::intTy())));
  auto loop = std::make_unique<ForStmt>(
      "i", std::make_unique<IntLit>(0), std::make_unique<IntLit>(4), 1,
      std::make_unique<CompoundStmt>(std::move(body)));
  std::vector<StmtPtr> stmts;
  stmts.push_back(std::move(loop));
  // Use of i after the loop is an error.
  stmts.push_back(std::make_unique<ExprStmt>(makeVar("i", Type::intTy())));
  auto kernel = buildKernel(std::move(stmts), {});
  EXPECT_FALSE(verifyKernel(*kernel).empty());
}

TEST(Printer, ExpressionForms) {
  EXPECT_EQ(printExpr(IntLit(42)), "42");
  EXPECT_EQ(printExpr(IntLit(7, Type::uintTy())), "7u");
  EXPECT_EQ(printExpr(FloatLit(1.5)), "1.5f");
  EXPECT_EQ(printExpr(FloatLit(2.0)), "2.0f");
  EXPECT_EQ(printExpr(VarRef("abc", Type::intTy())), "abc");
}

TEST(Printer, BinaryOpNames) {
  EXPECT_STREQ(binaryOpName(BinaryOp::Add), "+");
  EXPECT_STREQ(binaryOpName(BinaryOp::Shl), "<<");
  EXPECT_STREQ(binaryOpName(BinaryOp::LogicalAnd), "&&");
  EXPECT_TRUE(isComparison(BinaryOp::Le));
  EXPECT_FALSE(isComparison(BinaryOp::Add));
  EXPECT_TRUE(isLogical(BinaryOp::LogicalOr));
}

TEST(Printer, KernelHeader) {
  auto kernel = buildKernel(
      {}, {{"a", Type::pointer(Scalar::Float, AddrSpace::Global)},
           {"n", Type::intTy()}});
  const std::string text = printKernel(*kernel);
  EXPECT_NE(text.find("__kernel void k(__global float* a, int n)"),
            std::string::npos);
}

}  // namespace
}  // namespace tp::ir
