// Device-model tests: time monotonicity, utilization behaviour, transfer
// accounting, and the machine-level properties the paper's evaluation
// depends on (mc1's VLIW GPU weak on untuned code, mc2's Fermi strong).

#include <gtest/gtest.h>

#include "features/static_features.hpp"
#include "frontend/parser.hpp"
#include "sim/machine.hpp"

namespace tp::sim {
namespace {

features::KernelFeatures featuresOf(const char* src) {
  const auto kernel = frontend::parseSingleKernel(src);
  return features::extractFeatures(*kernel);
}

const char* kStreamingKernel = R"(
__kernel void stream(__global const float* a, __global float* b, int n) {
  int i = get_global_id(0);
  b[i] = a[i] * 2.0f;
}
)";

const char* kComputeKernel = R"(
__kernel void heavy(__global const float* a, __global float* b, int K) {
  int i = get_global_id(0);
  float x = a[i];
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    acc += x * acc + 0.5f;
  }
  b[i] = acc;
}
)";

const char* kBranchyKernel = R"(
__kernel void branchy(__global const float* a, __global float* b, int K) {
  int i = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < K; k++) {
    if (a[i] > 0.5f) {
      acc += 1.0f;
    } else {
      acc -= 1.0f;
    }
  }
  b[i] = acc;
}
)";

TEST(DeviceModel, KernelTimeMonotonicInItems) {
  const auto f = featuresOf(kComputeKernel);
  const auto m = makeMc2();
  const std::map<std::string, double> bind = {{"K", 100.0}};
  double prev = 0.0;
  for (const double items : {64.0, 1024.0, 65536.0, 1048576.0}) {
    const double t = m.devices[1].kernelTime(f, bind, items, 64.0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(DeviceModel, KernelTimeMonotonicInWork) {
  const auto f = featuresOf(kComputeKernel);
  const auto m = makeMc1();
  double prev = 0.0;
  for (const double k : {10.0, 100.0, 1000.0}) {
    const double t = m.cpu().kernelTime(f, {{"K", k}}, 4096.0, 64.0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(DeviceModel, ZeroItemsIsFree) {
  const auto f = featuresOf(kStreamingKernel);
  const auto m = makeMc1();
  EXPECT_DOUBLE_EQ(m.cpu().kernelTime(f, {}, 0.0, 64.0), 0.0);
}

TEST(DeviceModel, UtilizationSaturates) {
  const auto m = makeMc2();
  const auto& gpu = m.devices[1];
  EXPECT_LT(gpu.utilization(1000.0), 0.05);
  EXPECT_GT(gpu.utilization(1e7), 0.95);
  EXPECT_LT(gpu.utilization(1e4), gpu.utilization(1e6));
  // CPU saturates much earlier than the GPU.
  EXPECT_GT(m.cpu().utilization(1e4), gpu.utilization(1e4));
}

TEST(DeviceModel, TransferTimeLinearWithLatencyFloor) {
  const auto m = makeMc2();
  const auto& gpu = m.devices[1];
  EXPECT_DOUBLE_EQ(gpu.transferTime(0.0), 0.0);
  const double t1 = gpu.transferTime(1e6);
  const double t2 = gpu.transferTime(2e6);
  EXPECT_GT(t1, gpu.transferLatency);
  // Doubling bytes less than doubles time only because of latency.
  EXPECT_NEAR(t2 - t1, 1e6 / gpu.transferBandwidth, 1e-12);
  // CPU transfers are near-free (zero-copy device).
  EXPECT_LT(m.cpu().transferTime(1e6), 0.1 * t1);
}

TEST(Machines, ConfigShape) {
  for (const auto& m : evaluationMachines()) {
    EXPECT_EQ(m.numDevices(), 3u);
    EXPECT_EQ(m.devices[0].type, DeviceType::CPU);
    EXPECT_EQ(m.devices[1].type, DeviceType::GPU);
    EXPECT_EQ(m.devices[2].type, DeviceType::GPU);
    EXPECT_EQ(m.gpuIndices(), (std::vector<std::size_t>{1, 2}));
  }
  EXPECT_EQ(makeMc1().name, "mc1");
  EXPECT_EQ(makeMc2().name, "mc2");
  EXPECT_THROW(machineByName("mc3"), Error);
}

// The paper's §3 observation, as a model property: on a large untuned
// compute kernel, mc1's CPU beats its VLIW GPU once transfers are included,
// while mc2's GPU beats its CPU.
TEST(Machines, DefaultStrategyOrderingDiffersAcrossMachines) {
  const auto f = featuresOf(kComputeKernel);
  const std::map<std::string, double> bind = {{"K", 2000.0}};
  const double items = 1 << 20;
  const double bytes = items * 8.0;  // in + out

  const auto mc1 = makeMc1();
  const double cpu1 = mc1.cpu().kernelTime(f, bind, items, 64.0);
  const double gpu1 = mc1.devices[1].kernelTime(f, bind, items, 64.0) +
                      mc1.devices[1].transferTime(bytes);
  const auto mc2 = makeMc2();
  const double cpu2 = mc2.cpu().kernelTime(f, bind, items, 64.0);
  const double gpu2 = mc2.devices[1].kernelTime(f, bind, items, 64.0) +
                      mc2.devices[1].transferTime(bytes);

  // mc2's GPU must clearly win on compute-heavy work.
  EXPECT_LT(gpu2, cpu2);
  // mc1's GPU advantage must be much smaller than mc2's (VLIW penalty).
  EXPECT_GT((cpu1 / gpu1), 0.2);
  EXPECT_LT((cpu1 / gpu1), (cpu2 / gpu2));
}

TEST(Machines, BranchDivergenceHurtsGpusMore) {
  const auto f = featuresOf(kBranchyKernel);
  const std::map<std::string, double> bind = {{"K", 500.0}};
  const double items = 1 << 18;

  for (const auto& m : evaluationMachines()) {
    const double cpu = m.cpu().kernelTime(f, bind, items, 64.0);
    const double gpu = m.devices[1].kernelTime(f, bind, items, 64.0);
    // Branch-heavy work narrows (or reverses) the GPU's advantage relative
    // to pure compute.
    const auto fc = featuresOf(kComputeKernel);
    const double cpuC = m.cpu().kernelTime(fc, bind, items, 64.0);
    const double gpuC = m.devices[1].kernelTime(fc, bind, items, 64.0);
    EXPECT_LT(cpu / gpu, cpuC / gpuC)
        << "machine " << m.name
        << ": branchy kernel should favor the CPU more than compute kernel";
  }
}

TEST(Machines, SmallProblemsFavorCpu) {
  const auto f = featuresOf(kStreamingKernel);
  const auto m = makeMc2();  // even on the GPU-friendly machine
  const double items = 4096;
  const double bytes = items * 8.0;
  const double cpu = m.cpu().kernelTime(f, {}, items, 64.0) +
                     m.cpu().transferTime(bytes);
  const double gpu = m.devices[1].kernelTime(f, {}, items, 64.0) +
                     m.devices[1].transferTime(bytes);
  EXPECT_LT(cpu, gpu);
}

TEST(Machines, MemoryBoundWorkIncludingTransfersFavorsCpu) {
  // Gregg & Hazelwood: with transfers included, streaming kernels do not
  // pay off on discrete GPUs.
  const auto f = featuresOf(kStreamingKernel);
  for (const auto& m : evaluationMachines()) {
    const double items = 1 << 22;
    const double bytes = items * 8.0;
    const double cpu = m.cpu().kernelTime(f, {}, items, 64.0) +
                       m.cpu().transferTime(bytes);
    const double gpu = m.devices[1].kernelTime(f, {}, items, 64.0) +
                       m.devices[1].transferTime(bytes);
    EXPECT_LT(cpu, gpu) << "machine " << m.name;
  }
}

}  // namespace
}  // namespace tp::sim
