// tp::adapt tests: refiner decision policy (baseline-first, epsilon
// probing, exploit-the-measured-best), win adoption with the improvement
// margin, neighborhood re-centering, version decay after retrain, key
// capacity bounds, and counter consistency under ThreadPool contention.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "adapt/refiner.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "runtime/partitioning.hpp"

namespace tp::adapt {
namespace {

RefineKey key(const std::string& program, double size = 1024.0) {
  RefineKey k;
  k.machine = "mc2";
  k.program = program;
  k.signature = {size, 64.0};
  return k;
}

/// A 2-device ladder: label i is the partitioning {i, 10-i}, so the
/// neighborhood of label i is {i-1, i+1} and hill-climbing is easy to
/// reason about.
const runtime::PartitioningSpace& ladder() {
  static const runtime::PartitioningSpace space(2, 10);
  return space;
}

TEST(Refiner, FirstDecisionServesTheBaseline) {
  RefinerConfig config;
  config.exploreFraction = 1.0;  // explore as aggressively as allowed
  Refiner refiner(config);
  // Until the baseline is measured there is nothing to compare a probe
  // against, so the first decision must exploit it — even at epsilon 1.
  const auto d = refiner.decide(key("p"), 0, 5, ladder());
  EXPECT_EQ(d.label, 5u);
  EXPECT_FALSE(d.explore);
  EXPECT_FALSE(d.refined);
}

TEST(Refiner, ProbesLeastMeasuredNeighborThenAdoptsWins) {
  RefinerConfig config;
  config.exploreFraction = 1.0;
  Refiner refiner(config);
  const auto k = key("p");

  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());

  // With epsilon 1 every decision now probes; arms are {5, 4, 6} and the
  // probe cursor targets the least-measured arms (ties break randomly),
  // so the two unmeasured neighbors are each probed exactly once.
  const auto p1 = refiner.decide(k, 0, 5, ladder());
  ASSERT_TRUE(p1.explore);
  EXPECT_TRUE(p1.label == 4u || p1.label == 6u);
  const auto o1 = refiner.observe(k, 0, p1.label, 1.2, ladder());
  EXPECT_FALSE(o1.improved);  // worse than the baseline

  const auto p2 = refiner.decide(k, 0, 5, ladder());
  ASSERT_TRUE(p2.explore);
  EXPECT_TRUE(p2.label == 4u || p2.label == 6u);
  EXPECT_NE(p2.label, p1.label);  // least-measured: never the probed one
  const auto o2 = refiner.observe(k, 0, p2.label, 0.5, ladder());
  EXPECT_TRUE(o2.improved);  // measured win -> new incumbent
  EXPECT_EQ(o2.bestLabel, p2.label);
  EXPECT_DOUBLE_EQ(o2.bestSeconds, 0.5);

  const auto counters = refiner.counters();
  EXPECT_EQ(counters.wins, 1u);
  EXPECT_EQ(counters.decisions, 3u);
  EXPECT_EQ(counters.explorations, 2u);
  EXPECT_EQ(counters.exploitations, 1u);
  EXPECT_EQ(counters.observations, 3u);
}

TEST(Refiner, ExploitServesTheIncumbentAfterAWin) {
  RefinerConfig config;
  config.exploreFraction = 0.0;  // pure exploitation
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  // Feed a win for a neighbor as if an earlier probe measured it.
  (void)refiner.observe(k, 0, 6, 0.4, ladder());

  const auto d = refiner.decide(k, 0, 5, ladder());
  EXPECT_EQ(d.label, 6u);
  EXPECT_FALSE(d.explore);
  EXPECT_TRUE(d.refined);
  const auto inc = refiner.incumbent(k, 0);
  EXPECT_TRUE(inc.tracked);
  EXPECT_EQ(inc.label, 6u);
  EXPECT_EQ(inc.armsMeasured, 2u);
}

TEST(Refiner, ImprovementMarginRejectsNoiseWins) {
  RefinerConfig config;
  config.exploreFraction = 0.0;
  config.minImprovement = 1e-2;
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  // 0.5% better: inside the noise margin, must not unseat the baseline.
  const auto o = refiner.observe(k, 0, 6, 0.995, ladder());
  EXPECT_FALSE(o.improved);
  EXPECT_EQ(refiner.decide(k, 0, 5, ladder()).label, 5u);
  // 5% better: a real win.
  EXPECT_TRUE(refiner.observe(k, 0, 4, 0.95, ladder()).improved);
}

TEST(Refiner, RecentersTheNeighborhoodOnTheIncumbent) {
  RefinerConfig config;
  config.exploreFraction = 1.0;
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  // Adopt 6: the arm set {5,4,6} re-centers and gains 7.
  (void)refiner.observe(k, 0, 6, 0.5, ladder());

  // Probe until label 7 (two steps from the original baseline) shows up.
  bool probed7 = false;
  for (int i = 0; i < 16 && !probed7; ++i) {
    const auto d = refiner.decide(k, 0, 5, ladder());
    probed7 = d.label == 7;
    (void)refiner.observe(k, 0, d.label, 2.0, ladder());
  }
  EXPECT_TRUE(probed7);
}

TEST(Refiner, HillClimbsToTheOptimumOfAMeasuredValley) {
  // Simulated cost valley with its floor at label 8; the model predicted
  // label 2. Driving decide/observe in a loop must walk the incumbent
  // down to 8 and keep steady-state exploitation there.
  RefinerConfig config;
  config.exploreFraction = 0.5;
  config.seed = 7;
  Refiner refiner(config);
  const auto k = key("valley");
  const auto cost = [](std::size_t label) {
    return 1.0 + std::fabs(static_cast<double>(label) - 8.0);
  };
  for (int i = 0; i < 300; ++i) {
    const auto d = refiner.decide(k, 0, 2, ladder());
    (void)refiner.observe(k, 0, d.label, cost(d.label), ladder());
  }
  const auto inc = refiner.incumbent(k, 0);
  ASSERT_TRUE(inc.tracked);
  EXPECT_EQ(inc.label, 8u);
  EXPECT_DOUBLE_EQ(inc.meanSeconds, cost(8));
  // Steady state: exploitation serves the optimum.
  RefinerConfig frozen = config;
  (void)frozen;
  const auto counters = refiner.counters();
  EXPECT_GE(counters.wins, 1u);
  EXPECT_EQ(counters.decisions, 300u);
  EXPECT_EQ(counters.explorations + counters.exploitations +
                counters.untracked,
            counters.decisions);
}

TEST(Refiner, VersionBumpDecaysBackToTheModelPrediction) {
  RefinerConfig config;
  config.exploreFraction = 0.0;
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  (void)refiner.observe(k, 0, 6, 0.4, ladder());
  EXPECT_EQ(refiner.decide(k, 0, 5, ladder()).label, 6u);

  // Retrain bumped the version: the new model's prediction (3) rules and
  // the learned history is gone.
  const auto d = refiner.decide(k, 1, 3, ladder());
  EXPECT_EQ(d.label, 3u);
  EXPECT_FALSE(d.refined);
  EXPECT_EQ(refiner.counters().resets, 1u);
  EXPECT_FALSE(refiner.incumbent(k, 0).tracked);

  // A measurement still stamped with the old version is dropped.
  const auto o = refiner.observe(k, 0, 6, 0.1, ladder());
  EXPECT_FALSE(o.improved);
  EXPECT_GE(refiner.counters().staleObservations, 1u);
  EXPECT_EQ(refiner.decide(k, 1, 3, ladder()).label, 3u);
}

TEST(Refiner, LaggingOldVersionDecisionDoesNotResetNewerHistory) {
  RefinerConfig config;
  config.exploreFraction = 0.0;
  Refiner refiner(config);
  const auto k = key("p");
  // Post-retrain (v1) history with an adopted win.
  (void)refiner.decide(k, 1, 5, ladder());
  (void)refiner.observe(k, 1, 5, 1.0, ladder());
  (void)refiner.observe(k, 1, 6, 0.4, ladder());

  // A request stamped before the retrain (v0) arrives late: it must be
  // served its own baseline unrefined, NOT reset the entry backward.
  const auto lagging = refiner.decide(k, 0, 2, ladder());
  EXPECT_EQ(lagging.label, 2u);
  EXPECT_FALSE(lagging.explore);
  EXPECT_FALSE(lagging.refined);
  EXPECT_EQ(refiner.counters().resets, 0u);
  EXPECT_GE(refiner.counters().untracked, 1u);
  // The v1 incumbent survived.
  EXPECT_EQ(refiner.decide(k, 1, 5, ladder()).label, 6u);
}

TEST(Refiner, KeyCapacityBoundServesUntrackedBaseline) {
  RefinerConfig config;
  config.maxKeys = 2;
  config.numShards = 1;
  Refiner refiner(config);
  (void)refiner.decide(key("a"), 0, 1, ladder());
  (void)refiner.decide(key("b"), 0, 2, ladder());
  const auto d = refiner.decide(key("c"), 0, 3, ladder());
  EXPECT_EQ(d.label, 3u);
  EXPECT_FALSE(d.explore);
  EXPECT_FALSE(d.refined);
  EXPECT_EQ(refiner.trackedKeys(), 2u);
  EXPECT_EQ(refiner.counters().untracked, 1u);
}

TEST(Refiner, CapacityReclaimsStaleGenerationKeys) {
  // A full shard whose entries belong to a superseded model version must
  // make room for post-retrain traffic instead of refusing to track it.
  RefinerConfig config;
  config.maxKeys = 2;
  config.numShards = 1;
  Refiner refiner(config);
  (void)refiner.decide(key("a"), 0, 1, ladder());
  (void)refiner.decide(key("b"), 0, 2, ladder());
  EXPECT_EQ(refiner.trackedKeys(), 2u);

  // Version 1 traffic for a brand-new signature: the v0 entries are dead
  // weight and get swept, and the new key is tracked.
  const auto d = refiner.decide(key("c"), 1, 3, ladder());
  EXPECT_EQ(d.label, 3u);
  EXPECT_EQ(refiner.counters().untracked, 0u);
  EXPECT_EQ(refiner.trackedKeys(), 1u);
  EXPECT_TRUE(refiner.incumbent(key("c"), 1).tracked);
  EXPECT_FALSE(refiner.incumbent(key("a"), 0).tracked);
}

TEST(Refiner, ObservationForUnknownLabelIsIgnored) {
  Refiner refiner;
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  // Label 0 is far outside the tracked neighborhood of 5.
  const auto o = refiner.observe(k, 0, 0, 0.001, ladder());
  EXPECT_FALSE(o.improved);
  EXPECT_GE(refiner.counters().staleObservations, 1u);
  // And an observation for a key never decided is dropped too.
  EXPECT_FALSE(refiner.observe(key("q"), 0, 5, 1.0, ladder()).improved);
}

TEST(Refiner, CountersConsistentUnderContention) {
  RefinerConfig config;
  config.exploreFraction = 0.25;
  config.numShards = 4;
  Refiner refiner(config);
  common::ThreadPool pool(8);
  constexpr std::size_t kOps = 20000;
  constexpr std::size_t kKeys = 40;
  std::atomic<std::uint64_t> badLabels{0};

  pool.parallelFor(0, kOps, [&](std::size_t i) {
    const auto k = key("p" + std::to_string(i % kKeys));
    const std::size_t base = 2 + (i % kKeys) % 7;
    const auto d = refiner.decide(k, 0, base, ladder());
    if (d.label >= ladder().size()) badLabels.fetch_add(1);
    const double cost =
        1.0 + std::fabs(static_cast<double>(d.label) - 8.0) * 0.1;
    (void)refiner.observe(k, 0, d.label, cost, ladder());
  });
  pool.waitIdle();

  EXPECT_EQ(badLabels.load(), 0u);
  const auto c = refiner.counters();
  EXPECT_EQ(c.decisions, kOps);
  EXPECT_EQ(c.explorations + c.exploitations + c.untracked, c.decisions);
  EXPECT_EQ(c.observations + c.staleObservations, kOps);
  EXPECT_LE(refiner.trackedKeys(), kKeys);
}

// ---- export / merge (fleet gossip + snapshots) -----------------------------

/// Refine key("p") to a converged state: baseline 5 measured at 1.0,
/// neighbor 4 at 1.2, neighbor 6 at `winSeconds` and adopted, and the
/// re-centered neighbor 7 measured at 2.0 (so the incumbent's whole
/// neighborhood carries evidence — the search is finished).
void refineKey(Refiner& refiner, double winSeconds) {
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  (void)refiner.observe(k, 0, 4, 1.2, ladder());
  (void)refiner.observe(k, 0, 6, winSeconds, ladder());
  (void)refiner.observe(k, 0, 7, 2.0, ladder());
}

TEST(Refiner, ExportsAdoptedWinsWithEvidence) {
  Refiner refiner;
  refineKey(refiner, 0.5);
  const auto wins = refiner.exportWins();
  ASSERT_EQ(wins.size(), 1u);
  const WinRecord& rec = wins[0];
  EXPECT_EQ(rec.key, key("p"));
  EXPECT_EQ(rec.modelVersion, 0u);
  EXPECT_EQ(rec.baseLabel, 5u);
  EXPECT_EQ(rec.incumbentLabel, 6u);
  EXPECT_DOUBLE_EQ(rec.incumbentMean, 0.5);
  // Every measured arm ships as evidence.
  ASSERT_EQ(rec.arms.size(), 4u);
  for (const WinArm& arm : rec.arms) EXPECT_GE(arm.count, 1u);

  // An unrefined key (incumbent == baseline) is not gossiped...
  Refiner unrefined;
  (void)unrefined.decide(key("q"), 0, 5, ladder());
  (void)unrefined.observe(key("q"), 0, 5, 1.0, ladder());
  EXPECT_TRUE(unrefined.exportWins(true).empty());
  // ...but is part of a full (snapshot) export.
  EXPECT_EQ(unrefined.exportWins(false).size(), 1u);
}

TEST(Refiner, MergeAdoptsRemoteWinWithoutReopeningSearch) {
  Refiner source;
  refineKey(source, 0.5);
  const auto wins = source.exportWins();

  RefinerConfig config;
  config.exploreFraction = 1.0;  // would probe on every warm decision...
  config.probeSamples = 1;       // ...but merged evidence fills the budget
  Refiner target(config);
  const auto result = target.mergeWins(wins, 0);
  EXPECT_EQ(result.adopted, 1u);
  EXPECT_EQ(result.merged(), 1u);

  const auto inc = target.incumbent(key("p"), 0);
  ASSERT_TRUE(inc.tracked);
  EXPECT_EQ(inc.label, 6u);
  EXPECT_DOUBLE_EQ(inc.meanSeconds, 0.5);

  // Decisions serve the merged incumbent and never probe: the remote
  // replica already measured this neighborhood.
  for (int i = 0; i < 32; ++i) {
    const auto d = target.decide(key("p"), 0, 5, ladder());
    EXPECT_FALSE(d.explore);
    EXPECT_TRUE(d.refined);
    EXPECT_EQ(d.label, 6u);
  }
  EXPECT_EQ(target.counters().explorations, 0u);
  EXPECT_EQ(target.counters().mergedWins, 1u);
}

TEST(Refiner, MergeIsIdempotentUnderAntiEntropy) {
  Refiner source;
  refineKey(source, 0.5);
  const auto wins = source.exportWins();
  Refiner target;
  EXPECT_EQ(target.mergeWins(wins, 0).adopted, 1u);
  // Re-offering the same state (anti-entropy rounds do) must not inflate
  // counts, shift means, or re-adopt.
  for (int round = 0; round < 5; ++round) {
    const auto result = target.mergeWins(wins, 0);
    EXPECT_EQ(result.adopted, 0u);
    EXPECT_EQ(result.updated, 1u);
  }
  const auto mergedBack = target.exportWins();
  ASSERT_EQ(mergedBack.size(), 1u);
  ASSERT_EQ(mergedBack[0].arms.size(), wins[0].arms.size());
  for (std::size_t a = 0; a < wins[0].arms.size(); ++a) {
    EXPECT_EQ(mergedBack[0].arms[a].count, wins[0].arms[a].count);
    EXPECT_DOUBLE_EQ(mergedBack[0].arms[a].meanSeconds,
                     wins[0].arms[a].meanSeconds);
  }
}

TEST(Refiner, MergeTiesBreakToTheLowerMeasuredMean) {
  // Local and remote measured the win arm equally often but disagree on
  // the mean: the lower (better) measurement wins the merge.
  Refiner local, remote;
  refineKey(local, 0.6);
  refineKey(remote, 0.5);
  const auto result = local.mergeWins(remote.exportWins(), 0);
  EXPECT_EQ(result.merged(), 1u);
  EXPECT_DOUBLE_EQ(local.incumbent(key("p"), 0).meanSeconds, 0.5);

  // And the reverse direction keeps the better local mean.
  Refiner better, worse;
  refineKey(better, 0.4);
  refineKey(worse, 0.5);
  (void)better.mergeWins(worse.exportWins(), 0);
  EXPECT_DOUBLE_EQ(better.incumbent(key("p"), 0).meanSeconds, 0.4);
}

TEST(Refiner, MergeRejectsStaleVersions) {
  Refiner source;
  refineKey(source, 0.5);
  auto wins = source.exportWins();
  Refiner target;
  // Fleet is already on generation 2: version-0 wins say nothing about
  // the current model's predictions.
  const auto result = target.mergeWins(wins, 2);
  EXPECT_EQ(result.stale, 1u);
  EXPECT_EQ(result.merged(), 0u);
  EXPECT_EQ(target.trackedKeys(), 0u);

  // A key that locally moved to a newer generation rejects older records
  // even when the caller's version matches the record.
  Refiner moved;
  (void)moved.decide(key("p"), 1, 5, ladder());
  EXPECT_EQ(moved.mergeWins(wins, 0).stale, 1u);
}

TEST(Refiner, MergeRespectsKeyCapacity) {
  RefinerConfig config;
  config.maxKeys = 2;
  config.numShards = 1;
  Refiner target(config);
  Refiner a;
  refineKey(a, 0.5);
  auto wins = a.exportWins();
  // Three distinct keys into a 2-key refiner: the overflow is dropped.
  WinRecord second = wins[0];
  second.key.program = "p2";
  WinRecord third = wins[0];
  third.key.program = "p3";
  wins.push_back(second);
  wins.push_back(third);
  const auto result = target.mergeWins(wins, 0);
  EXPECT_EQ(result.merged(), 2u);
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_EQ(target.trackedKeys(), 2u);
}

TEST(Refiner, ProbeBudgetStopsExplorationOnceConverged) {
  RefinerConfig config;
  config.exploreFraction = 1.0;
  config.probeSamples = 2;
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  // Arms {5, 4, 6}: with epsilon 1 every decision probes until each arm
  // holds probeSamples measurements (no win: 5 stays incumbent).
  std::size_t probes = 0;
  for (int i = 0; i < 64; ++i) {
    const auto d = refiner.decide(k, 0, 5, ladder());
    if (!d.explore) break;
    ++probes;
    (void)refiner.observe(k, 0, d.label, d.label == 5 ? 1.0 : 2.0, ladder());
  }
  // 5 needs one more sample, 4 and 6 need two each.
  EXPECT_EQ(probes, 5u);
  // Converged: pure exploitation from here on.
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(refiner.decide(k, 0, 5, ladder()).explore);
  }
}

TEST(Refiner, RejectsBadConfig) {
  RefinerConfig config;
  config.exploreFraction = 1.5;
  EXPECT_THROW(Refiner{config}, Error);
  config = {};
  config.numShards = 0;
  EXPECT_THROW(Refiner{config}, Error);
  config = {};
  config.maxArms = 1;
  EXPECT_THROW(Refiner{config}, Error);
  config = {};
  config.minSamples = 0;
  EXPECT_THROW(Refiner{config}, Error);
  config = {};
  // Probe budget below minSamples: arms stop probing before any could
  // ever be elected — all exploration cost, zero possible wins.
  config.minSamples = 2;
  config.probeSamples = 1;
  EXPECT_THROW(Refiner{config}, Error);
}

}  // namespace
}  // namespace tp::adapt
