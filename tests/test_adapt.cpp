// tp::adapt tests: refiner decision policy (baseline-first, epsilon
// probing, exploit-the-measured-best), win adoption with the improvement
// margin, neighborhood re-centering, version decay after retrain, key
// capacity bounds, and counter consistency under ThreadPool contention.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "adapt/refiner.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "runtime/partitioning.hpp"

namespace tp::adapt {
namespace {

RefineKey key(const std::string& program, double size = 1024.0) {
  RefineKey k;
  k.machine = "mc2";
  k.program = program;
  k.signature = {size, 64.0};
  return k;
}

/// A 2-device ladder: label i is the partitioning {i, 10-i}, so the
/// neighborhood of label i is {i-1, i+1} and hill-climbing is easy to
/// reason about.
const runtime::PartitioningSpace& ladder() {
  static const runtime::PartitioningSpace space(2, 10);
  return space;
}

TEST(Refiner, FirstDecisionServesTheBaseline) {
  RefinerConfig config;
  config.exploreFraction = 1.0;  // explore as aggressively as allowed
  Refiner refiner(config);
  // Until the baseline is measured there is nothing to compare a probe
  // against, so the first decision must exploit it — even at epsilon 1.
  const auto d = refiner.decide(key("p"), 0, 5, ladder());
  EXPECT_EQ(d.label, 5u);
  EXPECT_FALSE(d.explore);
  EXPECT_FALSE(d.refined);
}

TEST(Refiner, ProbesLeastMeasuredNeighborThenAdoptsWins) {
  RefinerConfig config;
  config.exploreFraction = 1.0;
  Refiner refiner(config);
  const auto k = key("p");

  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());

  // With epsilon 1 every decision now probes; arms are {5, 4, 6} and the
  // probe cursor picks the least-measured (ties to the earliest arm).
  const auto p1 = refiner.decide(k, 0, 5, ladder());
  EXPECT_TRUE(p1.explore);
  EXPECT_EQ(p1.label, 4u);
  const auto o1 = refiner.observe(k, 0, 4, 1.2, ladder());
  EXPECT_FALSE(o1.improved);  // worse than the baseline

  const auto p2 = refiner.decide(k, 0, 5, ladder());
  EXPECT_TRUE(p2.explore);
  EXPECT_EQ(p2.label, 6u);
  const auto o2 = refiner.observe(k, 0, 6, 0.5, ladder());
  EXPECT_TRUE(o2.improved);  // measured win -> new incumbent
  EXPECT_EQ(o2.bestLabel, 6u);
  EXPECT_DOUBLE_EQ(o2.bestSeconds, 0.5);

  const auto counters = refiner.counters();
  EXPECT_EQ(counters.wins, 1u);
  EXPECT_EQ(counters.decisions, 3u);
  EXPECT_EQ(counters.explorations, 2u);
  EXPECT_EQ(counters.exploitations, 1u);
  EXPECT_EQ(counters.observations, 3u);
}

TEST(Refiner, ExploitServesTheIncumbentAfterAWin) {
  RefinerConfig config;
  config.exploreFraction = 0.0;  // pure exploitation
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  // Feed a win for a neighbor as if an earlier probe measured it.
  (void)refiner.observe(k, 0, 6, 0.4, ladder());

  const auto d = refiner.decide(k, 0, 5, ladder());
  EXPECT_EQ(d.label, 6u);
  EXPECT_FALSE(d.explore);
  EXPECT_TRUE(d.refined);
  const auto inc = refiner.incumbent(k, 0);
  EXPECT_TRUE(inc.tracked);
  EXPECT_EQ(inc.label, 6u);
  EXPECT_EQ(inc.armsMeasured, 2u);
}

TEST(Refiner, ImprovementMarginRejectsNoiseWins) {
  RefinerConfig config;
  config.exploreFraction = 0.0;
  config.minImprovement = 1e-2;
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  // 0.5% better: inside the noise margin, must not unseat the baseline.
  const auto o = refiner.observe(k, 0, 6, 0.995, ladder());
  EXPECT_FALSE(o.improved);
  EXPECT_EQ(refiner.decide(k, 0, 5, ladder()).label, 5u);
  // 5% better: a real win.
  EXPECT_TRUE(refiner.observe(k, 0, 4, 0.95, ladder()).improved);
}

TEST(Refiner, RecentersTheNeighborhoodOnTheIncumbent) {
  RefinerConfig config;
  config.exploreFraction = 1.0;
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  // Adopt 6: the arm set {5,4,6} re-centers and gains 7.
  (void)refiner.observe(k, 0, 6, 0.5, ladder());

  // Probe until label 7 (two steps from the original baseline) shows up.
  bool probed7 = false;
  for (int i = 0; i < 16 && !probed7; ++i) {
    const auto d = refiner.decide(k, 0, 5, ladder());
    probed7 = d.label == 7;
    (void)refiner.observe(k, 0, d.label, 2.0, ladder());
  }
  EXPECT_TRUE(probed7);
}

TEST(Refiner, HillClimbsToTheOptimumOfAMeasuredValley) {
  // Simulated cost valley with its floor at label 8; the model predicted
  // label 2. Driving decide/observe in a loop must walk the incumbent
  // down to 8 and keep steady-state exploitation there.
  RefinerConfig config;
  config.exploreFraction = 0.5;
  config.seed = 7;
  Refiner refiner(config);
  const auto k = key("valley");
  const auto cost = [](std::size_t label) {
    return 1.0 + std::fabs(static_cast<double>(label) - 8.0);
  };
  for (int i = 0; i < 300; ++i) {
    const auto d = refiner.decide(k, 0, 2, ladder());
    (void)refiner.observe(k, 0, d.label, cost(d.label), ladder());
  }
  const auto inc = refiner.incumbent(k, 0);
  ASSERT_TRUE(inc.tracked);
  EXPECT_EQ(inc.label, 8u);
  EXPECT_DOUBLE_EQ(inc.meanSeconds, cost(8));
  // Steady state: exploitation serves the optimum.
  RefinerConfig frozen = config;
  (void)frozen;
  const auto counters = refiner.counters();
  EXPECT_GE(counters.wins, 1u);
  EXPECT_EQ(counters.decisions, 300u);
  EXPECT_EQ(counters.explorations + counters.exploitations +
                counters.untracked,
            counters.decisions);
}

TEST(Refiner, VersionBumpDecaysBackToTheModelPrediction) {
  RefinerConfig config;
  config.exploreFraction = 0.0;
  Refiner refiner(config);
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  (void)refiner.observe(k, 0, 5, 1.0, ladder());
  (void)refiner.observe(k, 0, 6, 0.4, ladder());
  EXPECT_EQ(refiner.decide(k, 0, 5, ladder()).label, 6u);

  // Retrain bumped the version: the new model's prediction (3) rules and
  // the learned history is gone.
  const auto d = refiner.decide(k, 1, 3, ladder());
  EXPECT_EQ(d.label, 3u);
  EXPECT_FALSE(d.refined);
  EXPECT_EQ(refiner.counters().resets, 1u);
  EXPECT_FALSE(refiner.incumbent(k, 0).tracked);

  // A measurement still stamped with the old version is dropped.
  const auto o = refiner.observe(k, 0, 6, 0.1, ladder());
  EXPECT_FALSE(o.improved);
  EXPECT_GE(refiner.counters().staleObservations, 1u);
  EXPECT_EQ(refiner.decide(k, 1, 3, ladder()).label, 3u);
}

TEST(Refiner, LaggingOldVersionDecisionDoesNotResetNewerHistory) {
  RefinerConfig config;
  config.exploreFraction = 0.0;
  Refiner refiner(config);
  const auto k = key("p");
  // Post-retrain (v1) history with an adopted win.
  (void)refiner.decide(k, 1, 5, ladder());
  (void)refiner.observe(k, 1, 5, 1.0, ladder());
  (void)refiner.observe(k, 1, 6, 0.4, ladder());

  // A request stamped before the retrain (v0) arrives late: it must be
  // served its own baseline unrefined, NOT reset the entry backward.
  const auto lagging = refiner.decide(k, 0, 2, ladder());
  EXPECT_EQ(lagging.label, 2u);
  EXPECT_FALSE(lagging.explore);
  EXPECT_FALSE(lagging.refined);
  EXPECT_EQ(refiner.counters().resets, 0u);
  EXPECT_GE(refiner.counters().untracked, 1u);
  // The v1 incumbent survived.
  EXPECT_EQ(refiner.decide(k, 1, 5, ladder()).label, 6u);
}

TEST(Refiner, KeyCapacityBoundServesUntrackedBaseline) {
  RefinerConfig config;
  config.maxKeys = 2;
  config.numShards = 1;
  Refiner refiner(config);
  (void)refiner.decide(key("a"), 0, 1, ladder());
  (void)refiner.decide(key("b"), 0, 2, ladder());
  const auto d = refiner.decide(key("c"), 0, 3, ladder());
  EXPECT_EQ(d.label, 3u);
  EXPECT_FALSE(d.explore);
  EXPECT_FALSE(d.refined);
  EXPECT_EQ(refiner.trackedKeys(), 2u);
  EXPECT_EQ(refiner.counters().untracked, 1u);
}

TEST(Refiner, CapacityReclaimsStaleGenerationKeys) {
  // A full shard whose entries belong to a superseded model version must
  // make room for post-retrain traffic instead of refusing to track it.
  RefinerConfig config;
  config.maxKeys = 2;
  config.numShards = 1;
  Refiner refiner(config);
  (void)refiner.decide(key("a"), 0, 1, ladder());
  (void)refiner.decide(key("b"), 0, 2, ladder());
  EXPECT_EQ(refiner.trackedKeys(), 2u);

  // Version 1 traffic for a brand-new signature: the v0 entries are dead
  // weight and get swept, and the new key is tracked.
  const auto d = refiner.decide(key("c"), 1, 3, ladder());
  EXPECT_EQ(d.label, 3u);
  EXPECT_EQ(refiner.counters().untracked, 0u);
  EXPECT_EQ(refiner.trackedKeys(), 1u);
  EXPECT_TRUE(refiner.incumbent(key("c"), 1).tracked);
  EXPECT_FALSE(refiner.incumbent(key("a"), 0).tracked);
}

TEST(Refiner, ObservationForUnknownLabelIsIgnored) {
  Refiner refiner;
  const auto k = key("p");
  (void)refiner.decide(k, 0, 5, ladder());
  // Label 0 is far outside the tracked neighborhood of 5.
  const auto o = refiner.observe(k, 0, 0, 0.001, ladder());
  EXPECT_FALSE(o.improved);
  EXPECT_GE(refiner.counters().staleObservations, 1u);
  // And an observation for a key never decided is dropped too.
  EXPECT_FALSE(refiner.observe(key("q"), 0, 5, 1.0, ladder()).improved);
}

TEST(Refiner, CountersConsistentUnderContention) {
  RefinerConfig config;
  config.exploreFraction = 0.25;
  config.numShards = 4;
  Refiner refiner(config);
  common::ThreadPool pool(8);
  constexpr std::size_t kOps = 20000;
  constexpr std::size_t kKeys = 40;
  std::atomic<std::uint64_t> badLabels{0};

  pool.parallelFor(0, kOps, [&](std::size_t i) {
    const auto k = key("p" + std::to_string(i % kKeys));
    const std::size_t base = 2 + (i % kKeys) % 7;
    const auto d = refiner.decide(k, 0, base, ladder());
    if (d.label >= ladder().size()) badLabels.fetch_add(1);
    const double cost =
        1.0 + std::fabs(static_cast<double>(d.label) - 8.0) * 0.1;
    (void)refiner.observe(k, 0, d.label, cost, ladder());
  });
  pool.waitIdle();

  EXPECT_EQ(badLabels.load(), 0u);
  const auto c = refiner.counters();
  EXPECT_EQ(c.decisions, kOps);
  EXPECT_EQ(c.explorations + c.exploitations + c.untracked, c.decisions);
  EXPECT_EQ(c.observations + c.staleObservations, kOps);
  EXPECT_LE(refiner.trackedKeys(), kKeys);
}

TEST(Refiner, RejectsBadConfig) {
  RefinerConfig config;
  config.exploreFraction = 1.5;
  EXPECT_THROW(Refiner{config}, Error);
  config = {};
  config.numShards = 0;
  EXPECT_THROW(Refiner{config}, Error);
  config = {};
  config.maxArms = 1;
  EXPECT_THROW(Refiner{config}, Error);
  config = {};
  config.minSamples = 0;
  EXPECT_THROW(Refiner{config}, Error);
}

}  // namespace
}  // namespace tp::adapt
