// Suite-wide property tests, parameterized over all 23 programs: feature
// sanity, scheduler accounting invariants, oracle consistency, and
// determinism of the whole measurement pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "features/runtime_features.hpp"
#include "runtime/evaluation.hpp"
#include "runtime/scheduler.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

namespace tp::suite {
namespace {

class PerBenchmark : public ::testing::TestWithParam<std::string> {
protected:
  const Benchmark& bench() const { return benchmarkByName(GetParam()); }
};

TEST_P(PerBenchmark, StaticFeaturesAreFiniteAndNonNegative) {
  const auto v = features::staticFeatureVector(bench().compiled.features());
  for (const double x : v) {
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_GE(x, 0.0);
  }
}

TEST_P(PerBenchmark, RuntimeFeaturesAreFiniteAndNonNegative) {
  auto inst = bench().make(bench().sizes[1]);
  const auto v = features::runtimeFeatureVector(inst.task.features,
                                                inst.task.launchInfo());
  for (const double x : v) {
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_GE(x, 0.0);
  }
}

TEST_P(PerBenchmark, KernelSourceVerifies) {
  EXPECT_NO_THROW(runtime::CompiledKernel::compile(bench().source()));
}

TEST_P(PerBenchmark, ChunksPartitionTheNDRangeExactly) {
  auto inst = bench().make(bench().sizes.front());
  const runtime::PartitioningSpace space(3, 10);
  vcl::Context ctx(sim::makeMc2(), vcl::ExecMode::TimeOnly, nullptr);
  runtime::Scheduler scheduler(ctx);
  for (const std::size_t idx : {5ul, 23ul, 41ul, 65ul}) {
    const auto result = scheduler.execute(inst.task, space.at(idx));
    std::size_t items = 0;
    for (const auto& d : result.devices) {
      items += d.items(inst.task.localSize);
      EXPECT_GT(d.endTime, 0.0);
      EXPECT_LE(d.endTime, result.makespan + 1e-15);
    }
    EXPECT_EQ(items, inst.task.globalSize);
  }
}

TEST_P(PerBenchmark, SingleDeviceTimesAreAdditive) {
  // On a single device, makespan = transferIn + kernel + transferOut
  // (+ merge); no hidden time.
  auto inst = bench().make(bench().sizes.front());
  const runtime::PartitioningSpace space(3, 10);
  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::TimeOnly, nullptr);
  runtime::Scheduler scheduler(ctx);
  const auto result =
      scheduler.execute(inst.task, space.at(space.singleDeviceIndex(1)));
  ASSERT_EQ(result.devices.size(), 1u);
  const auto& d = result.devices[0];
  EXPECT_NEAR(result.makespan,
              d.transferInSeconds + d.kernelSeconds + d.transferOutSeconds +
                  result.mergeSeconds,
              1e-12);
}

TEST_P(PerBenchmark, MeasurementIsDeterministic) {
  const runtime::PartitioningSpace space(3, 10);
  auto instA = bench().make(bench().sizes.front());
  auto instB = bench().make(bench().sizes.front());
  const auto recA =
      runtime::measureLaunch(instA.task, sim::makeMc2(), space, "s");
  const auto recB =
      runtime::measureLaunch(instB.task, sim::makeMc2(), space, "s");
  EXPECT_EQ(recA.times, recB.times);
  EXPECT_EQ(recA.staticFeatures, recB.staticFeatures);
  EXPECT_EQ(recA.runtimeFeatures, recB.runtimeFeatures);
}

TEST_P(PerBenchmark, LargerProblemsTakeLongerOnBestPartitioning) {
  const runtime::PartitioningSpace space(3, 10);
  double prev = 0.0;
  for (const std::size_t n : bench().sizes) {
    auto inst = bench().make(n);
    std::vector<double> timings;
    runtime::oracleSearch(inst.task, sim::makeMc2(), space, &timings);
    const double best = *std::min_element(timings.begin(), timings.end());
    EXPECT_GT(best, prev * 0.999) << "n=" << n;  // tolerate equal-ish steps
    prev = best;
  }
}

std::vector<std::string> allNames() {
  std::vector<std::string> names;
  for (const auto& b : allBenchmarks()) names.push_back(b.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All23, PerBenchmark, ::testing::ValuesIn(allNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// Cross-suite: every program's best partitioning at its largest size uses
// more than zero total work, and no benchmark ties the suite together so
// tightly that all oracles agree (diversity check).
TEST(SuiteWide, OracleDecisionsAreDiverse) {
  const runtime::PartitioningSpace space(3, 10);
  std::set<int> bestLabels;
  for (const auto& b : allBenchmarks()) {
    auto inst = b.make(b.sizes.back());
    bestLabels.insert(static_cast<int>(
        runtime::oracleSearch(inst.task, sim::makeMc2(), space)));
  }
  EXPECT_GE(bestLabels.size(), 4u)
      << "all programs map to nearly the same optimum — the suite would "
         "teach the model nothing";
}

}  // namespace
}  // namespace tp::suite
