// tp::obs health layer: SloTracker window algebra (empty window, single
// sample, exact rollover boundaries, merge associativity, burn-rate and
// minSamples gating), HealthMonitor state machine (debounce, dedup,
// hysteresis clear, bounded history, throwing rules, background thread)
// and FlightRecorder bundles (schema, prune, sequence continuation,
// attach-once-per-breach). The two Concurrent* tests are the named TSan
// coverage behind the TP_LOCK_FREE_AUDITED markers in obs/slo.* and the
// registerHealthRules sites in serve/ and fleet/.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"

namespace {

using tp::obs::DetectorRule;
using tp::obs::Firing;
using tp::obs::FlightRecorder;
using tp::obs::FlightRecorderConfig;
using tp::obs::HealthCounters;
using tp::obs::HealthEvent;
using tp::obs::HealthMonitor;
using tp::obs::Registry;
using tp::obs::Severity;
using tp::obs::SloConfig;
using tp::obs::SloTracker;

// ---------------------------------------------------------------------------
// Helpers

/// Fresh per-test directory under gtest's temp root, removed on exit.
class TempDir {
public:
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::path(::testing::TempDir()) /
              ("tp_health_" + name)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

private:
  std::filesystem::path path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// A rule driven by an external atomic flag (the test is the detector's
/// world): fires with a fixed payload whenever the flag is up.
DetectorRule flagRule(const std::string& name, std::atomic<bool>& flag,
                      Severity severity = Severity::Warning,
                      std::size_t triggerAfter = 1,
                      std::size_t clearAfter = 1) {
  DetectorRule rule;
  rule.name = name;
  rule.severity = severity;
  rule.triggerAfter = triggerAfter;
  rule.clearAfter = clearAfter;
  rule.evaluate = [&flag]() -> std::optional<Firing> {
    if (!flag.load(std::memory_order_relaxed)) return std::nullopt;
    return Firing{42.0, 7.0, "flag is up"};
  };
  return rule;
}

SloConfig baseSlo() {
  SloConfig config;
  config.windowSeconds = 8.0;  // 4 sub-windows of 2s = 2e9 ticks
  config.subWindows = 4;
  config.targetP99Seconds = 1e-6;   // 1000 ticks
  config.targetP999Seconds = 4e-6;  // 4000 ticks
  config.minSamples = 1;
  config.stripes = 4;
  return config;
}

// ---------------------------------------------------------------------------
// SloTracker: config + empty-window edges

TEST(SloConfig, EnabledNeedsWindowSubWindowsAndATarget) {
  SloConfig config = baseSlo();
  EXPECT_TRUE(config.enabled());
  config.windowSeconds = 0.0;
  EXPECT_FALSE(config.enabled());
  config = baseSlo();
  config.subWindows = 1;
  EXPECT_FALSE(config.enabled());
  config = baseSlo();
  config.targetP99Seconds = 0.0;
  config.targetP999Seconds = 0.0;
  EXPECT_FALSE(config.enabled());
  config.targetP999Seconds = 1e-3;
  EXPECT_TRUE(config.enabled());
}

TEST(SloTracker, EmptyWindowReportsZeroAndNeverBreaches) {
  SloTracker tracker(baseSlo());
  const SloTracker::Report r = tracker.report();
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.subWindowsMerged, 0u);
  EXPECT_DOUBLE_EQ(r.p50Seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.p99Seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.burnRateP99, 0.0);
  EXPECT_DOUBLE_EQ(r.burnRateP999, 0.0);
  EXPECT_FALSE(r.breached);
  EXPECT_TRUE(tracker.liveSubWindows(tp::obs::nowTicks()).empty());
}

TEST(SloTracker, SingleSampleIsEveryQuantile) {
  SloTracker tracker(baseSlo());
  const std::uint64_t st = tracker.sliceTicks();
  tracker.record(500, st + 5);
  const SloTracker::Report r = tracker.reportAt(st + 10);
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(r.subWindowsMerged, 1u);
  EXPECT_GT(r.p50Seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.p50Seconds, r.p99Seconds);
  EXPECT_DOUBLE_EQ(r.p99Seconds, r.p999Seconds);
  // 500ns is inside both targets: no violations, no burn.
  EXPECT_EQ(r.violationsP99, 0u);
  EXPECT_EQ(r.violationsP999, 0u);
  EXPECT_FALSE(r.breached);
}

TEST(SloTracker, ViolationCountsAreExactAndBurnScalesByBudget) {
  SloTracker tracker(baseSlo());
  const std::uint64_t st = tracker.sliceTicks();
  tracker.record(500, st);   // violates neither (<= 1000 and 4000)
  tracker.record(2000, st);  // violates p99 target only
  tracker.record(5000, st);  // violates both
  const SloTracker::Report r = tracker.reportAt(st + 1);
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.violationsP99, 2u);
  EXPECT_EQ(r.violationsP999, 1u);
  // burn = (violations/count) / budget, budgets 1% and 0.1%.
  EXPECT_NEAR(r.burnRateP99, (2.0 / 3.0) / 0.01, 1e-9);
  EXPECT_NEAR(r.burnRateP999, (1.0 / 3.0) / 0.001, 1e-9);
  EXPECT_TRUE(r.breached);  // minSamples = 1 in baseSlo()
}

TEST(SloTracker, MinSamplesGatesBreachReporting) {
  SloConfig config = baseSlo();
  config.minSamples = 10;
  SloTracker tracker(config);
  const std::uint64_t st = tracker.sliceTicks();
  for (int i = 0; i < 5; ++i) tracker.record(50000, st);
  SloTracker::Report r = tracker.reportAt(st + 1);
  EXPECT_GT(r.burnRateP99, 1.0);
  EXPECT_FALSE(r.breached) << "below minSamples the budget cannot page";
  for (int i = 0; i < 5; ++i) tracker.record(50000, st);
  r = tracker.reportAt(st + 1);
  EXPECT_EQ(r.count, 10u);
  EXPECT_TRUE(r.breached);
}

// ---------------------------------------------------------------------------
// SloTracker: rollover boundaries + merge algebra

TEST(SloTracker, ExactRolloverBoundaryAgesSamplesOut) {
  SloTracker tracker(baseSlo());  // 4 sub-windows
  const std::uint64_t st = tracker.sliceTicks();
  tracker.record(100, 1 * st);  // lands exactly at the slice-1 boundary

  // Visible through the whole horizon: current slice in [1, 4].
  EXPECT_EQ(tracker.reportAt(1 * st).count, 1u);
  EXPECT_EQ(tracker.reportAt(2 * st - 1).count, 1u);
  EXPECT_EQ(tracker.reportAt(5 * st - 1).count, 1u)
      << "last tick of slice 4 still covers slice 1";
  // First tick of slice 5: cur - slice == subWindows, aged out exactly.
  EXPECT_EQ(tracker.reportAt(5 * st).count, 0u);
  EXPECT_EQ(tracker.reportAt(5 * st).subWindowsMerged, 0u);
}

TEST(SloTracker, ReportSkipsSubWindowsFromTheFuture) {
  SloTracker tracker(baseSlo());
  const std::uint64_t st = tracker.sliceTicks();
  tracker.record(100, 3 * st);
  // Reporting at an earlier tick must not see slice 3.
  EXPECT_EQ(tracker.reportAt(1 * st).count, 0u);
  EXPECT_EQ(tracker.reportAt(3 * st).count, 1u);
}

TEST(SloTracker, MergeIsAssociativeAndFoldsIntoReport) {
  SloTracker tracker(baseSlo());
  const std::uint64_t st = tracker.sliceTicks();
  // Spread mixed samples across three slices.
  for (std::uint64_t s = 1; s <= 3; ++s) {
    tracker.record(500 + s, s * st);
    tracker.record(2000 + s, s * st + 1);
    tracker.record(5000 + s, s * st + 2);
  }
  const std::uint64_t at = 3 * st + 10;
  const std::vector<SloTracker::WindowSnapshot> snaps =
      tracker.liveSubWindows(at);
  ASSERT_EQ(snaps.size(), 3u);
  // Oldest slice first.
  EXPECT_LT(snaps[0].slice, snaps[1].slice);
  EXPECT_LT(snaps[1].slice, snaps[2].slice);

  // Left fold, right fold, and a pairwise tree must all agree.
  SloTracker::WindowSnapshot left = snaps[0];
  left.merge(snaps[1]);
  left.merge(snaps[2]);
  SloTracker::WindowSnapshot right = snaps[2];
  right.merge(snaps[1]);
  right.merge(snaps[0]);
  SloTracker::WindowSnapshot pair = snaps[1];
  pair.merge(snaps[2]);
  SloTracker::WindowSnapshot tree = snaps[0];
  tree.merge(pair);

  for (const SloTracker::WindowSnapshot* snap : {&right, &tree}) {
    EXPECT_EQ(left.hist.count, snap->hist.count);
    EXPECT_EQ(left.hist.sum, snap->hist.sum);
    EXPECT_EQ(left.violationsP99, snap->violationsP99);
    EXPECT_EQ(left.violationsP999, snap->violationsP999);
    EXPECT_EQ(left.hist.quantile(0.5), snap->hist.quantile(0.5));
    EXPECT_EQ(left.hist.quantile(0.99), snap->hist.quantile(0.99));
  }

  // report() is exactly the fold of merge() over the live sub-windows.
  const SloTracker::Report r = tracker.reportAt(at);
  EXPECT_EQ(r.count, left.hist.count);
  EXPECT_EQ(r.count, 9u);
  EXPECT_EQ(r.violationsP99, left.violationsP99);
  EXPECT_EQ(r.violationsP999, left.violationsP999);
  EXPECT_EQ(r.subWindowsMerged, snaps.size());
}

TEST(SloTracker, RingReusesSubWindowsAcrossManyRotations) {
  SloTracker tracker(baseSlo());  // 4 sub-windows
  const std::uint64_t st = tracker.sliceTicks();
  // 20 slices over a 4-slot ring: each rotation must zero the reused
  // slot, so every report sees only its own slice's single sample.
  for (std::uint64_t s = 1; s <= 20; ++s) {
    tracker.record(100, s * st);
    const SloTracker::Report r = tracker.reportAt(s * st);
    EXPECT_LE(r.count, 4u) << "stale samples leaked through rotation";
  }
  EXPECT_EQ(tracker.reportAt(20 * st).count, 4u);
}

// The named TSan coverage behind the TP_LOCK_FREE_AUDITED markers on
// SloTracker::rotate / snapshotSub / record: recorders hammer a tracker
// whose slices roll over every ~1ms (forcing rotation races) while a
// reader drains reports. Per-stripe seqlock copies must stay internally
// consistent — bucket sums equal counts, violations never exceed counts
// — and no sample may be torn into a partial state.
TEST(SloTracker, ConcurrentRecordWhileRotateKeepsTotalsSane) {
  SloConfig config;
  config.windowSeconds = 0.004;  // 4 slices of 1ms: rotations are hot
  config.subWindows = 4;
  config.targetP99Seconds = 1e-6;
  config.targetP999Seconds = 4e-6;
  config.minSamples = 1;
  config.stripes = 4;
  SloTracker tracker(config);

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t at = tp::obs::nowTicks();
      for (const SloTracker::WindowSnapshot& snap :
           tracker.liveSubWindows(at)) {
        std::uint64_t bucketSum = 0;
        for (const std::uint64_t b : snap.hist.buckets) bucketSum += b;
        EXPECT_EQ(bucketSum, snap.hist.count) << "torn stripe copy";
        EXPECT_LE(snap.violationsP99, snap.hist.count);
        EXPECT_LE(snap.violationsP999, snap.hist.count);
      }
      const SloTracker::Report r = tracker.reportAt(at);
      EXPECT_LE(r.violationsP99, r.count);
      EXPECT_LE(r.violationsP999, r.count);
      EXPECT_LE(r.count, kThreads * kPerThread);
    }
  });

  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&tracker, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tracker.record(100 + (i + static_cast<std::uint64_t>(t)) % 6000);
      }
    });
  }
  for (std::thread& worker : recorders) worker.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // After the dust settles the live window still reports sanely (the
  // horizon may have aged early samples out, so <= is the contract).
  const SloTracker::Report r = tracker.report();
  EXPECT_LE(r.count, kThreads * kPerThread);
  EXPECT_LE(r.violationsP99, r.count);
}

// ---------------------------------------------------------------------------
// HealthMonitor: state machine

TEST(HealthMonitor, SeverityNamesMatchExposition) {
  EXPECT_STREQ(tp::obs::severityName(Severity::Info), "info");
  EXPECT_STREQ(tp::obs::severityName(Severity::Warning), "warning");
  EXPECT_STREQ(tp::obs::severityName(Severity::Critical), "critical");
}

TEST(HealthMonitor, RejectsMalformedRules) {
  HealthMonitor monitor;
  DetectorRule unnamed;
  unnamed.evaluate = [] { return std::nullopt; };
  EXPECT_THROW(monitor.addRule(unnamed), tp::Error);
  DetectorRule noFn;
  noFn.name = "x";
  EXPECT_THROW(monitor.addRule(noFn), tp::Error);
  std::atomic<bool> flag{false};
  monitor.addRule(flagRule("x", flag));
  EXPECT_THROW(monitor.addRule(flagRule("x", flag)), tp::Error)
      << "duplicate rule names must be rejected";
  EXPECT_EQ(monitor.ruleCount(), 1u);
}

TEST(HealthMonitor, DebounceEmitsExactlyOneEventPerSustainedBreach) {
  HealthMonitor monitor;
  std::atomic<bool> flag{true};
  monitor.addRule(flagRule("test.breach", flag, Severity::Critical,
                           /*triggerAfter=*/2, /*clearAfter=*/2));

  EXPECT_EQ(monitor.evaluateOnce(), 0u) << "debounce holds the first firing";
  EXPECT_EQ(monitor.evaluateOnce(), 1u);
  EXPECT_EQ(monitor.evaluateOnce(), 0u) << "sustained breach is deduped";
  EXPECT_EQ(monitor.evaluateOnce(), 0u);

  const std::vector<HealthEvent> events = monitor.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].rule, "test.breach");
  EXPECT_EQ(events[0].severity, Severity::Critical);
  EXPECT_EQ(events[0].message, "flag is up");
  EXPECT_DOUBLE_EQ(events[0].value, 42.0);
  EXPECT_DOUBLE_EQ(events[0].threshold, 7.0);
  EXPECT_FALSE(events[0].cleared);
  EXPECT_GT(events[0].ticks, 0u);

  const HealthCounters hc = monitor.counters();
  EXPECT_EQ(hc.evaluations, 4u);
  EXPECT_EQ(hc.firings, 4u);
  EXPECT_EQ(hc.eventsEmitted, 1u);
  EXPECT_EQ(hc.suppressedFirings, 2u);
  EXPECT_EQ(hc.eventsCleared, 0u);
}

TEST(HealthMonitor, HysteresisClearsOnceThenRefires) {
  HealthMonitor monitor;
  std::atomic<bool> flag{true};
  monitor.addRule(flagRule("test.flap", flag, Severity::Warning,
                           /*triggerAfter=*/1, /*clearAfter=*/2));

  EXPECT_EQ(monitor.evaluateOnce(), 1u);  // active
  flag = false;
  EXPECT_EQ(monitor.evaluateOnce(), 0u) << "one quiet pass is not recovery";
  EXPECT_EQ(monitor.evaluateOnce(), 1u);  // cleared event
  EXPECT_EQ(monitor.evaluateOnce(), 0u) << "staying quiet emits nothing";

  std::vector<HealthEvent> events = monitor.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].cleared);
  EXPECT_EQ(events[1].severity, Severity::Info) << "recoveries are info";
  EXPECT_EQ(events[1].message, "recovered");
  EXPECT_DOUBLE_EQ(events[1].value, 42.0) << "echoes the last firing";
  EXPECT_DOUBLE_EQ(events[1].threshold, 7.0);
  EXPECT_EQ(events[1].seq, 2u);

  // A genuine re-breach is a NEW event, not a suppressed one.
  flag = true;
  EXPECT_EQ(monitor.evaluateOnce(), 1u);
  events = monitor.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_FALSE(events[2].cleared);
  EXPECT_EQ(events[2].seq, 3u);
  const HealthCounters hc = monitor.counters();
  EXPECT_EQ(hc.eventsEmitted, 2u);
  EXPECT_EQ(hc.eventsCleared, 1u);
}

TEST(HealthMonitor, CallbackRunsOutsideMutexOncePerEvent) {
  HealthMonitor monitor;
  std::atomic<bool> flag{true};
  monitor.addRule(flagRule("test.cb", flag));
  std::vector<std::uint64_t> seen;
  std::size_t historyAtCallback = 0;
  monitor.onEvent([&](const HealthEvent& event) {
    seen.push_back(event.seq);
    // Reading the monitor from the callback would deadlock if the
    // monitor mutex were still held — the contract says it is not.
    historyAtCallback = monitor.events().size();
  });
  monitor.evaluateOnce();  // emit
  flag = false;
  monitor.evaluateOnce();  // clear (clearAfter = 1)
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1u);
  EXPECT_EQ(seen[1], 2u);
  EXPECT_EQ(historyAtCallback, 2u) << "event visible in history by callback";
}

TEST(HealthMonitor, HistoryIsBoundedOldestFirst) {
  HealthMonitor monitor(/*historyCapacity=*/4);
  std::atomic<bool> flag{false};
  monitor.addRule(flagRule("test.bound", flag));
  // Toggle every pass: each evaluation emits (event, cleared, event, ...).
  for (int i = 0; i < 10; ++i) {
    flag = (i % 2) == 0;
    EXPECT_EQ(monitor.evaluateOnce(), 1u);
  }
  const std::vector<HealthEvent> events = monitor.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 7u) << "oldest events dropped";
  EXPECT_EQ(events.back().seq, 10u);
  const HealthCounters hc = monitor.counters();
  EXPECT_EQ(hc.eventsEmitted + hc.eventsCleared, 10u);
}

TEST(HealthMonitor, ThrowingRuleIsCountedAndOthersStillRun) {
  HealthMonitor monitor;
  DetectorRule bad;
  bad.name = "test.bad";
  bad.evaluate = []() -> std::optional<Firing> {
    throw std::runtime_error("detector exploded");
  };
  monitor.addRule(bad);
  std::atomic<bool> flag{true};
  monitor.addRule(flagRule("test.good", flag));
  EXPECT_EQ(monitor.evaluateOnce(), 1u) << "good rule still evaluated";
  const HealthCounters hc = monitor.counters();
  EXPECT_EQ(hc.ruleErrors, 1u);
  EXPECT_EQ(hc.eventsEmitted, 1u);
  ASSERT_EQ(monitor.events().size(), 1u);
  EXPECT_EQ(monitor.events()[0].rule, "test.good");
}

TEST(HealthMonitor, RemoveRulesByPrefixUnhooksComponents) {
  HealthMonitor monitor;
  std::atomic<bool> flag{false};
  monitor.addRule(flagRule("serve.a", flag));
  monitor.addRule(flagRule("serve.b", flag));
  monitor.addRule(flagRule("fleet.c", flag));
  EXPECT_EQ(monitor.ruleCount(), 3u);
  EXPECT_EQ(monitor.removeRulesByPrefix("serve."), 2u);
  EXPECT_EQ(monitor.ruleCount(), 1u);
  EXPECT_EQ(monitor.removeRulesByPrefix("nomatch."), 0u);
}

TEST(HealthMonitor, BackgroundThreadEvaluatesAndStopsIdempotently) {
  HealthMonitor monitor;
  std::atomic<bool> flag{false};
  monitor.addRule(flagRule("test.bg", flag));
  EXPECT_FALSE(monitor.running());
  EXPECT_THROW(monitor.start(0.0), tp::Error);
  monitor.start(0.0005);
  EXPECT_TRUE(monitor.running());
  EXPECT_THROW(monitor.start(0.0005), tp::Error) << "already running";
  // Wait (bounded) for a few background passes.
  for (int i = 0; i < 2000 && monitor.counters().evaluations < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(monitor.counters().evaluations, 3u);
  monitor.stop();
  EXPECT_FALSE(monitor.running());
  monitor.stop();  // idempotent
  // Restart after stop is allowed.
  monitor.start(0.0005);
  EXPECT_TRUE(monitor.running());
  monitor.stop();
}

// The named TSan coverage behind the registerHealthRules audits in
// serve::PartitionService and fleet::Replica: rules fire and clear while
// the background thread, foreground evaluators, history/counter readers
// and an attached FlightRecorder all drain the monitor concurrently.
// Event seqs must stay strictly increasing, recoveries must stay Info,
// and the counters must reconcile with what the history shows.
TEST(HealthMonitor, BreachWhileDrainStaysConsistent) {
  TempDir dir("breach_drain");
  HealthMonitor monitor(/*historyCapacity=*/64);
  std::atomic<bool> flag{false};
  monitor.addRule(flagRule("test.storm", flag, Severity::Warning,
                           /*triggerAfter=*/2, /*clearAfter=*/2));

  Registry registry;
  registry.counter("test.drain_counter").add(3);
  FlightRecorderConfig rc;
  rc.dir = dir.str();
  rc.keepLast = 4;
  rc.metrics = &registry;
  rc.health = &monitor;
  FlightRecorder recorder(rc);
  recorder.attach();

  std::atomic<bool> done{false};
  monitor.start(0.0002);

  std::thread mutator([&] {
    for (int i = 0; i < 100; ++i) {
      flag.store((i % 2) == 0, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    flag.store(false, std::memory_order_relaxed);
  });
  std::vector<std::thread> evaluators;
  for (int t = 0; t < 2; ++t) {
    evaluators.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        monitor.evaluateOnce();
      }
    });
  }
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<HealthEvent> events = monitor.events();
      std::uint64_t lastSeq = 0;
      for (const HealthEvent& event : events) {
        EXPECT_GT(event.seq, lastSeq) << "history seqs must increase";
        lastSeq = event.seq;
        if (event.cleared) {
          EXPECT_EQ(event.severity, Severity::Info);
        }
      }
      const HealthCounters hc = monitor.counters();
      EXPECT_LE(events.size(), hc.eventsEmitted + hc.eventsCleared);
      EXPECT_LE(hc.eventsEmitted, hc.firings);
    }
  });

  mutator.join();
  done.store(true, std::memory_order_release);
  for (std::thread& worker : evaluators) worker.join();
  drainer.join();
  monitor.stop();

  const HealthCounters hc = monitor.counters();
  EXPECT_GE(hc.evaluations, 100u);
  EXPECT_GE(hc.eventsEmitted, 1u) << "the storm must have breached";
  EXPECT_GE(recorder.bundleCount(), 1u) << "attach() must have dumped";
  EXPECT_LE(recorder.bundleCount(), 4u) << "keepLast must prune";
}

// ---------------------------------------------------------------------------
// FlightRecorder: bundles

TEST(FlightRecorder, DumpWritesSchemaBundleWithAllSections) {
  TempDir dir("dump_schema");
  Registry registry;
  registry.counter("test.requests").add(5);
  HealthMonitor monitor;
  std::atomic<bool> flag{true};
  monitor.addRule(flagRule("test.rule", flag, Severity::Critical));
  monitor.evaluateOnce();

  FlightRecorderConfig rc;
  rc.dir = dir.str();
  rc.metrics = &registry;
  rc.health = &monitor;
  FlightRecorder recorder(rc);
  EXPECT_EQ(recorder.highestSequence(), 0u);
  EXPECT_EQ(recorder.bundleCount(), 0u);

  const std::uint64_t seq = recorder.dump("unit test");
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(recorder.highestSequence(), 1u);
  EXPECT_EQ(recorder.bundleCount(), 1u);

  const std::string body = slurp(recorder.pathFor(seq));
  EXPECT_NE(body.find("\"schema\":\"tp-postmortem-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"reason\":\"unit test\""), std::string::npos);
  EXPECT_NE(body.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(body.find("\"kept_events\":"), std::string::npos);
  EXPECT_NE(body.find("\"trace\":"), std::string::npos);
  EXPECT_NE(body.find("\"test.requests\":5"), std::string::npos);
  EXPECT_NE(body.find("\"rule\":\"test.rule\""), std::string::npos);
  EXPECT_NE(body.find("\"severity\":\"critical\""), std::string::npos);
  EXPECT_NE(body.find("\"health_counters\":"), std::string::npos);
}

TEST(FlightRecorder, NullSourcesEmitEmptyButValidSections) {
  TempDir dir("dump_null");
  FlightRecorderConfig rc;
  rc.dir = dir.str();
  FlightRecorder recorder(rc);  // no metrics, no trace, no health
  recorder.dump("bare");
  const std::string body = slurp(recorder.pathFor(1));
  EXPECT_NE(body.find("\"kept_events\":0"), std::string::npos);
  EXPECT_NE(body.find("\"health_events\":[]"), std::string::npos);
  EXPECT_NE(body.find("\"schema\":\"tp-postmortem-v1\""), std::string::npos);
}

TEST(FlightRecorder, KeepLastPrunesOldestBundles) {
  TempDir dir("prune");
  FlightRecorderConfig rc;
  rc.dir = dir.str();
  rc.keepLast = 2;
  FlightRecorder recorder(rc);
  for (int i = 0; i < 4; ++i) recorder.dump("prune test");
  EXPECT_EQ(recorder.highestSequence(), 4u);
  EXPECT_EQ(recorder.bundleCount(), 2u);
  EXPECT_FALSE(std::filesystem::exists(recorder.pathFor(1)));
  EXPECT_FALSE(std::filesystem::exists(recorder.pathFor(2)));
  EXPECT_TRUE(std::filesystem::exists(recorder.pathFor(3)));
  EXPECT_TRUE(std::filesystem::exists(recorder.pathFor(4)));
}

TEST(FlightRecorder, SequencesContinueAcrossRecorderInstances) {
  TempDir dir("reopen");
  FlightRecorderConfig rc;
  rc.dir = dir.str();
  {
    FlightRecorder first(rc);
    EXPECT_EQ(first.dump("a"), 1u);
    EXPECT_EQ(first.dump("b"), 2u);
  }
  FlightRecorder second(rc);
  EXPECT_EQ(second.highestSequence(), 2u);
  EXPECT_EQ(second.dump("c"), 3u) << "black box never reuses a sequence";
}

TEST(FlightRecorder, AttachDumpsOncePerBreachAndIgnoresRecoveries) {
  TempDir dir("attach");
  HealthMonitor monitor;
  std::atomic<bool> flag{true};
  monitor.addRule(flagRule("test.attach", flag, Severity::Warning));
  FlightRecorderConfig rc;
  rc.dir = dir.str();
  rc.health = &monitor;
  rc.dumpAtOrAbove = Severity::Warning;
  FlightRecorder recorder(rc);
  recorder.attach();

  monitor.evaluateOnce();  // breach -> 1 bundle
  EXPECT_EQ(recorder.bundleCount(), 1u);
  monitor.evaluateOnce();  // suppressed -> no new bundle
  monitor.evaluateOnce();
  EXPECT_EQ(recorder.bundleCount(), 1u) << "dedup means one bundle";
  flag = false;
  monitor.evaluateOnce();  // cleared (info) -> recoveries never dump
  EXPECT_EQ(recorder.bundleCount(), 1u);
  flag = true;
  monitor.evaluateOnce();  // re-breach -> second bundle
  EXPECT_EQ(recorder.bundleCount(), 2u);
}

TEST(FlightRecorder, AttachRespectsSeverityFloor) {
  TempDir dir("floor");
  HealthMonitor monitor;
  std::atomic<bool> flag{true};
  monitor.addRule(flagRule("test.floor", flag, Severity::Info));
  FlightRecorderConfig rc;
  rc.dir = dir.str();
  rc.health = &monitor;
  rc.dumpAtOrAbove = Severity::Warning;
  FlightRecorder recorder(rc);
  recorder.attach();
  monitor.evaluateOnce();
  EXPECT_EQ(monitor.counters().eventsEmitted, 1u);
  EXPECT_EQ(recorder.bundleCount(), 0u) << "info events stay below the floor";
}

}  // namespace
