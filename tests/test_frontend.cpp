// Frontend tests: lexer token streams, parser acceptance over the whole
// subset, precise rejection diagnostics, and print→reparse round trips.

#include <gtest/gtest.h>

#include "frontend/builtins.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verify.hpp"

namespace tp::frontend {
namespace {

TEST(Lexer, BasicTokens) {
  const auto tokens = tokenize("int x = 42 + y;");
  ASSERT_GE(tokens.size(), 7u);
  EXPECT_TRUE(tokens[0].isKeyword("int"));
  EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
  EXPECT_TRUE(tokens[2].isPunct("="));
  EXPECT_EQ(tokens[3].kind, TokenKind::IntLiteral);
  EXPECT_EQ(tokens[3].intValue, 42);
  EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);
}

TEST(Lexer, FloatLiterals) {
  const auto tokens = tokenize("1.5f 2.0 3e4 5.0e-2f 7f");
  EXPECT_EQ(tokens[0].kind, TokenKind::FloatLiteral);
  EXPECT_FLOAT_EQ(static_cast<float>(tokens[0].floatValue), 1.5f);
  EXPECT_EQ(tokens[1].kind, TokenKind::FloatLiteral);
  EXPECT_EQ(tokens[2].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].floatValue, 3e4);
  EXPECT_EQ(tokens[3].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[3].floatValue, 0.05);
  EXPECT_EQ(tokens[4].kind, TokenKind::FloatLiteral);  // 7f
}

TEST(Lexer, MultiCharPunctuation) {
  const auto tokens = tokenize("a += b << 2 && c >= d");
  EXPECT_TRUE(tokens[1].isPunct("+="));
  EXPECT_TRUE(tokens[3].isPunct("<<"));
  EXPECT_TRUE(tokens[5].isPunct("&&"));
  EXPECT_TRUE(tokens[7].isPunct(">="));
}

TEST(Lexer, CommentsSkipped) {
  const auto tokens = tokenize("x // line comment\n/* block\ncomment */ y");
  ASSERT_EQ(tokens.size(), 3u);  // x, y, EOF
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].text, "y");
}

TEST(Lexer, LineAndColumnTracking) {
  const auto tokens = tokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, ErrorsOnGarbage) {
  EXPECT_THROW(tokenize("a $ b"), ParseError);
  EXPECT_THROW(tokenize("/* unterminated"), ParseError);
}

TEST(Builtins, TableLookups) {
  EXPECT_TRUE(findBuiltin("get_global_id").has_value());
  EXPECT_EQ(findBuiltin("sqrt")->cls, BuiltinClass::MathHeavy);
  EXPECT_EQ(findBuiltin("fmax")->cls, BuiltinClass::MathLight);
  EXPECT_EQ(findBuiltin("atomic_add")->cls, BuiltinClass::Atomic);
  EXPECT_FALSE(findBuiltin("no_such_fn").has_value());
  EXPECT_GT(builtinNames().size(), 20u);
}

const char* kMinimalKernel = R"(
__kernel void copy(__global const float* in, __global float* out, int n) {
  int i = get_global_id(0);
  if (i < n) {
    out[i] = in[i];
  }
}
)";

TEST(Parser, MinimalKernel) {
  const auto program = parseProgram(kMinimalKernel);
  ASSERT_EQ(program->kernels().size(), 1u);
  const auto& k = *program->kernels()[0];
  EXPECT_EQ(k.name(), "copy");
  ASSERT_EQ(k.params().size(), 3u);
  EXPECT_TRUE(k.params()[0].type.isPointer());
  EXPECT_EQ(k.params()[0].type.addrSpace(), ir::AddrSpace::Global);
  EXPECT_FALSE(k.params()[2].type.isPointer());
  EXPECT_TRUE(ir::verifyKernel(k).empty());
}

TEST(Parser, SingleKernelHelper) {
  const auto kernel = parseSingleKernel(kMinimalKernel);
  EXPECT_EQ(kernel->name(), "copy");
}

TEST(Parser, AllOperatorsAndPrecedence) {
  const char* src = R"(
__kernel void ops(__global int* o, int a, int b) {
  int x = a + b * 2 - a / 2 % 3;
  int y = (a << 2) >> 1 & 7 | 8 ^ 3;
  bool c = a < b && b <= a || a == b && a != b;
  int z = c ? x : y;
  int w = -a + !c;
  o[get_global_id(0)] = x + y + z + w;
}
)";
  const auto kernel = parseSingleKernel(src);
  EXPECT_TRUE(ir::verifyKernel(*kernel).empty());
}

TEST(Parser, CompoundAssignmentsDesugar) {
  const char* src = R"(
__kernel void compound(__global float* o, int n) {
  int i = get_global_id(0);
  float acc = 0.0f;
  acc += 1.0f;
  acc -= 0.5f;
  acc *= 2.0f;
  acc /= 4.0f;
  i++;
  i--;
  o[get_global_id(0)] = acc;
}
)";
  const auto kernel = parseSingleKernel(src);
  EXPECT_TRUE(ir::verifyKernel(*kernel).empty());
}

TEST(Parser, CanonicalForLoops) {
  const char* src = R"(
__kernel void loops(__global float* o, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; i++) {
    acc += 1.0f;
  }
  for (int j = 2; j <= n; j += 4) {
    acc += 2.0f;
  }
  o[get_global_id(0)] = acc;
}
)";
  const auto kernel = parseSingleKernel(src);
  EXPECT_TRUE(ir::verifyKernel(*kernel).empty());
}

TEST(Parser, RejectsNonCanonicalFor) {
  const char* decrementing = R"(
__kernel void bad(__global float* o, int n) {
  for (int i = n; i > 0; i--) { o[i] = 0.0f; }
}
)";
  EXPECT_THROW(parseProgram(decrementing), ParseError);
}

TEST(Parser, WhileBreakContinue) {
  const char* src = R"(
__kernel void wloop(__global int* o, int n) {
  int i = 0;
  int acc = 0;
  while (i < n) {
    i++;
    if (i == 3) {
      continue;
    }
    if (i > 100) {
      break;
    }
    acc += i;
  }
  o[get_global_id(0)] = acc;
}
)";
  const auto kernel = parseSingleKernel(src);
  EXPECT_TRUE(ir::verifyKernel(*kernel).empty());
}

TEST(Parser, LocalArraysAndBarrier) {
  const char* src = R"(
__kernel void shmem(__global float* o, int n) {
  __local float tile[64];
  float priv[4];
  int lid = get_local_id(0);
  tile[lid] = 1.0f;
  priv[0] = 2.0f;
  barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE);
  o[get_global_id(0)] = tile[lid] + priv[0];
}
)";
  const auto kernel = parseSingleKernel(src);
  EXPECT_TRUE(ir::verifyKernel(*kernel).empty());
}

TEST(Parser, CastsAndBuiltins) {
  const char* src = R"(
__kernel void casts(__global float* o, int n) {
  int i = get_global_id(0);
  float f = (float)i / (float)n;
  int t = (int)(f * 10.0f);
  o[i] = sqrt(fabs(f)) + exp(f) + pow(f, 2.0f) + fmin(f, 1.0f)
       + (float)max(t, 3) + mad(f, f, f);
}
)";
  const auto kernel = parseSingleKernel(src);
  EXPECT_TRUE(ir::verifyKernel(*kernel).empty());
}

TEST(Parser, UnsignedTypes) {
  const char* src = R"(
__kernel void uns(__global uint* o, unsigned int n) {
  uint i = (uint)get_global_id(0);
  o[i] = i + 1u;
}
)";
  const auto kernel = parseSingleKernel(src);
  EXPECT_EQ(kernel->params()[1].type.scalarKind(), ir::Scalar::UInt);
}

TEST(Parser, MultipleKernelsInOneProgram) {
  const char* src = R"(
__kernel void first(__global float* a) { a[get_global_id(0)] = 1.0f; }
__kernel void second(__global float* b) { b[get_global_id(0)] = 2.0f; }
)";
  const auto program = parseProgram(src);
  ASSERT_EQ(program->kernels().size(), 2u);
  EXPECT_NE(program->findKernel("first"), nullptr);
  EXPECT_NE(program->findKernel("second"), nullptr);
  EXPECT_EQ(program->findKernel("third"), nullptr);
  EXPECT_THROW(parseSingleKernel(src), Error);
}

struct RejectCase {
  const char* name;
  const char* source;
};

class ParserRejects : public ::testing::TestWithParam<RejectCase> {};

TEST_P(ParserRejects, ThrowsParseError) {
  EXPECT_THROW(parseProgram(GetParam().source), Error);
}

INSTANTIATE_TEST_SUITE_P(
    BadPrograms, ParserRejects,
    ::testing::Values(
        RejectCase{"undeclared_var",
                   "__kernel void k(__global float* o) { o[0] = x; }"},
        RejectCase{"unknown_function",
                   "__kernel void k(__global float* o) { o[0] = frob(1.0f); }"},
        RejectCase{"wrong_arity",
                   "__kernel void k(__global float* o) { o[0] = sqrt(); }"},
        RejectCase{"subscript_scalar",
                   "__kernel void k(__global float* o, int n) { o[0] = n[0]; }"},
        RejectCase{"pointer_without_space",
                   "__kernel void k(float* o) { o[0] = 1.0f; }"},
        RejectCase{"missing_semicolon",
                   "__kernel void k(__global float* o) { o[0] = 1.0f }"},
        RejectCase{"unterminated_block",
                   "__kernel void k(__global float* o) { o[0] = 1.0f;"},
        RejectCase{"assign_to_rvalue",
                   "__kernel void k(__global float* o, int n) { n + 1 = 2; }"},
        RejectCase{"empty_program", "   /* nothing */  "},
        RejectCase{"non_void_kernel",
                   "__kernel int k(__global float* o) { return 1; }"}),
    [](const ::testing::TestParamInfo<RejectCase>& info) {
      return info.param.name;
    });

TEST(Parser, ErrorsCarryLocation) {
  try {
    parseProgram("__kernel void k(__global float* o) {\n  o[0] = x;\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 0);
  }
}

// Print → reparse round trip over every suite-style construct.
TEST(Printer, RoundTripReparses) {
  const char* src = R"(
__kernel void roundtrip(__global const float* a, __global float* b, int n) {
  int i = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < n; k += 2) {
    if (k % 4 == 0) {
      acc += a[i] * 2.0f;
    } else {
      acc -= a[i];
    }
  }
  int s = n;
  while (s > 0) {
    s = s / 2;
    acc += 1.0f;
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  b[i] = acc > 0.0f ? sqrt(acc) : 0.0f;
}
)";
  const auto kernel = parseSingleKernel(src);
  const std::string printed = ir::printKernel(*kernel);
  const auto reparsed = parseSingleKernel(printed);
  EXPECT_EQ(reparsed->name(), kernel->name());
  // The round trip must be a fixed point after one iteration.
  EXPECT_EQ(ir::printKernel(*reparsed), printed);
}

}  // namespace
}  // namespace tp::frontend
