// vcl (virtual OpenCL) layer tests: buffers, bounds-checked views, atomic
// view operations, launch-argument typing, simulated queues/events, and
// work-group geometry.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ocl/buffer.hpp"
#include "ocl/context.hpp"
#include "ocl/kernel.hpp"
#include "ocl/queue.hpp"
#include "ocl/view.hpp"
#include "sim/machine.hpp"

namespace tp::vcl {
namespace {

TEST(Buffer, TypedAccessAndFill) {
  Buffer buf(ElemKind::F32, 16);
  EXPECT_EQ(buf.size(), 16u);
  EXPECT_EQ(buf.bytes(), 64u);
  std::vector<float> values(16);
  for (std::size_t i = 0; i < 16; ++i) values[i] = static_cast<float>(i);
  buf.fill(values);
  EXPECT_FLOAT_EQ(buf.at<float>(7), 7.0f);
  EXPECT_EQ(buf.toVector<float>(), values);
  buf.zero();
  EXPECT_FLOAT_EQ(buf.at<float>(7), 0.0f);
}

TEST(Buffer, FillSizeMismatchThrows) {
  Buffer buf(ElemKind::I32, 4);
  EXPECT_THROW(buf.fill(std::vector<int>{1, 2, 3}), Error);
}

TEST(Buffer, IntAndUnsignedKinds) {
  Buffer bi(ElemKind::I32, 2);
  bi.at<int>(0) = -5;
  EXPECT_EQ(bi.at<int>(0), -5);
  Buffer bu(ElemKind::U32, 2);
  bu.at<unsigned>(1) = 7u;
  EXPECT_EQ(bu.at<unsigned>(1), 7u);
}

TEST(BufferView, AbsoluteIndexingWithinSlice) {
  std::vector<float> storage(100, 0.0f);
  BufferView<float> view(storage.data(), 40, 20);  // [40, 60)
  view[40] = 1.5f;
  view[59] = 2.5f;
  EXPECT_FLOAT_EQ(storage[40], 1.5f);
  EXPECT_FLOAT_EQ(storage[59], 2.5f);
  EXPECT_FLOAT_EQ(view.load(40), 1.5f);
}

TEST(BufferView, OutOfSliceAccessThrows) {
  std::vector<float> storage(100, 0.0f);
  BufferView<float> view(storage.data(), 40, 20);
  EXPECT_THROW(view[39], Error);
  EXPECT_THROW(view[60], Error);
  EXPECT_THROW(view[0], Error);
  EXPECT_NO_THROW(view[40]);
  EXPECT_NO_THROW(view[59]);
}

TEST(BufferView, AtomicAddIsAtomicUnderContention) {
  std::vector<int> storage(4, 0);
  BufferView<int> view(storage.data(), 0, 4);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&view] {
      for (int i = 0; i < kIncrements; ++i) view.atomicAdd(2, 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(storage[2], kThreads * kIncrements);
}

TEST(LaunchArgs, TypedSlots) {
  std::vector<float> f(8);
  std::vector<int> i(8);
  LaunchArgs args;
  args.addView(BufferView<float>(f.data(), 0, 8));
  args.addView(BufferView<int>(i.data(), 0, 8));
  args.addScalar(42);
  args.addScalar(2.5f);
  EXPECT_EQ(args.size(), 4u);
  EXPECT_EQ(args.view<float>(0).count(), 8u);
  EXPECT_EQ(args.view<int>(1).count(), 8u);
  EXPECT_EQ(args.scalarInt(2), 42);
  EXPECT_FLOAT_EQ(args.scalarFloat(3), 2.5f);
}

TEST(WorkGroupCtx, GlobalIdGeometry) {
  WorkGroupCtx ctx;
  ctx.groupId = 5;
  ctx.localSize = 64;
  ctx.globalSize = 1024;
  ctx.numGroups = 16;
  EXPECT_EQ(ctx.globalId(0), 320u);
  EXPECT_EQ(ctx.globalId(63), 383u);
}

features::KernelFeatures trivialFeatures() {
  features::KernelFeatures f;
  f.floatOps = ir::WorkExpr::constant(10.0);
  f.globalLoads = ir::WorkExpr::constant(1.0);
  f.globalStores = ir::WorkExpr::constant(1.0);
  return f;
}

TEST(CommandQueue, InOrderTimeline) {
  const auto machine = sim::makeMc2();
  CommandQueue queue(machine.devices[1], ExecMode::TimeOnly, nullptr);

  const Event w = queue.enqueueWrite(1e6);
  EXPECT_DOUBLE_EQ(w.start, 0.0);
  EXPECT_GT(w.end, w.start);

  WorkGroupCtx ctx;
  ctx.localSize = 64;
  ctx.globalSize = 4096;
  ctx.numGroups = 64;
  const Event k = queue.enqueueKernel(trivialFeatures(), {}, 0, 64, ctx,
                                      nullptr, LaunchArgs{});
  EXPECT_DOUBLE_EQ(k.start, w.end);  // in-order
  EXPECT_GT(k.duration(), 0.0);

  const Event r = queue.enqueueRead(1e6);
  EXPECT_DOUBLE_EQ(r.start, k.end);
  EXPECT_DOUBLE_EQ(queue.now(), r.end);

  queue.resetClock();
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

TEST(CommandQueue, EmptyChunkCostsNothing) {
  const auto machine = sim::makeMc1();
  CommandQueue queue(machine.devices[0], ExecMode::TimeOnly, nullptr);
  WorkGroupCtx ctx;
  ctx.localSize = 64;
  ctx.globalSize = 1024;
  ctx.numGroups = 16;
  const Event e = queue.enqueueKernel(trivialFeatures(), {}, 4, 4, ctx,
                                      nullptr, LaunchArgs{});
  EXPECT_DOUBLE_EQ(e.duration(), 0.0);
}

TEST(CommandQueue, ComputeModeExecutesEachGroupExactlyOnce) {
  const auto machine = sim::makeMc1();
  common::ThreadPool pool(4);
  CommandQueue queue(machine.devices[0], ExecMode::Compute, &pool);

  std::vector<std::atomic<int>> hits(16);
  WorkGroupCtx ctx;
  ctx.localSize = 64;
  ctx.globalSize = 1024;
  ctx.numGroups = 16;
  const NativeKernel kernel = [&hits](const WorkGroupCtx& wg,
                                      const LaunchArgs&) {
    hits[wg.groupId]++;
  };
  queue.enqueueKernel(trivialFeatures(), {}, 3, 11, ctx, kernel,
                      LaunchArgs{});
  for (std::size_t g = 0; g < 16; ++g) {
    EXPECT_EQ(hits[g].load(), (g >= 3 && g < 11) ? 1 : 0) << "group " << g;
  }
}

TEST(Context, DevicesAndClocks) {
  Context ctx(sim::makeMc1(), ExecMode::TimeOnly, nullptr);
  EXPECT_EQ(ctx.numDevices(), 3u);
  EXPECT_EQ(ctx.mode(), ExecMode::TimeOnly);
  ctx.queue(0).enqueueWrite(1e6);
  ctx.queue(2).enqueueWrite(1e6);
  EXPECT_GT(ctx.queue(0).now(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.queue(1).now(), 0.0);  // queues are independent
  ctx.resetClocks();
  EXPECT_DOUBLE_EQ(ctx.queue(0).now(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.queue(2).now(), 0.0);

  auto buf = ctx.createBuffer(ElemKind::F32, 32);
  EXPECT_EQ(buf->size(), 32u);
}

}  // namespace
}  // namespace tp::vcl
