// Unit + property tests for the symbolic work-expression polynomials.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ir/workexpr.hpp"

namespace tp::ir {
namespace {

TEST(WorkExpr, ConstantBasics) {
  const WorkExpr c = WorkExpr::constant(5.0);
  EXPECT_TRUE(c.isConstant());
  EXPECT_FALSE(c.isZero());
  EXPECT_DOUBLE_EQ(c.constantTerm(), 5.0);
  EXPECT_DOUBLE_EQ(c.eval({}), 5.0);
  EXPECT_EQ(c.degree(), 0);
}

TEST(WorkExpr, ZeroIsCanonical) {
  const WorkExpr z = WorkExpr::constant(0.0);
  EXPECT_TRUE(z.isZero());
  const WorkExpr alsoZero =
      WorkExpr::variable("N") - WorkExpr::variable("N");
  EXPECT_TRUE(alsoZero.isZero());
  EXPECT_EQ(z, alsoZero);
}

TEST(WorkExpr, VariableEvaluation) {
  const WorkExpr n = WorkExpr::variable("N");
  EXPECT_FALSE(n.isConstant());
  EXPECT_DOUBLE_EQ(n.eval({{"N", 42.0}}), 42.0);
  // Unknown variables fall back to the default value.
  EXPECT_DOUBLE_EQ(n.eval({}, 7.0), 7.0);
}

TEST(WorkExpr, PolynomialArithmetic) {
  const WorkExpr n = WorkExpr::variable("N");
  const WorkExpr k = WorkExpr::variable("K");
  const WorkExpr e = (n * k) * 2.0 + n + WorkExpr::constant(3.0);
  const std::map<std::string, double> bind = {{"N", 4.0}, {"K", 5.0}};
  EXPECT_DOUBLE_EQ(e.eval(bind), 2 * 4 * 5 + 4 + 3);
  EXPECT_EQ(e.degree(), 2);
  EXPECT_EQ(e.degreeIn("N"), 1);
  EXPECT_EQ(e.degreeIn("K"), 1);
  EXPECT_EQ(e.degreeIn("M"), 0);
}

TEST(WorkExpr, PowersViaRepeatedMultiply) {
  const WorkExpr n = WorkExpr::variable("N");
  const WorkExpr n3 = n * n * n;
  EXPECT_EQ(n3.degree(), 3);
  EXPECT_EQ(n3.degreeIn("N"), 3);
  EXPECT_DOUBLE_EQ(n3.eval({{"N", 3.0}}), 27.0);
}

TEST(WorkExpr, CoefficientExtraction) {
  // 3*g*K + 2*g + 5*K + 7, linear in g.
  const WorkExpr g = WorkExpr::variable("g");
  const WorkExpr k = WorkExpr::variable("K");
  const WorkExpr e =
      g * k * 3.0 + g * 2.0 + k * 5.0 + WorkExpr::constant(7.0);
  const WorkExpr coeff = e.coefficientOf("g");  // 3*K + 2
  EXPECT_DOUBLE_EQ(coeff.eval({{"K", 10.0}}), 32.0);
  const WorkExpr rest = e.without("g");  // 5*K + 7
  EXPECT_DOUBLE_EQ(rest.eval({{"K", 10.0}}), 57.0);
  EXPECT_TRUE(e.contains("g"));
  EXPECT_FALSE(rest.contains("g"));
}

TEST(WorkExpr, CoefficientOfQuadraticTermExcluded) {
  const WorkExpr g = WorkExpr::variable("g");
  const WorkExpr e = g * g * 4.0 + g * 3.0;  // 4g² + 3g
  EXPECT_EQ(e.degreeIn("g"), 2);
  // coefficientOf only collects degree-exactly-1 terms.
  EXPECT_DOUBLE_EQ(e.coefficientOf("g").eval({}), 3.0);
}

TEST(WorkExpr, ToStringDeterministic) {
  const WorkExpr e =
      WorkExpr::variable("K") * 2.0 + WorkExpr::constant(3.0);
  EXPECT_EQ(e.toString(), "3 + 2*K");
  EXPECT_EQ(WorkExpr{}.toString(), "0");
}

TEST(WorkExpr, ParametersSorted) {
  const WorkExpr e = WorkExpr::variable("z") + WorkExpr::variable("a") *
                                                   WorkExpr::variable("m");
  const auto params = e.parameters();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0], "a");
  EXPECT_EQ(params[1], "m");
  EXPECT_EQ(params[2], "z");
}

// Property: ring axioms hold under random evaluation.
class WorkExprProperty : public ::testing::TestWithParam<int> {};

TEST_P(WorkExprProperty, DistributivityAndCommutativity) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto randomExpr = [&rng]() {
    const char* vars[] = {"N", "K", "M"};
    WorkExpr e = WorkExpr::constant(rng.uniform(-3.0, 3.0));
    for (int t = 0; t < 3; ++t) {
      WorkExpr term = WorkExpr::constant(rng.uniform(-2.0, 2.0));
      for (int f = 0; f < static_cast<int>(rng.below(3)); ++f) {
        term = term * WorkExpr::variable(vars[rng.below(3)]);
      }
      e += term;
    }
    return e;
  };
  const WorkExpr a = randomExpr();
  const WorkExpr b = randomExpr();
  const WorkExpr c = randomExpr();
  const std::map<std::string, double> bind = {
      {"N", rng.uniform(0.5, 10.0)},
      {"K", rng.uniform(0.5, 10.0)},
      {"M", rng.uniform(0.5, 10.0)},
  };
  const double lhs = (a * (b + c)).eval(bind);
  const double rhs = (a * b + a * c).eval(bind);
  EXPECT_NEAR(lhs, rhs, 1e-6 * (1.0 + std::fabs(lhs)));
  EXPECT_NEAR((a * b).eval(bind), (b * a).eval(bind),
              1e-6 * (1.0 + std::fabs(lhs)));
  EXPECT_NEAR((a + b).eval(bind), (b + a).eval(bind),
              1e-6 * (1.0 + std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, WorkExprProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace tp::ir
