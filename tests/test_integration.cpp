// End-to-end integration: training sweep → feature database → CSV round
// trip → model training → LOGO evaluation → deployment prediction. Uses a
// subset of the suite to stay fast; the full pipeline runs in bench/.

#include <gtest/gtest.h>

#include <cstdio>

#include "runtime/evaluation.hpp"
#include "runtime/strategy.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

namespace tp::runtime {
namespace {

/// Small sweep: a handful of programs, three sizes each, both machines.
FeatureDatabase smallSweep(const PartitioningSpace& space) {
  FeatureDatabase db = FeatureDatabase::withDefaultSchema(space.size());
  const std::vector<std::string> programs = {"vecadd", "matmul", "nbody",
                                             "mandelbrot", "spmv"};
  for (const auto& machine : sim::evaluationMachines()) {
    for (const auto& name : programs) {
      const auto& bench = suite::benchmarkByName(name);
      for (std::size_t s = 0; s < 3; ++s) {
        auto inst = bench.make(bench.sizes[s]);
        db.add(measureLaunch(inst.task, machine, space,
                             "n=" + std::to_string(bench.sizes[s])));
      }
    }
  }
  return db;
}

class IntegrationFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    space_ = new PartitioningSpace(3, 10);
    db_ = new FeatureDatabase(smallSweep(*space_));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete space_;
    db_ = nullptr;
    space_ = nullptr;
  }
  static PartitioningSpace* space_;
  static FeatureDatabase* db_;
};

PartitioningSpace* IntegrationFixture::space_ = nullptr;
FeatureDatabase* IntegrationFixture::db_ = nullptr;

TEST_F(IntegrationFixture, SweepProducesOneRecordPerLaunch) {
  EXPECT_EQ(db_->size(), 2u * 5u * 3u);
  EXPECT_EQ(db_->forMachine("mc1").size(), 15u);
  EXPECT_EQ(db_->forMachine("mc2").size(), 15u);
}

TEST_F(IntegrationFixture, TimesAreFullAndPositive) {
  for (const auto& rec : db_->records()) {
    ASSERT_EQ(rec.times.size(), space_->size());
    for (const double t : rec.times) EXPECT_GT(t, 0.0);
    EXPECT_GE(rec.bestLabel(), 0);
    EXPECT_LT(rec.bestLabel(), static_cast<int>(space_->size()));
  }
}

TEST_F(IntegrationFixture, OptimalPartitioningIsSizeSensitive) {
  // The paper's core claim: for at least some programs the best
  // partitioning changes with problem size on the same machine.
  int programsWithSizeSensitivity = 0;
  for (const auto& name : {"vecadd", "matmul", "nbody", "mandelbrot",
                           "spmv"}) {
    std::set<int> labels;
    for (const auto* rec : db_->forMachine("mc2")) {
      if (rec->program == name) labels.insert(rec->bestLabel());
    }
    if (labels.size() > 1) ++programsWithSizeSensitivity;
  }
  EXPECT_GE(programsWithSizeSensitivity, 2);
}

TEST_F(IntegrationFixture, OptimalPartitioningIsMachineSensitive) {
  int differing = 0;
  for (const auto* r1 : db_->forMachine("mc1")) {
    for (const auto* r2 : db_->forMachine("mc2")) {
      if (r1->program == r2->program && r1->sizeLabel == r2->sizeLabel &&
          r1->bestLabel() != r2->bestLabel()) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0);
}

TEST_F(IntegrationFixture, CsvRoundTripPreservesEverything) {
  const std::string path = ::testing::TempDir() + "/tp_db.csv";
  db_->saveCsv(path);
  const FeatureDatabase back = FeatureDatabase::loadCsv(path);
  ASSERT_EQ(back.size(), db_->size());
  ASSERT_EQ(back.numPartitionings(), db_->numPartitionings());
  for (std::size_t i = 0; i < back.size(); ++i) {
    const auto& a = db_->records()[i];
    const auto& b = back.records()[i];
    EXPECT_EQ(a.program, b.program);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.sizeLabel, b.sizeLabel);
    EXPECT_EQ(a.staticFeatures, b.staticFeatures);
    EXPECT_EQ(a.runtimeFeatures, b.runtimeFeatures);
    EXPECT_EQ(a.times, b.times);
  }
  std::remove(path.c_str());
}

TEST_F(IntegrationFixture, DatasetShapes) {
  const auto combined = db_->toDataset("mc1", FeatureSet::Combined);
  const auto staticOnly = db_->toDataset("mc1", FeatureSet::StaticOnly);
  const auto runtimeOnly = db_->toDataset("mc1", FeatureSet::RuntimeOnly);
  EXPECT_EQ(combined.size(), 15u);
  EXPECT_EQ(combined.numFeatures(),
            staticOnly.numFeatures() + runtimeOnly.numFeatures());
  EXPECT_EQ(combined.uniqueGroups().size(), 5u);
  EXPECT_NO_THROW(combined.validate());
}

TEST_F(IntegrationFixture, Figure1EvaluationRuns) {
  const auto result = evaluateFigure1(
      *db_, "mc2", *space_, [] { return ml::makeClassifier("forest:32"); });
  EXPECT_EQ(result.rows.size(), 5u);
  EXPECT_GT(result.meanSpeedupOverCpu, 0.0);
  EXPECT_GT(result.meanSpeedupOverGpu, 0.0);
  EXPECT_GT(result.oracleFraction, 0.0);
  EXPECT_LE(result.oracleFraction, 1.0 + 1e-9);
  // Predictions can't beat the oracle.
  for (const auto& row : result.rows) {
    EXPECT_LE(row.speedupOverOracle, 1.0 + 1e-9) << row.program;
  }
}

TEST_F(IntegrationFixture, DeploymentModelPredictsWithinSpace) {
  std::shared_ptr<const ml::Classifier> model =
      trainDeploymentModel(*db_, "mc1", "forest:32");
  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::TimeOnly, nullptr);
  PredictedStrategy strategy(model);

  // A program the model has seen (any suite program works here).
  const auto& bench = suite::benchmarkByName("kmeans");
  auto inst = bench.make(bench.sizes[1]);
  const std::size_t label = strategy.choose(inst.task, ctx, *space_);
  EXPECT_LT(label, space_->size());
}

TEST_F(IntegrationFixture, DeploymentModelSurvivesSerialization) {
  const auto model = trainDeploymentModel(*db_, "mc2", "forest:16");
  const std::string path = ::testing::TempDir() + "/tp_model.txt";
  model->saveFile(path);
  const auto loaded = ml::loadClassifierFile(path);

  const auto& bench = suite::benchmarkByName("stencil2d");
  auto inst = bench.make(bench.sizes[0]);
  const auto x = features::combinedFeatureVector(inst.task.features,
                                                 inst.task.launchInfo());
  EXPECT_EQ(loaded->predict(x), model->predict(x));
  std::remove(path.c_str());
}

TEST_F(IntegrationFixture, PredictedNeverWorseThanWorst) {
  const auto result = evaluateFigure1(
      *db_, "mc1", *space_, [] { return ml::makeClassifier("forest:32"); });
  // Sanity: the predicted partitioning is a member of the space, so its
  // oracle fraction is bounded below by bestTime/worstTime.
  for (const auto& row : result.rows) {
    EXPECT_GT(row.speedupOverOracle, 0.0) << row.program;
  }
}

TEST(OracleConsistency, TimingsMatchSchedulerExactly) {
  const PartitioningSpace space(3, 10);
  const auto& bench = suite::benchmarkByName("matvec");
  auto inst = bench.make(bench.sizes.front());
  std::vector<double> timings;
  oracleSearch(inst.task, sim::makeMc1(), space, &timings);

  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(ctx);
  for (const std::size_t i : {0ul, 13ul, 37ul, 65ul}) {
    EXPECT_DOUBLE_EQ(scheduler.execute(inst.task, space.at(i)).makespan,
                     timings[i]);
  }
}

}  // namespace
}  // namespace tp::runtime
