// Runtime edge cases and failure injection: TaskBuilder misuse, Task
// validation, transfer amortization semantics, MergeSum combination with
// concurrent writers, and — crucially — that a *wrong* buffer access
// classification is caught by the bounds-checked views instead of
// producing silently wrong results.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "runtime/compiler.hpp"
#include "runtime/database.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/strategy.hpp"
#include "sim/machine.hpp"
#include "suite/benchmark.hpp"

namespace tp::runtime {
namespace {

const char* kCopySrc = R"(
__kernel void copy(__global const float* in, __global float* out, int n) {
  int i = get_global_id(0);
  if (i < n) {
    out[i] = in[i];
  }
}
)";

TEST(TaskBuilder, RejectsWrongArgumentKinds) {
  const auto compiled = CompiledKernel::compile(kCopySrc);
  auto buf = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, 64);
  // Scalar where a buffer is expected.
  EXPECT_THROW(TaskBuilder(compiled, "t").global(64).local(64).arg(1), Error);
  // Buffer where a scalar is expected.
  EXPECT_THROW(
      TaskBuilder(compiled, "t").global(64).local(64).arg(buf).arg(buf).arg(
          buf),
      Error);
  // Float where an int is expected.
  EXPECT_THROW(TaskBuilder(compiled, "t")
                   .global(64)
                   .local(64)
                   .arg(buf)
                   .arg(buf)
                   .arg(1.5f),
               Error);
}

TEST(TaskBuilder, RejectsWrongArgumentCount) {
  const auto compiled = CompiledKernel::compile(kCopySrc);
  auto buf = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, 64);
  // Too few.
  EXPECT_THROW(TaskBuilder(compiled, "t").global(64).local(64).arg(buf).build(),
               Error);
  // Too many.
  EXPECT_THROW(TaskBuilder(compiled, "t")
                   .global(64)
                   .local(64)
                   .arg(buf)
                   .arg(buf)
                   .arg(1)
                   .arg(2),
               Error);
}

TEST(TaskBuilder, RejectsInvalidAmortization) {
  const auto compiled = CompiledKernel::compile(kCopySrc);
  EXPECT_THROW(TaskBuilder(compiled, "t").transferAmortization(0.5), Error);
}

Task makeCopyTask(std::size_t n, double amortization = 1.0) {
  static const CompiledKernel compiled = CompiledKernel::compile(kCopySrc);
  auto in = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  auto out = std::make_shared<vcl::Buffer>(vcl::ElemKind::F32, n);
  for (std::size_t i = 0; i < n; ++i) {
    in->data<float>()[i] = static_cast<float>(i);
  }
  TaskBuilder builder(compiled, "copy");
  builder.global(n).local(64).arg(in).arg(out).arg(static_cast<int>(n));
  if (amortization != 1.0) builder.transferAmortization(amortization);
  return builder
      .native([](const vcl::WorkGroupCtx& wg, const vcl::LaunchArgs& a) {
        auto in = a.view<float>(0);
        auto out = a.view<float>(1);
        for (std::size_t l = 0; l < wg.localSize; ++l) {
          const std::size_t i = wg.globalId(l);
          out[i] = in[i];
        }
      })
      .build();
}

TEST(Task, ValidateCatchesMisalignedNDRange) {
  Task task = makeCopyTask(1 << 10);
  task.globalSize = 1000;  // not a multiple of 64
  EXPECT_THROW(task.validate(), Error);
  task.globalSize = 0;
  EXPECT_THROW(task.validate(), Error);
}

TEST(Task, TransferAmortizationScalesGpuTransfersOnly) {
  const auto space = PartitioningSpace(3, 10);
  const Task full = makeCopyTask(1 << 20, 1.0);
  const Task amortized = makeCopyTask(1 << 20, 10.0);

  vcl::Context ctx(sim::makeMc2(), vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(ctx);
  const auto& gpuOnly = space.at(space.singleDeviceIndex(1));

  const auto rFull = scheduler.execute(full, gpuOnly);
  const auto rAmortized = scheduler.execute(amortized, gpuOnly);
  EXPECT_NEAR(rAmortized.devices[0].transferInSeconds,
              (rFull.devices[0].transferInSeconds -
               ctx.machine().devices[1].transferLatency) / 10.0 +
                  ctx.machine().devices[1].transferLatency,
              1e-4);
  // Kernel time itself is unaffected.
  EXPECT_DOUBLE_EQ(rAmortized.devices[0].kernelSeconds,
                   rFull.devices[0].kernelSeconds);
  // Amortization reflects in the runtime features, too.
  EXPECT_NEAR(amortized.totalBytesIn(), full.totalBytesIn() / 10.0, 1e-6);
}

TEST(Task, LaunchInfoMatchesBuffers) {
  const Task task = makeCopyTask(1 << 12);
  const auto info = task.launchInfo();
  EXPECT_EQ(info.globalSize, 1u << 12);
  EXPECT_EQ(info.localSize, 64u);
  EXPECT_DOUBLE_EQ(info.bytesToDevice, (1 << 12) * 4.0);    // in only
  EXPECT_DOUBLE_EQ(info.bytesFromDevice, (1 << 12) * 4.0);  // out only
  EXPECT_DOUBLE_EQ(info.sizeBindings.at("n"), 4096.0);
}

// --- failure injection ------------------------------------------------------

TEST(FailureInjection, WrongSplitClassificationIsCaught) {
  // nbody-style kernel: every item reads the whole array. Force the buffer
  // to be (incorrectly) classified Split and run a mixed partitioning in
  // Compute mode: device 1's view must reject the out-of-slice read.
  Task task = makeCopyTask(1 << 10);
  // Sabotage: make the native kernel read outside its slice.
  task.native = [](const vcl::WorkGroupCtx& wg, const vcl::LaunchArgs& a) {
    auto in = a.view<float>(0);
    auto out = a.view<float>(1);
    for (std::size_t l = 0; l < wg.localSize; ++l) {
      const std::size_t i = wg.globalId(l);
      out[i] = in[(i + 512) % (1 << 10)];  // touches other slices
    }
  };
  vcl::Context ctx(sim::makeMc1(), vcl::ExecMode::Compute, nullptr);
  Scheduler scheduler(ctx);
  // Single device sees the whole buffer: fine.
  EXPECT_NO_THROW(
      scheduler.execute(task, Partitioning{{10, 0, 0}, 10}));
  // Split across devices: the stale classification must fail loudly.
  EXPECT_THROW(scheduler.execute(task, Partitioning{{5, 5, 0}, 10}), Error);
}

TEST(MergeSum, ConcurrentWritersCombineExactly) {
  // Histogram across all three devices must equal the single-device result.
  const auto& bench = suite::benchmarkByName("histogram");
  const std::size_t n = bench.sizes[1];

  auto single = bench.make(n);
  vcl::Context ctx1(sim::makeMc1(), vcl::ExecMode::Compute);
  Scheduler(ctx1).execute(single.task, Partitioning{{10, 0, 0}, 10});
  const auto expected =
      std::get<BufferArg>(single.task.args[1]).buffer->toVector<int>();

  auto split = bench.make(n);
  vcl::Context ctx2(sim::makeMc1(), vcl::ExecMode::Compute);
  Scheduler(ctx2).execute(split.task, Partitioning{{4, 3, 3}, 10});
  const auto actual =
      std::get<BufferArg>(split.task.args[1]).buffer->toVector<int>();

  EXPECT_EQ(actual, expected);
  std::string error;
  EXPECT_TRUE(split.verify(&error)) << error;
}

TEST(Scheduler, AnyPartitioningNeverBeatsOracle) {
  const auto space = PartitioningSpace(3, 10);
  const auto& bench = suite::benchmarkByName("md");
  auto inst = bench.make(bench.sizes[1]);
  std::vector<double> timings;
  const std::size_t best =
      oracleSearch(inst.task, sim::makeMc2(), space, &timings);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_GE(timings[i], timings[best]);
  }
}

TEST(Scheduler, MoreWorkNeverReducesMakespan) {
  vcl::Context ctx(sim::makeMc2(), vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(ctx);
  const Partitioning p{{3, 4, 3}, 10};
  double prev = 0.0;
  for (const std::size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    const double t = scheduler.execute(makeCopyTask(n), p).makespan;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Database, RejectsMalformedRecords) {
  auto db = FeatureDatabase::withDefaultSchema(66);
  LaunchRecord rec;
  rec.program = "x";
  rec.machine = "mc1";
  rec.sizeLabel = "n=1";
  rec.staticFeatures.assign(3, 0.0);  // wrong arity
  rec.runtimeFeatures.assign(13, 0.0);
  rec.times.assign(66, 1.0);
  EXPECT_THROW(db.add(rec), Error);

  rec.staticFeatures.assign(15, 0.0);
  rec.times.assign(65, 1.0);  // wrong space size
  EXPECT_THROW(db.add(rec), Error);

  rec.times.assign(66, 1.0);
  EXPECT_NO_THROW(db.add(rec));
  EXPECT_EQ(db.size(), 1u);
}

TEST(Database, LoadCsvRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/bad_db.csv";
  {
    std::ofstream os(path);
    os << "program,machine,size,nonsense\nx,mc1,n=1,42\n";
  }
  EXPECT_THROW(FeatureDatabase::loadCsv(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tp::runtime
