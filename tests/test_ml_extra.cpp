// Deeper learner coverage: hyperparameter behaviour, degenerate inputs,
// two-stage wiring against the real partitioning space, and agreement
// properties between scores() and predict().

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "ml/classifier.hpp"
#include "ml/crossval.hpp"
#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/mlp.hpp"
#include "ml/random_forest.hpp"
#include "ml/two_stage.hpp"
#include "runtime/partitioning.hpp"

namespace tp::ml {
namespace {

Dataset twoMoons(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  Dataset d;
  d.featureNames = {"x", "y"};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.uniform(0.0, 3.14159);
    const int cls = static_cast<int>(rng.below(2));
    const double cx = cls == 0 ? std::cos(t) : 1.0 - std::cos(t);
    const double cy = cls == 0 ? std::sin(t) : 0.5 - std::sin(t);
    d.add({cx + rng.gaussian(0, 0.08), cy + rng.gaussian(0, 0.08)}, cls,
          "g" + std::to_string(i % 5));
  }
  d.numClasses = 2;
  return d;
}

double accuracyOn(const Classifier& model, const Dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.predict(data.X[i]) == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(DecisionTreeExtra, NonlinearBoundary) {
  const Dataset train = twoMoons(400, 3);
  const Dataset test = twoMoons(200, 77);
  DecisionTree tree(TreeOptions{.maxDepth = 12}, 42);
  tree.train(train);
  EXPECT_GE(accuracyOn(tree, test), 0.9);
}

TEST(DecisionTreeExtra, MinSamplesLeafLimitsGrowth) {
  const Dataset train = twoMoons(400, 5);
  DecisionTree loose(TreeOptions{.maxDepth = 30, .minSamplesLeaf = 1}, 42);
  DecisionTree tight(TreeOptions{.maxDepth = 30, .minSamplesLeaf = 40}, 42);
  loose.train(train);
  tight.train(train);
  EXPECT_GT(loose.nodeCount(), tight.nodeCount());
}

TEST(DecisionTreeExtra, SingleSampleTrainsToLeaf) {
  Dataset d;
  d.featureNames = {"x"};
  d.add({1.0}, 3, "g");
  d.numClasses = 5;
  DecisionTree tree;
  tree.train(d);
  EXPECT_EQ(tree.predict({-100.0}), 3);
  EXPECT_EQ(tree.nodeCount(), 1u);
}

TEST(DecisionTreeExtra, DuplicateFeatureValuesNoInfiniteSplit) {
  // All samples identical features, different labels: must become one leaf.
  Dataset d;
  d.featureNames = {"x", "y"};
  for (int i = 0; i < 20; ++i) d.add({1.0, 2.0}, i % 3, "g");
  d.numClasses = 3;
  DecisionTree tree;
  tree.train(d);
  EXPECT_EQ(tree.nodeCount(), 1u);
}

class ForestSizes : public ::testing::TestWithParam<int> {};

TEST_P(ForestSizes, AccuracyStabilizesWithTrees) {
  const Dataset train = twoMoons(300, 9);
  const Dataset test = twoMoons(150, 33);
  RandomForest forest(ForestOptions{.numTrees = GetParam()}, 42);
  forest.train(train);
  EXPECT_GE(accuracyOn(forest, test), GetParam() >= 16 ? 0.9 : 0.8);
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, ForestSizes,
                         ::testing::Values(1, 4, 16, 64));

TEST(ForestExtra, ScoresArgmaxMatchesPredict) {
  const Dataset train = twoMoons(200, 11);
  RandomForest forest(ForestOptions{.numTrees = 32}, 42);
  forest.train(train);
  common::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {rng.uniform(-2, 3), rng.uniform(-2, 2)};
    const auto s = forest.scores(x);
    const auto argmax = static_cast<int>(
        std::max_element(s.begin(), s.end()) - s.begin());
    EXPECT_EQ(argmax, forest.predict(x));
  }
}

TEST(ForestExtra, FixedFeaturesPerSplitRespected) {
  const Dataset train = twoMoons(200, 13);
  RandomForest forest(ForestOptions{.numTrees = 8, .featuresPerSplit = 1},
                      42);
  forest.train(train);  // must not crash and still learn something
  EXPECT_GE(accuracyOn(forest, train), 0.8);
}

class MlpShapes : public ::testing::TestWithParam<std::string> {};

TEST_P(MlpShapes, LearnsMoons) {
  auto model = makeClassifier("mlp:" + GetParam(), 42);
  const Dataset train = twoMoons(400, 17);
  model->train(train);
  EXPECT_GE(accuracyOn(*model, train), 0.9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(HiddenLayers, MlpShapes,
                         ::testing::Values("8", "32", "16,16", "32,16,8"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (auto& c : n) {
                             if (c == ',') c = '_';
                           }
                           return "layers_" + n;
                         });

TEST(MlpExtra, SoftmaxScoresSumToOne) {
  MlpClassifier mlp(MlpOptions{.hiddenLayers = {8}, .epochs = 50}, 42);
  mlp.train(twoMoons(100, 19));
  const auto s = mlp.scores({0.5, 0.5});
  double sum = 0.0;
  for (const double v : s) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

class KnnK : public ::testing::TestWithParam<int> {};

TEST_P(KnnK, AllKValuesWork) {
  KnnClassifier knn(GetParam());
  const Dataset train = twoMoons(200, 23);
  knn.train(train);
  EXPECT_GE(accuracyOn(knn, train), GetParam() <= 9 ? 0.9 : 0.75);
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnK, ::testing::Values(1, 3, 5, 9, 25, 999));

TEST(TwoStageExtra, UsesRealPartitioningFamilies) {
  // Wire the two-stage model exactly as the runtime does: families come
  // from the 66-way partitioning space.
  const runtime::PartitioningSpace space(3, 10);
  const auto families = space.familyLabels();

  // Synthetic launches: small → CPU-only (label cpuIdx), large → GPU-mixed.
  common::Rng rng(29);
  Dataset d;
  d.featureNames = {"log_size"};
  const int cpuLabel = static_cast<int>(space.cpuOnlyIndex());
  const int mixedLabel = static_cast<int>(space.indexOf({{2, 4, 4}, 10}));
  for (int i = 0; i < 200; ++i) {
    const double logSize = rng.uniform(8.0, 24.0);
    d.add({logSize}, logSize < 16.0 ? cpuLabel : mixedLabel,
          "p" + std::to_string(i % 6));
  }
  d.numClasses = static_cast<int>(space.size());

  TwoStageClassifier model(
      families, [] { return makeClassifier("tree", 3); },
      [] { return makeClassifier("tree", 4); });
  model.train(d);
  EXPECT_EQ(model.predict({10.0}), cpuLabel);
  EXPECT_EQ(model.predict({22.0}), mixedLabel);
}

TEST(TwoStageExtra, UnseenFamilyFallsBackToValidLabel) {
  // Train with labels from only one family; predictions must still be
  // legal labels of whatever family stage 1 outputs.
  TwoStageClassifier model(
      {0, 0, 1, 1}, [] { return makeClassifier("mostfreq"); },
      [] { return makeClassifier("mostfreq"); });
  Dataset d;
  d.featureNames = {"x"};
  for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, 0, "g");
  d.numClasses = 4;
  model.train(d);
  const int p = model.predict({5.0});
  EXPECT_GE(p, 0);
  EXPECT_LT(p, 4);
}

TEST(CrossValExtra, GroupsNeverLeakIntoTraining) {
  // A feature that uniquely identifies the group makes within-group
  // prediction trivial; LOGO must NOT benefit from it, k-fold does.
  common::Rng rng(31);
  Dataset d;
  d.featureNames = {"group_id", "noise"};
  for (int g = 0; g < 5; ++g) {
    for (int i = 0; i < 30; ++i) {
      // Label == group id; the only informative feature is the group id.
      d.add({static_cast<double>(g), rng.uniform()}, g,
            "g" + std::to_string(g));
    }
  }
  d.numClasses = 5;
  const auto factory = [] { return makeClassifier("tree"); };
  const auto kfold = kFoldCrossVal(d, 5, factory);
  const auto logo = leaveOneGroupOut(d, factory);
  EXPECT_GE(kfold.accuracy, 0.95);
  EXPECT_LE(logo.accuracy, 0.4);  // held-out group id was never seen
}

TEST(FactoryExtra, SeedChangesStochasticModels) {
  const Dataset train = twoMoons(150, 37);
  auto a = makeClassifier("forest:16", 1);
  auto b = makeClassifier("forest:16", 2);
  a->train(train);
  b->train(train);
  // Different seeds should disagree somewhere on a noisy boundary.
  common::Rng rng(41);
  int disagreements = 0;
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> x = {rng.uniform(-2, 3), rng.uniform(-2, 2)};
    if (a->predict(x) != b->predict(x)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

}  // namespace
}  // namespace tp::ml
