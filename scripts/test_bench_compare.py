#!/usr/bin/env python3
"""Unit tests for bench_compare.py --fail-on gating, over fixture JSONs.

The CI bench job gates on requests_per_sec_warm:30 only; these tests pin
the exact semantics that job depends on: a >30% warm-throughput drop
fails, a smaller drop or any other metric's regression reports but
passes, improvements pass, and a gated metric vanishing from the current
run fails.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare  # noqa: E402

BASELINE = {
    "bench": "serve_throughput",
    "requests_per_sec_warm": 100000.0,
    "requests_per_sec_cold": 5000.0,
    "hit_rate_warm": 0.95,
    "p95_latency_us": 40.0,
}


class BenchCompareFailOnTests(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="tp_bench_cmp_")
        self.baseline = self.fixture("baseline.json", BASELINE)

    def tearDown(self):
        self._tmp.cleanup()

    def fixture(self, name, payload):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        return path

    def run_compare(self, current_payload, *extra_args):
        current = self.fixture("current.json", current_payload)
        return bench_compare.main([self.baseline, current, *extra_args])

    def test_warm_drop_past_gate_fails(self):
        rc = self.run_compare(
            {**BASELINE, "requests_per_sec_warm": 60000.0},  # -40%
            "--fail-on", "requests_per_sec_warm:30")
        self.assertEqual(rc, 1)

    def test_warm_drop_within_gate_passes(self):
        rc = self.run_compare(
            {**BASELINE, "requests_per_sec_warm": 80000.0},  # -20%
            "--fail-on", "requests_per_sec_warm:30")
        self.assertEqual(rc, 0)

    def test_warm_improvement_passes(self):
        rc = self.run_compare(
            {**BASELINE, "requests_per_sec_warm": 200000.0},
            "--fail-on", "requests_per_sec_warm:30")
        self.assertEqual(rc, 0)

    def test_other_metrics_stay_report_only(self):
        # Cold throughput collapses and p95 triples: flagged, not fatal —
        # only the gated metric can fail the run.
        rc = self.run_compare(
            {**BASELINE,
             "requests_per_sec_cold": 1000.0,
             "p95_latency_us": 120.0},
            "--fail-on", "requests_per_sec_warm:30")
        self.assertEqual(rc, 0)

    def test_gated_metric_missing_from_current_fails(self):
        current = {k: v for k, v in BASELINE.items()
                   if k != "requests_per_sec_warm"}
        rc = self.run_compare(current,
                              "--fail-on", "requests_per_sec_warm:30")
        self.assertEqual(rc, 1)

    def test_gated_metric_missing_from_baseline_passes(self):
        # A brand-new metric has nothing to regress against.
        baseline = {k: v for k, v in BASELINE.items()
                    if k != "requests_per_sec_warm"}
        self.baseline = self.fixture("baseline2.json", baseline)
        rc = self.run_compare(BASELINE,
                              "--fail-on", "requests_per_sec_warm:30")
        self.assertEqual(rc, 0)

    def test_fail_on_defaults_to_threshold(self):
        rc = self.run_compare(
            {**BASELINE, "requests_per_sec_warm": 85000.0},  # -15%
            "--threshold", "10", "--fail-on", "requests_per_sec_warm")
        self.assertEqual(rc, 1)

    def test_missing_baseline_file_passes(self):
        current = self.fixture("current.json", BASELINE)
        rc = bench_compare.main(
            [os.path.join(self._tmp.name, "nonexistent.json"), current,
             "--fail-on", "requests_per_sec_warm:30"])
        self.assertEqual(rc, 0)

    def test_fail_on_regression_still_global(self):
        rc = self.run_compare(
            {**BASELINE, "p95_latency_us": 120.0},
            "--fail-on-regression")
        self.assertEqual(rc, 1)

    def test_fail_on_without_direction_errors(self):
        with self.assertRaises(SystemExit):
            self.run_compare(dict(BASELINE, bench="x"),
                             "--fail-on", "bench:30")


if __name__ == "__main__":
    unittest.main()
