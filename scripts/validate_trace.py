#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by tp::obs.

Checks the structural contract that chrome://tracing / Perfetto rely on,
plus the invariants our writer promises:

  - top-level object with "traceEvents" (list), "displayTimeUnit" and
    "otherData.dropped_events" (non-negative int)
  - every event has name / ph / ts / pid / tid / args.arg, with
    ph == "X" (complete, needs dur >= 0) or ph == "i" (instant, s == "t")
  - timestamps are non-negative and globally sorted (the writer merges
    per-thread rings and sorts before emitting)
  - per tid, complete spans nest properly: RAII scopes can contain or
    follow each other but never partially overlap
  - with --require-prefix (repeatable), at least one event name must
    start with each given prefix — used by ctest to prove a serve_traffic
    trace actually covers the serve/adapt/fleet layers

Usage: validate_trace.py trace.json [--require-prefix serve.] ...
Exits non-zero with a diagnostic on the first violated contract.
"""

import argparse
import json
import sys

VALID_PH = {"X", "i"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    for key in ("name", "ph", "ts", "pid", "tid", "args"):
        if key not in ev:
            fail(f"event {i} missing key '{key}': {ev}")
    if not isinstance(ev["name"], str) or not ev["name"]:
        fail(f"event {i} has empty/non-string name")
    if ev["ph"] not in VALID_PH:
        fail(f"event {i} has unexpected ph '{ev['ph']}'")
    if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
        fail(f"event {i} has bad ts {ev['ts']!r}")
    if not isinstance(ev["tid"], int):
        fail(f"event {i} has non-integer tid {ev['tid']!r}")
    if "arg" not in ev["args"]:
        fail(f"event {i} args missing 'arg'")
    if ev["ph"] == "X":
        if "dur" not in ev or not isinstance(ev["dur"], (int, float)):
            fail(f"complete event {i} ('{ev['name']}') missing dur")
        if ev["dur"] < 0:
            fail(f"complete event {i} ('{ev['name']}') has negative dur")
    else:
        if ev.get("s") != "t":
            fail(f"instant event {i} ('{ev['name']}') missing s:\"t\"")


def check_nesting(events):
    """Complete spans on one thread come from RAII scopes: when sorted by
    (ts, -dur) they must form a forest (contained or disjoint, never
    partially overlapping)."""
    by_tid = {}
    for ev in events:
        if ev["ph"] == "X":
            by_tid.setdefault(ev["tid"], []).append(ev)
    eps = 0.0005  # half the writer's 1ns resolution, absorbs rounding ties
    for tid, spans in by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end_ts, name) of open ancestors
        for ev in spans:
            begin, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and begin >= stack[-1][0] - eps:
                stack.pop()
            if stack and end > stack[-1][0] + eps:
                fail(f"tid {tid}: span '{ev['name']}' "
                     f"[{begin}, {end}] partially overlaps enclosing "
                     f"'{stack[-1][1]}' ending at {stack[-1][0]}")
            stack.append((end, ev["name"]))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-prefix", action="append", default=[],
                        metavar="PREFIX",
                        help="require at least one event name with this "
                             "prefix (repeatable)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load '{args.trace}': {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be a list")
    if "displayTimeUnit" not in doc:
        fail("missing 'displayTimeUnit'")
    dropped = doc.get("otherData", {}).get("dropped_events")
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"otherData.dropped_events missing or bad: {dropped!r}")

    for i, ev in enumerate(events):
        check_event(i, ev)

    for i in range(1, len(events)):
        if events[i]["ts"] < events[i - 1]["ts"]:
            fail(f"events not sorted by ts at index {i}: "
                 f"{events[i - 1]['ts']} then {events[i]['ts']}")

    check_nesting(events)

    names = {ev["name"] for ev in events}
    for prefix in args.require_prefix:
        if not any(n.startswith(prefix) for n in names):
            fail(f"no event name starts with required prefix '{prefix}' "
                 f"(saw: {', '.join(sorted(names)) or '<none>'})")

    print(f"validate_trace: OK: {len(events)} events, "
          f"{len({e['tid'] for e in events})} threads, "
          f"{dropped} dropped"
          + (f", prefixes {args.require_prefix}" if args.require_prefix
             else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
