#!/usr/bin/env python3
"""Pick the best of several BENCH_*.json runs by a headline metric.

Usage: bench_best.py --metric NAME OUT.json IN1.json [IN2.json ...]

Copies the input whose NAME value is highest to OUT.json. Used by the
observability overhead gate: the compiled-out and obs-enabled drivers
run interleaved several times, and each side's best run is compared —
back-to-back single runs on a shared machine drift by more than the
overhead being measured, while the per-side best over an interleaved
set is stable.
"""

import argparse
import json
import shutil
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metric", required=True,
                        help="numeric key to maximize")
    parser.add_argument("out", help="destination JSON")
    parser.add_argument("inputs", nargs="+", help="candidate run JSONs")
    args = parser.parse_args()

    best_path, best_value = None, None
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"bench_best: cannot load '{path}': {e}")
        value = doc.get(args.metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            sys.exit(f"bench_best: '{path}' has no numeric "
                     f"'{args.metric}'")
        if best_value is None or value > best_value:
            best_path, best_value = path, value

    shutil.copyfile(best_path, args.out)
    print(f"bench_best: {args.out} <- {best_path} "
          f"({args.metric}={best_value})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
