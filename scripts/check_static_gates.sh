#!/usr/bin/env sh
# Seeded-violation self-tests for the three static-analysis gates
# (thread-safety build, clang-tidy, project lint). A gate that silently
# stopped detecting anything is worse than no gate: each check here
# feeds a known-bad input and asserts the gate FAILS it, then (where
# cheap) a known-good input and asserts the gate passes it.
#
# Needs clang++/clang-tidy for the first two checks; CI installs them.
set -eu
cd "$(dirname "$0")/.."
CLANGXX=${CLANGXX:-clang++}
CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# 1. Thread-safety gate: a TP_GUARDED_BY field read without its mutex
#    must be rejected under -Wthread-safety -Werror=thread-safety.
cat > "$tmp/tsa_bad.cpp" <<'EOF'
#include "common/annotations.hpp"
struct Counter {
  tp::common::Mutex mutex;
  int value TP_GUARDED_BY(mutex) = 0;
};
int readUnlocked(Counter& c) { return c.value; }
EOF
if "$CLANGXX" -std=c++20 -Isrc -Wthread-safety -Werror=thread-safety \
    -fsyntax-only "$tmp/tsa_bad.cpp" 2>/dev/null; then
  echo "FAIL: -Wthread-safety accepted an unguarded access to a" \
       "TP_GUARDED_BY field — the annotation macros are not expanding" >&2
  exit 1
fi
echo "ok: thread-safety gate rejects a seeded unguarded access"

# 2. ... and the same field read under MutexLock must pass (the gate
#    fails bad code, not all code).
cat > "$tmp/tsa_good.cpp" <<'EOF'
#include "common/annotations.hpp"
struct Counter {
  tp::common::Mutex mutex;
  int value TP_GUARDED_BY(mutex) = 0;
};
int readLocked(Counter& c) {
  tp::common::MutexLock lock(c.mutex);
  return c.value;
}
EOF
"$CLANGXX" -std=c++20 -Isrc -Wthread-safety -Werror=thread-safety \
    -fsyntax-only "$tmp/tsa_good.cpp"
echo "ok: thread-safety gate accepts the guarded version"

# 3. clang-tidy gate: a use-after-move must fail under the repo config
#    (WarningsAsErrors: '*').
cat > "$tmp/tidy_bad.cpp" <<'EOF'
#include <string>
#include <utility>
std::string consume(std::string s) { return s; }
int length() {
  std::string a = "seeded";
  std::string b = consume(std::move(a));
  return static_cast<int>(a.size() + b.size());
}
EOF
if "$CLANG_TIDY" --config-file=.clang-tidy --quiet "$tmp/tidy_bad.cpp" \
    -- -std=c++20 >/dev/null 2>&1; then
  echo "FAIL: clang-tidy accepted a use-after-move under the repo" \
       "config — check WarningsAsErrors / the bugprone-* enablement" >&2
  exit 1
fi
echo "ok: clang-tidy gate rejects a seeded use-after-move"

# 4. Project lint gate: per-rule seeded-violation unit tests (each rule
#    is fed a synthetic violating tree and must flag it).
python3 scripts/test_lint_invariants.py
echo "ok: lint gate self-tests pass"

# 5. Concurrency analyzer gate (rules A1-A4): the full fixture suite
#    (violating + conforming pair per rule) through the shared rule
#    engine...
python3 scripts/test_analyze_ast.py
echo "ok: analyzer self-tests pass"

# 6. ... and one end-to-end seeded violation per rule family through the
#    CLI itself, asserting exit 1 on a violating tree and exit 0 on its
#    conforming twin — so the process-level wiring (arg parsing, exit
#    codes, allowlist validation) is covered, not just the engine.
seed_ast_case() {
  # $1 = rule tag, $2 = violating TU text, $3 = conforming TU text
  rule=$1
  rm -rf "$tmp/ast/src"
  mkdir -p "$tmp/ast/src/m"
  printf '%s\n' "$2" > "$tmp/ast/src/m/seeded.cpp"
  if python3 scripts/analyze_ast.py --backend=token \
      --root "$tmp/ast" >/dev/null 2>&1; then
    echo "FAIL: analyze_ast $rule accepted its seeded violation" >&2
    exit 1
  fi
  printf '%s\n' "$3" > "$tmp/ast/src/m/seeded.cpp"
  if ! python3 scripts/analyze_ast.py --backend=token \
      --root "$tmp/ast" >/dev/null 2>&1; then
    echo "FAIL: analyze_ast $rule rejected its conforming twin" >&2
    exit 1
  fi
  echo "ok: analyzer $rule fails seeded violation, passes conforming twin"
}

AUDIT='TP_LOCK_FREE_AUDITED("gate fixture; TSan: test_x F.T")'
seed_ast_case A1 "
struct S {
  std::atomic<int> v{0};
  void touch() $AUDIT { v.store(1); }
};" "
struct S {
  std::atomic<int> v{0};
  void touch() $AUDIT { v.store(1, std::memory_order_relaxed); }
};"

seed_ast_case A2 "
struct Slot { std::atomic<unsigned> seq{0};
              std::atomic<unsigned long long> meta{0}; };
struct C {
  Slot slot;
  void put(unsigned long long m) $AUDIT {
    const unsigned s = seqClaim(slot.seq);
    slot.meta.store(m, std::memory_order_relaxed);
    seqRelease(slot.seq, s);
  }
};" "
struct Slot { std::atomic<unsigned> seq{0};
              std::atomic<unsigned long long> meta{0}; };
struct C {
  Slot slot;
  void put(unsigned long long m) $AUDIT {
    const unsigned s = seqClaim(slot.seq);
    slot.meta.store(m, std::memory_order_release);
    seqRelease(slot.seq, s);
  }
};"

seed_ast_case A3 "
struct Lane { std::atomic<unsigned> busy{0}; };
struct Svc {
  Lane lane;
  int work();
  int serve() $AUDIT {
    unsigned expected = 0;
    if (!lane.busy.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) return -1;
    const int r = work();
    lane.busy.store(0, std::memory_order_release);
    return r;
  }
};" "
struct Lane { std::atomic<unsigned> busy{0}; };
struct Svc {
  Lane lane;
  int work();
  int serve() $AUDIT {
    common::ClaimGuard claim(lane.busy);
    if (!claim.claimed()) return -1;
    const int r = work();
    claim.release();
    return r;
  }
};"

seed_ast_case A4 "
struct G {
  std::atomic<int> flag{0};
  int peek() { return flag.load(std::memory_order_relaxed); }
};" "
struct G {
  std::atomic<int> flag{0};
  int peek() $AUDIT {
    return flag.load(std::memory_order_relaxed);
  }
};"
