#!/usr/bin/env sh
# Seeded-violation self-tests for the three static-analysis gates
# (thread-safety build, clang-tidy, project lint). A gate that silently
# stopped detecting anything is worse than no gate: each check here
# feeds a known-bad input and asserts the gate FAILS it, then (where
# cheap) a known-good input and asserts the gate passes it.
#
# Needs clang++/clang-tidy for the first two checks; CI installs them.
set -eu
cd "$(dirname "$0")/.."
CLANGXX=${CLANGXX:-clang++}
CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# 1. Thread-safety gate: a TP_GUARDED_BY field read without its mutex
#    must be rejected under -Wthread-safety -Werror=thread-safety.
cat > "$tmp/tsa_bad.cpp" <<'EOF'
#include "common/annotations.hpp"
struct Counter {
  tp::common::Mutex mutex;
  int value TP_GUARDED_BY(mutex) = 0;
};
int readUnlocked(Counter& c) { return c.value; }
EOF
if "$CLANGXX" -std=c++20 -Isrc -Wthread-safety -Werror=thread-safety \
    -fsyntax-only "$tmp/tsa_bad.cpp" 2>/dev/null; then
  echo "FAIL: -Wthread-safety accepted an unguarded access to a" \
       "TP_GUARDED_BY field — the annotation macros are not expanding" >&2
  exit 1
fi
echo "ok: thread-safety gate rejects a seeded unguarded access"

# 2. ... and the same field read under MutexLock must pass (the gate
#    fails bad code, not all code).
cat > "$tmp/tsa_good.cpp" <<'EOF'
#include "common/annotations.hpp"
struct Counter {
  tp::common::Mutex mutex;
  int value TP_GUARDED_BY(mutex) = 0;
};
int readLocked(Counter& c) {
  tp::common::MutexLock lock(c.mutex);
  return c.value;
}
EOF
"$CLANGXX" -std=c++20 -Isrc -Wthread-safety -Werror=thread-safety \
    -fsyntax-only "$tmp/tsa_good.cpp"
echo "ok: thread-safety gate accepts the guarded version"

# 3. clang-tidy gate: a use-after-move must fail under the repo config
#    (WarningsAsErrors: '*').
cat > "$tmp/tidy_bad.cpp" <<'EOF'
#include <string>
#include <utility>
std::string consume(std::string s) { return s; }
int length() {
  std::string a = "seeded";
  std::string b = consume(std::move(a));
  return static_cast<int>(a.size() + b.size());
}
EOF
if "$CLANG_TIDY" --config-file=.clang-tidy --quiet "$tmp/tidy_bad.cpp" \
    -- -std=c++20 >/dev/null 2>&1; then
  echo "FAIL: clang-tidy accepted a use-after-move under the repo" \
       "config — check WarningsAsErrors / the bugprone-* enablement" >&2
  exit 1
fi
echo "ok: clang-tidy gate rejects a seeded use-after-move"

# 4. Project lint gate: per-rule seeded-violation unit tests (each rule
#    is fed a synthetic violating tree and must flag it).
python3 scripts/test_lint_invariants.py
echo "ok: lint gate self-tests pass"
