#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag regressions on named metrics.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]

Options:
  --metric NAME[:higher|:lower]   Metric to check (repeatable). Without
                                  any --metric, every shared numeric key
                                  is compared; direction is inferred from
                                  the key name (see infer_direction).
  --threshold PCT                 Regression threshold in percent
                                  (default 10).
  --fail-on-regression            Exit 1 when a regression is flagged
                                  (default: always exit 0 — the CI bench
                                  job runs this as a non-fatal report).

A metric regresses when it moves more than the threshold in its bad
direction: a "higher"-is-better metric dropping, or a "lower"-is-better
metric rising. Everything else (improvements, sub-threshold drift,
non-numeric or missing keys) is reported informationally.
"""

import argparse
import json
import sys


def infer_direction(name: str) -> str:
    """Best-effort direction for un-annotated metrics."""
    lowered = name.lower()
    higher_markers = ("per_sec", "hit_rate", "throughput", "speedup",
                      "accuracy", "requests_inline")
    lower_markers = ("latency", "seconds", "_us", "_ms", "probes",
                     "evictions", "misses", "steady_state")
    if any(m in lowered for m in higher_markers):
        return "higher"
    if any(m in lowered for m in lower_markers):
        return "lower"
    return "info"


def parse_metric(spec: str):
    if ":" in spec:
        name, direction = spec.rsplit(":", 1)
        if direction not in ("higher", "lower"):
            sys.exit(f"bench_compare: bad direction in --metric {spec!r} "
                     "(use :higher or :lower)")
        return name, direction
    return spec, infer_direction(spec)


def numeric_keys(obj):
    return {k for k, v in obj.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)}


def main() -> int:
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--metric", action="append", default=[])
    parser.add_argument("--threshold", type=float, default=10.0)
    parser.add_argument("--fail-on-regression", action="store_true")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        # A missing/corrupt baseline is not a regression (e.g. the first
        # run of a brand-new benchmark has nothing to diff against).
        print(f"bench_compare: cannot compare: {e}")
        return 0

    if args.metric:
        metrics = [parse_metric(m) for m in args.metric]
    else:
        shared = sorted(numeric_keys(baseline) & numeric_keys(current))
        metrics = [(name, infer_direction(name)) for name in shared]

    regressions = []
    print(f"bench_compare: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:g}%)")
    for name, direction in metrics:
        base = baseline.get(name)
        cur = current.get(name)
        if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
            print(f"  {name}: missing or non-numeric, skipped")
            continue
        if base == 0:
            print(f"  {name}: baseline is 0, skipped")
            continue
        change = 100.0 * (cur - base) / abs(base)
        regressed = (direction == "higher" and change < -args.threshold) or \
                    (direction == "lower" and change > args.threshold)
        tag = "REGRESSION" if regressed else \
              ("ok" if direction != "info" else "info")
        print(f"  {name}: {base:g} -> {cur:g} ({change:+.1f}%) "
              f"[{direction}] {tag}")
        if regressed:
            regressions.append((name, change))

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) flagged:")
        for name, change in regressions:
            print(f"  {name}: {change:+.1f}%")
        if args.fail_on_regression:
            return 1
    else:
        print("bench_compare: no regressions flagged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
