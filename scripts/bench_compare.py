#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag regressions on named metrics.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]

Options:
  --metric NAME[:higher|:lower]   Metric to check (repeatable). Without
                                  any --metric, every shared numeric key
                                  is compared; direction is inferred from
                                  the key name (see infer_direction).
  --threshold PCT                 Regression threshold in percent
                                  (default 10).
  --fail-on-regression            Exit 1 when ANY regression is flagged
                                  (default: always exit 0 — the CI bench
                                  job runs this as a non-fatal report).
  --fail-on NAME[:PCT]            Make regressions of metric NAME fatal
                                  when it moves more than PCT percent in
                                  its bad direction (repeatable; PCT
                                  defaults to --threshold). Other metrics
                                  stay report-only. A fail-on metric the
                                  current run stopped reporting is also
                                  fatal. CI gates on
                                  requests_per_sec_warm:30 only — a
                                  deliberately conservative bar sized for
                                  noisy shared runners.

A metric regresses when it moves more than the threshold in its bad
direction: a "higher"-is-better metric dropping, or a "lower"-is-better
metric rising. Everything else (improvements, sub-threshold drift,
non-numeric or missing keys) is reported informationally.
"""

import argparse
import json
import sys


def infer_direction(name: str) -> str:
    """Best-effort direction for un-annotated metrics."""
    lowered = name.lower()
    higher_markers = ("per_sec", "hit_rate", "throughput", "speedup",
                      "accuracy", "requests_inline")
    lower_markers = ("latency", "seconds", "_us", "_ms", "probes",
                     "evictions", "misses", "steady_state")
    if any(m in lowered for m in higher_markers):
        return "higher"
    if any(m in lowered for m in lower_markers):
        return "lower"
    return "info"


def parse_metric(spec: str):
    if ":" in spec:
        name, direction = spec.rsplit(":", 1)
        if direction not in ("higher", "lower"):
            sys.exit(f"bench_compare: bad direction in --metric {spec!r} "
                     "(use :higher or :lower)")
        return name, direction
    return spec, infer_direction(spec)


def numeric_keys(obj):
    return {k for k, v in obj.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)}


def parse_fail_on(spec: str, default_pct: float):
    if ":" in spec:
        name, pct = spec.rsplit(":", 1)
        try:
            return name, float(pct)
        except ValueError:
            sys.exit(f"bench_compare: bad percent in --fail-on {spec!r} "
                     "(use NAME or NAME:PCT)")
    return spec, default_pct


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--metric", action="append", default=[])
    parser.add_argument("--threshold", type=float, default=10.0)
    parser.add_argument("--fail-on-regression", action="store_true")
    parser.add_argument("--fail-on", action="append", default=[],
                        metavar="NAME[:PCT]")
    args = parser.parse_args(argv)
    fail_on = dict(parse_fail_on(s, args.threshold) for s in args.fail_on)

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        # A missing/corrupt baseline is not a regression (e.g. the first
        # run of a brand-new benchmark has nothing to diff against).
        print(f"bench_compare: cannot compare: {e}")
        return 0

    if args.metric:
        metrics = [parse_metric(m) for m in args.metric]
    else:
        shared = sorted(numeric_keys(baseline) & numeric_keys(current))
        metrics = [(name, infer_direction(name)) for name in shared]
    # Every --fail-on metric is always compared, listed or not.
    covered = {name for name, _ in metrics}
    for name in fail_on:
        if name not in covered:
            metrics.append((name, infer_direction(name)))
    for name, direction in metrics:
        if name in fail_on and direction == "info":
            sys.exit(f"bench_compare: --fail-on {name} has no inferable "
                     f"direction; add --metric {name}:higher or "
                     f"--metric {name}:lower")

    regressions = []
    fatal = []
    print(f"bench_compare: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:g}%)")
    for name, direction in metrics:
        base = baseline.get(name)
        cur = current.get(name)
        if not isinstance(cur, (int, float)) or isinstance(cur, bool):
            if name in fail_on:
                print(f"  {name}: FATAL — gated metric missing from the "
                      "current run")
                fatal.append((name, None))
            else:
                print(f"  {name}: missing or non-numeric, skipped")
            continue
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            print(f"  {name}: no baseline value, skipped")
            continue
        if base == 0:
            print(f"  {name}: baseline is 0, skipped")
            continue
        change = 100.0 * (cur - base) / abs(base)
        bad_move = (-change if direction == "higher"
                    else change if direction == "lower" else 0.0)
        regressed = bad_move > args.threshold
        is_fatal = name in fail_on and bad_move > fail_on[name]
        tag = "FATAL" if is_fatal else "REGRESSION" if regressed else \
              ("ok" if direction != "info" else "info")
        gate = f", gate {fail_on[name]:g}%" if name in fail_on else ""
        print(f"  {name}: {base:g} -> {cur:g} ({change:+.1f}%) "
              f"[{direction}{gate}] {tag}")
        if regressed:
            regressions.append((name, change))
        if is_fatal:
            fatal.append((name, change))

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) flagged:")
        for name, change in regressions:
            print(f"  {name}: {change:+.1f}%")
    else:
        print("bench_compare: no regressions flagged")
    if fatal:
        print(f"bench_compare: FAILING on {len(fatal)} gated metric(s):")
        for name, change in fatal:
            print(f"  {name}: "
                  + (f"{change:+.1f}%" if change is not None else "missing"))
        return 1
    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
