#!/usr/bin/env python3
"""Validate a tp::obs FlightRecorder postmortem bundle.

Checks the "tp-postmortem-v1" schema contract documented in
src/obs/flight_recorder.hpp:

  - top-level object with schema / seq / reason / ticks / kept_events /
    dropped_events / trace / metrics / health_events / health_counters
  - kept+dropped accounting carried through EXACTLY from the one
    TraceRecorder snapshot the bundle embeds:
    kept_events == len(trace.traceEvents) and
    dropped_events == trace.otherData.dropped_events
  - the embedded trace passes the full validate_trace contract
    (structure, sorted timestamps, per-thread span nesting)
  - metrics is the Registry::exportJson shape (counters / gauges /
    histograms / summaries / recent_log objects)
  - health_events are well-formed (known severities, strictly increasing
    seqs, cleared recoveries only at severity "info") and reconcile with
    health_counters (history is bounded, so events_emitted +
    events_cleared is a lower bound only when history overflowed)

The argument may be a bundle file or a directory, in which case the
highest-sequence postmortem-<seq>.json is validated (what ctest/CI do:
point at the run's --postmortem-dir).

Options:
  --expect-rule NAME:COUNT   exactly COUNT non-cleared events for rule
                             NAME (repeatable; the seeded-breach smoke
                             asserts serve.latency_slo:1)
  --require-rule PREFIX      at least one event whose rule starts with
                             PREFIX (repeatable)

Exits non-zero with a diagnostic on the first violated contract.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import validate_trace  # noqa: E402  (shared event/nesting checks)

SCHEMA = "tp-postmortem-v1"
SEVERITIES = {"info", "warning", "critical"}
BUNDLE_RE = re.compile(r"^postmortem-(\d+)\.json$")


def fail(msg):
    print(f"validate_postmortem: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def pick_bundle(path):
    """A directory argument resolves to its highest-sequence bundle."""
    if not os.path.isdir(path):
        return path
    best, best_seq = None, -1
    for name in os.listdir(path):
        m = BUNDLE_RE.match(name)
        if m and int(m.group(1)) > best_seq:
            best, best_seq = os.path.join(path, name), int(m.group(1))
    if best is None:
        fail(f"no postmortem-<seq>.json bundle in directory '{path}'")
    return best


def check_trace(doc):
    trace = doc["trace"]
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail("'trace' must be a Chrome trace object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail("'trace.traceEvents' must be a list")
    dropped = trace.get("otherData", {}).get("dropped_events")
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"trace.otherData.dropped_events missing or bad: {dropped!r}")

    # The kept/dropped accounting and the embedded trace come from ONE
    # recorder snapshot; the writer promises they agree exactly.
    if doc["kept_events"] != len(events):
        fail(f"kept_events={doc['kept_events']} but the embedded trace "
             f"holds {len(events)} events (accounting torn)")
    if doc["dropped_events"] != dropped:
        fail(f"dropped_events={doc['dropped_events']} but the embedded "
             f"trace reports {dropped}")

    for i, ev in enumerate(events):
        validate_trace.check_event(i, ev)
    for i in range(1, len(events)):
        if events[i]["ts"] < events[i - 1]["ts"]:
            fail(f"trace events not sorted by ts at index {i}")
    validate_trace.check_nesting(events)
    return len(events)


def check_metrics(doc):
    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        fail("'metrics' must be an object")
    for section in ("counters", "gauges", "histograms", "summaries"):
        if not isinstance(metrics.get(section), dict):
            fail(f"metrics.{section} missing or not an object")
    if not isinstance(metrics.get("recent_log"), list):
        fail("metrics.recent_log missing or not a list")
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"counter '{name}' is not a non-negative integer: {value!r}")
    return sum(len(metrics[s]) for s in
               ("counters", "gauges", "histograms", "summaries"))


def check_health(doc):
    events = doc["health_events"]
    if not isinstance(events, list):
        fail("'health_events' must be a list")
    last_seq = 0
    for i, ev in enumerate(events):
        for key in ("seq", "ticks", "severity", "rule", "message", "value",
                    "threshold", "cleared"):
            if key not in ev:
                fail(f"health event {i} missing key '{key}': {ev}")
        if not isinstance(ev["seq"], int) or ev["seq"] <= last_seq:
            fail(f"health event {i} seq {ev['seq']!r} not strictly "
                 f"increasing after {last_seq}")
        last_seq = ev["seq"]
        if ev["severity"] not in SEVERITIES:
            fail(f"health event {i} has unknown severity "
                 f"'{ev['severity']}'")
        if not isinstance(ev["rule"], str) or not ev["rule"]:
            fail(f"health event {i} has empty/non-string rule")
        if not isinstance(ev["cleared"], bool):
            fail(f"health event {i} cleared is not a bool")
        if ev["cleared"] and ev["severity"] != "info":
            fail(f"health event {i} is a recovery but severity is "
                 f"'{ev['severity']}' (recoveries are info)")

    counters = doc["health_counters"]
    if not isinstance(counters, dict):
        fail("'health_counters' must be an object")
    for key in ("evaluations", "firings", "events_emitted",
                "events_cleared", "suppressed_firings", "rule_errors"):
        if not isinstance(counters.get(key), int) or counters[key] < 0:
            fail(f"health_counters.{key} missing or bad: "
                 f"{counters.get(key)!r}")
    # History is bounded (oldest events drop out), so the counters bound
    # the history from above, never below.
    total = counters["events_emitted"] + counters["events_cleared"]
    if len(events) > total:
        fail(f"{len(events)} health events in history but counters only "
             f"account for {total}")
    return events


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bundle",
                        help="postmortem bundle file, or a directory "
                             "holding postmortem-<seq>.json bundles "
                             "(highest sequence is validated)")
    parser.add_argument("--expect-rule", action="append", default=[],
                        metavar="NAME:COUNT",
                        help="require exactly COUNT non-cleared events "
                             "for rule NAME (repeatable)")
    parser.add_argument("--require-rule", action="append", default=[],
                        metavar="PREFIX",
                        help="require at least one event whose rule "
                             "starts with PREFIX (repeatable)")
    args = parser.parse_args()

    path = pick_bundle(args.bundle)
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load '{path}': {e}")

    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected '{SCHEMA}'")
    for key in ("seq", "reason", "ticks", "kept_events", "dropped_events",
                "trace", "metrics", "health_events", "health_counters"):
        if key not in doc:
            fail(f"bundle missing top-level key '{key}'")
    if not isinstance(doc["seq"], int) or doc["seq"] < 1:
        fail(f"seq must be a positive integer, got {doc['seq']!r}")
    if not isinstance(doc["reason"], str) or not doc["reason"]:
        fail("reason must be a non-empty string")
    for key in ("kept_events", "dropped_events"):
        if not isinstance(doc[key], int) or doc[key] < 0:
            fail(f"{key} must be a non-negative integer, got {doc[key]!r}")

    trace_events = check_trace(doc)
    metric_count = check_metrics(doc)
    events = check_health(doc)

    breaches = {}
    for ev in events:
        if not ev["cleared"]:
            breaches[ev["rule"]] = breaches.get(ev["rule"], 0) + 1
    for spec in args.expect_rule:
        name, sep, count = spec.rpartition(":")
        if not sep or not count.isdigit():
            fail(f"--expect-rule wants NAME:COUNT, got '{spec}'")
        if breaches.get(name, 0) != int(count):
            fail(f"expected exactly {count} non-cleared event(s) for rule "
                 f"'{name}', saw {breaches.get(name, 0)} "
                 f"(rules seen: {sorted(breaches) or '<none>'})")
    for prefix in args.require_rule:
        if not any(r.startswith(prefix) for r in breaches):
            fail(f"no non-cleared event rule starts with '{prefix}' "
                 f"(saw: {sorted(breaches) or '<none>'})")

    print(f"validate_postmortem: OK: {os.path.basename(path)} seq "
          f"{doc['seq']} ('{doc['reason']}'), {trace_events} trace "
          f"events ({doc['dropped_events']} dropped), {metric_count} "
          f"metrics, {len(events)} health event(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
