#!/usr/bin/env sh
# Tier-1 verify: the exact command from ROADMAP.md. CI runs this same
# script so local and CI results cannot drift.
set -eux
cd "$(dirname "$0")/.."
# lint: project invariants (scripts/lint_invariants.py) plus the lint
# engine's own seeded-violation self-tests. Runs first — it is the
# cheapest failure.
python3 scripts/test_lint_invariants.py
python3 scripts/lint_invariants.py --no-headers
# Concurrency analyzer (rules A1-A4): self-tests first, then the token
# backend over the tree. The clang backend (authoritative, needs
# libclang) runs in the static-analysis CI job.
python3 scripts/test_analyze_ast.py
python3 scripts/analyze_ast.py --backend=token
cmake -B build -S .
cmake --build build -j "$(nproc)"
# R5 (header self-sufficiency) needs the compiler; run it after the
# build so an ordinary compile error surfaces with full context first.
python3 scripts/lint_invariants.py
cd build
ctest --output-on-failure -j "$(nproc)"
