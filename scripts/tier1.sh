#!/usr/bin/env sh
# Tier-1 verify: the exact command from ROADMAP.md. CI runs this same
# script so local and CI results cannot drift.
set -eux
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
