#!/usr/bin/env python3
"""AST-grade concurrency analyzer: memory-order and lock-free protocol rules.

Where scripts/lint_invariants.py checks invariants a regex can see, this
engine checks the ones that need program structure: which atomic ops a
function performs, in what order, under which claim. Rules (each with a
per-rule allowlist whose every entry carries a reason, see *_ALLOW):

  A1 explicit-memory-order
      Every load/store/exchange/fetch_*/compare_exchange_*/wait on a
      std::atomic must name an explicit std::memory_order, and the
      operator forms (a++, a += n, a = v, implicit conversion reads)
      are forbidden outright — they cannot name one. Implicit seq_cst
      is a full fence on x86 and a dmb on ARM that nobody decided to
      pay; spelling the order is the decision record. Deliberate
      seq_cst stays legal when written out (std::memory_order_seq_cst).
  A2 seqlock-protocol
      In functions using seqClaim/seqRelease (common/striped.hpp):
      claims and releases must pair up, atomic stores to the claimed
      object's sibling fields must happen inside the claim window and
      use release (or seq_cst) order — the exact ARM-visibility bug the
      PR 5 review caught by hand. Reader-side: a function that loads a
      sequence word directly must re-load it AFTER the protected field
      loads (torn-snapshot re-check), and the first sequence load must
      be acquire.
  A3 claim-release-exception-safety
      A function that claims a busy word with compare_exchange and
      manually store-releases it later may not call anything potentially
      throwing in between: a throw leaks the claim forever (the inline-
      lane leak class PR 5 fixed by hand). Use the RAII releaser
      (common::ClaimGuard) instead of a manual store.
  A4 lock-free-audit-coverage
      Every function touching a std::atomic member (class member or
      namespace-scope global; function locals are exempt) outside a
      MutexLock/TP_REQUIRES scope must carry TP_LOCK_FREE_AUDITED, so
      no lock-free code ships without a named audit + TSan test
      (rule R7 checks the reason string's "TSan:" tag).

Backends (shared rule engine, two front ends):

  clang   libclang (clang.cindex) over the exported compile_commands.json
          — the authoritative backend, used by the static-analysis CI
          job. Exits 3 with installation instructions when libclang is
          unavailable (a missing gate must fail loudly, not skip).
  token   a comment/string-stripped token scanner over src/ that builds
          the same per-function event streams from declarations it
          collects across the tree. No toolchain needed; runs in tier-1
          so the rules are enforced (and self-testable) on every
          machine. It resolves names, not types, so it can under-report
          in ambiguous corners the clang backend decides exactly.

Usage:
  python3 scripts/analyze_ast.py [--backend clang|token] [-p BUILD_DIR]
                                 [--root DIR] [--json REPORT]
Exit status: 0 clean, 1 findings, 2 internal error,
             3 clang backend unavailable (libclang/bindings missing).
"""

import argparse
import bisect
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Only src/ carries the concurrency contracts; bench/ and tools/ are
# single-purpose drivers allowed raw primitives (same scope as lint R2).
SOURCE_DIRS = ("src",)
SOURCE_EXTS = (".hpp", ".cpp")

# --------------------------------------------------------------------------
# Allowlists. Every entry is (path-prefix, symbol, reason): `symbol`
# narrows the suppression to events whose chain or base name matches
# (None suppresses the whole path for that rule). A reason is mandatory;
# validate_allowlists() and the self-tests reject empty ones.

A1_ALLOW = (
    # No entries: every implicit-seq_cst site in the tree was converted
    # to an explicit order. Deliberate seq_cst (the drain()/shutdown()
    # accepting_/inFlight_ protocol in serve/service.cpp) is spelled
    # std::memory_order_seq_cst and therefore passes without suppression.
)

A2_ALLOW = (
    ("src/serve/cache.cpp", "ref",
     "CLOCK second-chance bit is advisory by design: readers set it after "
     "the sequence re-check and the sweep reads it relaxed — a stale value "
     "only perturbs eviction order, never the published decision payload"),
)

A3_ALLOW = (
    # No entries: the one claim/release section (inline lanes) holds its
    # claim through common::ClaimGuard, which releases on every path.
)

A4_ALLOW = (
    # No entries: every function touching a member atomic outside a lock
    # scope carries TP_LOCK_FREE_AUDITED naming its TSan coverage.
)

RULES = {
    "A1": ("explicit-memory-order", A1_ALLOW),
    "A2": ("seqlock-protocol", A2_ALLOW),
    "A3": ("claim-release-exception-safety", A3_ALLOW),
    "A4": ("lock-free-audit-coverage", A4_ALLOW),
}


def validate_allowlists():
    for rule, (_, allow) in sorted(RULES.items()):
        for entry in allow:
            if len(entry) != 3:
                raise ValueError(
                    f"{rule} allowlist entry {entry!r}: must be "
                    "(path, symbol, reason)")
            path, _symbol, reason = entry
            if not path or not isinstance(reason, str) or not reason.strip():
                raise ValueError(
                    f"{rule} allowlist entry for {path!r}: every entry "
                    "must carry a non-empty reason string")


def suppressed(rule, rel, symbol_candidates):
    _, allow = RULES[rule]
    for path, symbol, _reason in allow:
        if not (rel == path or rel.startswith(path.rstrip("/") + "/")):
            continue
        if symbol is None or symbol in symbol_candidates:
            return True
    return False


# --------------------------------------------------------------------------
# Shared IR

ATOMIC_OPS = {
    "load": "load", "store": "store", "exchange": "rmw",
    "fetch_add": "rmw", "fetch_sub": "rmw", "fetch_and": "rmw",
    "fetch_or": "rmw", "fetch_xor": "rmw",
    "compare_exchange_weak": "cas", "compare_exchange_strong": "cas",
    "wait": "wait", "test_and_set": "rmw", "clear": "store",
}

RELEASING = ("release", "acq_rel", "seq_cst")
ACQUIRING = ("acquire", "acq_rel", "seq_cst", "consume")


class Event:
    """One atomic operation (or claim/release/plain call) in a function.

    kind: load|store|rmw|cas|wait|compound|assign|incdec|conv|
          seq_claim|seq_release|call
    chain: normalized object expression, '.'-joined ("slot.seq")
    scope: member|local|unknown — member covers class members and
           namespace-scope globals (both A4-relevant)
    orders: memory_order suffixes named in the argument list
    pos: ordering key within the function (backend-specific, comparable)
    """

    __slots__ = ("kind", "chain", "orders", "line", "pos", "scope", "name")

    def __init__(self, kind, chain, orders, line, pos, scope="unknown",
                 name=""):
        self.kind = kind
        self.chain = chain
        self.orders = orders
        self.line = line
        self.pos = pos
        self.scope = scope
        self.name = name  # for kind == "call": callee name

    @property
    def base(self):
        return self.chain.split(".")[-1] if self.chain else ""

    @property
    def root(self):
        return self.chain.split(".")[0] if self.chain else ""

    @property
    def explicit(self):
        return bool(self.orders)


class FunctionModel:
    __slots__ = ("name", "qualname", "path", "line", "audited", "requires",
                 "locks", "events")

    def __init__(self, name, qualname, path, line, audited=False,
                 requires=False, locks=False):
        self.name = name
        self.qualname = qualname
        self.path = path
        self.line = line
        self.audited = audited
        self.requires = requires
        self.locks = locks
        self.events = []


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}


# --------------------------------------------------------------------------
# Rule engine (backend-independent)


def check_a1(functions):
    out = []
    for fn in functions:
        for ev in fn.events:
            if ev.kind in ("load", "store", "rmw", "cas", "wait"):
                if ev.explicit:
                    continue
                if suppressed("A1", fn.path, {ev.chain, ev.base}):
                    continue
                out.append(Finding(
                    "A1", fn.path, ev.line,
                    f"atomic {ev.kind} '{ev.chain}.{ev.kind}' in "
                    f"{fn.qualname}() names no std::memory_order (implicit "
                    "seq_cst pays a full fence nobody chose); spell the "
                    "order — std::memory_order_seq_cst if that is the "
                    "intent"))
            elif ev.kind in ("compound", "assign", "incdec", "conv"):
                if suppressed("A1", fn.path, {ev.chain, ev.base}):
                    continue
                forms = {"compound": "compound assignment",
                         "assign": "operator=",
                         "incdec": "increment/decrement",
                         "conv": "implicit conversion read"}
                out.append(Finding(
                    "A1", fn.path, ev.line,
                    f"{forms[ev.kind]} on std::atomic '{ev.chain}' in "
                    f"{fn.qualname}() is an implicit seq_cst operation; "
                    "use .fetch_add/.store/.load with an explicit "
                    "std::memory_order"))
    return out


def check_a2(functions, seq_names):
    out = []
    for fn in functions:
        events = sorted(fn.events, key=lambda e: e.pos)
        claims = [e for e in events if e.kind == "seq_claim"]
        releases = [e for e in events if e.kind == "seq_release"]
        if claims or releases:
            out.extend(_a2_writer(fn, events, claims, releases))
        else:
            out.extend(_a2_reader(fn, events, seq_names))
    return out


def _a2_writer(fn, events, claims, releases):
    out = []
    if bool(claims) != bool(releases):
        out.append(Finding(
            "A2", fn.path, (claims or releases)[0].line,
            f"{fn.qualname}(): {len(claims)} seqClaim vs {len(releases)} "
            "seqRelease — every claim must have a matching release on "
            "every path (a stuck-odd word spins readers forever)"))
    # Window per root: [first claim, last release]. Early-out branches
    # release before returning, so release count may legitimately exceed
    # claim count; the conservative envelope still catches stores before
    # the claim or after the final release.
    windows = []
    by_root = {}
    for ev in claims + releases:
        by_root.setdefault(ev.root, []).append(ev)
    for root, evs in by_root.items():
        c = [e.pos for e in evs if e.kind == "seq_claim"]
        r = [e.pos for e in evs if e.kind == "seq_release"]
        if c and r:
            windows.append((root, min(c), max(r)))
    claimed_roots = {c.root for c in claims}
    for ev in events:
        if ev.kind not in ("store", "compound", "assign", "incdec"):
            continue
        if ev.root not in claimed_roots or not ev.root:
            continue
        if ev.base in {c.base for c in claims}:
            continue  # the sequence word itself is seqRelease's job
        inside = any(r == ev.root and s < ev.pos < e
                     for (r, s, e) in windows)
        if suppressed("A2", fn.path, {ev.chain, ev.base}):
            continue
        if not inside:
            out.append(Finding(
                "A2", fn.path, ev.line,
                f"store to seqlock-protected field '{ev.chain}' in "
                f"{fn.qualname}() outside the claim window — the claim "
                "must dominate every protected store"))
        elif ev.kind == "store" and \
                not any(o in RELEASING for o in ev.orders):
            out.append(Finding(
                "A2", fn.path, ev.line,
                f"seqlock writer stores '{ev.chain}' in {fn.qualname}() "
                "without release order inside the claim window; a relaxed "
                "store can become visible after seqRelease publishes the "
                "even sequence (torn read on ARM) — use "
                "std::memory_order_release"))
    return out


def _a2_reader(fn, events, seq_names):
    out = []
    loads = [e for e in events if e.kind == "load"]
    by_root = {}
    for ev in loads:
        if "." in ev.chain:
            by_root.setdefault(ev.root, []).append(ev)
    for root, evs in sorted(by_root.items()):
        seq_loads = [e for e in evs if e.base in seq_names]
        field_loads = [e for e in evs if e.base not in seq_names]
        if not seq_loads or not field_loads:
            continue
        field_loads = [e for e in field_loads
                       if not suppressed("A2", fn.path, {e.chain, e.base})]
        if not field_loads:
            continue
        first = seq_loads[0]
        if first.explicit and not any(o in ACQUIRING for o in first.orders):
            out.append(Finding(
                "A2", fn.path, first.line,
                f"seqlock reader '{fn.qualname}()' loads sequence word "
                f"'{first.chain}' without acquire order before reading "
                "protected fields; the field loads may be satisfied before "
                "the sequence check — use std::memory_order_acquire"))
        if len(seq_loads) < 2:
            out.append(Finding(
                "A2", fn.path, field_loads[0].line,
                f"seqlock reader '{fn.qualname}()' reads fields of "
                f"'{root}' but never re-checks the sequence word after the "
                "field loads — a concurrent writer tears the snapshot "
                "undetected (the PR 5 bug class); re-load and compare"))
            continue
        last_recheck = max(e.pos for e in seq_loads)
        for ev in field_loads:
            if ev.pos > last_recheck:
                out.append(Finding(
                    "A2", fn.path, ev.line,
                    f"field load '{ev.chain}' in {fn.qualname}() happens "
                    "after the final sequence re-check — it is outside the "
                    "validated window and may observe a torn write; move "
                    "it before the re-check or re-validate"))
    return out


# Calls assumed non-throwing in a claim window: atomic/claim machinery,
# trivial accessors, and noexcept std helpers common on these paths.
A3_SAFE_CALLS = set(ATOMIC_OPS) | {
    "seqClaim", "seqRelease", "notify_one", "notify_all",
    "min", "max", "move", "size", "empty", "data", "begin", "end",
    "count", "get", "release", "claimed", "nowTicks", "threadStripe",
    "threadOrdinal",
}

_TYPE_WORDS = {
    "void", "bool", "char", "int", "float", "double", "auto", "unsigned",
    "signed", "long", "short", "size_t", "ptrdiff_t", "uint8_t", "uint16_t",
    "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
    "uintptr_t", "intptr_t",
}
_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "else", "do",
    "new", "delete", "sizeof", "alignof", "alignas", "decltype", "noexcept",
    "static_assert", "explicit", "throw", "case", "default", "template",
    "typename", "static_cast", "const_cast", "reinterpret_cast",
    "dynamic_cast", "operator", "assert", "defined", "this",
}


def _throw_candidate(name):
    if name in A3_SAFE_CALLS or name in _KEYWORDS or name in _TYPE_WORDS:
        return False
    if re.fullmatch(r"[A-Z][A-Z0-9_]+", name):
        return False  # macros (TP_TRACE_*, TP_ASSERT, ...) — audited noexcept
    return True


def check_a3(functions):
    out = []
    for fn in functions:
        events = sorted(fn.events, key=lambda e: e.pos)
        cas_by_chain = {}
        for ev in events:
            if ev.kind == "cas":
                cas_by_chain.setdefault(ev.chain, []).append(ev)
        for chain, cas_list in sorted(cas_by_chain.items()):
            rels = [e for e in events
                    if e.kind == "store" and e.chain == chain
                    and e.pos > cas_list[0].pos]
            if not rels:
                continue  # RAII releaser (or no manual release): fine
            if suppressed("A3", fn.path, {chain, chain.split(".")[-1]}):
                continue
            start, end = cas_list[0].pos, max(e.pos for e in rels)
            risky = [e for e in events
                     if e.kind == "call" and start < e.pos < end
                     and _throw_candidate(e.name)]
            if risky:
                out.append(Finding(
                    "A3", fn.path, risky[0].line,
                    f"{fn.qualname}() claims '{chain}' by compare_exchange "
                    f"and releases it with a manual store, but calls "
                    f"'{risky[0].name}(...)' in between — a throw leaks the "
                    "claim forever; hold it through an RAII releaser "
                    "(common::ClaimGuard) instead"))
    return out


def check_a4(functions):
    out = []
    for fn in functions:
        if fn.audited or fn.requires or fn.locks:
            continue
        touched = [ev for ev in fn.events
                   if ev.scope == "member" and ev.kind in
                   ("load", "store", "rmw", "cas", "wait", "compound",
                    "assign", "incdec", "conv", "seq_claim", "seq_release")]
        touched = [ev for ev in touched
                   if not suppressed("A4", fn.path,
                                     {ev.chain, ev.base, fn.qualname,
                                      fn.name})]
        if not touched:
            continue
        ev = touched[0]
        out.append(Finding(
            "A4", fn.path, fn.line,
            f"{fn.qualname}() touches std::atomic member '{ev.chain}' "
            "outside any MutexLock/TP_REQUIRES scope but carries no "
            "TP_LOCK_FREE_AUDITED — annotate it with the protocol summary "
            "and the covering TSan test (rule R7 checks the \"TSan:\" "
            "tag)"))
    return out


def run_rules(functions, seq_names):
    findings = []
    findings += check_a1(functions)
    findings += check_a2(functions, seq_names)
    findings += check_a3(functions)
    findings += check_a4(functions)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --------------------------------------------------------------------------
# Token backend: comment/string-stripped scanner over src/.


def strip_comments_and_strings(text):
    """Blank comments and string/char literals, preserving line structure
    (same contract as lint_invariants.strip_comments_and_strings)."""
    out = []
    i, n = 0, len(text)
    mode = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode, i = "line_comment", i + 2
                out.append("  ")
                continue
            if c == "/" and nxt == "*":
                mode, i = "block_comment", i + 2
                out.append("  ")
                continue
            if c == '"':
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode, i = "code", i + 2
                out.append("  ")
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string | char
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(" ")
            elif c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


_IDENT = r"[A-Za-z_]\w*"
_FUNC_CAND_RE = re.compile(r"((?:" + _IDENT + r"\s*::\s*)*)([~]?" + _IDENT +
                           r")\s*\(")
_RECORD_RE = re.compile(r"\b(class|struct|union|enum)\b")
OP_CALL_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(sorted(ATOMIC_OPS)) + r")\s*\(")
SEQ_CALL_RE = re.compile(r"\b(seqClaim|seqRelease)\s*\(")
CALL_RE = re.compile(r"\b(" + _IDENT + r")\s*\(")
_CHAIN_PAT = (r"[A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*"
              r"|\s*\[[^][]*\]\s*(?:\.|->)\s*[A-Za-z_]\w*)*")
MUTATE_RE = re.compile(
    r"(?<![\w.])(" + _CHAIN_PAT +
    r")\s*(\+=|-=|\|=|&=|\^=|\+\+|--|(?<![=!<>+\-*/&|^%])=(?![=]))")
PREFIX_INCDEC_RE = re.compile(
    r"(?<![\w.+\-])(\+\+|--)\s*(" + _CHAIN_PAT + r")")
ATOMIC_DECL_RE = re.compile(r"\b(?:std\s*::\s*)?atomic(?:_ref)?\s*<")
MAKE_SHARED_ATOMIC_RE = re.compile(
    r"\b(" + _IDENT + r")\s*=\s*std\s*::\s*make_shared\s*<"
    r"\s*std\s*::\s*atomic\b")
PLAIN_FIELD_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:u?int(?:8|16|32|64)?_t|size_t|int|bool|double|"
    r"float|long|unsigned|string)\s+(" + _IDENT + r")\s*[;={]")
LOCK_RE = re.compile(
    r"\b(?:common\s*::\s*)?(?:MutexLock|SharedMutexLock|"
    r"SharedMutexLockShared)\s+" + _IDENT + r"\s*[({]")
AUDIT_TOKEN = "TP_LOCK_FREE_AUDITED"


def _function_name_from(header):
    """Last plausible function-name candidate `name(` in `header`."""
    best = None
    for m in _FUNC_CAND_RE.finditer(header):
        name = m.group(2)
        bare = name.lstrip("~")
        if bare in _KEYWORDS or bare in _TYPE_WORDS:
            continue
        if re.fullmatch(r"[A-Z][A-Z0-9_]+", bare):
            continue  # attribute/annotation macros
        if best is None:
            best = (m.group(1).replace(" ", "") + name, name)
    return best


def _skip_balanced(code, i, open_c, close_c):
    depth = 0
    n = len(code)
    while i < n:
        if code[i] == open_c:
            depth += 1
        elif code[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _skip_balanced_back(code, i, open_c, close_c):
    depth = 0
    while i >= 0:
        if code[i] == close_c:
            depth += 1
        elif code[i] == open_c:
            depth -= 1
            if depth == 0:
                return i - 1
        i -= 1
    return -1


def _chain_before(code, idx):
    """Object chain ending just before `idx` (the '.'/'->' of a call),
    as '.'-joined component names; [] and () groups are elided."""
    comps = []
    i = idx - 1
    while i >= 0:
        while i >= 0 and code[i].isspace():
            i -= 1
        if i < 0:
            break
        if code[i] == "]":
            i = _skip_balanced_back(code, i, "[", "]")
            continue
        if code[i] == ")":
            # call or parenthesized expression as chain root: opaque
            comps.append("()")
            break
        j = i
        while j >= 0 and (code[j].isalnum() or code[j] == "_"):
            j -= 1
        if j == i:
            break
        comps.append(code[j + 1:i + 1])
        i = j
        while i >= 0 and code[i].isspace():
            i -= 1
        if i >= 1 and code[i] == ">" and code[i - 1] == "-":
            i -= 2
        elif i >= 0 and code[i] == "." and (i == 0 or code[i - 1] != "."):
            i -= 1
        else:
            break
    comps.reverse()
    return ".".join(c for c in comps if c != "()") if comps else ""


class _Scope:
    __slots__ = ("kind", "name", "header", "header_start", "body_start")

    def __init__(self, kind, name, header, header_start, body_start):
        self.kind = kind
        self.name = name
        self.header = header
        self.header_start = header_start
        self.body_start = body_start


def _scan_scopes(code):
    """One pass over stripped code: function spans, record spans, and a
    paren-depth array (for parameter detection)."""
    functions = []   # (name, qualname, header, header_start, body span)
    records = []     # (name, body span)
    depth_at = bytearray(len(code))
    stack = []
    stmt_start = 0
    paren = 0
    fn_depth = 0  # how many enclosing function scopes
    for i, c in enumerate(code):
        depth_at[i] = min(paren, 255)
        if c == "(":
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        elif c == ";" and paren == 0:
            stmt_start = i + 1
        elif c == "{":
            header = code[stmt_start:i]
            kind, name = _classify_header(header, fn_depth, paren)
            stack.append(_Scope(kind, name, header, stmt_start, i + 1))
            if kind == "function":
                fn_depth += 1
            stmt_start = i + 1
        elif c == "}":
            if stack:
                s = stack.pop()
                if s.kind == "function":
                    fn_depth -= 1
                    qual = s.name
                    if "::" not in qual:
                        for outer in reversed(stack):
                            if outer.kind == "record" and outer.name:
                                qual = outer.name + "::" + qual
                                break
                    functions.append((s.name, qual, s.header,
                                      s.header_start, (s.body_start, i)))
                elif s.kind == "record" and s.name:
                    records.append((s.name, (s.body_start, i)))
            stmt_start = i + 1
    return functions, records, depth_at


def _classify_header(header, fn_depth, paren):
    if fn_depth > 0 or paren > 0:
        return "block", None
    h = header.strip()
    if not h or h.endswith("="):
        return "block", None
    rec = _RECORD_RE.search(h)
    par = h.find("(")
    if rec and (par == -1 or rec.start() < par):
        left = re.split(r"(?<!:):(?!:)", h, maxsplit=1)[0]
        idents = re.findall(_IDENT, left)
        name = idents[-1] if idents else None
        return "record", name
    if re.search(r"\bnamespace\b", h):
        return "namespace", None
    if par != -1:
        cand = _function_name_from(h)
        if cand is not None:
            return "function", cand[0]
    return "block", None


def _line_index(code):
    offs = [0]
    for m in re.finditer(r"\n", code):
        offs.append(m.end())
    return offs


def _line_of(offs, pos):
    return bisect.bisect_right(offs, pos)


class TokenBackend:
    """Builds FunctionModels from a textual scan of src/."""

    def __init__(self, root):
        self.root = root
        self.files = {}       # rel -> stripped code
        self.scopes = {}      # rel -> (functions, records, depth_at)
        self.atomic_members = set()
        self.container_members = set()  # vector<atomic<T>> etc. — element
        # access is an atomic op, whole-object assignment is not
        self.plain_fields = set()
        self.owner_types = set()   # record types that declare atomics
        self.file_locals = {}      # rel -> set of local atomic names
        self.audited_names = set()
        self.seq_names = {"seq"}

    def _iter_files(self):
        for d in SOURCE_DIRS:
            base = os.path.join(self.root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _dirs, names in os.walk(base):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        path = os.path.join(dirpath, name)
                        yield path.replace(os.sep, "/")

    def load(self):
        for path in self._iter_files():
            rel = os.path.relpath(path, self.root).replace(os.sep, "/")
            with open(path, encoding="utf-8", errors="replace") as f:
                code = strip_comments_and_strings(f.read())
            self.files[rel] = code
            self.scopes[rel] = _scan_scopes(code)
        for rel in self.files:
            self._collect_declarations(rel)
        return self

    def _collect_declarations(self, rel):
        code = self.files[rel]
        functions, records, depth_at = self.scopes[rel]
        fn_spans = [span for (_n, _q, _h, _hs, span) in functions]
        locals_here = self.file_locals.setdefault(rel, set())

        def in_function(pos):
            return any(s <= pos < e for (s, e) in fn_spans)

        for m in ATOMIC_DECL_RE.finditer(code):
            end = _skip_balanced(code, code.find("<", m.start()), "<", ">")
            name = None
            container = False
            nm = re.match(r"\s*[&*]?\s*(" + _IDENT + ")", code[end:])
            if nm:
                name = nm.group(1)
            else:
                # nested in a template argument (vector<atomic<T>> x):
                # fall back to the declared name at the statement tail.
                tail = re.match(r"[\s>&*]*(" + _IDENT + r")\s*[;={]",
                                code[end:])
                if tail:
                    name = tail.group(1)
                    container = True
            if not name or name in _TYPE_WORDS or name in _KEYWORDS:
                continue
            if in_function(m.start()) or depth_at[m.start()] > 0:
                locals_here.add(name)
            elif container:
                self.container_members.add(name)
            else:
                self.atomic_members.add(name)
                for rec_name, (s, e) in records:
                    if s <= m.start() < e:
                        self.owner_types.add(rec_name)
                        break
        for m in MAKE_SHARED_ATOMIC_RE.finditer(code):
            locals_here.add(m.group(1))
        for rec_name, (s, e) in records:
            for pm in PLAIN_FIELD_RE.finditer(code, s, e):
                self.plain_fields.add(pm.group(1))
        for m in re.finditer(AUDIT_TOKEN, code):
            cand = None
            for c in _FUNC_CAND_RE.finditer(code, max(0, m.start() - 400),
                                            m.start()):
                name = c.group(2).lstrip("~")
                if name in _KEYWORDS or name in _TYPE_WORDS:
                    continue
                if re.fullmatch(r"[A-Z][A-Z0-9_]+", name):
                    continue
                cand = c.group(2)
            if cand:
                self.audited_names.add(cand)

    def _scope_of(self, rel, base):
        if base in self.file_locals.get(rel, ()):
            return "local"
        if base in self.atomic_members:
            return "member"
        return "unknown"

    def _is_atomic_name(self, rel, base, mutate=False):
        if base in self.atomic_members or base in self.file_locals.get(
                rel, ()):
            return True
        # Element access on a container of atomics is an atomic op; a
        # whole-container assignment (stripes_ = std::vector<...>(n)) is
        # not, so containers only count for the method-call forms.
        return not mutate and base in self.container_members

    def _root_is_atomic_owner(self, rel, root):
        """Resolve a chain root's declared type against the record types
        known to own atomic fields (disambiguates counters_.x += 1 from
        stats.x = ... when field names collide across structs). Searches
        the event's own file first, then the rest of the tree (members
        are usually declared in the matching header)."""
        decl_re = re.compile(r"\b([A-Za-z_][\w:]*)\s+[&*]?\s*" +
                             re.escape(root) + r"\s*[;={(,]")
        ordered = [rel] + [p for p in sorted(self.files) if p != rel]
        for path in ordered:
            m = decl_re.search(self.files[path])
            if not m:
                continue
            t = m.group(1).split("::")[-1]
            if t in self.owner_types:
                return True
            if t in _TYPE_WORDS or t in ("auto", "const", "mutable",
                                         "return", "constexpr", "static"):
                continue
            return False
        return None

    def functions(self):
        models = []
        for rel, code in sorted(self.files.items()):
            offs = _line_index(code)
            fns, _records, _depth = self.scopes[rel]
            for (name, qual, header, hstart, (bs, be)) in fns:
                fn = FunctionModel(
                    name.split("::")[-1], qual, rel, _line_of(offs, hstart),
                    audited=(AUDIT_TOKEN in header or
                             name.split("::")[-1] in self.audited_names or
                             name in self.audited_names),
                    requires="TP_REQUIRES" in header,
                    locks=bool(LOCK_RE.search(code, bs, be)))
                fn.line = _line_of(offs, bs)
                self._extract_events(fn, rel, code, offs, bs, be)
                models.append(fn)
        return models

    def _extract_events(self, fn, rel, code, offs, bs, be):
        taken = []  # spans already claimed by op-call matches

        def overlaps(a, b):
            return any(not (b <= s or e <= a) for (s, e) in taken)

        for m in OP_CALL_RE.finditer(code, bs, be):
            chain = _chain_before(code, m.start())
            base = chain.split(".")[-1] if chain else ""
            if not self._is_atomic_name(rel, base):
                continue
            paren = code.index("(", m.end() - 1)
            close = _skip_balanced(code, paren, "(", ")")
            args = code[paren + 1:close - 1]
            orders = re.findall(r"memory_order(?:_|\s*::\s*)(\w+)", args)
            fn.events.append(Event(
                ATOMIC_OPS[m.group(1)], chain, orders,
                _line_of(offs, m.start()), m.start(),
                self._scope_of(rel, base)))
            taken.append((m.start(), close))
        for m in SEQ_CALL_RE.finditer(code, bs, be):
            paren = code.index("(", m.end() - 1)
            close = _skip_balanced(code, paren, "(", ")")
            first_arg = code[paren + 1:close - 1].split(",")[0]
            chain = ".".join(re.findall(_IDENT, first_arg.replace("->", ".")))
            base = chain.split(".")[-1] if chain else ""
            kind = "seq_claim" if m.group(1) == "seqClaim" else "seq_release"
            if kind == "seq_claim" and base:
                self.seq_names.add(base)
            fn.events.append(Event(
                kind, chain, [], _line_of(offs, m.start()), m.start(),
                self._scope_of(rel, base)))
            taken.append((m.start(), close))
        for m in MUTATE_RE.finditer(code, bs, be):
            chain_txt, op = m.group(1), m.group(2)
            if overlaps(m.start(1), m.end(2)):
                continue
            chain = ".".join(re.findall(_IDENT, chain_txt.replace("->", ".")))
            base = chain.split(".")[-1]
            if not self._is_atomic_name(rel, base, mutate=True):
                continue
            # A type/declarator immediately before the chain means this is
            # a declaration of a shadowing local ("uint64_t meta = ..."),
            # not an operation on the atomic of the same name.
            j = m.start(1) - 1
            while j >= bs and code[j] in " \t\n":
                j -= 1
            if j >= bs and (code[j].isalnum() or code[j] in "_>&*"):
                continue
            stmt_start = max(code.rfind(";", bs, m.start(1)),
                             code.rfind("{", bs, m.start(1)),
                             code.rfind("}", bs, m.start(1)), bs - 1) + 1
            stmt_end = code.find(";", m.end(2), be)
            stmt = code[stmt_start:stmt_end if stmt_end != -1 else be]
            if re.search(r"\b(atomic|auto|make_shared)\b", stmt):
                continue  # declaration/initialization, not an atomic op
            if base in self.plain_fields:
                owner = self._root_is_atomic_owner(rel, chain.split(".")[0])
                if owner is not True:
                    continue  # ambiguous name resolves to a plain struct
            kind = ("incdec" if op in ("++", "--")
                    else "assign" if op == "=" else "compound")
            fn.events.append(Event(
                kind, chain, [], _line_of(offs, m.start(1)), m.start(1),
                self._scope_of(rel, base)))
        for m in PREFIX_INCDEC_RE.finditer(code, bs, be):
            chain = ".".join(re.findall(
                _IDENT, m.group(2).replace("->", ".")))
            base = chain.split(".")[-1]
            if not self._is_atomic_name(rel, base, mutate=True):
                continue
            if base in self.plain_fields:
                owner = self._root_is_atomic_owner(rel, chain.split(".")[0])
                if owner is not True:
                    continue
            fn.events.append(Event(
                "incdec", chain, [], _line_of(offs, m.start()), m.start(),
                self._scope_of(rel, base)))
        for m in CALL_RE.finditer(code, bs, be):
            name = m.group(1)
            if name in _KEYWORDS or name in _TYPE_WORDS:
                continue
            if name in ("seqClaim", "seqRelease") or name in ATOMIC_OPS:
                continue
            fn.events.append(Event(
                "call", "", [], _line_of(offs, m.start()), m.start(),
                name=name))


def analyze_token(root):
    backend = TokenBackend(root).load()
    functions = backend.functions()
    return run_rules(functions, backend.seq_names)


# --------------------------------------------------------------------------
# clang backend: libclang over compile_commands.json.

CLANG_INSTALL_HINT = (
    "analyze_ast: the clang backend needs libclang and its Python "
    "bindings.\n"
    "  Debian/Ubuntu:  apt-get install python3-clang libclang1\n"
    "  (CI installs these in the static-analysis job's toolchain step.)\n"
    "This is a hard failure, not a skip: a missing gate must not look "
    "green.\nThe token backend (--backend=token) needs no toolchain and "
    "covers the\nsame rules from a textual scan."
)


def _load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError as e:
        return None, f"python clang bindings not importable ({e})"
    import glob
    candidates = [None]
    candidates += sorted(glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*"),
                         reverse=True)
    candidates += sorted(glob.glob("/usr/lib/llvm-*/lib/libclang.so*"),
                         reverse=True)
    candidates += sorted(glob.glob("/usr/lib/*/libclang-*.so*"),
                         reverse=True)
    last = "no libclang shared library found"
    for cand in candidates:
        try:
            if cand is not None:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(cand)
            cindex.Index.create()
            return cindex, None
        except Exception as e:  # LibclangError, OSError
            last = str(e)
    return None, f"libclang not loadable ({last})"


def _tokens(cursor):
    for tok in cursor.get_tokens():
        if tok.kind.name != "COMMENT":
            yield tok.spelling


def _clang_chain(cindex, node):
    """Normalized member chain for a MEMBER_REF/DECL_REF expression."""
    parts = []
    cur = node
    while cur is not None:
        if cur.kind == cindex.CursorKind.MEMBER_REF_EXPR:
            parts.append(cur.spelling)
            children = list(cur.get_children())
            cur = children[0] if children else None
        elif cur.kind == cindex.CursorKind.DECL_REF_EXPR:
            parts.append(cur.spelling)
            cur = None
        elif cur.kind in (cindex.CursorKind.UNEXPOSED_EXPR,
                          cindex.CursorKind.PAREN_EXPR,
                          cindex.CursorKind.ARRAY_SUBSCRIPT_EXPR,
                          cindex.CursorKind.CALL_EXPR):
            children = list(cur.get_children())
            cur = children[0] if children else None
        else:
            cur = None
    parts = [p for p in parts if p]
    parts.reverse()
    return ".".join(parts)


def _clang_scope(cindex, node):
    """member|local|unknown for the chain's base member/variable."""
    cur = node
    while cur is not None:
        if cur.kind == cindex.CursorKind.MEMBER_REF_EXPR:
            return "member"
        if cur.kind == cindex.CursorKind.DECL_REF_EXPR:
            ref = cur.referenced
            if ref is None:
                return "unknown"
            if ref.kind == cindex.CursorKind.VAR_DECL:
                parent = ref.semantic_parent
                if parent is not None and parent.kind in (
                        cindex.CursorKind.NAMESPACE,
                        cindex.CursorKind.TRANSLATION_UNIT):
                    return "member"  # namespace-scope global: A4 applies
                return "local"
            return "local"  # parameters etc.
        children = list(cur.get_children())
        cur = children[0] if children else None
    return "unknown"


def _is_atomic_type(type_spelling):
    return "atomic" in type_spelling


class ClangBackend:
    def __init__(self, cindex, root, build_dir):
        self.cindex = cindex
        self.root = root
        self.build_dir = build_dir
        self.seq_names = {"seq"}
        self.models = {}
        self.parse_errors = []

    def load(self):
        cindex = self.cindex
        db = cindex.CompilationDatabase.fromDirectory(self.build_dir)
        index = cindex.Index.create()
        seen_tu = set()
        for cmd in db.getAllCompileCommands():
            path = os.path.normpath(
                os.path.join(cmd.directory, cmd.filename))
            rel = os.path.relpath(path, self.root).replace(os.sep, "/")
            if not rel.startswith(SOURCE_DIRS) or rel in seen_tu:
                continue
            seen_tu.add(rel)
            args = []
            skip_next = False
            for a in list(cmd.arguments)[1:]:
                if skip_next:
                    skip_next = False
                    continue
                if a in ("-c", path, cmd.filename):
                    continue
                if a == "-o":
                    skip_next = True
                    continue
                args.append(a)
            try:
                tu = index.parse(path, args=args)
            except Exception as e:
                self.parse_errors.append(f"{rel}: {e}")
                continue
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal:
                self.parse_errors.append(f"{rel}: {fatal[0].spelling}")
                continue
            self._walk_tu(tu)
        return self

    def _walk_tu(self, tu):
        cindex = self.cindex
        fn_kinds = (cindex.CursorKind.FUNCTION_DECL,
                    cindex.CursorKind.CXX_METHOD,
                    cindex.CursorKind.CONSTRUCTOR,
                    cindex.CursorKind.DESTRUCTOR,
                    cindex.CursorKind.FUNCTION_TEMPLATE,
                    cindex.CursorKind.CONVERSION_FUNCTION)

        def visit(cursor):
            for child in cursor.get_children():
                loc = child.location
                if loc.file is None:
                    continue
                rel = os.path.relpath(
                    os.path.normpath(loc.file.name),
                    self.root).replace(os.sep, "/")
                if not rel.startswith(SOURCE_DIRS):
                    continue
                if child.kind in fn_kinds and child.is_definition():
                    self._visit_function(child, rel)
                else:
                    visit(child)

        visit(tu.cursor)

    def _visit_function(self, cursor, rel):
        key = (rel, cursor.location.line, cursor.spelling)
        if key in self.models:
            return
        toks = set()
        for t in cursor.get_tokens():
            if t.kind.name == "COMMENT":
                continue
            toks.add(t.spelling)
            if len(toks) > 4000:
                break
        qual = cursor.spelling
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (
                self.cindex.CursorKind.CLASS_DECL,
                self.cindex.CursorKind.STRUCT_DECL,
                self.cindex.CursorKind.CLASS_TEMPLATE):
            qual = f"{parent.spelling}::{qual}"
        fn = FunctionModel(
            cursor.spelling, qual, rel, cursor.location.line,
            audited=AUDIT_TOKEN in toks,
            requires="TP_REQUIRES" in toks,
            locks=False)
        self.models[key] = fn
        body = None
        for child in cursor.get_children():
            if child.kind == self.cindex.CursorKind.COMPOUND_STMT:
                body = child
        if body is not None:
            self._visit_body(fn, body)

    def _order_tokens(self, cursor):
        orders = []
        for sp in _tokens(cursor):
            m = re.match(r"memory_order_(\w+)", sp)
            if m:
                orders.append(m.group(1))
            elif sp in ("relaxed", "acquire", "release", "acq_rel",
                        "seq_cst", "consume"):
                orders.append(sp)
        return orders

    def _visit_body(self, fn, body):
        cindex = self.cindex

        def pos_of(node):
            return (node.location.line, node.location.column)

        def visit(node):
            handled = False
            if node.kind == cindex.CursorKind.CALL_EXPR:
                handled = self._handle_call(fn, node, pos_of(node))
            elif node.kind in (cindex.CursorKind.VAR_DECL,):
                if "MutexLock" in node.type.spelling:
                    fn.locks = True
            if not handled:
                for child in node.get_children():
                    visit(child)

        visit(body)

    def _handle_call(self, fn, node, pos):
        cindex = self.cindex
        name = node.spelling
        children = list(node.get_children())
        base = children[0] if children else None
        line = node.location.line

        if name in ("seqClaim", "seqRelease"):
            args = list(node.get_arguments())
            chain = _clang_chain(cindex, args[0]) if args else ""
            kind = "seq_claim" if name == "seqClaim" else "seq_release"
            if kind == "seq_claim" and chain:
                self.seq_names.add(chain.split(".")[-1])
            scope = (_clang_scope(cindex, args[0]) if args else "unknown")
            fn.events.append(Event(kind, chain, [], line, pos, scope))
            return False  # still record nested calls in the args

        if name in ATOMIC_OPS and base is not None and \
                _is_atomic_type(self._base_type(base)):
            orders = self._order_tokens(node)
            fn.events.append(Event(
                ATOMIC_OPS[name], _clang_chain(cindex, base), orders,
                line, pos, _clang_scope(cindex, base)))
            return True

        if name.startswith("operator") and base is not None and \
                _is_atomic_type(self._base_type(base)):
            op = name[len("operator"):].strip()
            if op in ("++", "--"):
                kind = "incdec"
            elif op == "=":
                kind = "assign"
            elif op and op[0] in "+-&|^":
                kind = "compound"
            else:
                kind = "conv"  # operator T: implicit conversion load
            fn.events.append(Event(
                kind, _clang_chain(cindex, base), [], line, pos,
                _clang_scope(cindex, base)))
            return True

        fn.events.append(Event("call", "", [], line, pos, name=name))
        return False

    def _base_type(self, base):
        t = base.type.spelling
        if not t:
            return ""
        return t

    def functions(self):
        return list(self.models.values())


def analyze_clang(root, build_dir):
    cindex, err = _load_cindex()
    if cindex is None:
        return None, err
    if not os.path.isfile(os.path.join(build_dir, "compile_commands.json")):
        return None, (f"no compile_commands.json under {build_dir} — "
                      "configure a build first (cmake --preset tidy exports "
                      "one)")
    backend = ClangBackend(cindex, root, build_dir).load()
    if backend.parse_errors and not backend.models:
        raise RuntimeError(
            "clang backend parsed no TU successfully: " +
            "; ".join(backend.parse_errors[:3]))
    for e in backend.parse_errors:
        print(f"analyze_ast: warning: {e}", file=sys.stderr)
    return run_rules(backend.functions(), backend.seq_names), None


# --------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="AST-grade concurrency analyzer (rules A1-A4)")
    parser.add_argument("--backend", choices=("clang", "token"),
                        default="clang",
                        help="clang: libclang over compile_commands.json "
                             "(default, authoritative); token: textual "
                             "scanner, no toolchain needed")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="build tree with compile_commands.json "
                             "(default: build-tidy, then build)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root to analyze (default: this repo)")
    parser.add_argument("--json", metavar="REPORT",
                        help="also write findings as JSON to REPORT")
    args = parser.parse_args(argv)

    try:
        validate_allowlists()
        if args.backend == "token":
            findings = analyze_token(args.root)
        else:
            build_dir = args.build_dir
            if build_dir is None:
                for cand in ("build-tidy", "build"):
                    cand_abs = os.path.join(args.root, cand)
                    if os.path.isfile(os.path.join(
                            cand_abs, "compile_commands.json")):
                        build_dir = cand_abs
                        break
                build_dir = build_dir or os.path.join(args.root,
                                                      "build-tidy")
            findings, err = analyze_clang(args.root, build_dir)
            if findings is None:
                print(f"analyze_ast: clang backend unavailable: {err}",
                      file=sys.stderr)
                print(CLANG_INSTALL_HINT, file=sys.stderr)
                return 3
    except Exception as e:  # pragma: no cover - defensive
        print(f"analyze_ast: internal error: {e}", file=sys.stderr)
        return 2

    for f in findings:
        print(f)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump({"backend": args.backend,
                       "findings": [f.as_dict() for f in findings]},
                      fp, indent=2)
            fp.write("\n")
    if findings:
        print(f"analyze_ast: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"analyze_ast: clean ({args.backend} backend)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
