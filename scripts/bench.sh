#!/usr/bin/env sh
# Build and run the serving benchmark, writing its headline numbers to
# BENCH_serve.json in the repo root so the repo accumulates a perf
# trajectory across PRs. Extra arguments pass through to the driver
# (e.g. ./scripts/bench.sh --requests 20000 --threads 16).
set -eux
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j "$(nproc)" --target serve_throughput
./build/bench/serve_throughput --json BENCH_serve.json "$@"
