#!/usr/bin/env sh
# Build and run the serving benchmarks, writing their headline numbers to
# BENCH_serve.json / BENCH_serve_scaling.json / BENCH_adapt.json /
# BENCH_fleet.json in the repo root so the repo accumulates a perf
# trajectory across PRs. Before overwriting, each previous JSON is diffed
# against the fresh run with scripts/bench_compare.py (non-fatal report:
# >10% regressions on named metrics are flagged, never failed). Extra
# arguments pass through to the serve_throughput driver (e.g.
# ./scripts/bench.sh --requests 20000 --threads 16); the other drivers
# run with their defaults.
set -eux
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j "$(nproc)" \
  --target serve_throughput serve_scaling adapt_convergence fleet_scaling

run_and_compare() {
  json="$1"
  shift
  baseline=""
  if [ -f "$json" ]; then
    baseline="$(mktemp)"
    cp "$json" "$baseline"
  fi
  "$@" --json "$json"
  if [ -n "$baseline" ]; then
    python3 scripts/bench_compare.py "$baseline" "$json" || true
    rm -f "$baseline"
  fi
}

run_and_compare BENCH_serve.json ./build/bench/serve_throughput "$@"
run_and_compare BENCH_serve_scaling.json ./build/bench/serve_scaling
run_and_compare BENCH_adapt.json ./build/bench/adapt_convergence
run_and_compare BENCH_fleet.json ./build/bench/fleet_scaling
