#!/usr/bin/env sh
# Build and run the serving benchmarks, writing their headline numbers to
# BENCH_serve.json / BENCH_adapt.json / BENCH_fleet.json in the repo
# root so the repo accumulates a perf trajectory across PRs. Extra
# arguments pass through to the serve_throughput driver (e.g.
# ./scripts/bench.sh --requests 20000 --threads 16); adapt_convergence
# and fleet_scaling run with their defaults.
set -eux
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j "$(nproc)" \
  --target serve_throughput adapt_convergence fleet_scaling
./build/bench/serve_throughput --json BENCH_serve.json "$@"
./build/bench/adapt_convergence --json BENCH_adapt.json
./build/bench/fleet_scaling --json BENCH_fleet.json
