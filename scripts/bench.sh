#!/usr/bin/env sh
# Build and run the serving benchmarks, writing their headline numbers to
# BENCH_serve.json / BENCH_adapt.json in the repo root so the repo
# accumulates a perf trajectory across PRs. Extra arguments pass through
# to the serve_throughput driver (e.g. ./scripts/bench.sh --requests
# 20000 --threads 16); adapt_convergence runs with its defaults.
set -eux
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j "$(nproc)" --target serve_throughput adapt_convergence
./build/bench/serve_throughput --json BENCH_serve.json "$@"
./build/bench/adapt_convergence --json BENCH_adapt.json
