#!/usr/bin/env sh
# Build and run the serving benchmarks, writing their headline numbers to
# BENCH_serve.json / BENCH_serve_scaling.json / BENCH_adapt.json /
# BENCH_fleet.json in the repo root so the repo accumulates a perf
# trajectory across PRs. Before overwriting, each previous JSON is diffed
# against the fresh run with scripts/bench_compare.py (non-fatal report:
# >10% regressions on named metrics are flagged, never failed). Extra
# arguments pass through to the serve_throughput driver (e.g.
# ./scripts/bench.sh --requests 20000 --threads 16); the other drivers
# run with their defaults.
set -eux
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j "$(nproc)" \
  --target serve_throughput serve_scaling adapt_convergence fleet_scaling \
  chaos_soak

run_and_compare() {
  json="$1"
  shift
  baseline=""
  if [ -f "$json" ]; then
    baseline="$(mktemp)"
    cp "$json" "$baseline"
  fi
  "$@" --json "$json"
  if [ -n "$baseline" ]; then
    python3 scripts/bench_compare.py "$baseline" "$json" || true
    rm -f "$baseline"
  fi
}

run_and_compare BENCH_serve.json ./build/bench/serve_throughput "$@"
run_and_compare BENCH_serve_scaling.json ./build/bench/serve_scaling
run_and_compare BENCH_adapt.json ./build/bench/adapt_convergence
run_and_compare BENCH_fleet.json ./build/bench/fleet_scaling
# The chaos soak exits non-zero unless every post-heal check passes
# (decision equivalence, counter reconciliation, deduped health events),
# so the trajectory point doubles as a correctness gate.
soak_state="$(mktemp -d)"
run_and_compare BENCH_soak.json ./build/bench/chaos_soak \
  --state-dir "$soak_state/state"
rm -rf "$soak_state"

# ---- observability overhead (BENCH_obs.json) ------------------------------
# Two builds of the same driver: the regular tree (tracing compiled in)
# and build-obs-off (-DTP_TRACING=OFF). The contract is that obs-enabled
# warm serving throughput stays within 5% of the compiled-out build.
# The drivers run interleaved three times and each side's best run is
# compared (scripts/bench_best.py) — machine load drifts between runs
# by more than the overhead being measured. The gate is report-only
# locally and fatal in CI (TP_OBS_GATE_FATAL=1).
cmake -B build-obs-off -S . -DTP_TRACING=OFF
cmake --build build-obs-off -j "$(nproc)" --target obs_overhead
cmake --build build -j "$(nproc)" --target obs_overhead
obs_tmp="$(mktemp -d)"
for i in 1 2 3; do
  ./build-obs-off/bench/obs_overhead --json "$obs_tmp/off_$i.json"
  ./build/bench/obs_overhead --json "$obs_tmp/on_$i.json"
done
python3 scripts/bench_best.py --metric requests_per_sec_warm \
  "$obs_tmp/off.json" "$obs_tmp"/off_?.json
python3 scripts/bench_best.py --metric requests_per_sec_warm \
  "$obs_tmp/on.json" "$obs_tmp"/on_?.json
obs_off_rps="$(python3 -c "import json, sys
print(json.load(open(sys.argv[1]))['requests_per_sec_warm'])" \
  "$obs_tmp/off.json")"
# Publish the best obs-enabled run (with the compiled-out reference
# folded in) as the repo's BENCH_obs.json trajectory point.
if [ -f BENCH_obs.json ]; then
  python3 scripts/bench_compare.py BENCH_obs.json "$obs_tmp/on.json" \
    || true
fi
python3 - "$obs_tmp/on.json" "$obs_off_rps" << 'EOF'
import json, sys
path, off_rps = sys.argv[1], float(sys.argv[2])
doc = json.load(open(path))
doc["requests_per_sec_compiled_out"] = off_rps
doc["enabled_overhead_pct"] = (
    100.0 * (off_rps - doc["requests_per_sec_warm"]) / off_rps)
with open("BENCH_obs.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
if [ "${TP_OBS_GATE_FATAL:-0}" = "1" ]; then
  python3 scripts/bench_compare.py "$obs_tmp/off.json" BENCH_obs.json \
    --metric requests_per_sec_warm --fail-on requests_per_sec_warm:5
else
  python3 scripts/bench_compare.py "$obs_tmp/off.json" BENCH_obs.json \
    --metric requests_per_sec_warm --fail-on requests_per_sec_warm:5 \
    || true
fi
rm -rf "$obs_tmp"

# ---- health overhead (BENCH_health.json) ----------------------------------
# The PR 9 gate: warm serving throughput with the full health stack
# (per-machine SLO trackers + detector rules on a background monitor +
# an attached flight recorder) stays within 5% of the obs-enabled
# baseline. The driver interleaves the two configurations wave by wave
# inside one process, so each run is already drift-resistant; three runs
# and best-of keep parity with the obs gate. The same-run baseline is
# projected into a one-key JSON so the standard bench_compare gate
# applies (fatal in CI via TP_OBS_GATE_FATAL=1).
cmake --build build -j "$(nproc)" --target health_overhead
health_tmp="$(mktemp -d)"
for i in 1 2 3; do
  ./build/bench/health_overhead --json "$health_tmp/run_$i.json"
done
python3 scripts/bench_best.py --metric requests_per_sec_warm \
  "$health_tmp/best.json" "$health_tmp"/run_?.json
if [ -f BENCH_health.json ]; then
  python3 scripts/bench_compare.py BENCH_health.json \
    "$health_tmp/best.json" || true
fi
cp "$health_tmp/best.json" BENCH_health.json
python3 - "$health_tmp/best.json" "$health_tmp/baseline_view.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
with open(sys.argv[2], "w") as f:
    json.dump({"requests_per_sec_warm": doc["requests_per_sec_baseline"]}, f)
EOF
if [ "${TP_OBS_GATE_FATAL:-0}" = "1" ]; then
  python3 scripts/bench_compare.py "$health_tmp/baseline_view.json" \
    BENCH_health.json \
    --metric requests_per_sec_warm --fail-on requests_per_sec_warm:5
else
  python3 scripts/bench_compare.py "$health_tmp/baseline_view.json" \
    BENCH_health.json \
    --metric requests_per_sec_warm --fail-on requests_per_sec_warm:5 \
    || true
fi
rm -rf "$health_tmp"
