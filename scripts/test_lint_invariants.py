#!/usr/bin/env python3
"""Self-tests for the project lint engine.

Each test seeds one violation into a synthetic repo tree and asserts the
matching rule (and only it) fires; a final test asserts a clean tree
passes. Runs the real engine end to end via run_lint(), so a silently
broken rule fails here before it ships as a no-op CI gate.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_invariants  # noqa: E402


def write(root, rel, text):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return path


CLEAN_SOURCE = """\
#include <cstdint>
#include "common/annotations.hpp"

namespace tp {
inline std::uint64_t next(std::uint64_t s) { return s * 6364136223846793005ULL + 1; }
}  // namespace tp
"""


class LintRuleTests(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="tp_lint_test_")
        self.root = self._tmp.name
        # A minimal clean tree every test starts from.
        write(self.root, "src/common/clean.hpp", CLEAN_SOURCE)

    def tearDown(self):
        self._tmp.cleanup()

    def lint(self):
        # R5 needs a real compiler; exercised separately in test_r5.
        return lint_invariants.run_lint(self.root, with_headers=False)

    def assertOnlyRule(self, violations, rule, path_suffix):
        self.assertTrue(violations, f"expected a {rule} violation")
        self.assertEqual({v.rule for v in violations}, {rule})
        self.assertTrue(any(v.path.endswith(path_suffix) for v in violations))

    def test_clean_tree_passes(self):
        self.assertEqual(self.lint(), [])

    # -- R1 ---------------------------------------------------------------

    def test_r1_system_clock(self):
        write(self.root, "src/serve/bad.cpp",
              "#include <chrono>\n"
              "auto now() { return std::chrono::system_clock::now(); }\n")
        self.assertOnlyRule(self.lint(), "R1", "src/serve/bad.cpp")

    def test_r1_rand(self):
        write(self.root, "src/serve/bad.cpp",
              "#include <cstdlib>\nint roll() { return rand(); }\n")
        self.assertOnlyRule(self.lint(), "R1", "src/serve/bad.cpp")

    def test_r1_random_device(self):
        write(self.root, "src/serve/bad.cpp",
              "#include <random>\n"
              "unsigned seed() { return std::random_device{}(); }\n")
        self.assertOnlyRule(self.lint(), "R1", "src/serve/bad.cpp")

    def test_r1_catches_adhoc_randomness_in_fault_injection(self):
        # A fault-injection decorator that rolls its own dice instead of
        # threading a seeded common::Rng: exactly the file shape PR 10
        # bans (CONTRIBUTING "fault injection"), and R1 must catch both
        # the rand() drop coin and the random_device seed grab.
        write(self.root, "src/fleet/faulty.cpp",
              "#include <cstdlib>\n"
              "#include <random>\n"
              "struct FaultyTransport {\n"
              "  unsigned seed_ = std::random_device{}();\n"
              "  bool shouldDrop() { return rand() % 100 < 25; }\n"
              "};\n")
        violations = self.lint()
        self.assertOnlyRule(violations, "R1", "src/fleet/faulty.cpp")
        self.assertEqual(len(violations), 2)

    def test_r1_allows_common_rng(self):
        write(self.root, "src/common/rng.cpp",
              "#include <random>\n"
              "unsigned entropy() { return std::random_device{}(); }\n")
        self.assertEqual(self.lint(), [])

    def test_r1_allows_bench(self):
        write(self.root, "bench/bench_main.cpp",
              "#include <chrono>\n"
              "auto t0() { return std::chrono::system_clock::now(); }\n")
        self.assertEqual(self.lint(), [])

    def test_r1_ignores_comments(self):
        write(self.root, "src/serve/ok.cpp",
              "// std::chrono::system_clock would be wrong here: rand()\n"
              "int x = 1;\n")
        self.assertEqual(self.lint(), [])

    # -- R8 ---------------------------------------------------------------

    def test_r8_steady_clock_in_src(self):
        write(self.root, "src/serve/bad.cpp",
              "#include <chrono>\n"
              "auto now() { return std::chrono::steady_clock::now(); }\n")
        self.assertOnlyRule(self.lint(), "R8", "src/serve/bad.cpp")

    def test_r8_allows_obs_clock(self):
        write(self.root, "src/obs/clock.hpp",
              "#include <chrono>\n"
              "namespace tp::obs { using Clock = std::chrono::steady_clock; }\n")
        self.assertEqual(self.lint(), [])

    def test_r8_allows_bench(self):
        write(self.root, "bench/timer.cpp",
              "#include <chrono>\n"
              "auto t0() { return std::chrono::steady_clock::now(); }\n")
        self.assertEqual(self.lint(), [])

    def test_r8_fires_in_obs_health_and_slo(self):
        # The obs/ carve-out covers ONLY clock.hpp: the PR 9 health
        # files (health.cpp, slo.cpp) must go through obs::Clock, so a
        # raw steady_clock seeded into either must still trip R8.
        write(self.root, "src/obs/health.cpp",
              "#include <chrono>\n"
              "auto t() { return std::chrono::steady_clock::now(); }\n")
        write(self.root, "src/obs/slo.cpp",
              "#include <chrono>\n"
              "auto t() { return std::chrono::steady_clock::now(); }\n")
        violations = self.lint()
        self.assertEqual({v.rule for v in violations}, {"R8"})
        paths = {v.path for v in violations}
        self.assertTrue(any(p.endswith("src/obs/health.cpp") for p in paths))
        self.assertTrue(any(p.endswith("src/obs/slo.cpp") for p in paths))

    def test_r8_ignores_comments(self):
        write(self.root, "src/serve/ok.cpp",
              "// obs::Clock wraps std::chrono::steady_clock\n"
              "int x = 1;\n")
        self.assertEqual(self.lint(), [])

    # -- R2 ---------------------------------------------------------------

    def test_r2_naked_mutex(self):
        write(self.root, "src/serve/bad.hpp",
              "#include <mutex>\nstruct S { std::mutex m; };\n")
        self.assertOnlyRule(self.lint(), "R2", "src/serve/bad.hpp")

    def test_r2_naked_lock_guard(self):
        write(self.root, "src/serve/bad.cpp",
              "#include <mutex>\n"
              "void f(std::mutex& m) { std::lock_guard<std::mutex> l(m); }\n")
        self.assertOnlyRule(self.lint(), "R2", "src/serve/bad.cpp")

    def test_r2_naked_condition_variable(self):
        write(self.root, "src/serve/bad.hpp",
              "#include <condition_variable>\n"
              "struct S { std::condition_variable cv; };\n")
        self.assertOnlyRule(self.lint(), "R2", "src/serve/bad.hpp")

    def test_r2_allows_annotations_header(self):
        write(self.root, "src/common/annotations.hpp",
              "#include <mutex>\nclass Mutex { std::mutex mu_; };\n")
        self.assertEqual(self.lint(), [])

    def test_r2_scoped_to_src(self):
        write(self.root, "bench/bad.cpp",
              "#include <mutex>\nstd::mutex g;\n")
        self.assertEqual(self.lint(), [])

    # -- R3 ---------------------------------------------------------------

    def test_r3_unchecked_reserve(self):
        write(self.root, "src/fleet/bad.cpp",
              "#include <vector>\n"
              "struct WireReader { unsigned readU32(); };\n"
              "void decode(WireReader& r, std::vector<int>& v) {\n"
              "  unsigned n = r.readU32();\n"
              "  v.reserve(n);\n"
              "}\n")
        self.assertOnlyRule(self.lint(), "R3", "src/fleet/bad.cpp")

    def test_r3_checked_reserve_passes(self):
        write(self.root, "src/fleet/ok.cpp",
              "#include <vector>\n"
              "struct WireReader { unsigned readU32(); };\n"
              "unsigned checkedCount(unsigned n);\n"
              "void decode(WireReader& r, std::vector<int>& v) {\n"
              "  const unsigned n = checkedCount(r.readU32());\n"
              "  v.reserve(n);\n"
              "}\n")
        self.assertEqual(self.lint(), [])

    def test_r3_size_based_reserve_passes(self):
        write(self.root, "src/fleet/ok.cpp",
              "#include <vector>\n"
              "struct WireReader {};\n"
              "void copy(const std::vector<int>& a, std::vector<int>& b) {\n"
              "  b.reserve(a.size());\n"
              "}\n")
        self.assertEqual(self.lint(), [])

    def test_r3_only_wirereader_files(self):
        write(self.root, "src/serve/ok.cpp",
              "#include <vector>\n"
              "void f(std::vector<int>& v, unsigned n) { v.reserve(n); }\n")
        self.assertEqual(self.lint(), [])

    # -- R4 ---------------------------------------------------------------

    def test_r4_memcpy(self):
        write(self.root, "src/common/bad.cpp",
              "#include <cstring>\n"
              "void f(char* d, const char* s) { std::memcpy(d, s, 4); }\n")
        self.assertOnlyRule(self.lint(), "R4", "src/common/bad.cpp")

    def test_r4_ignores_comment_mentions(self):
        write(self.root, "src/common/ok.hpp",
              "// fixed by shifting (not memcpy), portable encoding\n"
              "int x = 1;\n")
        self.assertEqual(self.lint(), [])

    # -- R5 ---------------------------------------------------------------

    def test_r5_header_missing_include(self):
        write(self.root, "src/serve/bad.hpp",
              "#pragma once\n"
              "inline std::uint32_t f() { return 0; }\n")  # no <cstdint>
        violations = lint_invariants.check_r5(self.root, os.environ.get(
            "CXX", "c++"))
        self.assertOnlyRule(violations, "R5", "src/serve/bad.hpp")

    def test_r5_self_sufficient_header_passes(self):
        violations = lint_invariants.check_r5(self.root, os.environ.get(
            "CXX", "c++"))
        # clean.hpp includes common/annotations.hpp which does not exist in
        # the synthetic tree; give it one.
        if violations:
            write(self.root, "src/common/annotations.hpp", "#pragma once\n")
            violations = lint_invariants.check_r5(self.root, os.environ.get(
                "CXX", "c++"))
        self.assertEqual(violations, [])

    # -- R6 ---------------------------------------------------------------

    def test_r6_untagged_todo(self):
        write(self.root, "src/serve/bad.cpp",
              "// TODO: make this faster\nint x = 1;\n")
        self.assertOnlyRule(self.lint(), "R6", "src/serve/bad.cpp")

    def test_r6_tagged_todo_passes(self):
        write(self.root, "src/serve/ok.cpp",
              "// TODO(#42): make this faster\n"
              "// FIXME(issue-wire-v2): tighten bound\n"
              "int x = 1;\n")
        self.assertEqual(self.lint(), [])

    # -- R7 ---------------------------------------------------------------

    def test_r7_bare_opt_out(self):
        write(self.root, "src/serve/bad.hpp",
              "void f() TP_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assertOnlyRule(self.lint(), "R7", "src/serve/bad.hpp")

    def test_r7_raw_attribute(self):
        write(self.root, "src/serve/bad.hpp",
              "void f() __attribute__((no_thread_safety_analysis));\n")
        self.assertOnlyRule(self.lint(), "R7", "src/serve/bad.hpp")

    def test_r7_audited_without_tsan_tag(self):
        write(self.root, "src/serve/bad.hpp",
              'void f() TP_LOCK_FREE_AUDITED("looks fine to me");\n')
        self.assertOnlyRule(self.lint(), "R7", "src/serve/bad.hpp")

    def test_r7_audited_with_tsan_tag_passes(self):
        write(self.root, "src/serve/ok.hpp",
              'void f() TP_LOCK_FREE_AUDITED(\n'
              '    "seqlock reader; TSan: test_serve Foo.Bar");\n')
        self.assertEqual(self.lint(), [])

    def test_r7_allows_annotations_header_internals(self):
        write(self.root, "src/common/annotations.hpp",
              "#define TP_NO_THREAD_SAFETY_ANALYSIS \\\n"
              "  __attribute__((no_thread_safety_analysis))\n"
              "void waitImpl() TP_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assertEqual(self.lint(), [])


class RealTreeTest(unittest.TestCase):
    """The actual repo must be clean under every pattern rule (R5 runs in
    tier1/CI where a compiler is guaranteed)."""

    def test_repo_is_clean(self):
        violations = lint_invariants.run_lint(lint_invariants.REPO_ROOT,
                                              with_headers=False)
        self.assertEqual([str(v) for v in violations], [])


if __name__ == "__main__":
    unittest.main()
