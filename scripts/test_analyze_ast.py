#!/usr/bin/env python3
"""Self-tests for the AST-grade concurrency analyzer (rules A1-A4).

Mirrors test_lint_invariants.py: each test seeds one violating fixture
TU into a synthetic tree and asserts the matching rule (and only it)
fires, with a conforming twin asserting the rule stays quiet. The
fixtures run through the token backend (no toolchain needed), which
shares the rule engine with the clang backend — a silently broken rule
fails here before it ships as a no-op CI gate. The clang backend's
missing-libclang path is asserted to be a hard failure (exit 3), never
a skip.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import analyze_ast  # noqa: E402


def write(root, rel, text):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return path


# Fixtures are scanned, never compiled: includes and macro definitions
# are unnecessary, only the textual patterns matter.
CLEAN_SOURCE = """\
struct Counter {
  std::atomic<unsigned long long> hits{0};
  void bump() TP_LOCK_FREE_AUDITED(
      "relaxed monotonic counter; TSan: test_x Fixture.Clean") {
    hits.fetch_add(1, std::memory_order_relaxed);
  }
};
"""


class AnalyzeAstRuleTests(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="tp_ast_test_")
        self.root = self._tmp.name
        write(self.root, "src/common/clean.cpp", CLEAN_SOURCE)

    def tearDown(self):
        self._tmp.cleanup()

    def analyze(self):
        return analyze_ast.analyze_token(self.root)

    def assertOnlyRule(self, findings, rule, path_suffix):
        self.assertTrue(findings, f"expected an {rule} finding")
        self.assertEqual({f.rule for f in findings}, {rule},
                         "\n".join(str(f) for f in findings))
        self.assertTrue(any(f.path.endswith(path_suffix) for f in findings))

    def test_clean_tree_passes(self):
        self.assertEqual([str(f) for f in self.analyze()], [])

    # -- A1: explicit memory order ------------------------------------------

    def test_a1_implicit_store(self):
        write(self.root, "src/serve/bad.cpp",
              "struct S {\n"
              "  std::atomic<int> v{0};\n"
              "  void touch() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") { v.store(1); }\n'
              "};\n")
        self.assertOnlyRule(self.analyze(), "A1", "src/serve/bad.cpp")

    def test_a1_implicit_load_and_rmw(self):
        write(self.root, "src/serve/bad.cpp",
              "struct S {\n"
              "  std::atomic<int> v{0};\n"
              "  int touch() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    v.fetch_add(2);\n"
              "    return v.load();\n"
              "  }\n"
              "};\n")
        findings = self.analyze()
        self.assertOnlyRule(findings, "A1", "src/serve/bad.cpp")
        self.assertEqual(len(findings), 2)

    def test_a1_compound_assignment(self):
        write(self.root, "src/fleet/bad.cpp",
              "struct Counters { std::atomic<unsigned long long> wins{0}; };\n"
              "struct R {\n"
              "  Counters counters_;\n"
              "  void merge(unsigned n) TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") { counters_.wins += n; }\n'
              "};\n")
        self.assertOnlyRule(self.analyze(), "A1", "src/fleet/bad.cpp")

    def test_a1_explicit_orders_pass(self):
        write(self.root, "src/serve/ok.cpp",
              "struct S {\n"
              "  std::atomic<int> v{0};\n"
              "  int touch() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    v.store(1, std::memory_order_release);\n"
              "    v.fetch_add(2, std::memory_order_relaxed);\n"
              "    return v.load(std::memory_order_acquire);\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    def test_a1_multiline_call_sees_order(self):
        # The order argument lives on the next line: balanced-paren
        # argument parsing must still find it (a grep would not).
        write(self.root, "src/serve/ok.cpp",
              "struct S {\n"
              "  std::atomic<unsigned long long> v{0};\n"
              "  void touch(unsigned long long m) TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    v.store(m,\n"
              "            std::memory_order_release);\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    def test_a1_shadowing_local_is_not_an_assignment(self):
        # `const uint64_t meta = slot.meta.load(...)` declares a local
        # shadowing the atomic's field name; it is not operator= on the
        # atomic (the cache.cpp pattern that must stay clean).
        write(self.root, "src/serve/ok.cpp",
              "struct Slot { std::atomic<unsigned long long> meta{0}; };\n"
              "struct C {\n"
              "  Slot slot;\n"
              "  unsigned long long peek() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    const unsigned long long meta =\n"
              "        slot.meta.load(std::memory_order_acquire);\n"
              "    return meta;\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    def test_a1_container_construction_is_not_an_atomic_op(self):
        write(self.root, "src/serve/ok.cpp",
              "struct S {\n"
              "  std::vector<std::atomic<unsigned long long>> stripes_;\n"
              "  explicit S(unsigned n) {\n"
              "    stripes_ = std::vector<std::atomic<unsigned long long>>(n);\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    # -- A2: seqlock protocol -----------------------------------------------

    SEQ_STRUCT = ("struct Slot {\n"
                  "  std::atomic<unsigned> seq{0};\n"
                  "  std::atomic<unsigned long long> meta{0};\n"
                  "};\n")

    def test_a2_writer_relaxed_store_in_window(self):
        write(self.root, "src/serve/bad.cpp",
              self.SEQ_STRUCT +
              "struct C {\n"
              "  Slot slot;\n"
              "  void put(unsigned long long m) TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    const unsigned s = seqClaim(slot.seq);\n"
              "    slot.meta.store(m, std::memory_order_relaxed);\n"
              "    seqRelease(slot.seq, s);\n"
              "  }\n"
              "};\n")
        findings = self.analyze()
        self.assertOnlyRule(findings, "A2", "src/serve/bad.cpp")
        self.assertIn("without release order", str(findings[0]))

    def test_a2_writer_store_outside_window(self):
        write(self.root, "src/serve/bad.cpp",
              self.SEQ_STRUCT +
              "struct C {\n"
              "  Slot slot;\n"
              "  void put(unsigned long long m) TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    const unsigned s = seqClaim(slot.seq);\n"
              "    seqRelease(slot.seq, s);\n"
              "    slot.meta.store(m, std::memory_order_release);\n"
              "  }\n"
              "};\n")
        findings = self.analyze()
        self.assertOnlyRule(findings, "A2", "src/serve/bad.cpp")
        self.assertIn("outside the claim window", str(findings[0]))

    def test_a2_writer_unbalanced_claim(self):
        write(self.root, "src/serve/bad.cpp",
              self.SEQ_STRUCT +
              "struct C {\n"
              "  Slot slot;\n"
              "  void put(unsigned long long m) TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    const unsigned s = seqClaim(slot.seq);\n"
              "    slot.meta.store(m, std::memory_order_release);\n"
              "  }\n"
              "};\n")
        findings = self.analyze()
        self.assertTrue(any("seqClaim vs" in str(f) for f in findings))
        self.assertEqual({f.rule for f in findings}, {"A2"})

    def test_a2_conforming_writer_passes(self):
        write(self.root, "src/serve/ok.cpp",
              self.SEQ_STRUCT +
              "struct C {\n"
              "  Slot slot;\n"
              "  void put(unsigned long long m) TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    const unsigned s = seqClaim(slot.seq);\n"
              "    slot.meta.store(m, std::memory_order_release);\n"
              "    seqRelease(slot.seq, s);\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    def test_a2_reader_missing_recheck(self):
        write(self.root, "src/serve/bad.cpp",
              self.SEQ_STRUCT +
              "struct C {\n"
              "  Slot slot;\n"
              "  unsigned long long read() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    const unsigned s1 = slot.seq.load(std::memory_order_acquire);\n"
              "    return slot.meta.load(std::memory_order_acquire);\n"
              "  }\n"
              "};\n")
        findings = self.analyze()
        self.assertOnlyRule(findings, "A2", "src/serve/bad.cpp")
        self.assertIn("never re-checks", str(findings[0]))

    def test_a2_reader_non_acquire_sequence_load(self):
        write(self.root, "src/serve/bad.cpp",
              self.SEQ_STRUCT +
              "struct C {\n"
              "  Slot slot;\n"
              "  unsigned long long read() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    const unsigned s1 = slot.seq.load(std::memory_order_relaxed);\n"
              "    const unsigned long long m =\n"
              "        slot.meta.load(std::memory_order_acquire);\n"
              "    if (slot.seq.load(std::memory_order_relaxed) != s1) return 0;\n"
              "    return m;\n"
              "  }\n"
              "};\n")
        findings = self.analyze()
        self.assertOnlyRule(findings, "A2", "src/serve/bad.cpp")
        self.assertIn("without acquire order", str(findings[0]))

    def test_a2_conforming_reader_passes(self):
        write(self.root, "src/serve/ok.cpp",
              self.SEQ_STRUCT +
              "struct C {\n"
              "  Slot slot;\n"
              "  unsigned long long read() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    for (;;) {\n"
              "      const unsigned s1 = slot.seq.load(std::memory_order_acquire);\n"
              "      if (s1 & 1u) continue;\n"
              "      const unsigned long long m =\n"
              "          slot.meta.load(std::memory_order_acquire);\n"
              "      if (slot.seq.load(std::memory_order_relaxed) == s1) return m;\n"
              "    }\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    # -- A3: claim/release exception safety ---------------------------------

    def test_a3_throwing_call_between_claim_and_release(self):
        write(self.root, "src/serve/bad.cpp",
              "struct Lane { std::atomic<unsigned> busy{0}; };\n"
              "struct Svc {\n"
              "  Lane lane;\n"
              "  int work();\n"
              "  int serve() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    unsigned expected = 0;\n"
              "    if (!lane.busy.compare_exchange_strong(\n"
              "            expected, 1, std::memory_order_acq_rel)) return -1;\n"
              "    const int r = work();\n"
              "    lane.busy.store(0, std::memory_order_release);\n"
              "    return r;\n"
              "  }\n"
              "};\n")
        findings = self.analyze()
        self.assertOnlyRule(findings, "A3", "src/serve/bad.cpp")
        self.assertIn("ClaimGuard", str(findings[0]))

    def test_a3_raii_guard_passes(self):
        # No manual release store: the guard owns the flag, so a throwing
        # call inside the section is exception-safe by construction.
        write(self.root, "src/serve/ok.cpp",
              "struct Lane { std::atomic<unsigned> busy{0}; };\n"
              "struct Svc {\n"
              "  Lane lane;\n"
              "  int work();\n"
              "  int serve() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    common::ClaimGuard claim(lane.busy);\n"
              "    if (!claim.claimed()) return -1;\n"
              "    const int r = work();\n"
              "    claim.release();\n"
              "    return r;\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    def test_a3_safe_calls_only_pass(self):
        write(self.root, "src/serve/ok.cpp",
              "struct Lane { std::atomic<unsigned> busy{0};\n"
              "              std::atomic<unsigned> hits{0}; };\n"
              "struct Svc {\n"
              "  Lane lane;\n"
              "  void serve() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    unsigned expected = 0;\n"
              "    if (!lane.busy.compare_exchange_strong(\n"
              "            expected, 1, std::memory_order_acq_rel)) return;\n"
              "    lane.hits.fetch_add(1, std::memory_order_relaxed);\n"
              "    lane.busy.store(0, std::memory_order_release);\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    # -- A4: audit coverage --------------------------------------------------

    def test_a4_unaudited_member_touch(self):
        write(self.root, "src/obs/bad.cpp",
              "struct G {\n"
              "  std::atomic<int> flag{0};\n"
              "  int peek() { return flag.load(std::memory_order_relaxed); }\n"
              "};\n")
        self.assertOnlyRule(self.analyze(), "A4", "src/obs/bad.cpp")

    def test_a4_audited_passes(self):
        write(self.root, "src/obs/ok.cpp",
              "struct G {\n"
              "  std::atomic<int> flag{0};\n"
              "  int peek() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    return flag.load(std::memory_order_relaxed);\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    def test_a4_mutex_scope_passes(self):
        # A function whose atomic touches sit under a MutexLock is not
        # lock-free code; the capability, not an audit string, covers it.
        write(self.root, "src/obs/ok.cpp",
              "struct G {\n"
              "  common::Mutex mu_;\n"
              "  std::atomic<int> flag{0};\n"
              "  void set() {\n"
              "    common::MutexLock lock(mu_);\n"
              "    flag.store(1, std::memory_order_relaxed);\n"
              "  }\n"
              "};\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    def test_a1_implicit_order_in_slo_shaped_fixture(self):
        # Mirrors SloTracker::record's slice-stamp check: dropping the
        # explicit order from the acquire load must trip A1 even though
        # the function carries an audit tag.
        write(self.root, "src/obs/slo.cpp",
              "struct SubWindow { std::atomic<unsigned long long> slice; };\n"
              "struct Tracker {\n"
              "  SubWindow sub_;\n"
              "  bool stale(unsigned long long s) TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    return sub_.slice.load() != s;\n"
              "  }\n"
              "};\n")
        self.assertOnlyRule(self.analyze(), "A1", "src/obs/slo.cpp")

    def test_a4_unaudited_touch_in_health_shaped_fixture(self):
        # Mirrors a detector rule peeking at a liveness counter: a
        # member-atomic touch in src/obs/health.cpp outside any audit,
        # mutex scope or TP_REQUIRES must trip A4 — the real rules
        # register under audited functions, and that exemption must not
        # silently widen to the whole file.
        write(self.root, "src/obs/health.cpp",
              "struct Monitor {\n"
              "  std::atomic<unsigned long long> rounds{0};\n"
              "  unsigned long long peek() {\n"
              "    return rounds.load(std::memory_order_relaxed);\n"
              "  }\n"
              "};\n")
        self.assertOnlyRule(self.analyze(), "A4", "src/obs/health.cpp")

    def test_a1_implicit_order_in_fault_injector_shaped_fixture(self):
        # Mirrors FaultyTransport::send's injection ledger: the audited
        # hot path bumps per-fault counters with relaxed order, and
        # dropping the explicit order from one bump must trip A1 even
        # under the audit tag — chaos plumbing gets no slack.
        write(self.root, "src/fleet/faulty.cpp",
              "struct FaultyTransport {\n"
              "  std::atomic<unsigned long long> seen_{0};\n"
              "  std::atomic<unsigned long long> injectedDrops_{0};\n"
              "  bool send() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") {\n'
              "    seen_.fetch_add(1, std::memory_order_relaxed);\n"
              "    injectedDrops_.fetch_add(1);\n"
              "    return false;\n"
              "  }\n"
              "};\n")
        self.assertOnlyRule(self.analyze(), "A1", "src/fleet/faulty.cpp")

    def test_a4_unaudited_touch_in_fault_injector_shaped_fixture(self):
        # A counters() accessor reading the injection ledger outside any
        # audit, mutex scope or TP_REQUIRES must trip A4: the real
        # faulty_transport.hpp audits every reader, and that coverage
        # must not silently erode as fault kinds are added.
        write(self.root, "src/fleet/faulty.cpp",
              "struct FaultyTransport {\n"
              "  std::atomic<unsigned long long> injectedDrops_{0};\n"
              "  unsigned long long drops() {\n"
              "    return injectedDrops_.load(std::memory_order_relaxed);\n"
              "  }\n"
              "};\n")
        self.assertOnlyRule(self.analyze(), "A4", "src/fleet/faulty.cpp")

    def test_a4_locals_exempt(self):
        write(self.root, "src/common/ok.cpp",
              "void f() {\n"
              "  std::atomic<int> local{0};\n"
              "  local.store(1, std::memory_order_relaxed);\n"
              "}\n")
        self.assertEqual([str(f) for f in self.analyze()], [])

    # -- allowlists ----------------------------------------------------------

    def test_allowlist_entry_requires_reason(self):
        old = analyze_ast.RULES["A1"]
        analyze_ast.RULES["A1"] = (old[0], (("src/x.cpp", None, ""),))
        try:
            with self.assertRaises(ValueError):
                analyze_ast.validate_allowlists()
        finally:
            analyze_ast.RULES["A1"] = old

    def test_real_allowlists_validate(self):
        analyze_ast.validate_allowlists()  # must not raise

    def test_allowlist_suppresses_by_path_and_symbol(self):
        write(self.root, "src/serve/bad.cpp",
              "struct S {\n"
              "  std::atomic<int> v{0};\n"
              "  void touch() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") { v.store(1); }\n'
              "};\n")
        old = analyze_ast.RULES["A1"]
        analyze_ast.RULES["A1"] = (old[0], (
            ("src/serve/bad.cpp", "v",
             "fixture: this implicit seq_cst is the point of the test"),))
        try:
            self.assertEqual([str(f) for f in self.analyze()], [])
        finally:
            analyze_ast.RULES["A1"] = old


class ExitCodeTests(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="tp_ast_main_")
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def test_token_backend_exit_codes_and_json(self):
        write(self.root, "src/m/bad.cpp",
              "struct S {\n"
              "  std::atomic<int> v{0};\n"
              "  void touch() TP_LOCK_FREE_AUDITED(\n"
              '      "fixture; TSan: test_x F.T") { v.store(1); }\n'
              "};\n")
        report = os.path.join(self.root, "report.json")
        self.assertEqual(analyze_ast.main(
            ["--backend=token", "--root", self.root, "--json", report]), 1)
        import json
        with open(report, encoding="utf-8") as f:
            data = json.load(f)
        self.assertEqual(data["backend"], "token")
        self.assertEqual({f["rule"] for f in data["findings"]}, {"A1"})
        write(self.root, "src/m/bad.cpp", "int x = 1;\n")
        self.assertEqual(analyze_ast.main(
            ["--backend=token", "--root", self.root]), 0)

    def test_clang_backend_absence_is_exit_3_not_skip(self):
        cindex, err = analyze_ast._load_cindex()
        if cindex is not None:
            self.skipTest(f"libclang available here: {err or 'ok'}")
        write(self.root, "src/m/ok.cpp", "int x = 1;\n")
        self.assertEqual(analyze_ast.main(
            ["--backend=clang", "--root", self.root,
             "-p", os.path.join(self.root, "no-such-build")]), 3)


class RealTreeTest(unittest.TestCase):
    """The actual repo must be clean: zero unsuppressed findings."""

    def test_repo_is_clean(self):
        findings = analyze_ast.analyze_token(analyze_ast.REPO_ROOT)
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
