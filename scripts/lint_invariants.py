#!/usr/bin/env python3
"""Project lint engine: repo invariants clang cannot express.

Rules (each with its own allowlist, see RULES below):

  R1 no-wallclock-or-unseeded-randomness
      std::chrono::system_clock, rand()/srand(), std::random_device are
      forbidden outside common/rng and bench mains. Simulated time and
      seeded common::Rng streams keep runs reproducible; wall-clock reads
      and OS entropy do not.
  R2 no-naked-mutex
      std::mutex / std::lock_guard / std::unique_lock / std::shared_lock /
      std::shared_mutex / std::condition_variable are forbidden in src/
      outside common/annotations.hpp. The annotated wrappers
      (tp::common::Mutex & friends) keep the Clang Thread Safety
      capability graph complete; a naked mutex is invisible to it.
  R3 wire-reserve-bounds-check
      In wire-decode code (any file constructing a WireReader), a
      container reserve() sized from a decoded count must go through
      checkedCount() first: reserve(attacker-controlled u32) is an
      allocation bomb. Mechanically: every reserve() in such files must
      name a variable produced by checkedCount(...) within the preceding
      declarations, or be allowlisted.
  R4 no-memcpy
      memcpy is forbidden in src/: the wire format encodes by byte
      shifting (portable, no object-representation traffic), and memcpy
      into a non-trivially-copyable type is UB the compiler will not
      catch. No allowlisted occurrences today.
  R5 header-self-sufficiency
      Every src/**/*.hpp must compile standalone (a generated TU that
      includes only it). Missing transitive includes break unity-build
      refactors and IDE tooling. Needs a compiler; skipped with
      --no-headers.
  R6 todo-needs-issue-tag
      TODO/FIXME must carry an issue tag — "TODO(#123):" or
      "TODO(issue-foo):" — so stale intentions stay traceable.
  R7 tsa-opt-out-discipline
      TP_NO_THREAD_SAFETY_ANALYSIS is reserved for common/annotations.hpp
      internals. Everywhere else the only opt-out is
      TP_LOCK_FREE_AUDITED("..."), and its reason string must name the
      covering TSan test ("TSan:" tag) — no silent escapes from the
      analysis.
  R8 sanctioned-monotonic-clock
      std::chrono::steady_clock may be spelled only in obs/clock.hpp
      (plus common/rng and bench mains, like R1). Everything else takes
      timestamps through tp::obs::Clock / nowTicks(), so traces, latency
      stats and timeouts all read one clock and tests can reason about a
      single time source.

Usage:
  python3 scripts/lint_invariants.py [--no-headers] [--json REPORT]
                                     [--root DIR] [--compiler CXX]
Exit status: 0 clean, 1 violations found, 2 internal error.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned for source rules, relative to the repo root.
SOURCE_DIRS = ("src", "bench", "tools")
SOURCE_EXTS = (".hpp", ".cpp")


def _norm(path):
    return path.replace(os.sep, "/")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = _norm(path)
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so code rules do not fire on prose or quoted text."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("string", "char"):
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(" ")
            elif c == "\n":  # unterminated (raw strings etc.): bail to code
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def iter_source_files(root):
    for d in SOURCE_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return _norm(os.path.relpath(path, root))


def allowed(rel, allowlist):
    return any(rel == a or rel.startswith(a.rstrip("/") + "/")
               for a in allowlist)


# --------------------------------------------------------------------------
# Pattern rules


R1_PATTERNS = [
    (re.compile(r"std\s*::\s*chrono\s*::\s*system_clock"),
     "wall-clock read (std::chrono::system_clock); use simulated time or "
     "steady_clock"),
    (re.compile(r"(?<![\w:])s?rand\s*\(" ),
     "unseeded C randomness (rand/srand); use common::Rng with an explicit "
     "seed"),
    (re.compile(r"std\s*::\s*random_device"),
     "OS entropy (std::random_device); use common::Rng with an explicit "
     "seed"),
]
R1_ALLOW = ("src/common/rng.hpp", "src/common/rng.cpp", "bench/")

R8_PATTERNS = [
    (re.compile(r"std\s*::\s*chrono\s*::\s*steady_clock"),
     "direct std::chrono::steady_clock; take time through tp::obs::Clock "
     "(obs/clock.hpp), the one sanctioned monotonic-clock site"),
]
R8_ALLOW = ("src/obs/clock.hpp", "src/common/rng.hpp", "src/common/rng.cpp",
            "bench/")

R2_PATTERNS = [
    (re.compile(r"std\s*::\s*(mutex|shared_mutex|recursive_mutex|"
                r"timed_mutex|lock_guard|unique_lock|shared_lock|"
                r"scoped_lock|condition_variable(_any)?)\b"),
     "naked std synchronization type; use the annotated wrappers in "
     "common/annotations.hpp (tp::common::Mutex/MutexLock/SharedMutex/"
     "CondVar)"),
]
R2_ALLOW = ("src/common/annotations.hpp",)
R2_SCOPE = ("src/",)  # bench/tools may use raw std primitives

R4_PATTERNS = [
    (re.compile(r"(?<![\w:])(std\s*::\s*)?memcpy\s*\("),
     "memcpy; encode/decode by byte shifting (see common/serial.hpp) — "
     "memcpy into a non-trivially-copyable type is UB"),
]
R4_ALLOW = ()

R6_PATTERN = re.compile(r"\b(TODO|FIXME)\b(?!\((#\d+|issue-[\w-]+)\))")
R6_ALLOW = ("scripts/lint_invariants.py",)


def check_pattern_rule(rule, patterns, allowlist, root, files, scope=None):
    out = []
    for path in files:
        rel = relpath(root, path)
        if allowed(rel, allowlist):
            continue
        if scope is not None and not any(rel.startswith(s) for s in scope):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        code = strip_comments_and_strings(text)
        for lineno, line in enumerate(code.splitlines(), start=1):
            for pattern, message in patterns:
                if pattern.search(line):
                    out.append(Violation(rule, rel, lineno, message))
    return out


def check_r6(root, files):
    out = []
    for path in files:
        rel = relpath(root, path)
        if allowed(rel, R6_ALLOW):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, start=1):
                if R6_PATTERN.search(line):
                    out.append(Violation(
                        "R6", rel, lineno,
                        "TODO/FIXME without an issue tag; write "
                        "TODO(#123): or TODO(issue-slug):"))
    return out


# --------------------------------------------------------------------------
# R3: reserve() in wire-decode files must size from checkedCount()

R3_ALLOW = ()
RESERVE_RE = re.compile(r"\.\s*reserve\s*\(\s*(.+)\)")
CHECKED_DECL_RE = re.compile(
    r"\b(\w+)\s*=\s*(?:\w+\s*\.\s*)?checkedCount\s*\(")


def check_r3(root, files):
    out = []
    for path in files:
        rel = relpath(root, path)
        if allowed(rel, R3_ALLOW):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        code = strip_comments_and_strings(text)
        if "WireReader" not in code:
            continue
        lines = code.splitlines()
        checked_names = set()
        for line in lines:
            m = CHECKED_DECL_RE.search(line)
            if m:
                checked_names.add(m.group(1))
        for lineno, line in enumerate(lines, start=1):
            m = RESERVE_RE.search(line)
            if not m:
                continue
            arg = m.group(1).strip()
            # Identifiers mentioned in the size expression: at least one
            # must be a checkedCount()-validated count, or the expression
            # must be a container/string size() (re-encoding paths).
            idents = set(re.findall(r"[A-Za-z_]\w*", arg))
            if idents & checked_names:
                continue
            if re.search(r"\.\s*size\s*\(\s*\)", arg) or "size()" in arg:
                continue
            out.append(Violation(
                "R3", rel, lineno,
                f"reserve({arg}) in a WireReader decode file does not size "
                "from a checkedCount()-validated count; a hostile length "
                "prefix becomes an allocation bomb"))
    return out


# --------------------------------------------------------------------------
# R7: thread-safety opt-out discipline

R7_BARE_ALLOW = ("src/common/annotations.hpp",)
AUDITED_RE = re.compile(r"TP_LOCK_FREE_AUDITED\s*\(", re.S)


def check_r7(root, files):
    out = []
    for path in files:
        rel = relpath(root, path)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        code = strip_comments_and_strings(text)
        if not allowed(rel, R7_BARE_ALLOW):
            for lineno, line in enumerate(code.splitlines(), start=1):
                if re.search(r"\bTP_NO_THREAD_SAFETY_ANALYSIS\b", line):
                    out.append(Violation(
                        "R7", rel, lineno,
                        "bare TP_NO_THREAD_SAFETY_ANALYSIS outside "
                        "common/annotations.hpp; use TP_LOCK_FREE_AUDITED "
                        "with a reason naming the covering TSan test"))
                if re.search(r"\b__attribute__\s*\(\s*\(\s*"
                             r"no_thread_safety_analysis", line):
                    out.append(Violation(
                        "R7", rel, lineno,
                        "raw no_thread_safety_analysis attribute; use "
                        "TP_LOCK_FREE_AUDITED"))
        # Reason audit runs on the ORIGINAL text (the reason lives in a
        # string literal). Find each marker and scan its parenthesized
        # argument for the TSan: tag.
        for m in re.finditer(r"TP_LOCK_FREE_AUDITED\s*\(", text):
            if rel == "src/common/annotations.hpp":
                continue  # the macro's own definition/examples
            depth, i = 1, m.end()
            while i < len(text) and depth > 0:
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                i += 1
            reason = text[m.end():i - 1]
            lineno = text.count("\n", 0, m.start()) + 1
            if "TSan:" not in reason:
                out.append(Violation(
                    "R7", rel, lineno,
                    "TP_LOCK_FREE_AUDITED reason does not name the "
                    "covering TSan test (no \"TSan:\" tag)"))
    return out


# --------------------------------------------------------------------------
# R5: header self-sufficiency

R5_ALLOW = ()


def check_r5(root, compiler):
    out = []
    headers = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith(".hpp"):
                headers.append(os.path.join(dirpath, name))
    with tempfile.TemporaryDirectory(prefix="tp_lint_hdr_") as tmp:
        for header in headers:
            rel = relpath(root, header)
            if allowed(rel, R5_ALLOW):
                continue
            tu = os.path.join(tmp, "tu.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{rel[len("src/"):]}"\n')
            proc = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(root, "src"), tu],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = (proc.stderr.strip().splitlines() or ["?"])[0]
                out.append(Violation(
                    "R5", rel, 1,
                    f"header does not compile standalone: {first}"))
    return out


# --------------------------------------------------------------------------


def run_lint(root, with_headers=True, compiler="c++"):
    files = list(iter_source_files(root))
    violations = []
    violations += check_pattern_rule("R1", R1_PATTERNS, R1_ALLOW, root, files)
    violations += check_pattern_rule("R8", R8_PATTERNS, R8_ALLOW, root, files)
    violations += check_pattern_rule("R2", R2_PATTERNS, R2_ALLOW, root, files,
                                     scope=R2_SCOPE)
    violations += check_r3(root, files)
    violations += check_pattern_rule("R4", R4_PATTERNS, R4_ALLOW, root, files)
    if with_headers:
        violations += check_r5(root, compiler)
    violations += check_r6(root, files)
    violations += check_r7(root, files)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="tp project lint: repo invariants clang cannot express")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root to lint (default: this repo)")
    parser.add_argument("--no-headers", action="store_true",
                        help="skip R5 header self-sufficiency (needs a "
                             "compiler; the slowest rule)")
    parser.add_argument("--compiler", default=os.environ.get("CXX", "c++"),
                        help="compiler for R5 (default: $CXX or c++)")
    parser.add_argument("--json", metavar="REPORT",
                        help="also write violations as JSON to REPORT")
    args = parser.parse_args(argv)

    violations = run_lint(args.root, with_headers=not args.no_headers,
                          compiler=args.compiler)
    for v in violations:
        print(v)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump({"violations": [v.as_dict() for v in violations]},
                      f, indent=2)
            f.write("\n")
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
