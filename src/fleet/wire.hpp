#pragma once

// The fleet wire format: versioned, serialized messages exchanged between
// serving replicas (and written into snapshots).
//
// Every envelope starts with a magic tag and a format version, so a
// future socket transport can reject foreign or incompatible bytes at
// the edge instead of mis-parsing them; payloads are kind-specific and
// encoded with the bounds-checked common::Wire{Writer,Reader}
// primitives. The in-process LoopbackTransport round-trips every message
// through this encoding too — the wire format is exercised on every
// gossip round, not only once sockets exist.
//
// Message kinds:
//   WinsGossip    — adapt::WinRecord batch (anti-entropy rounds)
//   FeedbackPull  — "send me your recorded traffic" (fleet retrain)
//   FeedbackPush  — a FeatureDatabase snapshot (reply to FeedbackPull)
//   ModelInstall  — retrained per-machine models + the new generation
//   LeaseRequest  — "grant me the retrain lease for generation g"
//   LeaseReply    — grant/deny (reply to LeaseRequest)

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "adapt/refiner.hpp"
#include "runtime/database.hpp"

namespace tp::fleet {

inline constexpr std::uint32_t kWireMagic = 0x54504657u;  // "TPFW"
inline constexpr std::uint16_t kWireVersion = 1;

enum class MsgKind : std::uint8_t {
  WinsGossip = 1,
  FeedbackPull = 2,
  FeedbackPush = 3,
  ModelInstall = 4,
  LeaseRequest = 5,
  LeaseReply = 6,
};

/// Highest kind decodeEnvelope accepts; keep in sync with MsgKind.
inline constexpr std::uint8_t kMaxMsgKind = 6;

const char* msgKindName(MsgKind kind);

struct Envelope {
  MsgKind kind = MsgKind::WinsGossip;
  std::string from;        ///< sender replica id
  std::uint64_t seq = 0;   ///< sender-local sequence number
  std::string payload;     ///< kind-specific encoded body
};

std::string encodeEnvelope(const Envelope& envelope);
/// Throws tp::Error on bad magic, unsupported format version, unknown
/// kind, or truncation.
Envelope decodeEnvelope(std::string_view bytes);

// ---- WinsGossip payload ----------------------------------------------------

std::string encodeWins(const std::vector<adapt::WinRecord>& wins);
std::vector<adapt::WinRecord> decodeWins(std::string_view bytes);

// ---- ModelInstall payload --------------------------------------------------

struct ModelBlob {
  std::string machine;
  std::string model;  ///< ml::Classifier::save() text
};

struct ModelInstallMsg {
  std::uint64_t modelVersion = 0;  ///< generation the models serve
  std::vector<ModelBlob> models;
};

std::string encodeModelInstall(const ModelInstallMsg& msg);
ModelInstallMsg decodeModelInstall(std::string_view bytes);

// ---- FeedbackPush payload --------------------------------------------------

std::string encodeFeedback(const runtime::FeatureDatabase& db);
runtime::FeatureDatabase decodeFeedback(std::string_view bytes);

// ---- LeaseRequest / LeaseReply payloads ------------------------------------

/// A retrain coordinator asks every peer for the lease on `generation`
/// (the model version it intends to install). The holder id is the
/// envelope `from`. `ttlNanos` is a relative duration: each grantor
/// stamps its own obs::Clock expiry, so no absolute clocks cross the
/// wire.
struct LeaseRequestMsg {
  std::uint64_t generation = 0;
  std::uint64_t ttlNanos = 0;
};

struct LeaseReplyMsg {
  std::uint64_t generation = 0;  ///< echoed from the request
  bool granted = false;
  std::string holder;  ///< on deny: who holds the conflicting lease
};

std::string encodeLeaseRequest(const LeaseRequestMsg& msg);
LeaseRequestMsg decodeLeaseRequest(std::string_view bytes);
std::string encodeLeaseReply(const LeaseReplyMsg& msg);
LeaseReplyMsg decodeLeaseReply(std::string_view bytes);

}  // namespace tp::fleet
