#include "fleet/wire.hpp"

#include "common/error.hpp"
#include "common/serial.hpp"

namespace tp::fleet {

using common::WireReader;
using common::WireWriter;

namespace {

/// Read an element count and reject it unless the remaining bytes could
/// plausibly hold that many elements (each at least `minBytesPer` bytes
/// encoded) — corrupt or hostile length prefixes must throw, not
/// reserve() gigabytes.
std::uint32_t checkedCount(WireReader& r, std::size_t minBytesPer,
                           const char* what) {
  const std::uint32_t n = r.u32();
  TP_REQUIRE(static_cast<std::size_t>(n) * minBytesPer <= r.remaining(),
             "fleet wire: truncated input (claims " << n << " " << what
                                                    << ", " << r.remaining()
                                                    << " bytes left)");
  return n;
}

}  // namespace

const char* msgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::WinsGossip: return "WinsGossip";
    case MsgKind::FeedbackPull: return "FeedbackPull";
    case MsgKind::FeedbackPush: return "FeedbackPush";
    case MsgKind::ModelInstall: return "ModelInstall";
    case MsgKind::LeaseRequest: return "LeaseRequest";
    case MsgKind::LeaseReply: return "LeaseReply";
  }
  return "unknown";
}

std::string encodeEnvelope(const Envelope& envelope) {
  WireWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u8(static_cast<std::uint8_t>(envelope.kind));
  w.str(envelope.from);
  w.u64(envelope.seq);
  w.str(envelope.payload);
  return w.take();
}

Envelope decodeEnvelope(std::string_view bytes) {
  WireReader r(bytes);
  const std::uint32_t magic = r.u32();
  TP_REQUIRE(magic == kWireMagic,
             "fleet wire: bad magic 0x" << std::hex << magic);
  const std::uint16_t version = r.u16();
  TP_REQUIRE(version == kWireVersion,
             "fleet wire: unsupported format version " << version
                                                       << " (this build "
                                                          "speaks "
                                                       << kWireVersion << ")");
  Envelope envelope;
  const std::uint8_t kind = r.u8();
  TP_REQUIRE(kind >= 1 && kind <= kMaxMsgKind,
             "fleet wire: unknown message kind " << static_cast<int>(kind));
  envelope.kind = static_cast<MsgKind>(kind);
  envelope.from = r.str();
  envelope.seq = r.u64();
  envelope.payload = r.str();
  r.expectEnd();
  return envelope;
}

// ---- WinsGossip ------------------------------------------------------------

std::string encodeWins(const std::vector<adapt::WinRecord>& wins) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(wins.size()));
  for (const adapt::WinRecord& rec : wins) {
    w.str(rec.key.machine);
    w.str(rec.key.program);
    w.doubles(rec.key.signature);
    w.u64(rec.modelVersion);
    w.u64(rec.baseLabel);
    w.u64(rec.incumbentLabel);
    w.f64(rec.incumbentMean);
    w.u32(static_cast<std::uint32_t>(rec.arms.size()));
    for (const adapt::WinArm& arm : rec.arms) {
      w.u64(arm.label);
      w.u64(arm.count);
      w.f64(arm.meanSeconds);
    }
  }
  return w.take();
}

std::vector<adapt::WinRecord> decodeWins(std::string_view bytes) {
  WireReader r(bytes);
  // A record is 3 length prefixes + 3 u64 + f64 + arm count at minimum.
  const std::uint32_t n = checkedCount(r, 48, "win records");
  std::vector<adapt::WinRecord> wins;
  wins.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    adapt::WinRecord rec;
    rec.key.machine = r.str();
    rec.key.program = r.str();
    rec.key.signature = r.doubles();
    rec.modelVersion = r.u64();
    rec.baseLabel = static_cast<std::size_t>(r.u64());
    rec.incumbentLabel = static_cast<std::size_t>(r.u64());
    rec.incumbentMean = r.f64();
    const std::uint32_t arms = checkedCount(r, 24, "win arms");
    rec.arms.reserve(arms);
    for (std::uint32_t a = 0; a < arms; ++a) {
      adapt::WinArm arm;
      arm.label = static_cast<std::size_t>(r.u64());
      arm.count = r.u64();
      arm.meanSeconds = r.f64();
      rec.arms.push_back(arm);
    }
    wins.push_back(std::move(rec));
  }
  r.expectEnd();
  return wins;
}

// ---- ModelInstall ----------------------------------------------------------

std::string encodeModelInstall(const ModelInstallMsg& msg) {
  WireWriter w;
  w.u64(msg.modelVersion);
  w.u32(static_cast<std::uint32_t>(msg.models.size()));
  for (const ModelBlob& blob : msg.models) {
    w.str(blob.machine);
    w.str(blob.model);
  }
  return w.take();
}

ModelInstallMsg decodeModelInstall(std::string_view bytes) {
  WireReader r(bytes);
  ModelInstallMsg msg;
  msg.modelVersion = r.u64();
  const std::uint32_t n = checkedCount(r, 8, "model blobs");
  msg.models.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ModelBlob blob;
    blob.machine = r.str();
    blob.model = r.str();
    msg.models.push_back(std::move(blob));
  }
  r.expectEnd();
  return msg;
}

// ---- LeaseRequest / LeaseReply ---------------------------------------------

std::string encodeLeaseRequest(const LeaseRequestMsg& msg) {
  WireWriter w;
  w.u64(msg.generation);
  w.u64(msg.ttlNanos);
  return w.take();
}

LeaseRequestMsg decodeLeaseRequest(std::string_view bytes) {
  WireReader r(bytes);
  LeaseRequestMsg msg;
  msg.generation = r.u64();
  msg.ttlNanos = r.u64();
  r.expectEnd();
  return msg;
}

std::string encodeLeaseReply(const LeaseReplyMsg& msg) {
  WireWriter w;
  w.u64(msg.generation);
  w.u8(msg.granted ? 1 : 0);
  w.str(msg.holder);
  return w.take();
}

LeaseReplyMsg decodeLeaseReply(std::string_view bytes) {
  WireReader r(bytes);
  LeaseReplyMsg msg;
  msg.generation = r.u64();
  msg.granted = r.u8() != 0;
  msg.holder = r.str();
  r.expectEnd();
  return msg;
}

// ---- FeedbackPush ----------------------------------------------------------

namespace {

void encodeStrings(WireWriter& w, const std::vector<std::string>& strings) {
  w.u32(static_cast<std::uint32_t>(strings.size()));
  for (const std::string& s : strings) w.str(s);
}

std::vector<std::string> decodeStrings(WireReader& r) {
  const std::uint32_t n = checkedCount(r, 4, "strings");
  std::vector<std::string> strings;
  strings.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) strings.push_back(r.str());
  return strings;
}

}  // namespace

std::string encodeFeedback(const runtime::FeatureDatabase& db) {
  WireWriter w;
  w.u64(db.numPartitionings());
  encodeStrings(w, db.staticNames());
  encodeStrings(w, db.runtimeNames());
  w.u32(static_cast<std::uint32_t>(db.size()));
  for (const runtime::LaunchRecord& rec : db.records()) {
    w.str(rec.program);
    w.str(rec.machine);
    w.str(rec.sizeLabel);
    w.doubles(rec.staticFeatures);
    w.doubles(rec.runtimeFeatures);
    w.doubles(rec.times);
  }
  return w.take();
}

runtime::FeatureDatabase decodeFeedback(std::string_view bytes) {
  WireReader r(bytes);
  const auto numPartitionings = static_cast<std::size_t>(r.u64());
  auto staticNames = decodeStrings(r);
  auto runtimeNames = decodeStrings(r);
  runtime::FeatureDatabase db(numPartitionings, std::move(staticNames),
                              std::move(runtimeNames));
  const std::uint32_t n = checkedCount(r, 24, "feedback records");
  for (std::uint32_t i = 0; i < n; ++i) {
    runtime::LaunchRecord rec;
    rec.program = r.str();
    rec.machine = r.str();
    rec.sizeLabel = r.str();
    rec.staticFeatures = r.doubles();
    rec.runtimeFeatures = r.doubles();
    rec.times = r.doubles();
    db.add(std::move(rec));
  }
  r.expectEnd();
  return db;
}

}  // namespace tp::fleet
