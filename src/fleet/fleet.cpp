#include "fleet/fleet.hpp"

#include "common/annotations.hpp"
#include "common/error.hpp"

namespace tp::fleet {

Fleet::Fleet(FleetConfig config)
    : config_(std::move(config)), bus_(config_.gossip) {
  TP_REQUIRE(config_.replicas > 0, "Fleet: need at least one replica");
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    ReplicaConfig rc;
    rc.id = config_.idPrefix + std::to_string(r);
    rc.service = config_.service;
    // Decorrelate exploration across replicas: with one shared seed
    // every replica would draw identical probe decisions and re-measure
    // the same arms in lockstep, and gossip could never save a probe.
    rc.service.refiner.seed =
        config_.service.refiner.seed + 0x9E3779B9ull * r;
    if (config_.service.metrics != nullptr) {
      // One registry, many replicas: namespace each service's entries by
      // replica id so readouts never collide (and removeByPrefix in one
      // replica's destructor cannot unhook a sibling's). Replica ids are
      // transport addresses and may contain '-', which Registry names
      // must not — sanitize the prefix, not the id.
      std::string prefix = rc.id;
      for (char& c : prefix) {
        if (c == '-') c = '_';
      }
      rc.service.metricsPrefix = prefix + "." + config_.service.metricsPrefix;
    }
    if (!config_.snapshotDir.empty()) {
      rc.snapshotDir = config_.snapshotDir + "/" + rc.id;
    }
    replicas_.push_back(std::make_unique<Replica>(
        std::move(rc), transport_, config_.gossipEnabled ? &bus_ : nullptr));
  }
  if (config_.service.metrics != nullptr) {
    // The shared transport's counters through the registry: delivery
    // accounting for the whole fleet under one prefix, sampled at
    // exposition time like every other registered counter.
    obs::Registry& reg = *config_.service.metrics;
    const std::string p = config_.metricsPrefix + "transport.";
    reg.registerCounter(p + "sent",
                        [this] { return transport_.counters().sent; });
    reg.registerCounter(p + "broadcasts",
                        [this] { return transport_.counters().broadcasts; });
    reg.registerCounter(p + "delivered",
                        [this] { return transport_.counters().delivered; });
    reg.registerCounter(p + "bytes_moved",
                        [this] { return transport_.counters().bytesMoved; });
    reg.registerCounter(p + "dropped",
                        [this] { return transport_.counters().dropped; });
    reg.registerCounter(p + "delivery_failures", [this] {
      return transport_.counters().deliveryFailures;
    });
    reg.registerCounter(p + "gossip_round_errors",
                        [this] { return bus_.roundErrors(); });
  }
}

Fleet::~Fleet() {
  // Quiesce in dependency order: no more gossip rounds, then no more
  // traffic; replica destructors then detach from the transport with
  // nothing in flight.
  bus_.stop();
  shutdownAll();
  if (config_.service.metrics != nullptr) {
    // The callbacks above capture `this`; unhook them before the members
    // they read are destroyed.
    config_.service.metrics->removeByPrefix(config_.metricsPrefix);
  }
}

Replica& Fleet::replica(std::size_t index) {
  TP_REQUIRE(index < replicas_.size(), "Fleet: replica index "
                                           << index << " out of range (fleet "
                                              "of "
                                           << replicas_.size() << ")");
  return *replicas_[index];
}

void Fleet::addMachine(const sim::MachineConfig& machine,
                       std::shared_ptr<const ml::Classifier> model) {
  for (const auto& replica : replicas_) {
    replica->addMachine(machine, model);
  }
}

std::future<serve::LaunchResponse> Fleet::submit(serve::LaunchRequest request)
    TP_LOCK_FREE_AUDITED(
        "relaxed round-robin ticket; only fairness depends on it and each "
        "replica synchronizes internally; TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  const std::size_t r =
      nextReplica_.fetch_add(1, std::memory_order_relaxed) % replicas_.size();
  return replicas_[r]->submit(std::move(request));
}

serve::LaunchResponse Fleet::call(serve::LaunchRequest request) {
  return submit(std::move(request)).get();
}

std::size_t Fleet::gossipRound() { return bus_.runRound(); }

void Fleet::startGossip() {
  TP_REQUIRE(config_.gossipEnabled, "Fleet: gossip is disabled");
  bus_.start();
}

void Fleet::stopGossip() { bus_.stop(); }

Replica::FleetRetrain Fleet::retrainFleet(std::size_t leader) {
  return replica(leader).coordinateRetrain();
}

std::vector<std::uint64_t> Fleet::saveSnapshots() {
  std::vector<std::uint64_t> sequences;
  sequences.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    sequences.push_back(replica->saveSnapshot());
  }
  return sequences;
}

void Fleet::drainAll() {
  for (const auto& replica : replicas_) replica->service().drain();
}

void Fleet::shutdownAll() {
  for (const auto& replica : replicas_) replica->service().shutdown();
}

void Fleet::registerHealthRules(obs::HealthMonitor& monitor,
                                const FleetHealthConfig& rules) {
  for (const auto& replica : replicas_) {
    replica->registerHealthRules(monitor, rules);
  }
}

Fleet::FleetStats Fleet::stats() const {
  FleetStats stats;
  stats.replicas.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    stats.replicas.push_back(replica->stats());
  }
  stats.transport = transport_.counters();
  stats.gossipRounds = bus_.rounds();
  stats.gossipRoundErrors = bus_.roundErrors();
  return stats;
}

}  // namespace tp::fleet
