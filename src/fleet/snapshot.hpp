#pragma once

// SnapshotStore — replica state that survives restarts.
//
// A snapshot is everything a fresh replica needs to serve refined
// decisions immediately instead of relearning them: the deployed model
// of every machine (serialized), the generation they serve, and the
// refiner's full tracked state (every key's measured arms, exported with
// exportWins(refinedOnly = false)). Snapshots are numbered files in one
// directory, written atomically (temp file + rename) in the fleet wire
// encoding with its own magic/version header; loadLatest() picks the
// highest sequence number, so a crash mid-write never corrupts the
// recovery path — the previous snapshot still wins. If the newest
// snapshot is corrupt or truncated anyway (torn disk, bit rot, hostile
// bytes), loadLatest() salvages: it falls back through older snapshots
// in sequence order until one decodes, counting and logging every file
// it skips — warm start degrades to older state instead of failing.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adapt/refiner.hpp"
#include "common/annotations.hpp"
#include "fleet/wire.hpp"

namespace tp::fleet {

struct ReplicaSnapshot {
  std::uint64_t modelVersion = 0;
  std::vector<ModelBlob> models;        ///< per machine, name order
  std::vector<adapt::WinRecord> wins;   ///< full refiner export
};

std::string encodeSnapshot(const ReplicaSnapshot& snapshot);
ReplicaSnapshot decodeSnapshot(std::string_view bytes);

class SnapshotStore {
public:
  /// Creates `dir` (and parents) if absent. `keepLast` is the retention
  /// policy: after each save, snapshots older than the newest `keepLast`
  /// are pruned from disk (0 keeps every snapshot forever). Pruning only
  /// ever removes strictly older sequence numbers, so loadLatest() is
  /// unaffected by it.
  explicit SnapshotStore(std::string dir, std::size_t keepLast = 0);

  const std::string& dir() const noexcept { return dir_; }
  std::size_t keepLast() const noexcept { return keepLast_; }

  /// Persist a snapshot; returns its sequence number (monotonic per
  /// directory, one past the highest already on disk). Applies the
  /// keep-last retention policy after the new snapshot is published.
  std::uint64_t save(const ReplicaSnapshot& snapshot);

  /// The newest snapshot that decodes. Corrupt/truncated/unreadable
  /// files are skipped (counted in corruptSnapshotsSkipped(), logged)
  /// and the next-older sequence is tried; nullopt when the directory
  /// holds no valid snapshot at all.
  std::optional<ReplicaSnapshot> loadLatest() const;

  /// Snapshots skipped by loadLatest() because they failed to open or
  /// decode, cumulative over this store's lifetime.
  std::uint64_t corruptSnapshotsSkipped() const noexcept
      TP_LOCK_FREE_AUDITED(
          "relaxed monotonic counter, bumped only inside loadLatest; "
          "TSan: test_fleet Fleet.CountersReconcileUnderConcurrent"
          "GossipAndRetrain") {
    return corruptSkipped_.load(std::memory_order_relaxed);
  }

  /// Snapshots currently on disk.
  std::size_t count() const;

private:
  std::uint64_t highestSequence() const;
  void prune(std::uint64_t newestSeq) const;

  std::string dir_;
  std::size_t keepLast_;
  mutable std::atomic<std::uint64_t> corruptSkipped_{0};
};

}  // namespace tp::fleet
