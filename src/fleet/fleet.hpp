#pragma once

// Fleet — N serving replicas as one simulated deployment.
//
// Wires Replicas to a shared LoopbackTransport and GossipBus, fans
// machine registration out to every replica, load-balances submissions
// round-robin, and exposes fleet-wide operations: manual or background
// gossip rounds, coordinated retrain from any replica, aggregate stats.
// Everything a multi-process deployment would do over sockets happens
// here over the same wire format, in one process — which is what the
// tests, the example and the scaling benchmark drive.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/gossip.hpp"
#include "fleet/replica.hpp"
#include "fleet/transport.hpp"

namespace tp::fleet {

struct FleetConfig {
  std::size_t replicas = 3;
  serve::ServiceConfig service;  ///< applied to every replica
  GossipConfig gossip;
  bool gossipEnabled = true;  ///< off = replicas refine independently
  /// Root for per-replica snapshot directories ("<dir>/<replica-id>");
  /// empty = persistence off.
  std::string snapshotDir;
  std::string idPrefix = "replica-";
  /// Namespace for the fleet's own registry entries (the shared
  /// transport's counters register under "<metricsPrefix>transport.*"
  /// when service.metrics is set; per-replica service entries are
  /// namespaced by replica id separately). Removed in the destructor.
  std::string metricsPrefix = "fleet.";
};

class Fleet {
public:
  explicit Fleet(FleetConfig config);
  ~Fleet();  ///< stops gossip, shuts every replica down

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  std::size_t size() const noexcept { return replicas_.size(); }
  Replica& replica(std::size_t index);
  LoopbackTransport& transport() noexcept { return transport_; }
  GossipBus& gossip() noexcept { return bus_; }

  /// Register a machine + model on every replica.
  void addMachine(const sim::MachineConfig& machine,
                  std::shared_ptr<const ml::Classifier> model);

  /// Round-robin submission across replicas.
  std::future<serve::LaunchResponse> submit(serve::LaunchRequest request);
  serve::LaunchResponse call(serve::LaunchRequest request);

  /// One manual anti-entropy round (no-op fleet-wide when gossip is
  /// disabled). Returns participants invoked.
  std::size_t gossipRound();
  /// Start/stop background gossip (requires gossipEnabled).
  void startGossip();
  void stopGossip();

  /// Fleet-wide retrain coordinated by `leader`.
  Replica::FleetRetrain retrainFleet(std::size_t leader = 0);

  /// Snapshot every replica; returns per-replica sequence numbers.
  std::vector<std::uint64_t> saveSnapshots();

  void drainAll();
  void shutdownAll();

  /// Install every replica's detector rules into `monitor` (see
  /// Replica::registerHealthRules). Per-replica id prefixes and
  /// metricsPrefixes keep the rule names distinct. Stop the monitor
  /// before this fleet is destroyed.
  void registerHealthRules(obs::HealthMonitor& monitor,
                           const FleetHealthConfig& rules = {});

  struct FleetStats {
    std::vector<serve::ServiceStats> replicas;  ///< index order
    TransportCounters transport;
    std::uint64_t gossipRounds = 0;
    /// Participant exceptions caught by the bus's round failure boundary.
    std::uint64_t gossipRoundErrors = 0;
  };
  FleetStats stats() const;

private:
  FleetConfig config_;
  LoopbackTransport transport_;
  GossipBus bus_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<std::uint64_t> nextReplica_{0};
};

}  // namespace tp::fleet
