#pragma once

// Replica — one PartitionService wired into a fleet.
//
// A replica serves traffic like a standalone service, and additionally:
//
//   - publishes its refiner's adopted wins over the transport on each
//     gossip round (skipping no-change rounds via a state digest), and
//     merges win batches arriving from peers — so a partitioning win
//     measured on one machine warms every replica's refiner AND decision
//     cache without a single probe elsewhere;
//   - answers fleet retrain coordination: on FeedbackPull it ships its
//     recorded traffic to the coordinator; on ModelInstall it swaps in
//     the retrained models and invalidates its cache generation;
//   - persists snapshots (models + generation + full refiner state) to a
//     SnapshotStore, and warm-starts from the latest snapshot so a
//     restarted replica serves refined decisions from its first request.
//
// Message handlers run on whatever thread the transport delivers from
// and touch only thread-safe service surfaces. Detach-before-destroy is
// the caller's job (Fleet quiesces gossip before tearing replicas down).
//
// Fault tolerance: every peer-facing edge assumes the transport lies.
// Gossip publishes per-peer with capped exponential backoff (decorrelated
// jitter on the obs::Clock timebase) for peers whose sends threw; the
// envelope handler counts every arrival, rejects replayed/duplicated
// sequence numbers through a per-sender window, and treats any decode
// failure as a counted rejection instead of trusting the bytes.
// coordinateRetrain() only fans out a new generation after winning a
// quorum of expiring, generation-tagged lease grants — a racing second
// coordinator or a partitioned minority aborts as a safe no-op.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/rng.hpp"

#include "fleet/gossip.hpp"
#include "fleet/snapshot.hpp"
#include "fleet/transport.hpp"
#include "obs/health.hpp"
#include "serve/service.hpp"

namespace tp::fleet {

/// Thresholds for the fleet-level detector rules
/// Replica::registerHealthRules() installs on top of the service's
/// stock set.
struct FleetHealthConfig {
  /// gossip_stall: consecutive evaluations the replica's gossip-round
  /// counter must fail to advance before the event fires. The rule
  /// stays quiet until the first round has run (a fleet that has not
  /// started gossip yet is not stalled), so start gossip before the
  /// monitor if you want the detector armed from the first evaluation.
  std::size_t gossipStallEvals = 3;
  /// retrain_overrun: wall seconds of the last coordinateRetrain().
  double retrainOverrunSeconds = 60.0;
  /// Also install the service's stock rules (namespaced under this
  /// replica's metricsPrefix, so per-replica prefixes keep them apart).
  bool includeServiceRules = true;
  serve::HealthRulesConfig service;
};

struct ReplicaConfig {
  std::string id;                 ///< transport address, must be unique
  serve::ServiceConfig service;   ///< per-replica serving configuration
  std::string snapshotDir;        ///< empty = persistence off
  /// Keep-last-K snapshot retention: older snapshot files are pruned
  /// after each save. 0 keeps every snapshot forever.
  std::size_t snapshotKeepLast = 8;
  /// How long coordinateRetrain() waits for peer feedback (loopback
  /// answers synchronously; a socket transport would not).
  double retrainWaitSeconds = 5.0;
  /// Force a full win-state broadcast after this many consecutive
  /// digest-skipped gossip rounds, so a peer that (re)joined or missed
  /// messages still converges even when the sender's state is static.
  /// 0 disables the refresh (pure digest skipping).
  std::size_t gossipRefreshRounds = 8;
  /// coordinateRetrain() needs floor(nodes * quorumFraction) + 1 lease
  /// grants (its own included, capped at the node count) before it may
  /// train and fan out a new generation; the same bar applies to the
  /// feedback responses it hears. 0.5 = strict majority.
  double quorumFraction = 0.5;
  /// How long a granted retrain lease stays exclusive. Expiry is stamped
  /// by each grantor on its own obs::Clock — a crashed coordinator frees
  /// the fleet after at most this long.
  double leaseTtlSeconds = 30.0;
  /// First retry delay after a peer's gossip send throws; subsequent
  /// failures back off exponentially with decorrelated jitter.
  double retryBackoffBaseSeconds = 0.05;
  /// Ceiling on the per-peer retry delay.
  double retryBackoffCapSeconds = 2.0;
  /// Seed for the backoff jitter stream (deterministic per replica).
  std::uint64_t retrySeed = 0x5EEDull;
};

class Replica {
public:
  /// Attaches to `transport` under config.id; joins `bus` (when given)
  /// with publishWins() as its round function.
  Replica(ReplicaConfig config, Transport& transport, GossipBus* bus = nullptr);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  const std::string& id() const noexcept { return config_.id; }
  serve::PartitionService& service() noexcept { return *service_; }
  const serve::PartitionService& service() const noexcept { return *service_; }

  void addMachine(const sim::MachineConfig& machine,
                  std::shared_ptr<const ml::Classifier> model);
  std::future<serve::LaunchResponse> submit(serve::LaunchRequest request);
  serve::LaunchResponse call(serve::LaunchRequest request);

  /// Load the latest snapshot, if any: install its models at its
  /// generation and merge its refiner state. Call after addMachine()s
  /// and before traffic. Returns whether a snapshot was applied.
  bool warmStart();

  /// Persist the current models + generation + full refiner state.
  /// Returns the snapshot sequence number. Throws without a snapshotDir.
  std::uint64_t saveSnapshot();

  /// One gossip round: broadcast the refiner's measured state — adopted
  /// incumbents plus their evidence (no-op when the state digest is
  /// unchanged since the last publish).
  void publishWins();

  struct FleetRetrain {
    std::uint64_t modelVersion = 0;   ///< generation fanned out (or aborted)
    std::size_t recordsUsed = 0;      ///< union feedback records
    std::size_t machinesRetrained = 0;
    std::size_t peersHeard = 0;       ///< feedback responses received
    std::size_t leaseGrants = 0;      ///< grants won (self-grant included)
    std::size_t quorumNeeded = 0;     ///< quorumFraction over current nodes
    /// True when the retrain stopped as a safe no-op: the coordinator
    /// lost the lease race or could not hear a quorum. Nothing was
    /// trained and no install was fanned out.
    bool aborted = false;
  };
  /// Coordinate a fleet-wide retrain from this replica: win a quorum of
  /// generation-tagged lease grants, pull every peer's recorded traffic,
  /// refit each machine's model on the union, and fan the new generation
  /// out over the transport (cache + refiner state of the old generation
  /// invalidates everywhere). Aborts — result.aborted, counted — when a
  /// racing coordinator holds the lease or a quorum cannot be heard.
  FleetRetrain coordinateRetrain();

  /// Service stats with the fleet counter group populated.
  serve::ServiceStats stats() const;

  /// Fault-path accounting, exact by construction (every boundary counts
  /// before it drops). Also folded into stats().fleet.
  struct GossipCounters {
    std::uint64_t sendFailures = 0;    ///< peer sends that threw
    std::uint64_t sendRetries = 0;     ///< sends re-attempted after backoff
    std::uint64_t envelopesReceived = 0;  ///< every handler entry
    std::uint64_t decodeFailures = 0;  ///< corrupt/unexpected payloads dropped
    std::uint64_t replaysRejected = 0;  ///< duplicate/stale seq dropped
    std::uint64_t retrainsAborted = 0;  ///< quorum/lease safe no-ops
    std::uint64_t installsRejectedLease = 0;  ///< installs from non-holders
    std::uint64_t snapshotsSalvaged = 0;  ///< corrupt snapshots skipped
  };
  GossipCounters gossipCounters() const;

  /// Install this replica's detector rules into `monitor`: gossip_stall
  /// and retrain_overrun under the "<id>." prefix, plus (by default) the
  /// wrapped service's stock rules under its metricsPrefix. The closures
  /// capture `this`: stop the monitor (or removeRulesByPrefix) before
  /// the replica is destroyed.
  void registerHealthRules(obs::HealthMonitor& monitor,
                           const FleetHealthConfig& rules = {});

private:
  void handle(const Envelope& envelope);
  void handleWins(const Envelope& envelope);
  void handleFeedbackPull(const Envelope& envelope);
  void handleFeedbackPush(const Envelope& envelope);
  void handleLeaseRequest(const Envelope& envelope);
  void handleLeaseReply(const Envelope& envelope);
  /// `sender` gates the lease check: an install at a leased generation
  /// from anyone but the holder is rejected (counted).
  void applyModelInstall(const ModelInstallMsg& msg, const std::string& sender);

  /// First-seen check on (sender, seq) through a sliding 64-wide window:
  /// duplicates and too-old sequence numbers return false.
  bool acceptSeq(const std::string& sender, std::uint64_t seq);
  /// Grant the retrain lease on `generation` to `holder` unless a live
  /// conflicting lease exists; `conflictHolder` reports who holds it.
  bool tryGrantLease(const std::string& holder, std::uint64_t generation,
                     std::uint64_t ttlNanos, std::string* conflictHolder);
  /// Drop our own lease record (abort path / after a successful install).
  void releaseLease(std::uint64_t generation);
  std::size_t quorumOf(std::size_t nodes) const;
  /// Record a thrown peer send: bump the failure counters and schedule
  /// the next retry with capped decorrelated-jitter backoff.
  void notePeerSendFailure(const std::string& peer);

  // Relaxed: sequence numbers only need to be unique and monotonic per
  // replica; receivers order messages by value, not by this RMW.
  std::uint64_t nextSeq()
      TP_LOCK_FREE_AUDITED(
          "relaxed unique-ticket counter, ordering carried by the message "
          "payload itself; TSan: test_fleet "
          "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
    return seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  ReplicaConfig config_;
  Transport& transport_;
  GossipBus* bus_ = nullptr;
  std::unique_ptr<serve::PartitionService> service_;
  std::optional<SnapshotStore> store_;

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> lastWinsDigest_{0};
  std::atomic<std::size_t> skippedSinceBroadcast_{0};
  /// Gossip rounds entered (including digest-skipped ones); the
  /// gossip_stall detector watches this for liveness, not outcomes.
  std::atomic<std::uint64_t> gossipRounds_{0};
  /// Wall seconds of the last coordinateRetrain() (last-write-wins; the
  /// retrain_overrun detector's input).
  std::atomic<double> lastRetrainSeconds_{0.0};

  // Feedback fan-in for coordinateRetrain().
  common::Mutex feedbackMutex_;
  common::CondVar feedbackCv_;
  bool collectingFeedback_ TP_GUARDED_BY(feedbackMutex_) = false;
  std::vector<runtime::FeatureDatabase> pendingFeedback_
      TP_GUARDED_BY(feedbackMutex_);

  // Per-peer gossip retry state: a peer whose send threw is skipped
  // until its backoff elapses, then retried (even on digest-quiet
  // rounds) so a healed link reconverges without waiting for new state.
  struct PeerBackoff {
    std::uint64_t failCount = 0;
    std::uint64_t nextRetryTicks = 0;  ///< obs::Clock ticks when due
    double backoffSeconds = 0.0;
  };
  common::Mutex gossipMutex_;
  common::Rng retryRng_ TP_GUARDED_BY(gossipMutex_);
  std::unordered_map<std::string, PeerBackoff> peerBackoff_
      TP_GUARDED_BY(gossipMutex_);

  // Per-sender replay windows: highest sequence seen plus a 64-bit
  // recency mask, so duplicated deliveries and replayed messages are
  // rejected while benign reorderings inside the window still land.
  struct ReplayWindow {
    std::uint64_t high = 0;
    std::uint64_t bits = 0;  ///< bit i set = seq (high - i) already seen
  };
  common::Mutex replayMutex_;
  std::unordered_map<std::string, ReplayWindow> replayWindows_
      TP_GUARDED_BY(replayMutex_);

  // Retrain lease: one record per replica — who may install which
  // generation, until when (obs::Clock ticks). The CondVar fans in
  // LeaseReply grants for a coordinateRetrain() in progress.
  common::Mutex leaseMutex_;
  common::CondVar leaseCv_;
  std::string leaseHolder_ TP_GUARDED_BY(leaseMutex_);
  std::uint64_t leaseGeneration_ TP_GUARDED_BY(leaseMutex_) = 0;
  std::uint64_t leaseExpiryTicks_ TP_GUARDED_BY(leaseMutex_) = 0;
  bool collectingGrants_ TP_GUARDED_BY(leaseMutex_) = false;
  std::uint64_t collectingGeneration_ TP_GUARDED_BY(leaseMutex_) = 0;
  std::size_t grantsReceived_ TP_GUARDED_BY(leaseMutex_) = 0;
  std::size_t leaseRepliesReceived_ TP_GUARDED_BY(leaseMutex_) = 0;

  struct Counters {
    std::atomic<std::uint64_t> winsSent{0};
    std::atomic<std::uint64_t> winsReceived{0};
    std::atomic<std::uint64_t> winsMerged{0};
    std::atomic<std::uint64_t> winsAdopted{0};
    std::atomic<std::uint64_t> winsRejectedStale{0};
    std::atomic<std::uint64_t> winsDropped{0};
    std::atomic<std::uint64_t> snapshotsWritten{0};
    std::atomic<std::uint64_t> snapshotsLoaded{0};
    std::atomic<std::uint64_t> modelInstalls{0};
    std::atomic<std::uint64_t> gossipRoundsSkipped{0};
    std::atomic<std::uint64_t> sendFailures{0};
    std::atomic<std::uint64_t> sendRetries{0};
    std::atomic<std::uint64_t> envelopesReceived{0};
    std::atomic<std::uint64_t> decodeFailures{0};
    std::atomic<std::uint64_t> replaysRejected{0};
    std::atomic<std::uint64_t> retrainsAborted{0};
    std::atomic<std::uint64_t> installsRejectedLease{0};
  };
  mutable Counters counters_;
};

}  // namespace tp::fleet
