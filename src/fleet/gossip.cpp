#include "fleet/gossip.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace tp::fleet {

GossipBus::GossipBus(GossipConfig config) : config_(config) {
  TP_REQUIRE(config_.intervalSeconds > 0.0,
             "GossipBus: intervalSeconds must be > 0, got "
                 << config_.intervalSeconds);
}

GossipBus::~GossipBus() { stop(); }

void GossipBus::join(const std::string& node, RoundFn fn) {
  common::MutexLock lock(mutex_);
  for (auto& [name, existing] : participants_) {
    if (name == node) {
      existing = std::move(fn);
      return;
    }
  }
  participants_.emplace_back(node, std::move(fn));
}

void GossipBus::leave(const std::string& node) {
  {
    common::MutexLock lock(mutex_);
    participants_.erase(
        std::remove_if(participants_.begin(), participants_.end(),
                       [&](const auto& p) { return p.first == node; }),
        participants_.end());
  }
  // An in-flight round copied its fn list before we erased: wait it out,
  // so the departing participant's fn can never run after leave()
  // returns (its owner is free to destroy itself).
  common::MutexLock drain(roundMutex_);
}

std::size_t GossipBus::runRound() {
  // Invoke outside the bus lock: round fns broadcast over the transport,
  // whose handlers merge into replicas and may call back into join/leave
  // (replica teardown) from other threads. roundMutex_ is what leave()
  // waits on to drain an in-flight round.
  common::MutexLock round(roundMutex_);
  TP_TRACE_SPAN("fleet.gossip_round");
  std::vector<RoundFn> fns;
  {
    common::MutexLock lock(mutex_);
    fns.reserve(participants_.size());
    for (const auto& [node, fn] : participants_) {
      (void)node;
      fns.push_back(fn);
    }
    ++rounds_;
  }
  for (std::size_t i = 0; i < fns.size(); ++i) {
    // Failure boundary: one participant's exception must not starve the
    // rest of the round or kill the background thread (a peer's decode
    // error used to propagate here and std::terminate the bus). Count
    // and log — never swallow silently.
    try {
      fns[i]();
    } catch (const std::exception& e) {
      TP_WARN("gossip round participant " << i << " threw: " << e.what());
      common::MutexLock lock(mutex_);
      ++roundErrors_;
    } catch (...) {
      TP_WARN("gossip round participant " << i << " threw a non-exception");
      common::MutexLock lock(mutex_);
      ++roundErrors_;
    }
  }
  return fns.size();
}

void GossipBus::start() {
  common::MutexLock stopLock(stopMutex_);
  common::MutexLock lock(mutex_);
  if (running_) return;
  stopRequested_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void GossipBus::stop() {
  // stopMutex_ serializes concurrent stoppers (and start-vs-stop): only
  // one caller joins the thread, and a second caller returns only after
  // the first has fully stopped it — never while the loop still runs.
  common::MutexLock stopLock(stopMutex_);
  {
    common::MutexLock lock(mutex_);
    if (!running_) return;
    stopRequested_ = true;
  }
  stopCv_.notify_all();
  thread_.join();
  common::MutexLock lock(mutex_);
  running_ = false;
}

bool GossipBus::running() const {
  common::MutexLock lock(mutex_);
  return running_;
}

void GossipBus::loop() {
  const auto interval = std::chrono::duration<double>(config_.intervalSeconds);
  while (true) {
    {
      common::MutexLock lock(mutex_);
      // Explicit wait loop (not a predicate overload): the analysis
      // treats lambda bodies as separate functions, so a predicate
      // closure reading stopRequested_ could not prove it holds mutex_.
      const auto deadline = obs::Clock::now() + interval;
      while (!stopRequested_) {
        if (stopCv_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (stopRequested_) return;
    }
    runRound();
  }
}

std::uint64_t GossipBus::rounds() const {
  common::MutexLock lock(mutex_);
  return rounds_;
}

std::uint64_t GossipBus::roundErrors() const {
  common::MutexLock lock(mutex_);
  return roundErrors_;
}

}  // namespace tp::fleet
