#pragma once

// FaultyTransport — deterministic fault injection over any Transport.
//
// A decorator that sits between the fleet and a real transport and
// injects faults from a seeded common::Rng, so every chaos run is
// reproducible bit-for-bit from its seed (lint rule R1: no wall-clock,
// no unseeded randomness). Faults are selected EXCLUSIVELY per
// link-message — one uniform draw against the plan's cumulative
// probabilities picks at most one of drop / throw / corrupt / duplicate
// / delay — so the injected-fault counters reconcile exactly against
// what consumers observe:
//
//   seen == injectedDrops + partitionedDrops + injectedThrows
//         + injectedCorruptions + injectedDuplicates + injectedDelays
//         + forwarded-clean
//   forwarded == clean + corruptions + 2*duplicates + deliveredLate
//
// Fault semantics:
//   drop      — message vanishes; send() returns normally.
//   throw     — message vanishes AND send() throws tp::Error (what a
//               socket transport's connection reset looks like).
//   corrupt   — payload bytes are mangled (truncated, or one garbage
//               byte appended to an empty payload) such that the
//               receiver's payload decode deterministically fails; the
//               envelope frame itself stays valid, so the rejection is
//               exercised in the Replica handler, not the frame decoder.
//   duplicate — delivered twice back-to-back (same seq: the receiver's
//               replay window must reject the copy).
//   delay     — held back and released only after the NEXT forwarded
//               message on the same link (true reordering). Delays are
//               traffic-paced, not time-paced, so runs stay
//               deterministic; flushDelayed() releases stragglers.
//
// Directed partitions block links outright (partition()/partitionOneWay(),
// heal()); a scriptable schedule switches the default plan when the
// total seen-message count crosses programmed thresholds, so drop storms
// start and stop at exact, reproducible points in the traffic.
//
// broadcast() expands to per-peer send() so every link evaluates its own
// faults (and the inner transport's `sent` counts each copy); handlers
// may send reentrantly, therefore the inner transport is always invoked
// with no FaultyTransport lock held.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/rng.hpp"
#include "fleet/transport.hpp"

namespace tp::fleet {

/// Per-link fault probabilities, all in [0, 1]. Their sum must be <= 1
/// (faults are mutually exclusive per message); setPlan validates.
struct FaultPlan {
  double dropProbability = 0.0;
  double throwProbability = 0.0;
  double corruptProbability = 0.0;
  double duplicateProbability = 0.0;
  double delayProbability = 0.0;

  double total() const {
    return dropProbability + throwProbability + corruptProbability +
           duplicateProbability + delayProbability;
  }
};

/// Exact injected-fault accounting; tests assert *what* was injected,
/// not just that consumers survived.
struct FaultCounters {
  std::uint64_t seen = 0;                ///< link-messages evaluated
  std::uint64_t injectedDrops = 0;
  std::uint64_t injectedThrows = 0;
  std::uint64_t injectedCorruptions = 0;
  std::uint64_t injectedDuplicates = 0;
  std::uint64_t injectedDelays = 0;
  std::uint64_t partitionedDrops = 0;    ///< blocked by partition()
  std::uint64_t deliveredLate = 0;       ///< delayed messages released
  std::uint64_t forwarded = 0;           ///< inner send() invocations
};

class FaultyTransport final : public Transport {
public:
  /// Decorates `inner` (not owned; must outlive this object). All
  /// randomness flows from `seed`.
  FaultyTransport(Transport& inner, std::uint64_t seed);

  // Transport interface: attach/detach/nodes forward untouched.
  void attach(const std::string& node, Handler handler) override;
  void detach(const std::string& node) override;
  std::vector<std::string> nodes() const override;
  void send(const std::string& from, const std::string& to,
            const Envelope& envelope) override;
  void broadcast(const std::string& from, const Envelope& envelope) override;
  /// Inner counters with this decorator's broadcast() calls folded in.
  TransportCounters counters() const override;

  /// Default plan for links without a per-link override.
  void setDefaultPlan(const FaultPlan& plan) TP_EXCLUDES(mutex_);
  /// Per-link (directed, from -> to) override.
  void setPlan(const std::string& from, const std::string& to,
               const FaultPlan& plan) TP_EXCLUDES(mutex_);
  /// Drop every plan and partition (delayed messages stay pending until
  /// flushDelayed() or follow-on traffic releases them).
  void clearFaults() TP_EXCLUDES(mutex_);

  /// Block both directions between a and b.
  void partition(const std::string& a, const std::string& b)
      TP_EXCLUDES(mutex_);
  /// Block only from -> to.
  void partitionOneWay(const std::string& from, const std::string& to)
      TP_EXCLUDES(mutex_);
  /// Remove every partition.
  void heal() TP_EXCLUDES(mutex_);

  /// Switch the default plan when the total seen count reaches
  /// `atSeenCount` (applied before that message is evaluated). Entries
  /// may be added in any order; they fire in threshold order.
  void scheduleDefaultPlan(std::uint64_t atSeenCount, const FaultPlan& plan)
      TP_EXCLUDES(mutex_);

  /// Forward every delayed message now (in original order per link).
  /// Returns how many were released.
  std::size_t flushDelayed() TP_EXCLUDES(mutex_);
  /// Delayed messages still buffered.
  std::size_t pendingDelayed() const TP_EXCLUDES(mutex_);

  FaultCounters faultCounters() const TP_EXCLUDES(mutex_);

private:
  using Link = std::pair<std::string, std::string>;

  /// Applies due schedule entries, then evaluates one message; appends
  /// the deliveries to make (possibly none) to `out`. Returns true when
  /// an injected throw must be raised after the lock is dropped.
  bool evaluate(const std::string& from, const std::string& to,
                const Envelope& envelope,
                std::vector<std::pair<std::string, Envelope>>& out)
      TP_REQUIRES(mutex_);
  static void corruptPayload(Envelope& envelope);

  Transport& inner_;
  mutable common::Mutex mutex_;
  common::Rng rng_ TP_GUARDED_BY(mutex_);
  FaultPlan defaultPlan_ TP_GUARDED_BY(mutex_);
  std::map<Link, FaultPlan> linkPlans_ TP_GUARDED_BY(mutex_);
  std::set<Link> blockedLinks_ TP_GUARDED_BY(mutex_);
  std::map<std::uint64_t, FaultPlan> schedule_ TP_GUARDED_BY(mutex_);
  std::map<Link, std::vector<Envelope>> pendingDelayed_ TP_GUARDED_BY(mutex_);
  std::size_t pendingCount_ TP_GUARDED_BY(mutex_) = 0;
  FaultCounters counters_ TP_GUARDED_BY(mutex_);
  std::uint64_t broadcasts_ TP_GUARDED_BY(mutex_) = 0;
};

}  // namespace tp::fleet
