#include "fleet/snapshot.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/serial.hpp"

namespace tp::fleet {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x5450534eu;  // "TPSN"
constexpr std::uint16_t kSnapshotVersion = 1;
constexpr const char* kPrefix = "snapshot-";
constexpr const char* kSuffix = ".tpsnap";

std::string fileName(std::uint64_t seq) {
  std::ostringstream os;
  os << kPrefix;
  os.width(8);
  os.fill('0');
  os << seq << kSuffix;
  return os.str();
}

/// Sequence number of a snapshot file name; 0 when it is not one.
std::uint64_t sequenceOf(const std::string& name) {
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.compare(0, prefix.size(), prefix) != 0) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return 0;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

std::string encodeSnapshot(const ReplicaSnapshot& snapshot) {
  common::WireWriter w;
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u64(snapshot.modelVersion);
  w.u32(static_cast<std::uint32_t>(snapshot.models.size()));
  for (const ModelBlob& blob : snapshot.models) {
    w.str(blob.machine);
    w.str(blob.model);
  }
  w.str(encodeWins(snapshot.wins));
  return w.take();
}

ReplicaSnapshot decodeSnapshot(std::string_view bytes) {
  common::WireReader r(bytes);
  const std::uint32_t magic = r.u32();
  TP_REQUIRE(magic == kSnapshotMagic,
             "snapshot: bad magic 0x" << std::hex << magic);
  const std::uint16_t version = r.u16();
  TP_REQUIRE(version == kSnapshotVersion,
             "snapshot: unsupported format version " << version);
  ReplicaSnapshot snapshot;
  snapshot.modelVersion = r.u64();
  // Each blob carries two length-prefixed strings: >= 8 bytes of input.
  const std::uint32_t n = r.checkedCount(r.u32(), 8);
  snapshot.models.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ModelBlob blob;
    blob.machine = r.str();
    blob.model = r.str();
    snapshot.models.push_back(std::move(blob));
  }
  snapshot.wins = decodeWins(r.str());
  r.expectEnd();
  return snapshot;
}

SnapshotStore::SnapshotStore(std::string dir, std::size_t keepLast)
    : dir_(std::move(dir)), keepLast_(keepLast) {
  TP_REQUIRE(!dir_.empty(), "SnapshotStore: empty directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  TP_REQUIRE(!ec, "SnapshotStore: cannot create " << dir_ << ": "
                                                  << ec.message());
}

std::uint64_t SnapshotStore::highestSequence() const {
  std::uint64_t highest = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    highest = std::max(highest, sequenceOf(entry.path().filename().string()));
  }
  return highest;
}

std::uint64_t SnapshotStore::save(const ReplicaSnapshot& snapshot) {
  const std::uint64_t seq = highestSequence() + 1;
  const fs::path finalPath = fs::path(dir_) / fileName(seq);
  const fs::path tmpPath = fs::path(dir_) / (fileName(seq) + ".tmp");
  const std::string bytes = encodeSnapshot(snapshot);
  {
    std::ofstream os(tmpPath, std::ios::binary | std::ios::trunc);
    if (!os) throw IoError("SnapshotStore: cannot write " + tmpPath.string());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) throw IoError("SnapshotStore: short write to " + tmpPath.string());
  }
  // Atomic publish: readers either see the previous latest snapshot or
  // this complete one, never a half-written file.
  std::error_code ec;
  fs::rename(tmpPath, finalPath, ec);
  if (ec) {
    throw IoError("SnapshotStore: cannot publish " + finalPath.string() +
                  ": " + ec.message());
  }
  if (keepLast_ > 0) prune(seq);
  return seq;
}

void SnapshotStore::prune(std::uint64_t newestSeq) const {
  // Remove snapshots older than the newest keepLast_. Best-effort: a file
  // that cannot be removed (e.g. a concurrent reader on a platform with
  // strict sharing) is retried on the next save; recovery correctness
  // only ever depends on the newest snapshot surviving, which prune()
  // never touches.
  if (newestSeq < keepLast_) return;
  const std::uint64_t cutoff = newestSeq - keepLast_;  // prune seq <= cutoff
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::uint64_t seq = sequenceOf(entry.path().filename().string());
    if (seq > 0 && seq <= cutoff) {
      std::error_code removeEc;
      fs::remove(entry.path(), removeEc);
    }
  }
}

std::optional<ReplicaSnapshot> SnapshotStore::loadLatest() const
    TP_LOCK_FREE_AUDITED(
        "only corruptSkipped_ is touched lock-free (relaxed monotonic "
        "counter); TSan: test_fleet Fleet.CountersReconcileUnderConcurrent"
        "GossipAndRetrain") {
  // Collect every sequence on disk, newest first, and salvage: the first
  // snapshot that opens and decodes wins. A corrupt newest file (torn
  // write that still got renamed, bit rot, truncation) falls back to
  // the next-older valid one instead of failing warm start.
  std::vector<std::uint64_t> sequences;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::uint64_t seq = sequenceOf(entry.path().filename().string());
    if (seq > 0) sequences.push_back(seq);
  }
  std::sort(sequences.rbegin(), sequences.rend());
  for (const std::uint64_t seq : sequences) {
    const fs::path path = fs::path(dir_) / fileName(seq);
    try {
      std::ifstream is(path, std::ios::binary);
      if (!is) throw IoError("SnapshotStore: cannot open " + path.string());
      std::ostringstream buffer;
      buffer << is.rdbuf();
      return decodeSnapshot(buffer.str());
    } catch (const std::exception& e) {
      corruptSkipped_.fetch_add(1, std::memory_order_relaxed);
      TP_WARN("SnapshotStore: skipping corrupt snapshot "
              << path.string() << " (" << e.what() << "), trying next-older");
    }
  }
  return std::nullopt;
}

std::size_t SnapshotStore::count() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (sequenceOf(entry.path().filename().string()) > 0) ++n;
  }
  return n;
}

}  // namespace tp::fleet
