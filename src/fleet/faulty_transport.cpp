#include "fleet/faulty_transport.hpp"

#include <utility>

#include "common/error.hpp"

namespace tp::fleet {

namespace {

void validatePlan(const FaultPlan& plan) {
  const double probs[] = {plan.dropProbability, plan.throwProbability,
                          plan.corruptProbability, plan.duplicateProbability,
                          plan.delayProbability};
  for (double p : probs) {
    TP_REQUIRE(p >= 0.0 && p <= 1.0,
               "FaultPlan: probability " << p << " outside [0, 1]");
  }
  TP_REQUIRE(plan.total() <= 1.0 + 1e-12,
             "FaultPlan: probabilities sum to " << plan.total()
                                                << " > 1 (faults are "
                                                   "mutually exclusive)");
}

}  // namespace

FaultyTransport::FaultyTransport(Transport& inner, std::uint64_t seed)
    : inner_(inner), rng_(seed) {}

void FaultyTransport::attach(const std::string& node, Handler handler) {
  inner_.attach(node, std::move(handler));
}

void FaultyTransport::detach(const std::string& node) { inner_.detach(node); }

std::vector<std::string> FaultyTransport::nodes() const {
  return inner_.nodes();
}

void FaultyTransport::corruptPayload(Envelope& envelope) {
  if (envelope.payload.empty()) {
    // Kinds with empty payloads (FeedbackPull) are corrupted by growing
    // one; the handler rejects any non-empty body for them.
    envelope.payload.push_back('\xFF');
  } else {
    // A strict prefix of a valid payload always fails its decoder: the
    // decode read sequence is deterministic and consumed every original
    // byte, so some read must now cross the cut and throw.
    envelope.payload.resize(envelope.payload.size() / 2);
  }
}

bool FaultyTransport::evaluate(
    const std::string& from, const std::string& to, const Envelope& envelope,
    std::vector<std::pair<std::string, Envelope>>& out) {
  // Fire any schedule entries due at this seen-count before evaluating.
  while (!schedule_.empty() && schedule_.begin()->first <= counters_.seen) {
    defaultPlan_ = schedule_.begin()->second;
    schedule_.erase(schedule_.begin());
  }
  ++counters_.seen;

  const Link link{from, to};
  if (blockedLinks_.count(link) != 0) {
    ++counters_.partitionedDrops;
    return false;
  }

  const auto planIt = linkPlans_.find(link);
  const FaultPlan& plan =
      planIt != linkPlans_.end() ? planIt->second : defaultPlan_;

  const std::size_t before = out.size();
  bool throwAfter = false;
  // One draw, cumulative thresholds: at most one fault per message.
  const double roll = plan.total() > 0.0 ? rng_.uniform() : 1.0;
  double edge = plan.dropProbability;
  if (roll < edge) {
    ++counters_.injectedDrops;
  } else if (roll < (edge += plan.throwProbability)) {
    ++counters_.injectedThrows;
    throwAfter = true;
  } else if (roll < (edge += plan.corruptProbability)) {
    ++counters_.injectedCorruptions;
    Envelope corrupted = envelope;
    corruptPayload(corrupted);
    out.emplace_back(to, std::move(corrupted));
  } else if (roll < (edge += plan.duplicateProbability)) {
    ++counters_.injectedDuplicates;
    out.emplace_back(to, envelope);
    out.emplace_back(to, envelope);
  } else if (roll < (edge += plan.delayProbability)) {
    ++counters_.injectedDelays;
    pendingDelayed_[link].push_back(envelope);
    ++pendingCount_;
  } else {
    out.emplace_back(to, envelope);
  }

  // A forwarded message releases everything the link held back, AFTER
  // itself — that is the reorder.
  if (out.size() > before) {
    const auto pendIt = pendingDelayed_.find(link);
    if (pendIt != pendingDelayed_.end()) {
      for (Envelope& held : pendIt->second) {
        ++counters_.deliveredLate;
        --pendingCount_;
        out.emplace_back(to, std::move(held));
      }
      pendingDelayed_.erase(pendIt);
    }
  }
  counters_.forwarded += out.size() - before;
  return throwAfter;
}

void FaultyTransport::send(const std::string& from, const std::string& to,
                           const Envelope& envelope) {
  std::vector<std::pair<std::string, Envelope>> deliveries;
  bool throwAfter = false;
  {
    common::MutexLock lock(mutex_);
    throwAfter = evaluate(from, to, envelope, deliveries);
  }
  // The inner transport runs with no decorator lock held: loopback
  // delivery is synchronous and handlers send reentrantly (the retrain
  // fan-in), which must not self-deadlock through this decorator.
  for (auto& [target, env] : deliveries) inner_.send(from, target, env);
  if (throwAfter) {
    TP_THROW("FaultyTransport: injected send failure " << from << " -> "
                                                       << to);
  }
}

void FaultyTransport::broadcast(const std::string& from,
                                const Envelope& envelope) {
  {
    common::MutexLock lock(mutex_);
    ++broadcasts_;
  }
  // Expand to per-link sends so each link rolls its own faults. An
  // injected throw aborts the remaining fan-out — exactly what a failed
  // socket write mid-broadcast does — so resilient callers fan out
  // per-peer themselves.
  for (const std::string& to : inner_.nodes()) {
    if (to != from) send(from, to, envelope);
  }
}

TransportCounters FaultyTransport::counters() const {
  TransportCounters merged = inner_.counters();
  common::MutexLock lock(mutex_);
  merged.broadcasts += broadcasts_;
  return merged;
}

void FaultyTransport::setDefaultPlan(const FaultPlan& plan) {
  validatePlan(plan);
  common::MutexLock lock(mutex_);
  defaultPlan_ = plan;
}

void FaultyTransport::setPlan(const std::string& from, const std::string& to,
                              const FaultPlan& plan) {
  validatePlan(plan);
  common::MutexLock lock(mutex_);
  linkPlans_[Link{from, to}] = plan;
}

void FaultyTransport::clearFaults() {
  common::MutexLock lock(mutex_);
  defaultPlan_ = FaultPlan{};
  linkPlans_.clear();
  schedule_.clear();
  blockedLinks_.clear();
}

void FaultyTransport::partition(const std::string& a, const std::string& b) {
  common::MutexLock lock(mutex_);
  blockedLinks_.insert(Link{a, b});
  blockedLinks_.insert(Link{b, a});
}

void FaultyTransport::partitionOneWay(const std::string& from,
                                      const std::string& to) {
  common::MutexLock lock(mutex_);
  blockedLinks_.insert(Link{from, to});
}

void FaultyTransport::heal() {
  common::MutexLock lock(mutex_);
  blockedLinks_.clear();
}

void FaultyTransport::scheduleDefaultPlan(std::uint64_t atSeenCount,
                                          const FaultPlan& plan) {
  validatePlan(plan);
  common::MutexLock lock(mutex_);
  schedule_[atSeenCount] = plan;
}

std::size_t FaultyTransport::flushDelayed() {
  std::vector<std::pair<std::string, Envelope>> deliveries;
  {
    common::MutexLock lock(mutex_);
    for (auto& [link, held] : pendingDelayed_) {
      for (Envelope& env : held) {
        ++counters_.deliveredLate;
        ++counters_.forwarded;
        --pendingCount_;
        deliveries.emplace_back(link.second, std::move(env));
      }
    }
    pendingDelayed_.clear();
  }
  for (auto& [target, env] : deliveries) {
    // `from` only routes partitions/plans, which flushing bypasses by
    // design; the original sender id is inside the envelope.
    inner_.send(env.from, target, env);
  }
  return deliveries.size();
}

std::size_t FaultyTransport::pendingDelayed() const {
  common::MutexLock lock(mutex_);
  return pendingCount_;
}

FaultCounters FaultyTransport::faultCounters() const {
  common::MutexLock lock(mutex_);
  return counters_;
}

}  // namespace tp::fleet
