#include "fleet/replica.hpp"

#include <chrono>
#include <sstream>
#include <unordered_set>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "runtime/evaluation.hpp"

namespace tp::fleet {

namespace {

/// Order-independent digest of a win set (records may come out of the
/// refiner's shards in any order). Folds the peer count in, so a replica
/// joining the transport forces a re-broadcast of otherwise unchanged
/// state — anti-entropy must reach newcomers.
std::uint64_t winsDigest(const std::vector<adapt::WinRecord>& wins,
                         std::size_t peers) {
  std::uint64_t digest = common::fnvU64(common::kFnvOffset, peers);
  digest = common::fnvU64(digest, wins.size());
  std::uint64_t fold = 0;
  for (const adapt::WinRecord& rec : wins) {
    std::uint64_t h = common::hashLaunchKey(rec.key.machine, rec.key.program,
                                            rec.key.signature);
    h = common::fnvU64(h, rec.modelVersion);
    h = common::fnvU64(h, rec.incumbentLabel);
    h = common::fnvDouble(h, rec.incumbentMean);
    for (const adapt::WinArm& arm : rec.arms) {
      h = common::fnvU64(h, arm.label);
      h = common::fnvU64(h, arm.count);
      h = common::fnvDouble(h, arm.meanSeconds);
    }
    fold ^= h;  // XOR: commutative across record order
  }
  return common::fnvU64(digest, fold);
}

std::uint64_t recordDedupHash(const runtime::LaunchRecord& rec) {
  std::uint64_t h = common::kFnvOffset;
  h = common::fnvString(h, rec.machine);
  h = common::fnvString(h, rec.program);
  h = common::fnvString(h, rec.sizeLabel);
  h = common::fnvDoubles(h, rec.staticFeatures);
  h = common::fnvDoubles(h, rec.runtimeFeatures);
  return h;
}

}  // namespace

Replica::Replica(ReplicaConfig config, Transport& transport, GossipBus* bus)
    : config_(std::move(config)), transport_(transport), bus_(bus) {
  TP_REQUIRE(!config_.id.empty(), "Replica: empty id");
  service_ = std::make_unique<serve::PartitionService>(config_.service);
  if (!config_.snapshotDir.empty()) {
    store_.emplace(config_.snapshotDir, config_.snapshotKeepLast);
  }
  transport_.attach(config_.id,
                    [this](const Envelope& envelope) { handle(envelope); });
  if (bus_ != nullptr) {
    bus_->join(config_.id, [this] { publishWins(); });
  }
}

Replica::~Replica() {
  if (bus_ != nullptr) bus_->leave(config_.id);
  transport_.detach(config_.id);
  service_->shutdown();
}

void Replica::addMachine(const sim::MachineConfig& machine,
                         std::shared_ptr<const ml::Classifier> model) {
  service_->addMachine(machine, std::move(model));
}

std::future<serve::LaunchResponse> Replica::submit(
    serve::LaunchRequest request) {
  return service_->submit(std::move(request));
}

serve::LaunchResponse Replica::call(serve::LaunchRequest request) {
  return service_->call(std::move(request));
}

// All counters_ members are monotonic stat words folded into stats();
// they publish no payload, so every bump below is relaxed.
bool Replica::warmStart()
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic stat bumps; snapshot state itself is installed "
        "through installModels/mergeRemoteWins which synchronize internally; "
        "TSan: test_fleet Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  if (!store_.has_value()) return false;
  const auto snapshot = store_->loadLatest();
  if (!snapshot.has_value()) return false;
  TP_TRACE_SPAN_ARG("fleet.snapshot_load", snapshot->wins.size());

  std::vector<serve::PartitionService::ModelUpdate> updates;
  updates.reserve(snapshot->models.size());
  for (const ModelBlob& blob : snapshot->models) {
    std::istringstream is(blob.model);
    updates.push_back(serve::PartitionService::ModelUpdate{
        blob.machine,
        std::shared_ptr<const ml::Classifier>(ml::loadClassifier(is))});
  }
  service_->installModels(updates, snapshot->modelVersion);

  // The refiner state flows through the same merge path as gossip (and
  // shows up in the same counters): every record carries the snapshot's
  // generation, which installModels just made current.
  const adapt::MergeResult result = service_->mergeRemoteWins(snapshot->wins);
  counters_.winsReceived.fetch_add(snapshot->wins.size(),
                                   std::memory_order_relaxed);
  counters_.winsMerged.fetch_add(result.merged(), std::memory_order_relaxed);
  counters_.winsAdopted.fetch_add(result.adopted, std::memory_order_relaxed);
  counters_.winsRejectedStale.fetch_add(result.stale,
                                        std::memory_order_relaxed);
  counters_.winsDropped.fetch_add(result.dropped, std::memory_order_relaxed);
  counters_.snapshotsLoaded.fetch_add(1, std::memory_order_relaxed);
  counters_.modelInstalls.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t Replica::saveSnapshot()
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic stat bump; the snapshot bytes are sequenced by "
        "SnapshotStore::save itself; TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  TP_TRACE_SPAN("fleet.snapshot_save");
  TP_REQUIRE(store_.has_value(),
             "Replica " << config_.id << ": no snapshotDir configured");
  // Models, generation and refiner state are read in separate calls; a
  // retrain landing in between would mix generations. Retry on version
  // movement — a torn snapshot is still safe (stale-generation wins are
  // rejected on load) but a clean one is better.
  ReplicaSnapshot snapshot;
  for (int attempt = 0; attempt < 3; ++attempt) {
    snapshot = ReplicaSnapshot{};
    snapshot.modelVersion = service_->modelVersion();
    for (const auto& deployed : service_->deployedModels()) {
      std::ostringstream os;
      deployed.model->save(os);
      snapshot.models.push_back(ModelBlob{deployed.machine, os.str()});
    }
    snapshot.wins = service_->exportRefinedWins(/*refinedOnly=*/false);
    if (service_->modelVersion() == snapshot.modelVersion) break;
  }
  const std::uint64_t seq = store_->save(snapshot);
  counters_.snapshotsWritten.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

void Replica::publishWins()
    TP_LOCK_FREE_AUDITED(
        "digest/skip words are a broadcast-suppression heuristic private to "
        "the gossip round: a stale read only costs one redundant (idempotent) "
        "re-offer, so every access is relaxed; counters are monotonic stats; "
        "TSan: test_fleet Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  TP_TRACE_SPAN("fleet.gossip_publish");
  // Liveness heartbeat for the gossip_stall detector: counted on entry,
  // before any skip path — a stalled *bus* is the failure mode, not a
  // digest-quiet round.
  gossipRounds_.fetch_add(1, std::memory_order_relaxed);
  // Full-state anti-entropy, not a refined-only delta: the measured
  // evidence for *unrefined* neighborhoods is worth as much as the wins
  // (a peer that merges it stops probing those arms), and re-offering
  // everything each round is what lets merges stay idempotent while
  // still reaching replicas that missed earlier rounds. The digest skip
  // below keeps steady-state rounds free.
  const auto wins = service_->exportRefinedWins(/*refinedOnly=*/false);
  if (wins.empty()) {
    counters_.gossipRoundsSkipped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t digest = winsDigest(wins, transport_.nodes().size());
  if (lastWinsDigest_.exchange(digest, std::memory_order_relaxed) == digest) {
    // Unchanged state — but never stay silent forever: a peer that
    // (re)joined at the same node count, or missed a broadcast, only
    // converges if the state is periodically re-offered.
    const std::size_t skipped =
        skippedSinceBroadcast_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config_.gossipRefreshRounds == 0 ||
        skipped < config_.gossipRefreshRounds) {
      counters_.gossipRoundsSkipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  skippedSinceBroadcast_.store(0, std::memory_order_relaxed);
  Envelope envelope;
  envelope.kind = MsgKind::WinsGossip;
  envelope.from = config_.id;
  envelope.seq = nextSeq();
  envelope.payload = encodeWins(wins);
  transport_.broadcast(config_.id, envelope);
  counters_.winsSent.fetch_add(wins.size(), std::memory_order_relaxed);
}

Replica::FleetRetrain Replica::coordinateRetrain() {
  TP_TRACE_SPAN("fleet.coordinate_retrain");
  const auto retrainStart = obs::Clock::now();
  const std::size_t peers = transport_.nodes().size() - 1;
  {
    common::MutexLock lock(feedbackMutex_);
    pendingFeedback_.clear();
    collectingFeedback_ = true;
  }
  Envelope pull;
  pull.kind = MsgKind::FeedbackPull;
  pull.from = config_.id;
  pull.seq = nextSeq();
  transport_.broadcast(config_.id, pull);

  std::vector<runtime::FeatureDatabase> remote;
  {
    common::MutexLock lock(feedbackMutex_);
    // Explicit deadline loop instead of the predicate overload (analysis
    // cannot see through the closure); semantics are identical: wake on
    // quorum or give up at the deadline.
    const auto deadline =
        obs::Clock::now() +
        std::chrono::duration<double>(config_.retrainWaitSeconds);
    while (pendingFeedback_.size() < peers) {
      if (feedbackCv_.wait_until(feedbackMutex_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    collectingFeedback_ = false;
    remote = std::move(pendingFeedback_);
    pendingFeedback_.clear();
  }

  // Union of the fleet's traffic, deduplicated the way FeedbackRecorder
  // deduplicates locally: one record per distinct launch.
  runtime::FeatureDatabase db = service_->trafficSnapshot();
  std::unordered_set<std::uint64_t> seen;
  for (const runtime::LaunchRecord& rec : db.records()) {
    seen.insert(recordDedupHash(rec));
  }
  for (const runtime::FeatureDatabase& peerDb : remote) {
    for (const runtime::LaunchRecord& rec : peerDb.records()) {
      if (seen.insert(recordDedupHash(rec)).second) db.add(rec);
    }
  }

  FleetRetrain result;
  result.recordsUsed = db.size();
  result.peersHeard = remote.size();

  ModelInstallMsg msg;
  msg.modelVersion = service_->modelVersion() + 1;
  for (const auto& deployed : service_->deployedModels()) {
    if (db.forMachine(deployed.machine).empty()) continue;
    const auto model = runtime::trainDeploymentModel(
        db, deployed.machine, config_.service.retrainSpec,
        runtime::FeatureSet::Combined, config_.service.retrainSeed);
    std::ostringstream os;
    model->save(os);
    msg.models.push_back(ModelBlob{deployed.machine, os.str()});
  }
  result.modelVersion = msg.modelVersion;
  result.machinesRetrained = msg.models.size();

  Envelope install;
  install.kind = MsgKind::ModelInstall;
  install.from = config_.id;
  install.seq = nextSeq();
  install.payload = encodeModelInstall(msg);
  transport_.broadcast(config_.id, install);
  // The coordinator applies the same decoded message it broadcast, so
  // every replica — including this one — serves byte-identical models.
  applyModelInstall(decodeModelInstall(install.payload));
  lastRetrainSeconds_.store(
      std::chrono::duration<double>(obs::Clock::now() - retrainStart).count(),
      std::memory_order_relaxed);
  return result;
}

void Replica::registerHealthRules(obs::HealthMonitor& monitor,
                                  const FleetHealthConfig& rules)
    TP_LOCK_FREE_AUDITED(
        "registers rule lambdas doing relaxed loads of the monotonic "
        "gossip-round word and the last-retrain word; the monitor runs "
        "them serially under its own mutex; TSan: test_health "
        "HealthMonitor.BreachWhileDrainStaysConsistent") {
  if (rules.includeServiceRules) {
    service_->registerHealthRules(monitor, rules.service);
  }
  if (bus_ != nullptr) {
    obs::DetectorRule rule;
    rule.name = config_.id + ".gossip_stall";
    rule.triggerAfter = rules.gossipStallEvals;
    rule.clearAfter = 1;  // one advancing round proves liveness again
    rule.evaluate = [this, prev = std::uint64_t{0},
                     baselined = false]() mutable -> std::optional<obs::Firing> {
      const std::uint64_t rounds =
          gossipRounds_.load(std::memory_order_relaxed);
      const std::uint64_t before = prev;
      prev = rounds;
      if (!baselined) {
        baselined = true;
        return std::nullopt;  // first evaluation only takes the baseline
      }
      // Quiet until the first round has run: not-yet-started is not
      // stalled (see FleetHealthConfig).
      if (rounds == 0 || rounds != before) return std::nullopt;
      return obs::Firing{static_cast<double>(rounds), 0.0,
                         "gossip rounds stalled at " + std::to_string(rounds) +
                             " on " + config_.id};
    };
    monitor.addRule(std::move(rule));
  }
  {
    obs::DetectorRule rule;
    rule.name = config_.id + ".retrain_overrun";
    rule.triggerAfter = rules.service.triggerAfter;
    rule.clearAfter = rules.service.clearAfter;
    rule.evaluate = [this, rules]() -> std::optional<obs::Firing> {
      const double last = lastRetrainSeconds_.load(std::memory_order_relaxed);
      if (last <= rules.retrainOverrunSeconds) return std::nullopt;
      return obs::Firing{last, rules.retrainOverrunSeconds,
                         "last fleet retrain coordinated by " + config_.id +
                             " took " + std::to_string(last) + "s"};
    };
    monitor.addRule(std::move(rule));
  }
}

serve::ServiceStats Replica::stats() const
    TP_LOCK_FREE_AUDITED(
        "relaxed snapshot of independent monotonic counters; readers accept "
        "per-word (not cross-word) consistency by contract; TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  serve::ServiceStats s = service_->stats();
  using std::memory_order_relaxed;
  s.fleet.winsSent = counters_.winsSent.load(memory_order_relaxed);
  s.fleet.winsReceived = counters_.winsReceived.load(memory_order_relaxed);
  s.fleet.winsMerged = counters_.winsMerged.load(memory_order_relaxed);
  s.fleet.winsAdopted = counters_.winsAdopted.load(memory_order_relaxed);
  s.fleet.winsRejectedStale =
      counters_.winsRejectedStale.load(memory_order_relaxed);
  s.fleet.winsDropped = counters_.winsDropped.load(memory_order_relaxed);
  s.fleet.snapshotsWritten =
      counters_.snapshotsWritten.load(memory_order_relaxed);
  s.fleet.snapshotsLoaded =
      counters_.snapshotsLoaded.load(memory_order_relaxed);
  s.fleet.modelInstalls = counters_.modelInstalls.load(memory_order_relaxed);
  s.fleet.gossipRoundsSkipped =
      counters_.gossipRoundsSkipped.load(memory_order_relaxed);
  return s;
}

void Replica::handle(const Envelope& envelope) {
  try {
    switch (envelope.kind) {
      case MsgKind::WinsGossip:
        handleWins(envelope);
        return;
      case MsgKind::FeedbackPull:
        handleFeedbackPull(envelope);
        return;
      case MsgKind::FeedbackPush:
        handleFeedbackPush(envelope);
        return;
      case MsgKind::ModelInstall:
        applyModelInstall(decodeModelInstall(envelope.payload));
        return;
    }
    TP_THROW("Replica: unhandled message kind "
             << static_cast<int>(envelope.kind));
  } catch (const std::exception& e) {
    // A malformed or unexpected message must not take the replica down
    // with it (the sender's state is not ours to trust).
    TP_WARN("replica " << config_.id << ": dropping "
                       << msgKindName(envelope.kind) << " from "
                       << envelope.from << ": " << e.what());
  }
}

void Replica::handleWins(const Envelope& envelope)
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic stat bumps after mergeRemoteWins (which holds the "
        "refiner's own locks); TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  TP_TRACE_SPAN_ARG("fleet.gossip_merge", envelope.payload.size());
  const auto wins = decodeWins(envelope.payload);
  const adapt::MergeResult result = service_->mergeRemoteWins(wins);
  counters_.winsReceived.fetch_add(wins.size(), std::memory_order_relaxed);
  counters_.winsMerged.fetch_add(result.merged(), std::memory_order_relaxed);
  counters_.winsAdopted.fetch_add(result.adopted, std::memory_order_relaxed);
  counters_.winsRejectedStale.fetch_add(result.stale,
                                        std::memory_order_relaxed);
  counters_.winsDropped.fetch_add(result.dropped, std::memory_order_relaxed);
}

void Replica::handleFeedbackPull(const Envelope& envelope) {
  Envelope push;
  push.kind = MsgKind::FeedbackPush;
  push.from = config_.id;
  push.seq = nextSeq();
  push.payload = encodeFeedback(service_->trafficSnapshot());
  transport_.send(config_.id, envelope.from, push);
}

void Replica::handleFeedbackPush(const Envelope& envelope) {
  auto db = decodeFeedback(envelope.payload);
  common::MutexLock lock(feedbackMutex_);
  if (!collectingFeedback_) return;  // late reply from a previous pull
  pendingFeedback_.push_back(std::move(db));
  feedbackCv_.notify_all();
}

void Replica::applyModelInstall(const ModelInstallMsg& msg)
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic stat bump; the install itself synchronizes inside "
        "installModels; TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  TP_TRACE_SPAN_ARG("fleet.model_install", msg.modelVersion);
  std::vector<serve::PartitionService::ModelUpdate> updates;
  updates.reserve(msg.models.size());
  for (const ModelBlob& blob : msg.models) {
    std::istringstream is(blob.model);
    updates.push_back(serve::PartitionService::ModelUpdate{
        blob.machine,
        std::shared_ptr<const ml::Classifier>(ml::loadClassifier(is))});
  }
  service_->installModels(updates, msg.modelVersion);
  counters_.modelInstalls.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace tp::fleet
