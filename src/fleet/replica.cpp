#include "fleet/replica.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_set>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "runtime/evaluation.hpp"

namespace tp::fleet {

namespace {

/// Order-independent digest of a win set (records may come out of the
/// refiner's shards in any order). Folds the peer count in, so a replica
/// joining the transport forces a re-broadcast of otherwise unchanged
/// state — anti-entropy must reach newcomers.
std::uint64_t winsDigest(const std::vector<adapt::WinRecord>& wins,
                         std::size_t peers) {
  std::uint64_t digest = common::fnvU64(common::kFnvOffset, peers);
  digest = common::fnvU64(digest, wins.size());
  std::uint64_t fold = 0;
  for (const adapt::WinRecord& rec : wins) {
    std::uint64_t h = common::hashLaunchKey(rec.key.machine, rec.key.program,
                                            rec.key.signature);
    h = common::fnvU64(h, rec.modelVersion);
    h = common::fnvU64(h, rec.incumbentLabel);
    h = common::fnvDouble(h, rec.incumbentMean);
    for (const adapt::WinArm& arm : rec.arms) {
      h = common::fnvU64(h, arm.label);
      h = common::fnvU64(h, arm.count);
      h = common::fnvDouble(h, arm.meanSeconds);
    }
    fold ^= h;  // XOR: commutative across record order
  }
  return common::fnvU64(digest, fold);
}

std::uint64_t recordDedupHash(const runtime::LaunchRecord& rec) {
  std::uint64_t h = common::kFnvOffset;
  h = common::fnvString(h, rec.machine);
  h = common::fnvString(h, rec.program);
  h = common::fnvString(h, rec.sizeLabel);
  h = common::fnvDoubles(h, rec.staticFeatures);
  h = common::fnvDoubles(h, rec.runtimeFeatures);
  return h;
}

}  // namespace

Replica::Replica(ReplicaConfig config, Transport& transport, GossipBus* bus)
    : config_(std::move(config)), transport_(transport), bus_(bus) {
  TP_REQUIRE(!config_.id.empty(), "Replica: empty id");
  TP_REQUIRE(config_.quorumFraction >= 0.0 && config_.quorumFraction <= 1.0,
             "Replica: quorumFraction must be in [0, 1], got "
                 << config_.quorumFraction);
  service_ = std::make_unique<serve::PartitionService>(config_.service);
  if (!config_.snapshotDir.empty()) {
    store_.emplace(config_.snapshotDir, config_.snapshotKeepLast);
  }
  {
    common::MutexLock lock(gossipMutex_);
    retryRng_.reseed(config_.retrySeed);
  }
  // Start sequence numbers at the monotonic clock: a killed-and-restarted
  // replica reusing its id resumes with sequence numbers *above* anything
  // it sent in its previous life, so peers' replay windows never mistake
  // its fresh messages for replays.
  seq_.store(obs::nowTicks(), std::memory_order_relaxed);
  transport_.attach(config_.id,
                    [this](const Envelope& envelope) { handle(envelope); });
  if (bus_ != nullptr) {
    bus_->join(config_.id, [this] { publishWins(); });
  }
}

Replica::~Replica() {
  if (bus_ != nullptr) bus_->leave(config_.id);
  transport_.detach(config_.id);
  service_->shutdown();
}

void Replica::addMachine(const sim::MachineConfig& machine,
                         std::shared_ptr<const ml::Classifier> model) {
  service_->addMachine(machine, std::move(model));
}

std::future<serve::LaunchResponse> Replica::submit(
    serve::LaunchRequest request) {
  return service_->submit(std::move(request));
}

serve::LaunchResponse Replica::call(serve::LaunchRequest request) {
  return service_->call(std::move(request));
}

// All counters_ members are monotonic stat words folded into stats();
// they publish no payload, so every bump below is relaxed.
bool Replica::warmStart()
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic stat bumps; snapshot state itself is installed "
        "through installModels/mergeRemoteWins which synchronize internally; "
        "TSan: test_fleet Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  if (!store_.has_value()) return false;
  const auto snapshot = store_->loadLatest();
  if (!snapshot.has_value()) return false;
  TP_TRACE_SPAN_ARG("fleet.snapshot_load", snapshot->wins.size());

  std::vector<serve::PartitionService::ModelUpdate> updates;
  updates.reserve(snapshot->models.size());
  for (const ModelBlob& blob : snapshot->models) {
    std::istringstream is(blob.model);
    updates.push_back(serve::PartitionService::ModelUpdate{
        blob.machine,
        std::shared_ptr<const ml::Classifier>(ml::loadClassifier(is))});
  }
  service_->installModels(updates, snapshot->modelVersion);

  // The refiner state flows through the same merge path as gossip (and
  // shows up in the same counters): every record carries the snapshot's
  // generation, which installModels just made current.
  const adapt::MergeResult result = service_->mergeRemoteWins(snapshot->wins);
  counters_.winsReceived.fetch_add(snapshot->wins.size(),
                                   std::memory_order_relaxed);
  counters_.winsMerged.fetch_add(result.merged(), std::memory_order_relaxed);
  counters_.winsAdopted.fetch_add(result.adopted, std::memory_order_relaxed);
  counters_.winsRejectedStale.fetch_add(result.stale,
                                        std::memory_order_relaxed);
  counters_.winsDropped.fetch_add(result.dropped, std::memory_order_relaxed);
  counters_.snapshotsLoaded.fetch_add(1, std::memory_order_relaxed);
  counters_.modelInstalls.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t Replica::saveSnapshot()
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic stat bump; the snapshot bytes are sequenced by "
        "SnapshotStore::save itself; TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  TP_TRACE_SPAN("fleet.snapshot_save");
  TP_REQUIRE(store_.has_value(),
             "Replica " << config_.id << ": no snapshotDir configured");
  // Models, generation and refiner state are read in separate calls; a
  // retrain landing in between would mix generations. Retry on version
  // movement — a torn snapshot is still safe (stale-generation wins are
  // rejected on load) but a clean one is better.
  ReplicaSnapshot snapshot;
  for (int attempt = 0; attempt < 3; ++attempt) {
    snapshot = ReplicaSnapshot{};
    snapshot.modelVersion = service_->modelVersion();
    for (const auto& deployed : service_->deployedModels()) {
      std::ostringstream os;
      deployed.model->save(os);
      snapshot.models.push_back(ModelBlob{deployed.machine, os.str()});
    }
    snapshot.wins = service_->exportRefinedWins(/*refinedOnly=*/false);
    if (service_->modelVersion() == snapshot.modelVersion) break;
  }
  const std::uint64_t seq = store_->save(snapshot);
  counters_.snapshotsWritten.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

void Replica::publishWins()
    TP_LOCK_FREE_AUDITED(
        "digest/skip words are a broadcast-suppression heuristic private to "
        "the gossip round: a stale read only costs one redundant (idempotent) "
        "re-offer, so every access is relaxed; counters are monotonic stats; "
        "TSan: test_fleet Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  TP_TRACE_SPAN("fleet.gossip_publish");
  // Liveness heartbeat for the gossip_stall detector: counted on entry,
  // before any skip path — a stalled *bus* is the failure mode, not a
  // digest-quiet round.
  gossipRounds_.fetch_add(1, std::memory_order_relaxed);
  // Full-state anti-entropy, not a refined-only delta: the measured
  // evidence for *unrefined* neighborhoods is worth as much as the wins
  // (a peer that merges it stops probing those arms), and re-offering
  // everything each round is what lets merges stay idempotent while
  // still reaching replicas that missed earlier rounds. The digest skip
  // below keeps steady-state rounds free.
  const auto wins = service_->exportRefinedWins(/*refinedOnly=*/false);
  if (wins.empty()) {
    counters_.gossipRoundsSkipped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto nodes = transport_.nodes();
  const std::uint64_t digest = winsDigest(wins, nodes.size());
  bool fullRound = true;
  if (lastWinsDigest_.exchange(digest, std::memory_order_relaxed) == digest) {
    // Unchanged state — but never stay silent forever: a peer that
    // (re)joined at the same node count, or missed a broadcast, only
    // converges if the state is periodically re-offered.
    const std::size_t skipped =
        skippedSinceBroadcast_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config_.gossipRefreshRounds == 0 ||
        skipped < config_.gossipRefreshRounds) {
      counters_.gossipRoundsSkipped.fetch_add(1, std::memory_order_relaxed);
      fullRound = false;
    }
  }
  if (fullRound) skippedSinceBroadcast_.store(0, std::memory_order_relaxed);

  // Per-peer targets instead of a fire-and-forget broadcast: healthy
  // peers get every full round; a peer whose last send threw is skipped
  // until its backoff elapses and then retried — even on digest-quiet
  // rounds, so recovery is not gated on new local state.
  std::vector<std::string> targets;
  std::vector<bool> isRetry;
  {
    const std::uint64_t now = obs::nowTicks();
    common::MutexLock lock(gossipMutex_);
    for (const std::string& peer : nodes) {
      if (peer == config_.id) continue;
      const auto it = peerBackoff_.find(peer);
      const bool failing = it != peerBackoff_.end();
      if (failing && now < it->second.nextRetryTicks) continue;
      if (fullRound || failing) {
        targets.push_back(peer);
        isRetry.push_back(failing);
      }
    }
  }
  if (targets.empty()) return;

  Envelope envelope;
  envelope.kind = MsgKind::WinsGossip;
  envelope.from = config_.id;
  envelope.seq = nextSeq();
  envelope.payload = encodeWins(wins);
  bool anyDelivered = false;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (isRetry[i]) {
      counters_.sendRetries.fetch_add(1, std::memory_order_relaxed);
    }
    try {
      transport_.send(config_.id, targets[i], envelope);
      anyDelivered = true;
      common::MutexLock lock(gossipMutex_);
      peerBackoff_.erase(targets[i]);
    } catch (const std::exception& e) {
      TP_WARN("replica " << config_.id << ": gossip send to " << targets[i]
                         << " failed: " << e.what());
      notePeerSendFailure(targets[i]);
    } catch (...) {
      TP_WARN("replica " << config_.id << ": gossip send to " << targets[i]
                         << " failed (non-exception)");
      notePeerSendFailure(targets[i]);
    }
  }
  if (anyDelivered) {
    counters_.winsSent.fetch_add(wins.size(), std::memory_order_relaxed);
  }
}

void Replica::notePeerSendFailure(const std::string& peer) {
  counters_.sendFailures.fetch_add(1, std::memory_order_relaxed);
  common::MutexLock lock(gossipMutex_);
  PeerBackoff& backoff = peerBackoff_[peer];
  ++backoff.failCount;
  // Decorrelated jitter: next delay is uniform between the base and 3x
  // the previous delay, capped — retries from many replicas decorrelate
  // instead of thundering back in lockstep.
  const double base = std::max(0.0, config_.retryBackoffBaseSeconds);
  const double cap = std::max(base, config_.retryBackoffCapSeconds);
  const double prev = backoff.backoffSeconds > 0.0 ? backoff.backoffSeconds
                                                   : base;
  const double next = retryRng_.uniform(base, std::min(cap, prev * 3.0));
  backoff.backoffSeconds = std::max(base, next);
  backoff.nextRetryTicks =
      obs::nowTicks() +
      static_cast<std::uint64_t>(backoff.backoffSeconds * 1e9);
}

std::size_t Replica::quorumOf(std::size_t nodes) const {
  if (nodes == 0) return 1;
  const auto bar = static_cast<std::size_t>(static_cast<double>(nodes) *
                                            config_.quorumFraction) +
                   1;
  return std::min(nodes, bar);
}

bool Replica::tryGrantLease(const std::string& holder,
                            std::uint64_t generation, std::uint64_t ttlNanos,
                            std::string* conflictHolder) {
  common::MutexLock lock(leaseMutex_);
  const std::uint64_t now = obs::nowTicks();
  // A live lease by someone else blocks only same-or-newer generations:
  // a request for generation g+1 proves the requester already saw the
  // install that lease g protected, so it cannot conflict with it.
  if (!leaseHolder_.empty() && leaseHolder_ != holder &&
      now < leaseExpiryTicks_ && leaseGeneration_ >= generation) {
    if (conflictHolder != nullptr) *conflictHolder = leaseHolder_;
    return false;
  }
  leaseHolder_ = holder;
  leaseGeneration_ = generation;
  leaseExpiryTicks_ = now + ttlNanos;
  if (conflictHolder != nullptr) *conflictHolder = holder;
  return true;
}

void Replica::releaseLease(std::uint64_t generation) {
  common::MutexLock lock(leaseMutex_);
  if (leaseHolder_ == config_.id && leaseGeneration_ == generation) {
    leaseHolder_.clear();
    leaseExpiryTicks_ = 0;
  }
}

Replica::FleetRetrain Replica::coordinateRetrain() {
  TP_TRACE_SPAN("fleet.coordinate_retrain");
  const auto retrainStart = obs::Clock::now();
  const auto nodes = transport_.nodes();
  const std::size_t peers = nodes.empty() ? 0 : nodes.size() - 1;
  const std::uint64_t generation = service_->modelVersion() + 1;
  const auto ttlNanos =
      static_cast<std::uint64_t>(config_.leaseTtlSeconds * 1e9);

  FleetRetrain result;
  result.modelVersion = generation;
  result.quorumNeeded = quorumOf(nodes.size());

  const auto abortRetrain = [&](const std::string& why) {
    counters_.retrainsAborted.fetch_add(1, std::memory_order_relaxed);
    result.aborted = true;
    releaseLease(generation);
    TP_WARN("replica " << config_.id << ": retrain for generation "
                       << generation << " aborted: " << why);
    lastRetrainSeconds_.store(
        std::chrono::duration<double>(obs::Clock::now() - retrainStart)
            .count(),
        std::memory_order_relaxed);
    return result;
  };

  // Phase 1 — the lease. Self-grant first: a coordinator that cannot
  // hold its own lease is already racing a live coordinator. Then ask
  // every peer, and require a quorum of grants (self included) before
  // anything irreversible happens.
  std::string conflict;
  if (!tryGrantLease(config_.id, generation, ttlNanos, &conflict)) {
    return abortRetrain("lease held by " + conflict);
  }
  {
    common::MutexLock lock(leaseMutex_);
    collectingGrants_ = true;
    collectingGeneration_ = generation;
    grantsReceived_ = 0;
    leaseRepliesReceived_ = 0;
  }
  LeaseRequestMsg leaseMsg;
  leaseMsg.generation = generation;
  leaseMsg.ttlNanos = ttlNanos;
  Envelope leaseEnvelope;
  leaseEnvelope.kind = MsgKind::LeaseRequest;
  leaseEnvelope.from = config_.id;
  leaseEnvelope.seq = nextSeq();
  leaseEnvelope.payload = encodeLeaseRequest(leaseMsg);
  for (const std::string& peer : nodes) {
    if (peer == config_.id) continue;
    try {
      transport_.send(config_.id, peer, leaseEnvelope);
    } catch (const std::exception& e) {
      counters_.sendFailures.fetch_add(1, std::memory_order_relaxed);
      TP_WARN("replica " << config_.id << ": lease request to " << peer
                         << " failed: " << e.what());
    }
  }
  std::size_t grants = 1;  // the self-grant
  {
    common::MutexLock lock(leaseMutex_);
    const auto deadline =
        obs::Clock::now() +
        std::chrono::duration<double>(config_.retrainWaitSeconds);
    while (grantsReceived_ + 1 < result.quorumNeeded &&
           leaseRepliesReceived_ < peers) {
      if (leaseCv_.wait_until(leaseMutex_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    grants += grantsReceived_;
    collectingGrants_ = false;
  }
  result.leaseGrants = grants;
  if (grants < result.quorumNeeded) {
    return abortRetrain("won " + std::to_string(grants) + "/" +
                        std::to_string(result.quorumNeeded) +
                        " lease grants");
  }

  // Phase 2 — feedback fan-in.
  {
    common::MutexLock lock(feedbackMutex_);
    pendingFeedback_.clear();
    collectingFeedback_ = true;
  }
  Envelope pull;
  pull.kind = MsgKind::FeedbackPull;
  pull.from = config_.id;
  pull.seq = nextSeq();
  for (const std::string& peer : nodes) {
    if (peer == config_.id) continue;
    try {
      transport_.send(config_.id, peer, pull);
    } catch (const std::exception& e) {
      counters_.sendFailures.fetch_add(1, std::memory_order_relaxed);
      TP_WARN("replica " << config_.id << ": feedback pull to " << peer
                         << " failed: " << e.what());
    }
  }

  std::vector<runtime::FeatureDatabase> remote;
  {
    common::MutexLock lock(feedbackMutex_);
    // Explicit deadline loop instead of the predicate overload (analysis
    // cannot see through the closure); semantics are identical: wake on
    // quorum or give up at the deadline.
    const auto deadline =
        obs::Clock::now() +
        std::chrono::duration<double>(config_.retrainWaitSeconds);
    while (pendingFeedback_.size() < peers) {
      if (feedbackCv_.wait_until(feedbackMutex_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    collectingFeedback_ = false;
    remote = std::move(pendingFeedback_);
    pendingFeedback_.clear();
  }
  if (remote.size() + 1 < result.quorumNeeded) {
    result.peersHeard = remote.size();
    return abortRetrain("heard " + std::to_string(remote.size()) +
                        " feedback peers, quorum needs " +
                        std::to_string(result.quorumNeeded - 1));
  }

  // Union of the fleet's traffic, deduplicated the way FeedbackRecorder
  // deduplicates locally: one record per distinct launch.
  runtime::FeatureDatabase db = service_->trafficSnapshot();
  std::unordered_set<std::uint64_t> seen;
  for (const runtime::LaunchRecord& rec : db.records()) {
    seen.insert(recordDedupHash(rec));
  }
  for (const runtime::FeatureDatabase& peerDb : remote) {
    for (const runtime::LaunchRecord& rec : peerDb.records()) {
      if (seen.insert(recordDedupHash(rec)).second) db.add(rec);
    }
  }

  result.recordsUsed = db.size();
  result.peersHeard = remote.size();

  // Phase 3 — train on the union and fan the new generation out.
  ModelInstallMsg msg;
  msg.modelVersion = generation;
  for (const auto& deployed : service_->deployedModels()) {
    if (db.forMachine(deployed.machine).empty()) continue;
    const auto model = runtime::trainDeploymentModel(
        db, deployed.machine, config_.service.retrainSpec,
        runtime::FeatureSet::Combined, config_.service.retrainSeed);
    std::ostringstream os;
    model->save(os);
    msg.models.push_back(ModelBlob{deployed.machine, os.str()});
  }
  result.machinesRetrained = msg.models.size();

  Envelope install;
  install.kind = MsgKind::ModelInstall;
  install.from = config_.id;
  install.seq = nextSeq();
  install.payload = encodeModelInstall(msg);
  for (const std::string& peer : nodes) {
    if (peer == config_.id) continue;
    // A couple of bounded immediate retries: an install send is the one
    // message worth being stubborn about (a missed peer serves a stale
    // generation until the next retrain).
    for (int attempt = 0; attempt < 3; ++attempt) {
      try {
        transport_.send(config_.id, peer, install);
        if (attempt > 0) {
          counters_.sendRetries.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      } catch (const std::exception& e) {
        counters_.sendFailures.fetch_add(1, std::memory_order_relaxed);
        if (attempt == 2) {
          TP_WARN("replica " << config_.id << ": model install to " << peer
                             << " failed after 3 attempts: " << e.what());
        }
      }
    }
  }
  // The coordinator applies the same decoded message it fanned out, so
  // every replica — including this one — serves byte-identical models.
  // A racing coordinator can land a newer generation here between the
  // fan-out above and this self-apply; installModels then rejects the
  // backward move by throwing. Peers contain that throw in handle() —
  // the coordinator must too: the fleet is converging on the newer
  // generation (backward installs are rejected identically everywhere),
  // so this retrain simply lost the race. Counted as an abort.
  try {
    applyModelInstall(decodeModelInstall(install.payload), config_.id);
  } catch (const std::exception& e) {
    return abortRetrain(std::string("superseded before self-install: ") +
                        e.what());
  }
  releaseLease(generation);
  lastRetrainSeconds_.store(
      std::chrono::duration<double>(obs::Clock::now() - retrainStart).count(),
      std::memory_order_relaxed);
  return result;
}

void Replica::registerHealthRules(obs::HealthMonitor& monitor,
                                  const FleetHealthConfig& rules)
    TP_LOCK_FREE_AUDITED(
        "registers rule lambdas doing relaxed loads of the monotonic "
        "gossip-round word and the last-retrain word; the monitor runs "
        "them serially under its own mutex; TSan: test_health "
        "HealthMonitor.BreachWhileDrainStaysConsistent") {
  if (rules.includeServiceRules) {
    service_->registerHealthRules(monitor, rules.service);
  }
  if (bus_ != nullptr) {
    obs::DetectorRule rule;
    rule.name = config_.id + ".gossip_stall";
    rule.triggerAfter = rules.gossipStallEvals;
    rule.clearAfter = 1;  // one advancing round proves liveness again
    rule.evaluate = [this, prev = std::uint64_t{0},
                     baselined = false]() mutable -> std::optional<obs::Firing> {
      const std::uint64_t rounds =
          gossipRounds_.load(std::memory_order_relaxed);
      const std::uint64_t before = prev;
      prev = rounds;
      if (!baselined) {
        baselined = true;
        return std::nullopt;  // first evaluation only takes the baseline
      }
      // Quiet until the first round has run: not-yet-started is not
      // stalled (see FleetHealthConfig).
      if (rounds == 0 || rounds != before) return std::nullopt;
      return obs::Firing{static_cast<double>(rounds), 0.0,
                         "gossip rounds stalled at " + std::to_string(rounds) +
                             " on " + config_.id};
    };
    monitor.addRule(std::move(rule));
  }
  {
    obs::DetectorRule rule;
    rule.name = config_.id + ".retrain_overrun";
    rule.triggerAfter = rules.service.triggerAfter;
    rule.clearAfter = rules.service.clearAfter;
    rule.evaluate = [this, rules]() -> std::optional<obs::Firing> {
      const double last = lastRetrainSeconds_.load(std::memory_order_relaxed);
      if (last <= rules.retrainOverrunSeconds) return std::nullopt;
      return obs::Firing{last, rules.retrainOverrunSeconds,
                         "last fleet retrain coordinated by " + config_.id +
                             " took " + std::to_string(last) + "s"};
    };
    monitor.addRule(std::move(rule));
  }
}

serve::ServiceStats Replica::stats() const
    TP_LOCK_FREE_AUDITED(
        "relaxed snapshot of independent monotonic counters; readers accept "
        "per-word (not cross-word) consistency by contract; TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  serve::ServiceStats s = service_->stats();
  using std::memory_order_relaxed;
  s.fleet.winsSent = counters_.winsSent.load(memory_order_relaxed);
  s.fleet.winsReceived = counters_.winsReceived.load(memory_order_relaxed);
  s.fleet.winsMerged = counters_.winsMerged.load(memory_order_relaxed);
  s.fleet.winsAdopted = counters_.winsAdopted.load(memory_order_relaxed);
  s.fleet.winsRejectedStale =
      counters_.winsRejectedStale.load(memory_order_relaxed);
  s.fleet.winsDropped = counters_.winsDropped.load(memory_order_relaxed);
  s.fleet.snapshotsWritten =
      counters_.snapshotsWritten.load(memory_order_relaxed);
  s.fleet.snapshotsLoaded =
      counters_.snapshotsLoaded.load(memory_order_relaxed);
  s.fleet.modelInstalls = counters_.modelInstalls.load(memory_order_relaxed);
  s.fleet.gossipRoundsSkipped =
      counters_.gossipRoundsSkipped.load(memory_order_relaxed);
  s.fleet.sendFailures = counters_.sendFailures.load(memory_order_relaxed);
  s.fleet.sendRetries = counters_.sendRetries.load(memory_order_relaxed);
  s.fleet.envelopesReceived =
      counters_.envelopesReceived.load(memory_order_relaxed);
  s.fleet.decodeFailures = counters_.decodeFailures.load(memory_order_relaxed);
  s.fleet.replaysRejected =
      counters_.replaysRejected.load(memory_order_relaxed);
  s.fleet.retrainsAborted =
      counters_.retrainsAborted.load(memory_order_relaxed);
  s.fleet.installsRejectedLease =
      counters_.installsRejectedLease.load(memory_order_relaxed);
  s.fleet.snapshotsSalvaged =
      store_.has_value() ? store_->corruptSnapshotsSkipped() : 0;
  return s;
}

Replica::GossipCounters Replica::gossipCounters() const
    TP_LOCK_FREE_AUDITED(
        "relaxed snapshot of independent monotonic counters; TSan: "
        "test_fleet Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  using std::memory_order_relaxed;
  GossipCounters g;
  g.sendFailures = counters_.sendFailures.load(memory_order_relaxed);
  g.sendRetries = counters_.sendRetries.load(memory_order_relaxed);
  g.envelopesReceived = counters_.envelopesReceived.load(memory_order_relaxed);
  g.decodeFailures = counters_.decodeFailures.load(memory_order_relaxed);
  g.replaysRejected = counters_.replaysRejected.load(memory_order_relaxed);
  g.retrainsAborted = counters_.retrainsAborted.load(memory_order_relaxed);
  g.installsRejectedLease =
      counters_.installsRejectedLease.load(memory_order_relaxed);
  g.snapshotsSalvaged =
      store_.has_value() ? store_->corruptSnapshotsSkipped() : 0;
  return g;
}

bool Replica::acceptSeq(const std::string& sender, std::uint64_t seq) {
  common::MutexLock lock(replayMutex_);
  ReplayWindow& window = replayWindows_[sender];
  if (seq > window.high) {
    const std::uint64_t advance = seq - window.high;
    window.bits = advance >= 64 ? 0 : window.bits << advance;
    window.bits |= 1;  // bit 0 tracks `high` itself
    window.high = seq;
    return true;
  }
  const std::uint64_t age = window.high - seq;
  // Older than the window: indistinguishable from a replay, reject.
  if (age >= 64) return false;
  const std::uint64_t bit = std::uint64_t{1} << age;
  if ((window.bits & bit) != 0) return false;  // duplicate
  window.bits |= bit;  // benign reorder inside the window
  return true;
}

void Replica::handle(const Envelope& envelope)
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic rejection/arrival counters on the delivery "
        "thread; replay window and payload handlers synchronize via their "
        "own mutexes; TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  counters_.envelopesReceived.fetch_add(1, std::memory_order_relaxed);
  if (!acceptSeq(envelope.from, envelope.seq)) {
    counters_.replaysRejected.fetch_add(1, std::memory_order_relaxed);
    TP_WARN("replica " << config_.id << ": rejecting replayed "
                       << msgKindName(envelope.kind) << " seq " << envelope.seq
                       << " from " << envelope.from);
    return;
  }
  try {
    switch (envelope.kind) {
      case MsgKind::WinsGossip:
        handleWins(envelope);
        return;
      case MsgKind::FeedbackPull:
        handleFeedbackPull(envelope);
        return;
      case MsgKind::FeedbackPush:
        handleFeedbackPush(envelope);
        return;
      case MsgKind::ModelInstall:
        applyModelInstall(decodeModelInstall(envelope.payload),
                          envelope.from);
        return;
      case MsgKind::LeaseRequest:
        handleLeaseRequest(envelope);
        return;
      case MsgKind::LeaseReply:
        handleLeaseReply(envelope);
        return;
    }
    TP_THROW("Replica: unhandled message kind "
             << static_cast<int>(envelope.kind));
  } catch (const std::exception& e) {
    // A malformed or unexpected message must not take the replica down
    // with it (the sender's state is not ours to trust) — counted, so
    // chaos harnesses can reconcile injected corruption against
    // observed rejections.
    counters_.decodeFailures.fetch_add(1, std::memory_order_relaxed);
    TP_WARN("replica " << config_.id << ": dropping "
                       << msgKindName(envelope.kind) << " from "
                       << envelope.from << ": " << e.what());
  }
}

void Replica::handleWins(const Envelope& envelope)
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic stat bumps after mergeRemoteWins (which holds the "
        "refiner's own locks); TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  TP_TRACE_SPAN_ARG("fleet.gossip_merge", envelope.payload.size());
  const auto wins = decodeWins(envelope.payload);
  const adapt::MergeResult result = service_->mergeRemoteWins(wins);
  counters_.winsReceived.fetch_add(wins.size(), std::memory_order_relaxed);
  counters_.winsMerged.fetch_add(result.merged(), std::memory_order_relaxed);
  counters_.winsAdopted.fetch_add(result.adopted, std::memory_order_relaxed);
  counters_.winsRejectedStale.fetch_add(result.stale,
                                        std::memory_order_relaxed);
  counters_.winsDropped.fetch_add(result.dropped, std::memory_order_relaxed);
}

void Replica::handleFeedbackPull(const Envelope& envelope) {
  // A pull carries no body; anything else is corruption (the chaos
  // transport's byte-flips land here) and must be a counted rejection.
  TP_REQUIRE(envelope.payload.empty(),
             "FeedbackPull carries no payload, got "
                 << envelope.payload.size() << " bytes");
  Envelope push;
  push.kind = MsgKind::FeedbackPush;
  push.from = config_.id;
  push.seq = nextSeq();
  push.payload = encodeFeedback(service_->trafficSnapshot());
  transport_.send(config_.id, envelope.from, push);
}

void Replica::handleLeaseRequest(const Envelope& envelope) {
  const LeaseRequestMsg msg = decodeLeaseRequest(envelope.payload);
  LeaseReplyMsg reply;
  reply.generation = msg.generation;
  reply.granted =
      tryGrantLease(envelope.from, msg.generation, msg.ttlNanos,
                    &reply.holder);
  Envelope out;
  out.kind = MsgKind::LeaseReply;
  out.from = config_.id;
  out.seq = nextSeq();
  out.payload = encodeLeaseReply(reply);
  transport_.send(config_.id, envelope.from, out);
}

void Replica::handleLeaseReply(const Envelope& envelope) {
  const LeaseReplyMsg msg = decodeLeaseReply(envelope.payload);
  common::MutexLock lock(leaseMutex_);
  if (!collectingGrants_ || msg.generation != collectingGeneration_) {
    return;  // late reply from an abandoned lease round
  }
  ++leaseRepliesReceived_;
  if (msg.granted) ++grantsReceived_;
  leaseCv_.notify_all();
}

void Replica::handleFeedbackPush(const Envelope& envelope) {
  auto db = decodeFeedback(envelope.payload);
  common::MutexLock lock(feedbackMutex_);
  if (!collectingFeedback_) return;  // late reply from a previous pull
  pendingFeedback_.push_back(std::move(db));
  feedbackCv_.notify_all();
}

void Replica::applyModelInstall(const ModelInstallMsg& msg,
                                const std::string& sender)
    TP_LOCK_FREE_AUDITED(
        "relaxed monotonic stat bump; the install itself synchronizes inside "
        "installModels; TSan: test_fleet "
        "Fleet.CountersReconcileUnderConcurrentGossipAndRetrain") {
  TP_TRACE_SPAN_ARG("fleet.model_install", msg.modelVersion);
  {
    // The lease's last line of defense: while this generation is leased,
    // only the holder's install may land. A racing coordinator that lost
    // the quorum but still fanned out (or a replayed install) is a
    // counted no-op, never a conflicting same-version model swap.
    common::MutexLock lock(leaseMutex_);
    if (!leaseHolder_.empty() && leaseHolder_ != sender &&
        obs::nowTicks() < leaseExpiryTicks_ &&
        leaseGeneration_ == msg.modelVersion) {
      counters_.installsRejectedLease.fetch_add(1, std::memory_order_relaxed);
      TP_WARN("replica " << config_.id << ": rejecting model install at "
                         << "leased generation " << msg.modelVersion
                         << " from " << sender << " (lease holder is "
                         << leaseHolder_ << ")");
      return;
    }
  }
  std::vector<serve::PartitionService::ModelUpdate> updates;
  updates.reserve(msg.models.size());
  for (const ModelBlob& blob : msg.models) {
    std::istringstream is(blob.model);
    updates.push_back(serve::PartitionService::ModelUpdate{
        blob.machine,
        std::shared_ptr<const ml::Classifier>(ml::loadClassifier(is))});
  }
  service_->installModels(updates, msg.modelVersion);
  counters_.modelInstalls.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace tp::fleet
