#pragma once

// GossipBus — periodic anti-entropy rounds across fleet replicas.
//
// Each participant registers a round function (for a Replica:
// publishWins(), which broadcasts its adopted refiner wins over the
// transport). runRound() invokes every participant once; start() runs
// rounds from a background thread on a fixed interval until stop().
// Rounds are anti-entropy in the classic sense: participants re-offer
// their full win state each round and merging is idempotent, so replicas
// converge even if individual messages were lost — and a participant
// whose state digest has not changed skips the broadcast entirely.
//
// Tests and benchmarks drive runRound() manually (background = false)
// for determinism; the background thread is for long-lived services.

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.hpp"

namespace tp::fleet {

struct GossipConfig {
  double intervalSeconds = 0.05;  ///< background round period
};

class GossipBus {
public:
  using RoundFn = std::function<void()>;

  explicit GossipBus(GossipConfig config = {});
  ~GossipBus();  ///< stop()s the background thread

  GossipBus(const GossipBus&) = delete;
  GossipBus& operator=(const GossipBus&) = delete;

  /// Add a participant; its fn runs once per round, on the bus thread
  /// (or the runRound() caller's).
  void join(const std::string& node, RoundFn fn);
  /// Remove a participant. Blocks until any in-flight round has finished
  /// invoking its copied fns, so after leave() returns the fn is never
  /// called again — a Replica may destroy itself safely.
  void leave(const std::string& node);

  /// One anti-entropy round: every participant's fn, in join order.
  /// Each fn runs inside a failure boundary: a throwing participant is
  /// counted (roundErrors()) and logged, the remaining participants
  /// still run, and the background thread survives — mirroring
  /// HealthMonitor's per-rule error counting. Returns the number of
  /// participants invoked.
  std::size_t runRound();

  /// Start/stop the background round thread. Idempotent.
  void start();
  void stop();
  bool running() const;

  std::uint64_t rounds() const;
  /// Participant fns that threw (each counted once per round it threw).
  std::uint64_t roundErrors() const;

private:
  void loop();

  GossipConfig config_;
  mutable common::Mutex mutex_;  ///< guards participants_ + lifecycle state
  common::Mutex roundMutex_;     ///< held while a round invokes its fns
  common::Mutex stopMutex_;      ///< serializes start()/stop() callers
  common::CondVar stopCv_;
  std::vector<std::pair<std::string, RoundFn>> participants_
      TP_GUARDED_BY(mutex_);
  /// Written by start(), joined by stop(); both hold stopMutex_, which is
  /// what makes concurrent stoppers (and start-vs-stop) safe.
  std::thread thread_ TP_GUARDED_BY(stopMutex_);
  bool running_ TP_GUARDED_BY(mutex_) = false;
  bool stopRequested_ TP_GUARDED_BY(mutex_) = false;
  std::uint64_t rounds_ TP_GUARDED_BY(mutex_) = 0;
  std::uint64_t roundErrors_ TP_GUARDED_BY(mutex_) = 0;
};

}  // namespace tp::fleet
