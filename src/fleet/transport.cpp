#include "fleet/transport.hpp"

namespace tp::fleet {

void LoopbackTransport::attach(const std::string& node, Handler handler) {
  common::MutexLock lock(mutex_);
  handlers_[node] = std::move(handler);
}

void LoopbackTransport::detach(const std::string& node) {
  common::MutexLock lock(mutex_);
  handlers_.erase(node);
}

std::vector<std::string> LoopbackTransport::nodes() const {
  std::vector<std::string> out;
  common::MutexLock lock(mutex_);
  out.reserve(handlers_.size());
  for (const auto& [node, handler] : handlers_) {
    (void)handler;
    out.push_back(node);
  }
  return out;  // std::map: already sorted
}

void LoopbackTransport::deliver(const std::string& to,
                                const std::string& bytes) {
  // Copy the handler out of the lock before invoking it: handlers send
  // reentrantly (FeedbackPull -> FeedbackPush), and invoking under the
  // registry mutex would self-deadlock.
  Handler handler;
  {
    common::MutexLock lock(mutex_);
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++counters_.dropped;
      return;
    }
    handler = it->second;
    ++counters_.delivered;
    counters_.bytesMoved += bytes.size();
  }
  // The receiving edge decodes from bytes — the wire format is the only
  // thing that crosses between replicas. A throwing decode or handler is
  // counted, then rethrown: the sender decides whether a failed delivery
  // is fatal (gossip rounds count + retry; tests assert exact counts).
  try {
    handler(decodeEnvelope(bytes));
  } catch (...) {
    common::MutexLock lock(mutex_);
    ++counters_.deliveryFailures;
    throw;
  }
}

void LoopbackTransport::send(const std::string& from, const std::string& to,
                             const Envelope& envelope) {
  (void)from;
  {
    common::MutexLock lock(mutex_);
    ++counters_.sent;
  }
  deliver(to, encodeEnvelope(envelope));
}

void LoopbackTransport::broadcast(const std::string& from,
                                  const Envelope& envelope) {
  std::vector<std::string> targets;
  {
    common::MutexLock lock(mutex_);
    ++counters_.broadcasts;
    for (const auto& [node, handler] : handlers_) {
      (void)handler;
      if (node != from) targets.push_back(node);
    }
  }
  const std::string bytes = encodeEnvelope(envelope);
  for (const std::string& to : targets) deliver(to, bytes);
}

TransportCounters LoopbackTransport::counters() const {
  common::MutexLock lock(mutex_);
  return counters_;
}

}  // namespace tp::fleet
