#pragma once

// Transport — how fleet replicas reach each other.
//
// The interface is deliberately minimal (attach a handler, send to one
// peer, broadcast to all) and carries only encoded Envelope bytes, so a
// socket transport can slot in behind the same API later. The bundled
// LoopbackTransport connects replicas inside one process but still
// round-trips every message through encodeEnvelope()/decodeEnvelope():
// what a replica receives is what came off the wire format, never a
// shared in-memory object.
//
// Delivery is synchronous on the sender's thread and handlers run
// without transport locks held, so a handler may send() or broadcast()
// reentrantly (the retrain fan-in depends on this). Handlers must be
// thread-safe: any attached node's messages can arrive from any peer's
// thread.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "fleet/wire.hpp"

namespace tp::fleet {

struct TransportCounters {
  std::uint64_t sent = 0;        ///< point-to-point sends
  std::uint64_t broadcasts = 0;  ///< broadcast() calls
  std::uint64_t delivered = 0;   ///< handler invocations
  std::uint64_t bytesMoved = 0;  ///< encoded bytes across all deliveries
  std::uint64_t dropped = 0;     ///< unknown destination
  /// Handler (or envelope decode) threw during a delivery. The exception
  /// still propagates to the sender — the transport counts the failure,
  /// it never swallows it. `delivered` includes these, so
  /// delivered == handler-completions + deliveryFailures.
  std::uint64_t deliveryFailures = 0;
};

class Transport {
public:
  using Handler = std::function<void(const Envelope&)>;

  virtual ~Transport() = default;

  /// Register `node` to receive messages; replaces any previous handler.
  virtual void attach(const std::string& node, Handler handler) = 0;
  /// Stop delivering to `node`. Prevents new deliveries but does NOT
  /// wait for handler invocations already in flight on other threads —
  /// quiesce senders (gossip rounds, retrain coordinators) before
  /// destroying the handler's owner. GossipBus::leave() gives that
  /// guarantee for bus-driven rounds; Fleet's teardown order does it
  /// fleet-wide.
  virtual void detach(const std::string& node) = 0;
  /// Attached node ids, sorted.
  virtual std::vector<std::string> nodes() const = 0;

  /// Deliver to one peer; unknown destinations count as dropped.
  virtual void send(const std::string& from, const std::string& to,
                    const Envelope& envelope) = 0;
  /// Deliver to every attached node except `from`.
  virtual void broadcast(const std::string& from, const Envelope& envelope) = 0;

  virtual TransportCounters counters() const = 0;
};

class LoopbackTransport final : public Transport {
public:
  void attach(const std::string& node, Handler handler) override;
  void detach(const std::string& node) override;
  std::vector<std::string> nodes() const override;
  void send(const std::string& from, const std::string& to,
            const Envelope& envelope) override;
  void broadcast(const std::string& from, const Envelope& envelope) override;
  TransportCounters counters() const override;

private:
  void deliver(const std::string& to, const std::string& bytes);

  mutable common::Mutex mutex_;  ///< guards handlers_ + counters_
  std::map<std::string, Handler> handlers_ TP_GUARDED_BY(mutex_);
  TransportCounters counters_ TP_GUARDED_BY(mutex_);
};

}  // namespace tp::fleet
