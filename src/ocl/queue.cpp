#include "ocl/queue.hpp"

#include "common/error.hpp"

namespace tp::vcl {

Event CommandQueue::enqueueKernel(const features::KernelFeatures& features,
                                  const std::map<std::string, double>& bindings,
                                  std::size_t groupBegin, std::size_t groupEnd,
                                  const WorkGroupCtx& ctxTemplate,
                                  const NativeKernel& native,
                                  const LaunchArgs& args, double dramBytes) {
  TP_ASSERT(groupEnd >= groupBegin);
  const std::size_t numGroups = groupEnd - groupBegin;
  const double items =
      static_cast<double>(numGroups) * static_cast<double>(ctxTemplate.localSize);

  if (mode_ == ExecMode::Compute && numGroups > 0) {
    TP_ASSERT(native != nullptr);
    auto runGroup = [&](std::size_t g) {
      WorkGroupCtx ctx = ctxTemplate;
      ctx.groupId = g;
      native(ctx, args);
    };
    if (pool_ != nullptr) {
      pool_->parallelFor(groupBegin, groupEnd, runGroup, /*grain=*/1);
    } else {
      for (std::size_t g = groupBegin; g < groupEnd; ++g) runGroup(g);
    }
  }

  const double seconds =
      model_.kernelTime(features, bindings, items,
                        static_cast<double>(ctxTemplate.localSize), dramBytes);
  return advance(items > 0.0 ? seconds : 0.0);
}

}  // namespace tp::vcl
