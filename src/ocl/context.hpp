#pragma once

// vcl::Context — one per (machine, execution mode) pair. Owns the command
// queues for every device of the machine and the buffers created against it.

#include <memory>
#include <vector>

#include "ocl/buffer.hpp"
#include "ocl/queue.hpp"
#include "sim/machine.hpp"

namespace tp::vcl {

class Context {
public:
  Context(sim::MachineConfig machine, ExecMode mode,
          common::ThreadPool* pool = &common::globalThreadPool())
      : machine_(std::move(machine)), mode_(mode) {
    queues_.reserve(machine_.devices.size());
    for (const auto& d : machine_.devices) {
      queues_.push_back(std::make_unique<CommandQueue>(d, mode, pool));
    }
  }

  const sim::MachineConfig& machine() const noexcept { return machine_; }
  ExecMode mode() const noexcept { return mode_; }
  std::size_t numDevices() const noexcept { return queues_.size(); }

  CommandQueue& queue(std::size_t device) {
    TP_ASSERT(device < queues_.size());
    return *queues_[device];
  }

  /// Reset all device clocks to 0 (start of a new measured execution).
  void resetClocks() {
    for (auto& q : queues_) q->resetClock();
  }

  std::shared_ptr<Buffer> createBuffer(ElemKind kind, std::size_t elements) {
    return std::make_shared<Buffer>(kind, elements);
  }

private:
  sim::MachineConfig machine_;
  ExecMode mode_;
  std::vector<std::unique_ptr<CommandQueue>> queues_;
};

}  // namespace tp::vcl
