#pragma once

// Native kernel execution interface.
//
// Kernel *semantics* are supplied as a C++ function executed per work-group
// (not per work-item): OpenCL barrier semantics inside a work-group are
// expressed as ordinary sequential code — loop over local ids up to the
// barrier point, then loop again — which is the standard CPU-emulation
// transform and avoids per-item fibers. Kernel *cost* never comes from this
// code; it comes from the analytic DeviceModel applied to the kernel's
// extracted features, so Compute and TimeOnly modes report identical times.

#include <cstddef>
#include <functional>
#include <variant>
#include <vector>

#include "ocl/buffer.hpp"
#include "ocl/view.hpp"

namespace tp::vcl {

/// Work-group coordinates, mirroring the OpenCL work-item functions.
/// globalSize is the size of the *original single-device* NDRange so that
/// kernels using get_global_size for strides behave identically however the
/// range is split.
struct WorkGroupCtx {
  std::size_t groupId = 0;     ///< global group number (offset-adjusted)
  std::size_t localSize = 1;   ///< work items per group
  std::size_t globalSize = 0;  ///< total items of the un-split NDRange
  std::size_t numGroups = 0;   ///< total groups of the un-split NDRange

  /// Absolute global id of local item `lid` in this group.
  std::size_t globalId(std::size_t lid) const {
    return groupId * localSize + lid;
  }
};

/// One bound kernel argument as seen on a device: either a typed view of a
/// buffer slice or a scalar.
class LaunchArgs {
public:
  void addView(BufferView<float> v) { slots_.emplace_back(v); }
  void addView(BufferView<int> v) { slots_.emplace_back(v); }
  void addView(BufferView<unsigned> v) { slots_.emplace_back(v); }
  void addScalar(int v) { slots_.emplace_back(v); }
  void addScalar(float v) { slots_.emplace_back(v); }

  std::size_t size() const noexcept { return slots_.size(); }

  template <typename T>
  BufferView<T> view(std::size_t i) const {
    checkIndex(i);
    const auto* v = std::get_if<BufferView<T>>(&slots_[i]);
    TP_ASSERT_MSG(v != nullptr, "kernel argument " << i
                                                   << " is not a buffer view "
                                                      "of the requested type");
    return *v;
  }

  int scalarInt(std::size_t i) const {
    checkIndex(i);
    const auto* v = std::get_if<int>(&slots_[i]);
    TP_ASSERT_MSG(v != nullptr, "kernel argument " << i << " is not an int");
    return *v;
  }

  float scalarFloat(std::size_t i) const {
    checkIndex(i);
    const auto* v = std::get_if<float>(&slots_[i]);
    TP_ASSERT_MSG(v != nullptr, "kernel argument " << i << " is not a float");
    return *v;
  }

private:
  void checkIndex(std::size_t i) const {
    TP_ASSERT_MSG(i < slots_.size(), "kernel argument index " << i
                                                              << " out of range");
  }

  using Slot = std::variant<BufferView<float>, BufferView<int>,
                            BufferView<unsigned>, int, float>;
  std::vector<Slot> slots_;
};

/// Work-group-level kernel body.
using NativeKernel =
    std::function<void(const WorkGroupCtx&, const LaunchArgs&)>;

}  // namespace tp::vcl
