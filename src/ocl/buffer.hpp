#pragma once

// Host-side buffer storage for the virtual OpenCL runtime (vcl::).
//
// Buffers always live in host memory; "transfers" to a device are simulated
// for timing, and in Compute mode each device receives a bounds-restricted
// view (view.hpp) of exactly the slice the partitioning assigned to it —
// so a kernel that touches memory outside its assigned slice fails loudly
// instead of silently reading another device's data.

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace tp::vcl {

enum class ElemKind { F32, I32, U32 };

inline const char* elemKindName(ElemKind k) {
  switch (k) {
    case ElemKind::F32: return "f32";
    case ElemKind::I32: return "i32";
    case ElemKind::U32: return "u32";
  }
  return "?";
}

class Buffer {
public:
  Buffer(ElemKind kind, std::size_t elements)
      : kind_(kind), elements_(elements), storage_(elements * 4, std::byte{0}) {}

  ElemKind kind() const noexcept { return kind_; }
  std::size_t size() const noexcept { return elements_; }
  std::size_t bytes() const noexcept { return storage_.size(); }

  template <typename T>
  T* data() {
    checkType<T>();
    return reinterpret_cast<T*>(storage_.data());
  }

  template <typename T>
  const T* data() const {
    checkType<T>();
    return reinterpret_cast<const T*>(storage_.data());
  }

  template <typename T>
  T& at(std::size_t i) {
    TP_ASSERT_MSG(i < elements_, "buffer index " << i << " >= " << elements_);
    return data<T>()[i];
  }

  template <typename T>
  const T& at(std::size_t i) const {
    TP_ASSERT_MSG(i < elements_, "buffer index " << i << " >= " << elements_);
    return data<T>()[i];
  }

  template <typename T>
  void fill(const std::vector<T>& values) {
    TP_REQUIRE(values.size() == elements_,
               "Buffer::fill size mismatch: " << values.size() << " vs "
                                              << elements_);
    checkType<T>();
    std::copy(values.begin(), values.end(), data<T>());
  }

  template <typename T>
  std::vector<T> toVector() const {
    checkType<T>();
    return std::vector<T>(data<T>(), data<T>() + elements_);
  }

  void zero() { std::fill(storage_.begin(), storage_.end(), std::byte{0}); }

private:
  template <typename T>
  void checkType() const {
    static_assert(sizeof(T) == 4, "vcl buffers hold 4-byte elements");
    const bool ok = (std::is_same_v<T, float> && kind_ == ElemKind::F32) ||
                    (std::is_same_v<T, int> && kind_ == ElemKind::I32) ||
                    (std::is_same_v<T, unsigned> && kind_ == ElemKind::U32);
    TP_ASSERT_MSG(ok, "buffer type mismatch: buffer holds "
                          << elemKindName(kind_));
  }

  ElemKind kind_;
  std::size_t elements_;
  std::vector<std::byte> storage_;
};

}  // namespace tp::vcl
