#pragma once

// Bounds-restricted buffer views handed to kernels.
//
// A view indexes with *absolute* buffer indices (kernels are written against
// single-device semantics), but only [offset, offset+count) is accessible.
// Out-of-range access throws tp::Error — this is the dynamic enforcement of
// the compiler's buffer access classification: if the access analysis calls
// a buffer Split(c) and that is wrong, the Compute-mode tests crash here
// instead of producing silently wrong results.

#include <atomic>
#include <cstddef>

#include "common/error.hpp"

namespace tp::vcl {

template <typename T>
class BufferView {
public:
  BufferView() = default;
  BufferView(T* base, std::size_t offset, std::size_t count)
      : base_(base), offset_(offset), count_(count) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t count() const noexcept { return count_; }

  T& operator[](std::size_t absoluteIndex) const {
    checkRange(absoluteIndex);
    return base_[absoluteIndex];
  }

  T load(std::size_t absoluteIndex) const { return (*this)[absoluteIndex]; }
  void store(std::size_t absoluteIndex, T value) const {
    (*this)[absoluteIndex] = value;
  }

  /// Atomic fetch-add (kernels with atomic_add/atomic_inc; devices may run
  /// work-groups concurrently on the host pool).
  T atomicAdd(std::size_t absoluteIndex, T value) const {
    checkRange(absoluteIndex);
    std::atomic_ref<T> ref(base_[absoluteIndex]);
    return ref.fetch_add(value, std::memory_order_relaxed);
  }

private:
  void checkRange(std::size_t i) const {
    TP_REQUIRE(i >= offset_ && i < offset_ + count_,
               "device accessed buffer index "
                   << i << " outside its assigned slice [" << offset_ << ", "
                   << offset_ + count_
                   << ") — buffer access classification is wrong");
  }

  T* base_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t count_ = 0;
};

}  // namespace tp::vcl
