#pragma once

// Bounds-restricted buffer views handed to kernels.
//
// A view indexes with *absolute* buffer indices (kernels are written against
// single-device semantics), but only [offset, offset+count) is accessible.
// Out-of-range access throws tp::Error — this is the dynamic enforcement of
// the compiler's buffer access classification: if the access analysis calls
// a buffer Split(c) and that is wrong, the Compute-mode tests crash here
// instead of producing silently wrong results.

#include <atomic>
#include <cstddef>
#include <type_traits>
#include <version>

#include "common/error.hpp"

// BufferView::atomicAdd needs std::atomic_ref (C++20, P0019). Fail the
// build here with one actionable line instead of a template spew deep
// inside fetch_add when someone configures with -std=c++17.
#if !defined(__cpp_lib_atomic_ref) || __cpp_lib_atomic_ref < 201806L
#error \
    "tp::vcl::BufferView requires std::atomic_ref (C++20). Build with a C++20 standard library (GCC >= 10 / Clang+libc++ >= 13) and -std=c++20; the CMake build sets this via CMAKE_CXX_STANDARD 20."
#endif

namespace tp::vcl {

template <typename T>
class BufferView {
public:
  BufferView() = default;
  BufferView(T* base, std::size_t offset, std::size_t count)
      : base_(base), offset_(offset), count_(count) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t count() const noexcept { return count_; }

  T& operator[](std::size_t absoluteIndex) const {
    checkRange(absoluteIndex);
    return base_[absoluteIndex];
  }

  T load(std::size_t absoluteIndex) const { return (*this)[absoluteIndex]; }
  void store(std::size_t absoluteIndex, T value) const {
    (*this)[absoluteIndex] = value;
  }

  /// Atomic fetch-add (kernels with atomic_add/atomic_inc; devices may run
  /// work-groups concurrently on the host pool).
  T atomicAdd(std::size_t absoluteIndex, T value) const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "BufferView::atomicAdd requires a trivially copyable "
                  "element type (std::atomic_ref precondition)");
    checkRange(absoluteIndex);
    std::atomic_ref<T> ref(base_[absoluteIndex]);
    return ref.fetch_add(value, std::memory_order_relaxed);
  }

private:
  void checkRange(std::size_t i) const {
    TP_REQUIRE(i >= offset_ && i < offset_ + count_,
               "device accessed buffer index "
                   << i << " outside its assigned slice [" << offset_ << ", "
                   << offset_ + count_
                   << ") — buffer access classification is wrong");
  }

  T* base_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t count_ = 0;
};

}  // namespace tp::vcl
