#pragma once

// Simulated in-order command queues and events.
//
// Each device has one CommandQueue with a simulated clock. Enqueue
// operations append to the device timeline and return Events carrying
// simulated [start, end) timestamps. Queues of different devices advance
// independently — devices execute concurrently, exactly like the paper's
// multi-device OpenCL runtime — and the scheduler's makespan is the max of
// the per-queue completion times.
//
// In Compute mode, kernel enqueues additionally execute the native
// work-group function on the host thread pool (results are real; time is
// still the analytic model's).

#include <cstddef>
#include <map>
#include <string>

#include "common/thread_pool.hpp"
#include "features/static_features.hpp"
#include "ocl/kernel.hpp"
#include "sim/device_model.hpp"

namespace tp::vcl {

enum class ExecMode {
  Compute,   ///< run kernels for real (tests, examples)
  TimeOnly,  ///< advance simulated clocks only (training sweeps)
};

struct Event {
  double start = 0.0;  ///< simulated seconds
  double end = 0.0;
  double duration() const noexcept { return end - start; }
};

class CommandQueue {
public:
  CommandQueue(const sim::DeviceModel& model, ExecMode mode,
               common::ThreadPool* pool)
      : model_(model), mode_(mode), pool_(pool) {}

  const sim::DeviceModel& device() const noexcept { return model_; }
  double now() const noexcept { return now_; }
  void resetClock() { now_ = 0.0; }

  /// Host→device transfer of `bytes` (accounting only; data already lives
  /// in host memory).
  Event enqueueWrite(double bytes) { return advance(model_.transferTime(bytes)); }

  /// Device→host transfer.
  Event enqueueRead(double bytes) { return advance(model_.transferTime(bytes)); }

  /// Execute work-groups [groupBegin, groupEnd) of a kernel launch.
  /// `features`/`bindings` drive the analytic cost; `native`/`args` supply
  /// semantics in Compute mode. `ctxTemplate` carries the original NDRange
  /// geometry. `dramBytes` is the chunk's unique global-memory footprint
  /// (see sim::DeviceModel::kernelTime); negative = no-reuse upper bound.
  Event enqueueKernel(const features::KernelFeatures& features,
                      const std::map<std::string, double>& bindings,
                      std::size_t groupBegin, std::size_t groupEnd,
                      const WorkGroupCtx& ctxTemplate,
                      const NativeKernel& native, const LaunchArgs& args,
                      double dramBytes = -1.0);

private:
  Event advance(double seconds) {
    Event e;
    e.start = now_;
    now_ += seconds;
    e.end = now_;
    return e;
  }

  const sim::DeviceModel& model_;
  ExecMode mode_;
  common::ThreadPool* pool_;
  double now_ = 0.0;
};

}  // namespace tp::vcl
