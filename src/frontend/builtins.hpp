#pragma once

// Table of builtin functions known to the OpenCL-C-subset frontend.
//
// Each builtin carries a cost class that the feature extractor maps to one
// of the static program features (cheap transcendental-free math counts as
// float ops; sqrt/exp/... count as "special function" ops with much higher
// device-dependent cost; work-item queries are free index arithmetic).

#include <optional>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace tp::frontend {

enum class BuiltinClass {
  WorkItemQuery,  ///< get_global_id etc. — resolved by the runtime, ~free
  MathLight,      ///< fabs, fmin, fmax, min, max, clamp, mad, fma
  MathHeavy,      ///< sqrt, exp, log, sin, cos, pow, rsqrt — "special" ops
  Atomic,         ///< atomic_add / atomic_inc on global memory
};

struct Builtin {
  std::string name;
  int arity;
  BuiltinClass cls;
  /// Result type rule: Void => same as first argument (math builtins);
  /// anything else is the fixed result type.
  ir::Scalar result;
};

/// Look up a builtin by name; nullopt if unknown.
std::optional<Builtin> findBuiltin(const std::string& name);

/// All builtin names (for diagnostics and tests).
std::vector<std::string> builtinNames();

}  // namespace tp::frontend
