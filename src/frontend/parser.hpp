#pragma once

// Recursive-descent parser for the OpenCL-C subset → INSPIRE-lite IR.
//
// Accepted language (rich enough for all 23 suite kernels):
//   - kernels:       __kernel void name(qualified params) { ... }
//   - types:         int, uint/unsigned int, float, bool; pointers with
//                    __global/__local qualifiers on parameters
//   - statements:    declarations (incl. __private/__local arrays),
//                    assignments (=, +=, -=, *=, /=, ++/--), if/else,
//                    canonical for loops, while loops, barrier(...),
//                    break, continue, return
//   - expressions:   full C operator precedence incl. ternary, casts,
//                    builtin calls (see builtins.hpp)
//
// Deliberately rejected: user function definitions/calls, structs, vector
// types, goto, switch, non-canonical for loops. Every rejection is a
// ParseError with line/column.

#include <memory>
#include <string>

#include "ir/node.hpp"

namespace tp::frontend {

/// Parse a translation unit (one or more kernels).
std::unique_ptr<ir::Program> parseProgram(const std::string& source);

/// Parse a source expected to contain exactly one kernel.
std::unique_ptr<ir::KernelDecl> parseSingleKernel(const std::string& source);

}  // namespace tp::frontend
