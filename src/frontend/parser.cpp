#include "frontend/parser.hpp"

#include <map>
#include <vector>

#include "common/error.hpp"
#include "frontend/builtins.hpp"
#include "frontend/lexer.hpp"
#include "ir/clone.hpp"

namespace tp::frontend {

namespace {

using namespace tp::ir;

class Parser {
public:
  explicit Parser(const std::string& source) : tokens_(tokenize(source)) {}

  std::unique_ptr<Program> parseProgram() {
    std::vector<std::unique_ptr<KernelDecl>> kernels;
    while (!peek().is(TokenKind::EndOfFile, "") &&
           peek().kind != TokenKind::EndOfFile) {
      kernels.push_back(parseKernel());
    }
    if (kernels.empty()) fail("expected at least one __kernel function");
    return std::make_unique<Program>(std::move(kernels));
  }

private:
  // -- token helpers --------------------------------------------------------

  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& advance() { return tokens_[pos_++]; }

  bool acceptPunct(std::string_view p) {
    if (peek().isPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool acceptKeyword(std::string_view k) {
    if (peek().isKeyword(k)) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expectPunct(std::string_view p) {
    if (!acceptPunct(p)) {
      fail(std::string("expected '") + std::string(p) + "', got '" +
           peek().text + "'");
    }
  }

  void expectKeyword(std::string_view k) {
    if (!acceptKeyword(k)) {
      fail(std::string("expected '") + std::string(k) + "', got '" +
           peek().text + "'");
    }
  }

  std::string expectIdentifier(const char* what) {
    if (peek().kind != TokenKind::Identifier) {
      fail(std::string("expected ") + what + ", got '" + peek().text + "'");
    }
    return advance().text;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().line, peek().column);
  }

  // -- scopes ---------------------------------------------------------------

  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }

  void declare(const std::string& name, Type type) {
    scopes_.back()[name] = type;
  }

  const Type* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  // -- types ----------------------------------------------------------------

  bool peekIsTypeStart() const {
    const Token& t = peek();
    if (t.kind != TokenKind::Keyword) return false;
    return t.text == "int" || t.text == "uint" || t.text == "unsigned" ||
           t.text == "float" || t.text == "bool" || t.text == "void" ||
           t.text == "const" || t.text == "__local" || t.text == "local" ||
           t.text == "__private" || t.text == "__global" || t.text == "global";
  }

  Scalar parseScalarType() {
    const Token& t = peek();
    if (t.isKeyword("int")) {
      advance();
      return Scalar::Int;
    }
    if (t.isKeyword("uint")) {
      advance();
      return Scalar::UInt;
    }
    if (t.isKeyword("unsigned")) {
      advance();
      acceptKeyword("int");
      return Scalar::UInt;
    }
    if (t.isKeyword("float")) {
      advance();
      return Scalar::Float;
    }
    if (t.isKeyword("bool")) {
      advance();
      return Scalar::Bool;
    }
    if (t.isKeyword("void")) {
      advance();
      return Scalar::Void;
    }
    fail("expected a type, got '" + t.text + "'");
  }

  // -- kernels --------------------------------------------------------------

  std::unique_ptr<KernelDecl> parseKernel() {
    if (!acceptKeyword("__kernel")) expectKeyword("kernel");
    expectKeyword("void");
    const std::string name = expectIdentifier("kernel name");
    expectPunct("(");

    std::vector<Param> params;
    pushScope();
    if (!peek().isPunct(")")) {
      do {
        params.push_back(parseParam());
      } while (acceptPunct(","));
    }
    expectPunct(")");
    for (const auto& p : params) declare(p.name, p.type);

    auto body = parseCompound();
    popScope();
    return std::make_unique<KernelDecl>(name, std::move(params),
                                        std::move(body));
  }

  Param parseParam() {
    AddrSpace space = AddrSpace::None;
    // Qualifiers may appear in any order before the scalar type.
    while (true) {
      if (acceptKeyword("const")) continue;
      if (acceptKeyword("__global") || acceptKeyword("global")) {
        space = AddrSpace::Global;
        continue;
      }
      if (acceptKeyword("__local") || acceptKeyword("local")) {
        space = AddrSpace::Local;
        continue;
      }
      break;
    }
    const Scalar scalar = parseScalarType();
    acceptKeyword("const");
    Type type;
    if (acceptPunct("*")) {
      if (space == AddrSpace::None) {
        fail("pointer parameters must be __global or __local");
      }
      type = Type::pointer(scalar, space);
    } else {
      if (space != AddrSpace::None) {
        fail("address-space qualifier on a value parameter");
      }
      type = Type::scalar(scalar);
    }
    const std::string name = expectIdentifier("parameter name");
    return Param{name, type};
  }

  // -- statements -----------------------------------------------------------

  std::unique_ptr<CompoundStmt> parseCompound() {
    expectPunct("{");
    pushScope();
    auto block = std::make_unique<CompoundStmt>();
    while (!peek().isPunct("}")) {
      if (peek().kind == TokenKind::EndOfFile) fail("unterminated block");
      block->append(parseStmt());
    }
    expectPunct("}");
    popScope();
    return block;
  }

  StmtPtr parseStmt() {
    const Token& t = peek();
    if (t.isPunct("{")) return parseCompound();
    if (t.isKeyword("if")) return parseIf();
    if (t.isKeyword("for")) return parseFor();
    if (t.isKeyword("while")) return parseWhile();
    if (t.isKeyword("return")) {
      advance();
      ExprPtr value;
      if (!peek().isPunct(";")) value = parseExpr();
      expectPunct(";");
      return std::make_unique<ReturnStmt>(std::move(value));
    }
    if (t.kind == TokenKind::Identifier && t.text == "break") {
      advance();
      expectPunct(";");
      return std::make_unique<BreakStmt>();
    }
    if (t.kind == TokenKind::Identifier && t.text == "continue") {
      advance();
      expectPunct(";");
      return std::make_unique<ContinueStmt>();
    }
    if (t.kind == TokenKind::Identifier && t.text == "barrier") {
      return parseBarrier();
    }
    if (peekIsTypeStart()) return parseDecl();
    return parseExprOrAssign();
  }

  StmtPtr parseBarrier() {
    advance();  // barrier
    expectPunct("(");
    int depth = 1;
    while (depth > 0) {
      const Token& t = advance();
      if (t.kind == TokenKind::EndOfFile) fail("unterminated barrier(...)");
      if (t.isPunct("(")) ++depth;
      if (t.isPunct(")")) --depth;
    }
    expectPunct(";");
    return std::make_unique<BarrierStmt>();
  }

  StmtPtr parseDecl() {
    AddrSpace space = AddrSpace::Private;
    bool sawLocal = false;
    while (true) {
      if (acceptKeyword("const") || acceptKeyword("__private")) continue;
      if (acceptKeyword("__local") || acceptKeyword("local")) {
        sawLocal = true;
        space = AddrSpace::Local;
        continue;
      }
      break;
    }
    const Scalar scalar = parseScalarType();
    if (scalar == Scalar::Void) fail("cannot declare a void variable");
    const std::string name = expectIdentifier("variable name");

    if (acceptPunct("[")) {
      // Array declaration: __local float tile[256]; or private scratch.
      if (peek().kind != TokenKind::IntLiteral) {
        fail("array size must be an integer literal");
      }
      const long long size = advance().intValue;
      if (size <= 0) fail("array size must be positive");
      expectPunct("]");
      expectPunct(";");
      const Type type = Type::pointer(scalar, space);
      auto decl = std::make_unique<DeclStmt>(name, type, nullptr);
      decl->setArraySize(size);
      declare(name, type);
      return decl;
    }
    if (sawLocal) fail("__local scalar variables are not supported");

    ExprPtr init;
    if (acceptPunct("=")) {
      init = parseExpr();
      init = coerce(std::move(init), Type::scalar(scalar));
    }
    expectPunct(";");
    const Type type = Type::scalar(scalar);
    declare(name, type);
    return std::make_unique<DeclStmt>(name, type, std::move(init));
  }

  StmtPtr parseIf() {
    expectKeyword("if");
    expectPunct("(");
    auto cond = parseExpr();
    expectPunct(")");
    auto thenBody = parseStmt();
    StmtPtr elseBody;
    if (acceptKeyword("else")) elseBody = parseStmt();
    return std::make_unique<IfStmt>(std::move(cond), std::move(thenBody),
                                    std::move(elseBody));
  }

  StmtPtr parseWhile() {
    expectKeyword("while");
    expectPunct("(");
    auto cond = parseExpr();
    expectPunct(")");
    auto body = parseStmt();
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body));
  }

  /// Only canonical loops are accepted:
  ///   for (int i = <init>; i <|<= <bound>; i++|i += <lit>) <stmt>
  StmtPtr parseFor() {
    expectKeyword("for");
    expectPunct("(");
    acceptKeyword("int");  // `for (i = ...` also allowed if i is declared
    const std::string var = expectIdentifier("loop variable");
    expectPunct("=");
    pushScope();
    declare(var, Type::intTy());
    auto init = parseExpr();
    expectPunct(";");

    const std::string condVar = expectIdentifier("loop variable in condition");
    if (condVar != var) {
      fail("non-canonical for loop: condition must test the loop variable");
    }
    bool inclusive = false;
    if (acceptPunct("<")) {
      inclusive = false;
    } else if (acceptPunct("<=")) {
      inclusive = true;
    } else {
      fail("non-canonical for loop: expected '<' or '<='");
    }
    auto bound = parseExpr();
    if (inclusive) {
      bound = std::make_unique<BinaryExpr>(BinaryOp::Add, std::move(bound),
                                           std::make_unique<IntLit>(1),
                                           Type::intTy());
    }
    expectPunct(";");

    const std::string stepVar = expectIdentifier("loop variable in step");
    if (stepVar != var) {
      fail("non-canonical for loop: step must update the loop variable");
    }
    long long step = 1;
    if (acceptPunct("++")) {
      step = 1;
    } else if (acceptPunct("+=")) {
      if (peek().kind != TokenKind::IntLiteral) {
        fail("for-loop step must be an integer literal");
      }
      step = advance().intValue;
      if (step <= 0) fail("for-loop step must be positive");
    } else {
      fail("non-canonical for loop: expected '++' or '+= <literal>'");
    }
    expectPunct(")");

    auto body = parseStmt();
    popScope();
    return std::make_unique<ForStmt>(var, std::move(init), std::move(bound),
                                     step, std::move(body));
  }

  StmtPtr parseExprOrAssign() {
    auto lhs = parseExpr();
    const Token& t = peek();

    auto requireLvalue = [&](const Expr& e) {
      if (e.kind() != ExprKind::VarRef && e.kind() != ExprKind::Index) {
        fail("left-hand side of assignment is not assignable");
      }
    };

    if (t.isPunct("=")) {
      advance();
      requireLvalue(*lhs);
      auto rhs = parseExpr();
      rhs = coerce(std::move(rhs), lhs->type());
      expectPunct(";");
      return std::make_unique<AssignStmt>(std::move(lhs), std::move(rhs));
    }

    struct CompoundOp {
      std::string_view spelling;
      BinaryOp op;
    };
    static constexpr CompoundOp kCompound[] = {
        {"+=", BinaryOp::Add}, {"-=", BinaryOp::Sub}, {"*=", BinaryOp::Mul},
        {"/=", BinaryOp::Div}, {"%=", BinaryOp::Mod}, {"&=", BinaryOp::BitAnd},
        {"|=", BinaryOp::BitOr},
    };
    for (const auto& c : kCompound) {
      if (t.isPunct(c.spelling)) {
        advance();
        requireLvalue(*lhs);
        auto rhs = parseExpr();
        expectPunct(";");
        auto lhsCopy = cloneExpr(*lhs);
        const Type resultType = lhs->type();
        rhs = coerce(std::move(rhs), resultType);
        auto value = std::make_unique<BinaryExpr>(
            c.op, std::move(lhsCopy), std::move(rhs), resultType);
        return std::make_unique<AssignStmt>(std::move(lhs), std::move(value));
      }
    }

    if (t.isPunct("++") || t.isPunct("--")) {
      const bool inc = t.isPunct("++");
      advance();
      requireLvalue(*lhs);
      expectPunct(";");
      auto lhsCopy = cloneExpr(*lhs);
      const Type resultType = lhs->type();
      auto value = std::make_unique<BinaryExpr>(
          inc ? BinaryOp::Add : BinaryOp::Sub, std::move(lhsCopy),
          std::make_unique<IntLit>(1), resultType);
      return std::make_unique<AssignStmt>(std::move(lhs), std::move(value));
    }

    expectPunct(";");
    return std::make_unique<ExprStmt>(std::move(lhs));
  }

  // -- expressions ----------------------------------------------------------

  /// Insert a cast if `e` does not already have type `to` (scalars only).
  ExprPtr coerce(ExprPtr e, Type to) {
    if (e->type() == to || to.isPointer() || e->type().isPointer()) return e;
    return std::make_unique<CastExpr>(to, std::move(e));
  }

  static Type arithmeticResult(const Type& a, const Type& b) {
    if (a.isFloat() || b.isFloat()) return Type::floatTy();
    if (a.scalarKind() == Scalar::UInt || b.scalarKind() == Scalar::UInt) {
      return Type::uintTy();
    }
    return Type::intTy();
  }

  ExprPtr parseExpr() { return parseTernary(); }

  ExprPtr parseTernary() {
    auto cond = parseBinary(0);
    if (!acceptPunct("?")) return cond;
    auto ifTrue = parseExpr();
    expectPunct(":");
    auto ifFalse = parseExpr();
    // Unify arm types so SelectExpr is well-typed.
    if (ifTrue->type() != ifFalse->type()) {
      const Type t = arithmeticResult(ifTrue->type(), ifFalse->type());
      ifTrue = coerce(std::move(ifTrue), t);
      ifFalse = coerce(std::move(ifFalse), t);
    }
    return std::make_unique<SelectExpr>(std::move(cond), std::move(ifTrue),
                                        std::move(ifFalse));
  }

  struct OpLevel {
    std::string_view spelling;
    BinaryOp op;
    int precedence;
  };

  static const OpLevel* matchBinaryOp(const Token& t) {
    static constexpr OpLevel kOps[] = {
        {"||", BinaryOp::LogicalOr, 1},  {"&&", BinaryOp::LogicalAnd, 2},
        {"|", BinaryOp::BitOr, 3},       {"^", BinaryOp::BitXor, 4},
        {"&", BinaryOp::BitAnd, 5},      {"==", BinaryOp::Eq, 6},
        {"!=", BinaryOp::Ne, 6},         {"<", BinaryOp::Lt, 7},
        {"<=", BinaryOp::Le, 7},         {">", BinaryOp::Gt, 7},
        {">=", BinaryOp::Ge, 7},         {"<<", BinaryOp::Shl, 8},
        {">>", BinaryOp::Shr, 8},        {"+", BinaryOp::Add, 9},
        {"-", BinaryOp::Sub, 9},         {"*", BinaryOp::Mul, 10},
        {"/", BinaryOp::Div, 10},        {"%", BinaryOp::Mod, 10},
    };
    if (t.kind != TokenKind::Punct) return nullptr;
    for (const auto& o : kOps) {
      if (t.text == o.spelling) return &o;
    }
    return nullptr;
  }

  ExprPtr parseBinary(int minPrecedence) {
    auto lhs = parseUnary();
    while (true) {
      const OpLevel* op = matchBinaryOp(peek());
      if (op == nullptr || op->precedence < minPrecedence) break;
      advance();
      auto rhs = parseBinary(op->precedence + 1);
      Type resultType;
      if (isComparison(op->op) || isLogical(op->op)) {
        resultType = Type::boolTy();
      } else if (op->op == BinaryOp::Shl || op->op == BinaryOp::Shr ||
                 op->op == BinaryOp::BitAnd || op->op == BinaryOp::BitOr ||
                 op->op == BinaryOp::BitXor || op->op == BinaryOp::Mod) {
        resultType = arithmeticResult(lhs->type(), rhs->type());
        if (resultType.isFloat() && op->op != BinaryOp::Mod) {
          fail("bitwise operator applied to float operands");
        }
      } else {
        resultType = arithmeticResult(lhs->type(), rhs->type());
      }
      lhs = std::make_unique<BinaryExpr>(op->op, std::move(lhs),
                                         std::move(rhs), resultType);
    }
    return lhs;
  }

  ExprPtr parseUnary() {
    if (acceptPunct("-")) {
      return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary());
    }
    if (acceptPunct("!")) {
      return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary());
    }
    if (acceptPunct("+")) return parseUnary();
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    auto e = parsePrimary();
    while (true) {
      if (peek().isPunct("[")) {
        advance();
        auto index = parseExpr();
        expectPunct("]");
        if (!e->type().isPointer()) fail("subscript on non-pointer value");
        e = std::make_unique<IndexExpr>(std::move(e), std::move(index));
        continue;
      }
      break;
    }
    return e;
  }

  ExprPtr parsePrimary() {
    const Token& t = peek();

    if (t.kind == TokenKind::IntLiteral) {
      advance();
      const bool isUnsigned = !t.text.empty() && t.text.back() == 'u';
      return std::make_unique<IntLit>(
          t.intValue, isUnsigned ? Type::uintTy() : Type::intTy());
    }
    if (t.kind == TokenKind::FloatLiteral) {
      advance();
      return std::make_unique<FloatLit>(t.floatValue);
    }

    if (t.isPunct("(")) {
      // Cast or parenthesized expression.
      const Token& after = peek(1);
      if (after.kind == TokenKind::Keyword &&
          (after.text == "int" || after.text == "uint" ||
           after.text == "unsigned" || after.text == "float" ||
           after.text == "bool")) {
        advance();  // (
        const Scalar scalar = parseScalarType();
        expectPunct(")");
        return std::make_unique<CastExpr>(Type::scalar(scalar), parseUnary());
      }
      advance();
      auto e = parseExpr();
      expectPunct(")");
      return e;
    }

    if (t.kind == TokenKind::Identifier) {
      // Builtin call?
      if (peek(1).isPunct("(")) {
        const std::string name = advance().text;
        const auto builtin = findBuiltin(name);
        if (!builtin.has_value()) {
          fail("call to unknown function '" + name +
               "' (user functions are not part of the subset)");
        }
        expectPunct("(");
        std::vector<ExprPtr> args;
        if (!peek().isPunct(")")) {
          do {
            args.push_back(parseExpr());
          } while (acceptPunct(","));
        }
        expectPunct(")");
        if (static_cast<int>(args.size()) != builtin->arity) {
          fail("builtin '" + name + "' expects " +
               std::to_string(builtin->arity) + " argument(s), got " +
               std::to_string(args.size()));
        }
        Type resultType;
        if (builtin->result == Scalar::Void) {
          resultType = args.empty() ? Type::intTy()
                                    : Type::scalar(args[0]->type().isPointer()
                                                       ? args[0]->type().element().scalarKind()
                                                       : args[0]->type().scalarKind());
        } else {
          resultType = Type::scalar(builtin->result);
        }
        // Math builtins that operate on float coerce their scalar args.
        if (builtin->cls == BuiltinClass::MathHeavy ||
            (builtin->cls == BuiltinClass::MathLight &&
             builtin->result == Scalar::Float)) {
          for (auto& a : args) {
            if (!a->type().isPointer()) {
              a = coerce(std::move(a), Type::floatTy());
            }
          }
        }
        return std::make_unique<CallExpr>(name, std::move(args), resultType);
      }

      const std::string name = advance().text;
      const Type* type = lookup(name);
      if (type == nullptr) fail("use of undeclared identifier '" + name + "'");
      return std::make_unique<VarRef>(name, *type);
    }

    fail("unexpected token '" + t.text + "' in expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<std::map<std::string, Type>> scopes_;
};

}  // namespace

std::unique_ptr<ir::Program> parseProgram(const std::string& source) {
  Parser parser(source);
  return parser.parseProgram();
}

std::unique_ptr<ir::KernelDecl> parseSingleKernel(const std::string& source) {
  auto program = parseProgram(source);
  TP_REQUIRE(program->kernels().size() == 1,
             "expected exactly one kernel, found "
                 << program->kernels().size());
  // Transfer ownership of the lone kernel out of the program.
  auto& kernels = const_cast<std::vector<std::unique_ptr<ir::KernelDecl>>&>(
      program->kernels());
  return std::move(kernels[0]);
}

}  // namespace tp::frontend
