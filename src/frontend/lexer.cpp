#include "frontend/lexer.hpp"

#include <array>
#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace tp::frontend {

namespace {

const std::array<std::string_view, 19> kKeywords = {
    "__kernel", "kernel",   "__global", "global", "__local",   "local",
    "__private", "const",   "void",     "int",    "uint",      "unsigned",
    "float",    "bool",     "if",       "else",   "for",       "while",
    "return",
};

// Multi-char punctuation, longest first so maximal munch works.
const std::array<std::string_view, 19> kMultiPunct = {
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=",  "/=",  "%=", "++", "--", "<<", ">>", "&=", "|=",
};

}  // namespace

bool isKeywordWord(std::string_view word) {
  for (const auto& k : kKeywords) {
    if (k == word) return true;
  }
  // `break` / `continue` / `barrier` are handled as identifiers-with-meaning
  // by the parser, but break/continue are reserved to avoid use as names.
  return word == "break" || word == "continue";
}

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  int column = 1;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments
    if (c == '/' && i + 1 < source.size()) {
      if (source[i + 1] == '/') {
        while (i < source.size() && source[i] != '\n') advance(1);
        continue;
      }
      if (source[i + 1] == '*') {
        const int startLine = line;
        const int startCol = column;
        advance(2);
        bool closed = false;
        while (i + 1 < source.size()) {
          if (source[i] == '*' && source[i + 1] == '/') {
            advance(2);
            closed = true;
            break;
          }
          advance(1);
        }
        if (!closed) {
          throw ParseError("unterminated block comment", startLine, startCol);
        }
        continue;
      }
    }

    Token tok;
    tok.line = line;
    tok.column = column;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[j])) ||
              source[j] == '_')) {
        ++j;
      }
      tok.text = std::string(source.substr(i, j - i));
      tok.kind = isKeywordWord(tok.text) && tok.text != "break" &&
                         tok.text != "continue"
                     ? TokenKind::Keyword
                     : TokenKind::Identifier;
      // break/continue stay identifiers kind-wise but are reserved; the
      // parser matches on spelling.
      advance(j - i);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t j = i;
      bool isFloat = false;
      while (j < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[j]))) {
        ++j;
      }
      if (j < source.size() && source[j] == '.') {
        isFloat = true;
        ++j;
        while (j < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[j]))) {
          ++j;
        }
      }
      if (j < source.size() && (source[j] == 'e' || source[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < source.size() && (source[k] == '+' || source[k] == '-')) ++k;
        if (k < source.size() &&
            std::isdigit(static_cast<unsigned char>(source[k]))) {
          isFloat = true;
          j = k;
          while (j < source.size() &&
                 std::isdigit(static_cast<unsigned char>(source[j]))) {
            ++j;
          }
        }
      }
      std::string text(source.substr(i, j - i));
      // Suffixes: f/F forces float, u/U marks unsigned int.
      bool isUnsigned = false;
      if (j < source.size() && (source[j] == 'f' || source[j] == 'F')) {
        isFloat = true;
        ++j;
      } else if (j < source.size() && (source[j] == 'u' || source[j] == 'U')) {
        isUnsigned = true;
        ++j;
      }
      tok.text = text;
      if (isFloat) {
        tok.kind = TokenKind::FloatLiteral;
        tok.floatValue = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::IntLiteral;
        tok.intValue = std::strtoll(text.c_str(), nullptr, 10);
        if (isUnsigned) tok.text += 'u';
      }
      advance(j - i);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Punctuation: try multi-char first.
    bool matched = false;
    for (const auto& p : kMultiPunct) {
      if (source.substr(i, p.size()) == p) {
        tok.kind = TokenKind::Punct;
        tok.text = std::string(p);
        advance(p.size());
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;

    static const std::string_view kSingle = "+-*/%<>=!&|^~?:;,.()[]{}";
    if (kSingle.find(c) != std::string_view::npos) {
      tok.kind = TokenKind::Punct;
      tok.text = std::string(1, c);
      advance(1);
      tokens.push_back(std::move(tok));
      continue;
    }

    throw ParseError(std::string("unexpected character '") + c + "'", line,
                     column);
  }

  Token eof;
  eof.kind = TokenKind::EndOfFile;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace tp::frontend
