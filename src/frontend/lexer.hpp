#pragma once

// Lexer for the OpenCL-C subset. Produces the full token stream up front
// (kernels are small); the parser indexes into it with one-token lookahead.

#include <string>
#include <string_view>
#include <vector>

namespace tp::frontend {

enum class TokenKind {
  Identifier,
  Keyword,
  IntLiteral,
  FloatLiteral,
  Punct,
  EndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;      ///< spelling ("for", "x", "42", "+=", ...)
  long long intValue = 0;
  double floatValue = 0.0;
  int line = 0;
  int column = 0;

  bool is(TokenKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool isPunct(std::string_view t) const { return is(TokenKind::Punct, t); }
  bool isKeyword(std::string_view t) const { return is(TokenKind::Keyword, t); }
};

/// Tokenize; throws tp::ParseError on bad input (unterminated comment,
/// stray character, malformed number).
std::vector<Token> tokenize(std::string_view source);

/// True if `word` is one of the subset's reserved words.
bool isKeywordWord(std::string_view word);

}  // namespace tp::frontend
