#include "frontend/builtins.hpp"

#include <array>

namespace tp::frontend {

namespace {

using ir::Scalar;

// Scalar::Void in `result` means "same scalar type as first argument".
const std::array<Builtin, 28> kBuiltins = {{
    {"get_global_id", 1, BuiltinClass::WorkItemQuery, Scalar::Int},
    {"get_local_id", 1, BuiltinClass::WorkItemQuery, Scalar::Int},
    {"get_group_id", 1, BuiltinClass::WorkItemQuery, Scalar::Int},
    {"get_global_size", 1, BuiltinClass::WorkItemQuery, Scalar::Int},
    {"get_local_size", 1, BuiltinClass::WorkItemQuery, Scalar::Int},
    {"get_num_groups", 1, BuiltinClass::WorkItemQuery, Scalar::Int},

    {"fabs", 1, BuiltinClass::MathLight, Scalar::Float},
    {"floor", 1, BuiltinClass::MathLight, Scalar::Float},
    {"ceil", 1, BuiltinClass::MathLight, Scalar::Float},
    {"fmin", 2, BuiltinClass::MathLight, Scalar::Float},
    {"fmax", 2, BuiltinClass::MathLight, Scalar::Float},
    {"min", 2, BuiltinClass::MathLight, Scalar::Void},
    {"max", 2, BuiltinClass::MathLight, Scalar::Void},
    {"abs", 1, BuiltinClass::MathLight, Scalar::Void},
    {"clamp", 3, BuiltinClass::MathLight, Scalar::Void},
    {"mad", 3, BuiltinClass::MathLight, Scalar::Float},
    {"fma", 3, BuiltinClass::MathLight, Scalar::Float},

    {"sqrt", 1, BuiltinClass::MathHeavy, Scalar::Float},
    {"native_sqrt", 1, BuiltinClass::MathHeavy, Scalar::Float},
    {"rsqrt", 1, BuiltinClass::MathHeavy, Scalar::Float},
    {"exp", 1, BuiltinClass::MathHeavy, Scalar::Float},
    {"native_exp", 1, BuiltinClass::MathHeavy, Scalar::Float},
    {"log", 1, BuiltinClass::MathHeavy, Scalar::Float},
    {"sin", 1, BuiltinClass::MathHeavy, Scalar::Float},
    {"cos", 1, BuiltinClass::MathHeavy, Scalar::Float},
    {"pow", 2, BuiltinClass::MathHeavy, Scalar::Float},

    {"atomic_add", 2, BuiltinClass::Atomic, Scalar::Int},
    {"atomic_inc", 1, BuiltinClass::Atomic, Scalar::Int},
}};

}  // namespace

std::optional<Builtin> findBuiltin(const std::string& name) {
  for (const auto& b : kBuiltins) {
    if (b.name == name) return b;
  }
  return std::nullopt;
}

std::vector<std::string> builtinNames() {
  std::vector<std::string> out;
  out.reserve(kBuiltins.size());
  for (const auto& b : kBuiltins) out.push_back(b.name);
  return out;
}

}  // namespace tp::frontend
