#pragma once

// A small column-typed table with CSV (de)serialization.
//
// Used as the storage format of the feature database (training records) and
// of benchmark outputs. Cells are stored as strings; typed accessors parse
// on demand and throw tp::IoError on malformed content. Tables read from
// CSV remember their source name and per-row line numbers, so structural
// errors (wrong column count, unterminated quote) and cell parse failures
// name the exact file:line instead of failing downstream.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tp::common {

class Table {
public:
  Table() = default;
  explicit Table(std::vector<std::string> columns);

  const std::vector<std::string>& columns() const noexcept { return columns_; }
  std::size_t numRows() const noexcept { return rows_.size(); }
  std::size_t numColumns() const noexcept { return columns_.size(); }

  /// Index of a named column; throws IoError if absent.
  std::size_t columnIndex(const std::string& name) const;
  bool hasColumn(const std::string& name) const;

  /// Append a row; must have exactly numColumns() cells.
  void addRow(std::vector<std::string> cells);

  const std::string& cell(std::size_t row, std::size_t col) const;
  const std::string& cell(std::size_t row, const std::string& column) const;
  double cellDouble(std::size_t row, const std::string& column) const;
  long long cellInt(std::size_t row, const std::string& column) const;

  void setCell(std::size_t row, const std::string& column, std::string value);

  /// Whole column as doubles.
  std::vector<double> columnDoubles(const std::string& column) const;

  /// RFC-4180-ish CSV: quotes fields containing separator/quote/newline.
  void writeCsv(std::ostream& os) const;
  void writeCsvFile(const std::string& path) const;
  /// Parse CSV; `source` names the input in error messages ("<csv>" when
  /// empty). Throws tp::IoError with source:line on malformed rows.
  static Table readCsv(std::istream& is, const std::string& source = "");
  static Table readCsvFile(const std::string& path);

  /// " (source:line)" provenance of a row read from CSV; empty for rows
  /// added programmatically. Used in cell parse error messages.
  std::string rowLocation(std::size_t row) const;

private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::string source_;  ///< name of the CSV input rows were read from
  std::vector<std::size_t> rowLines_;  ///< 1-based start line; 0 = not CSV
};

}  // namespace tp::common
