#pragma once

// Error handling primitives used across all taskpart libraries.
//
// Conventions (see DESIGN.md):
//  - Programming errors / violated invariants  -> TP_ASSERT (aborts in all
//    build types; simulator state would be meaningless after a violation).
//  - Recoverable, caller-visible failures (bad kernel source, malformed CSV,
//    unknown device name, ...) -> throw tp::Error via TP_THROW / TP_REQUIRE.

#include <sstream>
#include <stdexcept>
#include <string>

namespace tp {

/// Base exception for all recoverable taskpart errors.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by the frontend on malformed kernel source.
class ParseError : public Error {
public:
  ParseError(const std::string& message, int line, int column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

private:
  int line_;
  int column_;
};

/// Thrown when a model/database file cannot be read or has a bad schema.
class IoError : public Error {
public:
  using Error::Error;
};

namespace detail {

[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& message);

}  // namespace detail

}  // namespace tp

/// Hard invariant; aborts with a diagnostic. Always enabled.
#define TP_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::tp::detail::assertFail(#expr, __FILE__, __LINE__, "");       \
    }                                                                \
  } while (0)

/// Hard invariant with a streamed message: TP_ASSERT_MSG(x > 0, "x=" << x).
#define TP_ASSERT_MSG(expr, stream_expr)                             \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream tp_assert_os_;                              \
      tp_assert_os_ << stream_expr;                                  \
      ::tp::detail::assertFail(#expr, __FILE__, __LINE__,            \
                               tp_assert_os_.str());                 \
    }                                                                \
  } while (0)

/// Throw a tp::Error built from a stream expression.
#define TP_THROW(stream_expr)                 \
  do {                                        \
    std::ostringstream tp_throw_os_;          \
    tp_throw_os_ << stream_expr;              \
    throw ::tp::Error(tp_throw_os_.str());    \
  } while (0)

/// Recoverable precondition: throws tp::Error when violated.
#define TP_REQUIRE(expr, stream_expr)                        \
  do {                                                       \
    if (!(expr)) {                                           \
      std::ostringstream tp_req_os_;                         \
      tp_req_os_ << stream_expr;                             \
      throw ::tp::Error(tp_req_os_.str());                   \
    }                                                        \
  } while (0)
