#pragma once

// Fixed-size worker pool with a blocking parallelFor.
//
// The virtual OpenCL devices (src/ocl) execute work-groups on this pool in
// Compute mode. The pool is deliberately simple: static partitioning with
// atomic chunk stealing, which is plenty for the regular kernels in the
// suite and keeps behaviour easy to reason about.

#include <atomic>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace tp::common {

class ThreadPool {
public:
  /// numThreads == 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t numThreads() const noexcept { return workers_.size(); }

  /// Run fn(i) for i in [begin, end) across the pool; blocks until done.
  /// Exceptions from fn propagate (the first one observed is rethrown).
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t grain = 64);

  /// Enqueue a single task (fire and forget).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void waitIdle();

private:
  void workerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ TP_GUARDED_BY(mutex_);
  CondVar cv_;
  CondVar idleCv_;
  std::size_t active_ TP_GUARDED_BY(mutex_) = 0;
  bool stop_ TP_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool (lazily constructed, sized to hardware concurrency).
ThreadPool& globalThreadPool();

}  // namespace tp::common
