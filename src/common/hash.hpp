#pragma once

// FNV-1a hashing primitives, shared by the key hashers (serve's decision
// cache, adapt's refine keys) so hash constants and byte-folding logic
// live in exactly one place.

#include <cstddef>
#include <cstdint>

namespace tp::common {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnvBytes(std::uint64_t h, const void* data,
                              std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnvU64(std::uint64_t h, std::uint64_t v) {
  return fnvBytes(h, &v, sizeof(v));
}

}  // namespace tp::common
