#pragma once

// FNV-1a hashing primitives, shared by the key hashers (serve's decision
// cache, adapt's refine keys, fleet's gossip digests) so hash constants,
// byte-folding logic and the launch-key layout live in exactly one place.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace tp::common {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnvBytes(std::uint64_t h, const void* data,
                              std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnvU64(std::uint64_t h, std::uint64_t v) {
  return fnvBytes(h, &v, sizeof(v));
}

inline std::uint64_t fnvDouble(std::uint64_t h, double v) {
  return fnvU64(h, std::bit_cast<std::uint64_t>(v));
}

/// Fold a length-delimited string: the length participates in the hash,
/// so adjacent variable-length fields cannot alias ("ab"+"c" vs "a"+"bc").
inline std::uint64_t fnvString(std::uint64_t h, std::string_view s) {
  h = fnvU64(h, s.size());
  return fnvBytes(h, s.data(), s.size());
}

inline std::uint64_t fnvDoubles(std::uint64_t h,
                                const std::vector<double>& values) {
  h = fnvU64(h, values.size());
  for (const double v : values) h = fnvDouble(h, v);
  return h;
}

/// Hash of the shared (machine, program, quantized launch signature)
/// layout used by serve::DecisionKey and adapt::RefineKey. Callers fold
/// in any extra fields (e.g. the model version) on top.
inline std::uint64_t hashLaunchKey(std::string_view machine,
                                   std::string_view program,
                                   const std::vector<double>& signature) {
  std::uint64_t h = kFnvOffset;
  h = fnvString(h, machine);
  h = fnvString(h, program);
  h = fnvDoubles(h, signature);
  return h;
}

/// splitmix64 finalizer: full-avalanche mix so every output bit depends on
/// every input bit. FNV's low bits are weak under power-of-two masking;
/// the open-addressing decision cache masks the fingerprint directly, so
/// both fingerprint words pass through this.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// 128-bit key fingerprint. Two independently-seeded FNV-1a streams over
/// the same bytes, each avalanche-finalized; a collision requires both
/// streams to collide simultaneously. Used where the full key is too
/// expensive for the hot path (the serving decision cache, the refiner's
/// key table): readers compare fingerprints only, writers keep the full
/// key beside the table and verify it on insert.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint&) const = default;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.lo);  // already avalanched
  }
};

/// Incremental Fingerprint builder: fold fields in a fixed order, then
/// take(). Allocation-free; lives on the caller's stack.
class FingerprintBuilder {
public:
  static constexpr std::uint64_t kOffsetB = kFnvOffset ^ 0x9E3779B97F4A7C15ull;

  FingerprintBuilder& u64(std::uint64_t v) noexcept {
    a_ = fnvU64(a_, v);
    b_ = fnvU64(b_, v);
    return *this;
  }
  FingerprintBuilder& f64(double v) noexcept {
    return u64(std::bit_cast<std::uint64_t>(v));
  }
  FingerprintBuilder& str(std::string_view s) noexcept {
    a_ = fnvString(a_, s);
    b_ = fnvString(b_, s);
    return *this;
  }

  Fingerprint take() const noexcept {
    return Fingerprint{mix64(b_), mix64(a_)};
  }

private:
  std::uint64_t a_ = kFnvOffset;
  std::uint64_t b_ = kOffsetB;
};

}  // namespace tp::common
