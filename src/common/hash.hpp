#pragma once

// FNV-1a hashing primitives, shared by the key hashers (serve's decision
// cache, adapt's refine keys, fleet's gossip digests) so hash constants,
// byte-folding logic and the launch-key layout live in exactly one place.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace tp::common {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnvBytes(std::uint64_t h, const void* data,
                              std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnvU64(std::uint64_t h, std::uint64_t v) {
  return fnvBytes(h, &v, sizeof(v));
}

inline std::uint64_t fnvDouble(std::uint64_t h, double v) {
  return fnvU64(h, std::bit_cast<std::uint64_t>(v));
}

/// Fold a length-delimited string: the length participates in the hash,
/// so adjacent variable-length fields cannot alias ("ab"+"c" vs "a"+"bc").
inline std::uint64_t fnvString(std::uint64_t h, std::string_view s) {
  h = fnvU64(h, s.size());
  return fnvBytes(h, s.data(), s.size());
}

inline std::uint64_t fnvDoubles(std::uint64_t h,
                                const std::vector<double>& values) {
  h = fnvU64(h, values.size());
  for (const double v : values) h = fnvDouble(h, v);
  return h;
}

/// Hash of the shared (machine, program, quantized launch signature)
/// layout used by serve::DecisionKey and adapt::RefineKey. Callers fold
/// in any extra fields (e.g. the model version) on top.
inline std::uint64_t hashLaunchKey(std::string_view machine,
                                   std::string_view program,
                                   const std::vector<double>& signature) {
  std::uint64_t h = kFnvOffset;
  h = fnvString(h, machine);
  h = fnvString(h, program);
  h = fnvDoubles(h, signature);
  return h;
}

}  // namespace tp::common
