#pragma once

// Clang Thread Safety Analysis macros and annotated synchronization
// wrappers — the compile-time half of the repo's concurrency contracts.
//
// Every mutex-protected structure in the tree declares which capability
// guards which field (TP_GUARDED_BY) and which functions require a
// capability held (TP_REQUIRES). Under clang the declarations become
// real `-Wthread-safety` attributes, so a refactor that drops a lock or
// touches a guarded field from the wrong thread fails the CI clang build
// at compile time. Under gcc (the local tier-1 toolchain) they expand to
// nothing and cost nothing.
//
// Deliberately lock-free paths — seqlock cache slots, CAS-claimed inline
// lanes, striped counters, the interner's release-published reads — must
// not silently opt out of analysis. They carry a named
// TP_LOCK_FREE_AUDITED("...") marker whose reason strings name the TSan
// test that covers the path; scripts/lint_invariants.py rejects a bare
// TP_NO_THREAD_SAFETY_ANALYSIS anywhere outside this header and rejects
// an audit marker whose reason does not reference a test.
//
// Use the wrappers, not the std types: tp::common::Mutex / MutexLock /
// SharedMutex / SharedMutexLock(Shared) / CondVar. The lint engine
// forbids naked std::mutex / std::lock_guard outside this header so the
// capability graph stays complete.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by) && __has_attribute(capability)
#define TP_THREAD_SAFETY_ENABLED 1
#endif
#endif

#ifdef TP_THREAD_SAFETY_ENABLED
#define TP_TSA(x) __attribute__((x))
#else
#define TP_TSA(x)
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define TP_CAPABILITY(name) TP_TSA(capability(name))
/// Marks an RAII type that acquires on construction, releases on
/// destruction.
#define TP_SCOPED_CAPABILITY TP_TSA(scoped_lockable)

/// Field is protected by `mu`; reads and writes require `mu` held.
#define TP_GUARDED_BY(mu) TP_TSA(guarded_by(mu))
/// Pointer field whose *pointee* is protected by `mu`.
#define TP_PT_GUARDED_BY(mu) TP_TSA(pt_guarded_by(mu))

/// Callers must hold `mu` (exclusively) before calling.
#define TP_REQUIRES(...) TP_TSA(requires_capability(__VA_ARGS__))
/// Callers must hold `mu` at least shared before calling.
#define TP_REQUIRES_SHARED(...) TP_TSA(requires_shared_capability(__VA_ARGS__))
/// Function acquires `mu` and does not release it before returning.
#define TP_ACQUIRE(...) TP_TSA(acquire_capability(__VA_ARGS__))
#define TP_ACQUIRE_SHARED(...) TP_TSA(acquire_shared_capability(__VA_ARGS__))
/// Function releases `mu` held on entry.
#define TP_RELEASE(...) TP_TSA(release_capability(__VA_ARGS__))
#define TP_RELEASE_SHARED(...) TP_TSA(release_shared_capability(__VA_ARGS__))
/// Function must be called with `mu` NOT held (deadlock guard).
#define TP_EXCLUDES(...) TP_TSA(locks_excluded(__VA_ARGS__))
/// try_lock-style: acquired iff the return value equals `result`.
#define TP_TRY_ACQUIRE(...) TP_TSA(try_acquire_capability(__VA_ARGS__))
/// Return value is a reference to a `mu`-guarded object.
#define TP_RETURN_CAPABILITY(x) TP_TSA(lock_returned(x))

/// Blanket opt-out. Reserved for the wrapper internals in this header;
/// everywhere else use TP_LOCK_FREE_AUDITED so the opt-out carries an
/// auditable reason (enforced by scripts/lint_invariants.py rule R7).
#define TP_NO_THREAD_SAFETY_ANALYSIS TP_TSA(no_thread_safety_analysis)

/// Named opt-out for deliberately lock-free code. `reason` must be a
/// string literal naming the synchronization scheme and the TSan test
/// that exercises it, e.g.
///   TP_LOCK_FREE_AUDITED(
///       "seqlock slot; torn reads retried; TSan: test_serve_cache")
/// The reason is compile-time documentation only (discarded), but the
/// lint engine requires the "TSan:" tag so every opt-out names its
/// runtime coverage.
#define TP_LOCK_FREE_AUDITED(reason) TP_TSA(no_thread_safety_analysis)

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace tp::common {

/// std::mutex with the capability attribute, so fields can be declared
/// TP_GUARDED_BY(theMutex) and functions TP_REQUIRES(theMutex).
class TP_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TP_ACQUIRE() { mu_.lock(); }
  void unlock() TP_RELEASE() { mu_.unlock(); }
  bool try_lock() TP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// For CondVar only — the analysis never sees the raw mutex.
  std::mutex& native() TP_NO_THREAD_SAFETY_ANALYSIS { return mu_; }

private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (the repo's std::lock_guard/unique_lock
/// replacement). Supports early unlock()/relock for wait loops.
class TP_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mu) TP_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
    held_ = true;
  }
  ~MutexLock() TP_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() TP_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() TP_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

private:
  Mutex& mu_;
  bool held_ = false;
};

/// std::shared_mutex with the capability attribute (reader/writer).
class TP_CAPABILITY("shared_mutex") SharedMutex {
public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TP_ACQUIRE() { mu_.lock(); }
  void unlock() TP_RELEASE() { mu_.unlock(); }
  void lock_shared() TP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() TP_RELEASE_SHARED() { mu_.unlock_shared(); }

private:
  std::shared_mutex mu_;
};

/// Exclusive (writer) scoped lock over SharedMutex.
class TP_SCOPED_CAPABILITY SharedMutexLock {
public:
  explicit SharedMutexLock(SharedMutex& mu) TP_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedMutexLock() TP_RELEASE() { mu_.unlock(); }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

private:
  SharedMutex& mu_;
};

/// Shared (reader) scoped lock over SharedMutex.
class TP_SCOPED_CAPABILITY SharedMutexLockShared {
public:
  explicit SharedMutexLockShared(SharedMutex& mu) TP_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedMutexLockShared() TP_RELEASE() { mu_.unlock_shared(); }
  SharedMutexLockShared(const SharedMutexLockShared&) = delete;
  SharedMutexLockShared& operator=(const SharedMutexLockShared&) = delete;

private:
  SharedMutex& mu_;
};

/// Condition variable over Mutex. Waits take the Mutex directly (callers
/// hold it via MutexLock and pass the Mutex), so the analysis knows the
/// capability is held across the wait. No predicate overloads on
/// purpose: TSA analyzes lambda bodies as separate functions, which
/// turns `cv.wait(lk, [&]{ return guardedField; })` into a guarded-field
/// warning — write the explicit `while (!cond) cv.wait(mu);` loop
/// instead.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) TP_REQUIRES(mu) { waitImpl(mu); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      TP_REQUIRES(mu) {
    return waitUntilImpl(mu, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      TP_REQUIRES(mu) {
    return waitForImpl(mu, dur);
  }

private:
  // condition_variable_any unlocks/relocks the Mutex through its public
  // lock()/unlock(); the capability is held again when the wait returns,
  // which is exactly what TP_REQUIRES promises the caller. The internals
  // run with analysis off so the transient release is not reported.
  void waitImpl(Mutex& mu) TP_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  template <class Clock, class Duration>
  std::cv_status waitUntilImpl(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      TP_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline);
  }

  template <class Rep, class Period>
  std::cv_status waitForImpl(Mutex& mu,
                             const std::chrono::duration<Rep, Period>& dur)
      TP_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, dur);
  }

  std::condition_variable_any cv_;
};

}  // namespace tp::common
