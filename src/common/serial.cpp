#include "common/serial.hpp"

#include "common/error.hpp"

namespace tp::common {

void WireWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void WireWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::str(std::string_view s) {
  TP_REQUIRE(s.size() <= UINT32_MAX, "wire: string too long to encode");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void WireWriter::doubles(const std::vector<double>& values) {
  TP_REQUIRE(values.size() <= UINT32_MAX, "wire: vector too long to encode");
  u32(static_cast<std::uint32_t>(values.size()));
  for (const double v : values) f64(v);
}

const unsigned char* WireReader::need(std::size_t n) {
  TP_REQUIRE(n <= data_.size() - pos_,
             "wire: truncated input (need " << n << " bytes at offset "
                                            << pos_ << " of " << data_.size()
                                            << ")");
  const auto* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t WireReader::u8() { return *need(1); }

std::uint16_t WireReader::u16() {
  const auto* p = need(2);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::u32() {
  const auto* p = need(4);
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t WireReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  const auto* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::uint32_t WireReader::checkedCount(std::uint32_t n,
                                       std::size_t minBytesPerElement) {
  TP_REQUIRE(static_cast<std::size_t>(n) * minBytesPerElement <= remaining(),
             "wire: truncated sequence (claims "
                 << n << " elements of >= " << minBytesPerElement
                 << " bytes, " << remaining() << " bytes left)");
  return n;
}

std::vector<double> WireReader::doubles() {
  // Each element needs 8 bytes: reject absurd counts before reserving.
  const std::uint32_t n = checkedCount(u32(), 8);
  std::vector<double> values;
  values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) values.push_back(f64());
  return values;
}

void WireReader::expectEnd() const {
  TP_REQUIRE(atEnd(), "wire: " << remaining()
                               << " trailing bytes after the last field");
}

}  // namespace tp::common
