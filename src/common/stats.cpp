#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tp::common {

double mean(const std::vector<double>& xs) {
  TP_ASSERT(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(const std::vector<double>& xs) {
  TP_ASSERT(!xs.empty());
  double s = 0.0;
  for (double x : xs) {
    TP_ASSERT_MSG(x > 0.0, "geomean requires positive values, got " << x);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  TP_ASSERT(!xs.empty());
  TP_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  // Multiply before dividing: p/100 is not exactly representable for most
  // p (e.g. 0.95), and `p / 100.0 * (n-1)` lands a hair *below* integer
  // ranks — p95 of 21 samples interpolated between ranks 18 and 19
  // instead of returning xs[19] exactly. p * (n-1) / 100 is exact
  // whenever p*(n-1) is a multiple of 100.
  const double rank = p * static_cast<double>(xs.size() - 1) / 100.0;
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double minOf(const std::vector<double>& xs) {
  TP_ASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double maxOf(const std::vector<double>& xs) {
  TP_ASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  TP_ASSERT(xs.size() == ys.size());
  TP_ASSERT(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace tp::common
