#pragma once

// Wire serialization: a minimal, explicitly little-endian binary format
// shared by everything that puts structured state on a wire or on disk
// (fleet gossip messages, replica snapshots). The encoding is
// position-based — writer and reader must agree on field order — and the
// reader bounds-checks every access, so truncated or corrupt input
// surfaces as tp::Error instead of undefined behavior. Byte order is
// fixed by shifting (not memcpy), so encoded bytes are portable across
// hosts.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tp::common {

class WireWriter {
public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);
  void doubles(const std::vector<double>& values);

  std::size_t size() const noexcept { return buf_.size(); }
  const std::string& data() const noexcept { return buf_; }
  std::string take() { return std::move(buf_); }

private:
  std::string buf_;
};

class WireReader {
public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str();
  std::vector<double> doubles();

  /// Validate a decoded element count against the bytes actually left:
  /// each of the `n` elements must need at least `minBytesPerElement`
  /// more input, so a hostile length prefix fails here instead of
  /// turning the following reserve() into an allocation bomb. Every
  /// decode loop must size its reserve() through this (lint rule R3).
  std::uint32_t checkedCount(std::uint32_t n, std::size_t minBytesPerElement);

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool atEnd() const noexcept { return pos_ == data_.size(); }
  /// Throws tp::Error unless every byte has been consumed.
  void expectEnd() const;

private:
  const unsigned char* need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace tp::common
