#include "common/thread_pool.hpp"

#include <exception>

#include "common/error.hpp"

namespace tp::common {

ThreadPool::ThreadPool(std::size_t numThreads) {
  if (numThreads == 0) {
    numThreads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(numThreads);
  for (std::size_t i = 0; i < numThreads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idleCv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TP_ASSERT(!stop_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  if (begin >= end) return;
  TP_ASSERT(grain > 0);
  const std::size_t total = end - begin;
  if (total <= grain || workers_.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Atomic chunk dispenser: workers grab [next, next+grain) slices.
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  auto pending = std::make_shared<std::atomic<std::size_t>>(0);
  auto firstError = std::make_shared<std::mutex>();
  auto error = std::make_shared<std::exception_ptr>();
  std::mutex doneMutex;
  std::condition_variable doneCv;
  bool done = false;

  const std::size_t numTasks =
      std::min(workers_.size(), (total + grain - 1) / grain);
  pending->store(numTasks);

  auto body = [=, &doneMutex, &doneCv, &done] {
    try {
      while (true) {
        const std::size_t lo = next->fetch_add(grain);
        if (lo >= end) break;
        const std::size_t hi = std::min(lo + grain, end);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(*firstError);
      if (!*error) *error = std::current_exception();
      // Drain the dispenser so other workers stop promptly.
      next->store(end);
    }
    if (pending->fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(doneMutex);
      done = true;
      doneCv.notify_all();
    }
  };

  for (std::size_t t = 0; t < numTasks; ++t) submit(body);
  {
    std::unique_lock<std::mutex> lock(doneMutex);
    doneCv.wait(lock, [&] { return done; });
  }
  if (*error) std::rethrow_exception(*error);
}

ThreadPool& globalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tp::common
