#include "common/thread_pool.hpp"

#include <exception>

#include "common/error.hpp"

namespace tp::common {

ThreadPool::ThreadPool(std::size_t numThreads) {
  if (numThreads == 0) {
    numThreads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(numThreads);
  for (std::size_t i = 0; i < numThreads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idleCv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    TP_ASSERT(!stop_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::waitIdle() {
  MutexLock lock(mutex_);
  while (!(tasks_.empty() && active_ == 0)) idleCv_.wait(mutex_);
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  if (begin >= end) return;
  TP_ASSERT(grain > 0);
  const std::size_t total = end - begin;
  if (total <= grain || workers_.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Atomic chunk dispenser: workers grab [next, next+grain) slices. The
  // completion latch is a heap-shared state block so a worker finishing
  // after parallelFor's frame would be gone (it never is — the wait below
  // holds the frame — but the shared ownership makes that independent of
  // scheduling) still touches live memory.
  struct Latch {
    Mutex mutex;
    CondVar cv;
    bool done TP_GUARDED_BY(mutex) = false;
    std::exception_ptr error TP_GUARDED_BY(mutex);
  };
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  auto pending = std::make_shared<std::atomic<std::size_t>>(0);
  auto latch = std::make_shared<Latch>();

  const std::size_t numTasks =
      std::min(workers_.size(), (total + grain - 1) / grain);
  // Happens-before into the workers is carried by submit()'s queue mutex,
  // so the latch seed needs no ordering of its own.
  pending->store(numTasks, std::memory_order_relaxed);

  auto body = [=] {
    try {
      while (true) {
        // Pure index dispenser: the claimed range carries no data other
        // workers must observe, only mutual exclusion of the counter.
        const std::size_t lo = next->fetch_add(grain, std::memory_order_relaxed);
        if (lo >= end) break;
        const std::size_t hi = std::min(lo + grain, end);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    } catch (...) {
      MutexLock lock(latch->mutex);
      if (!latch->error) latch->error = std::current_exception();
      // Drain the dispenser so other workers stop promptly. Relaxed: any
      // worker that misses this value just runs one more empty slice check.
      next->store(end, std::memory_order_relaxed);
    }
    // acq_rel: each worker's release publishes its fn(i) effects into the
    // latch word; the final decrement's acquire collects them all, so the
    // caller returning from parallelFor observes every iteration.
    if (pending->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(latch->mutex);
      latch->done = true;
      latch->cv.notify_all();
    }
  };

  for (std::size_t t = 0; t < numTasks; ++t) submit(body);
  std::exception_ptr error;
  {
    MutexLock lock(latch->mutex);
    while (!latch->done) latch->cv.wait(latch->mutex);
    error = latch->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& globalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tp::common
