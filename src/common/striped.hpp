#pragma once

// Striped (per-thread) accumulators for write-hot, read-rare statistics.
//
// A single shared counter serializes every writer on one cache line; a
// mutex-guarded block serializes them on a lock. Striping gives each
// thread its own cache-line-padded slot (threads are assigned a stable
// ordinal at first use, round-robin over the stripe count), so writers
// touch only their stripe with relaxed atomic adds and never contend
// unless more threads than stripes exist. Readers sum every stripe —
// each field is read atomically, but a concurrent writer may land
// between two field reads, so multi-field snapshots are "racy but
// per-field exact": totals are exact once writers quiesce.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace tp::common {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Stable small ordinal for the calling thread (assigned on first call,
/// process-wide). Never reused; long-lived thread churn wraps stripes
/// around, which only costs contention, never correctness.
inline std::size_t threadOrdinal() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

inline std::size_t threadStripe(std::size_t numStripes) noexcept {
  return threadOrdinal() % numStripes;
}

/// Default stripe count: enough that typical thread pools do not collide.
inline std::size_t defaultStripes() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t n = hw == 0 ? 16 : 2 * static_cast<std::size_t>(hw);
  return n < 16 ? 16 : (n > 64 ? 64 : n);
}

/// Relaxed fetch-add for atomic doubles via CAS (std::atomic<double>::
/// fetch_add is C++20 but patchy across standard libraries).
inline void atomicAdd(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

template <typename T>
struct alignas(kCacheLineBytes) CachePadded {
  T value{};
};

/// Spin-claim a seqlock word: CAS it from even (stable) to odd (writer
/// inside) and return the even value. Critical sections guarded this way
/// must be short — claimants spin. Release with seqRelease(), which
/// publishes the mutations and leaves the word even again.
inline std::uint32_t seqClaim(std::atomic<std::uint32_t>& seq) noexcept
    TP_LOCK_FREE_AUDITED(
        "seqlock claim: CAS even->odd spin, acq_rel orders the critical "
        "section; TSan: test_serve LatencyRecorder.SnapshotRacesWithWriters"
        "Cleanly") {
  for (;;) {
    std::uint32_t s = seq.load(std::memory_order_relaxed);
    if ((s & 1u) == 0 &&
        seq.compare_exchange_weak(s, s + 1, std::memory_order_acq_rel)) {
      return s;
    }
  }
}

inline void seqRelease(std::atomic<std::uint32_t>& seq,
                       std::uint32_t claimed) noexcept
    TP_LOCK_FREE_AUDITED(
        "seqlock release: publishes the claimed section with a release "
        "store; TSan: test_serve LatencyRecorder.SnapshotRacesWithWriters"
        "Cleanly") {
  seq.store(claimed + 2, std::memory_order_release);
}

/// RAII claim of a CAS busy flag (0 = free, 1 = claimed). Construction
/// attempts one claim; check claimed() before touching the protected
/// state. The destructor releases, so any exception thrown inside the
/// critical section leaves the flag free instead of leaking the claim —
/// the invariant lint rule A3 enforces for every claim/release section.
/// Call release() explicitly where the protocol wants the flag dropped
/// before trailing work (it is idempotent; the destructor then no-ops).
class ClaimGuard {
public:
  explicit ClaimGuard(std::atomic<std::uint32_t>& flag) noexcept
      TP_LOCK_FREE_AUDITED(
          "single CAS 0->1 claim attempt, acq_rel so the critical section "
          "is ordered against the previous owner's release; TSan: "
          "test_serve PartitionService.ConcurrentClientsGetConsistent"
          "Decisions")
      : flag_(&flag) {
    std::uint32_t expected = 0;
    claimed_ = flag.load(std::memory_order_relaxed) == 0 &&
               flag.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel);
  }
  ClaimGuard(const ClaimGuard&) = delete;
  ClaimGuard& operator=(const ClaimGuard&) = delete;
  ClaimGuard(ClaimGuard&& other) noexcept
      : flag_(other.flag_), claimed_(other.claimed_) {
    other.claimed_ = false;
  }
  ClaimGuard& operator=(ClaimGuard&&) = delete;
  ~ClaimGuard() { release(); }

  bool claimed() const noexcept { return claimed_; }

  void release() noexcept
      TP_LOCK_FREE_AUDITED(
          "release store of 0 publishes the critical section to the next "
          "claimant's acq_rel CAS; idempotent; TSan: test_serve "
          "PartitionService.ConcurrentClientsGetConsistentDecisions") {
    if (claimed_) {
      flag_->store(0, std::memory_order_release);
      claimed_ = false;
    }
  }

private:
  std::atomic<std::uint32_t>* flag_;
  bool claimed_ = false;
};

/// Monotonic counter, striped per thread. add() is a relaxed atomic add on
/// the caller's stripe; total() sums all stripes.
class StripedCounter {
public:
  explicit StripedCounter(std::size_t stripes = 0)
      : stripes_(stripes == 0 ? defaultStripes() : stripes) {}

  void add(std::uint64_t n = 1) noexcept
      TP_LOCK_FREE_AUDITED(
          "relaxed add on the caller's own stripe; monotonic counter, "
          "per-field exact on read; TSan: test_serve "
          "DecisionCacheContention.CountersAndCapacityStayConsistent") {
    stripes_[threadStripe(stripes_.size())].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

private:
  std::vector<CachePadded<std::atomic<std::uint64_t>>> stripes_;
};

}  // namespace tp::common
