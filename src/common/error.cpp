#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace tp::detail {

void assertFail(const char* expr, const char* file, int line,
                const std::string& message) {
  std::fprintf(stderr, "taskpart: assertion failed: %s at %s:%d%s%s\n", expr,
               file, line, message.empty() ? "" : ": ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tp::detail
