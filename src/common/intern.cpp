#include "common/intern.hpp"

#include "common/error.hpp"
#include "common/hash.hpp"

namespace tp::common {

namespace {

std::size_t tableSizeFor(std::size_t capacity) {
  // Keep the load factor at or below 1/2 so linear probes stay short.
  std::size_t n = 16;
  while (n < capacity * 2) n <<= 1;
  return n;
}

}  // namespace

PairInterner::PairInterner(std::size_t capacity, char joiner)
    : capacity_(capacity),
      joiner_(joiner),
      mask_(tableSizeFor(capacity) - 1),
      slots_(std::make_unique<Slot[]>(mask_ + 1)),
      entries_(std::make_unique<Entry[]>(capacity)) {
  TP_REQUIRE(capacity_ > 0, "PairInterner: capacity must be > 0");
  TP_REQUIRE(capacity_ < kInvalid, "PairInterner: capacity too large");
}

std::uint64_t PairInterner::pairHash(std::string_view first,
                                     std::string_view head,
                                     std::string_view tail,
                                     bool split) const noexcept {
  // Identical byte stream for the split and joined forms: the second part
  // is hashed as (length, head bytes, joiner, tail bytes) so
  // find(a, h, t) == find(a, h + joiner + t) without concatenating.
  std::uint64_t h = kFnvOffset;
  h = fnvString(h, first);
  const std::size_t secondLen = head.size() + (split ? 1 + tail.size() : 0);
  h = fnvU64(h, secondLen);
  h = fnvBytes(h, head.data(), head.size());
  if (split) {
    h = fnvBytes(h, &joiner_, 1);
    h = fnvBytes(h, tail.data(), tail.size());
  }
  h = mix64(h);
  return h == 0 ? 1 : h;  // 0 is the empty-slot sentinel
}

bool PairInterner::equals(const Entry& e, std::string_view first,
                          std::string_view head, std::string_view tail,
                          bool split) const noexcept {
  if (e.first != first) return false;
  if (!split) return e.second == head;
  const std::string_view second = e.second;
  return second.size() == head.size() + 1 + tail.size() &&
         second.substr(0, head.size()) == head &&
         second[head.size()] == joiner_ &&
         second.substr(head.size() + 1) == tail;
}

std::uint32_t PairInterner::findHashed(std::uint64_t hash,
                                       std::string_view first,
                                       std::string_view head,
                                       std::string_view tail,
                                       bool split) const noexcept {
  for (std::size_t i = hash & mask_;; i = (i + 1) & mask_) {
    const Slot& slot = slots_[i];
    const std::uint64_t h = slot.hash.load(std::memory_order_acquire);
    if (h == 0) return kInvalid;  // slots are never removed: chain ends here
    if (h == hash) {
      const std::uint32_t id = slot.id.load(std::memory_order_relaxed);
      // The release store of `hash` happened after the entry was written,
      // so the acquire load above makes the entry visible.
      if (equals(entries_[id], first, head, tail, split)) return id;
    }
  }
}

std::uint32_t PairInterner::find(std::string_view first,
                                 std::string_view second) const noexcept {
  return findHashed(pairHash(first, second, {}, false), first, second, {},
                    false);
}

std::uint32_t PairInterner::find(std::string_view first,
                                 std::string_view secondHead,
                                 std::string_view secondTail) const noexcept {
  return findHashed(pairHash(first, secondHead, secondTail, true), first,
                    secondHead, secondTail, true);
}

std::uint32_t PairInterner::internHashed(std::uint64_t hash,
                                         std::string_view first,
                                         std::string_view head,
                                         std::string_view tail, bool split) {
  if (const std::uint32_t id = findHashed(hash, first, head, tail, split);
      id != kInvalid) {
    return id;
  }
  MutexLock lock(insertMutex_);
  // Re-check under the lock: another thread may have interned it between
  // the lock-free miss above and our acquisition.
  if (const std::uint32_t id = findHashed(hash, first, head, tail, split);
      id != kInvalid) {
    return id;
  }
  const std::size_t n = size_.load(std::memory_order_relaxed);
  if (n >= capacity_) {
    fullRejections_.fetch_add(1, std::memory_order_relaxed);
    return kInvalid;
  }
  const auto id = static_cast<std::uint32_t>(n);
  Entry& entry = entries_[id];
  entry.first.assign(first);
  if (split) {
    entry.second.reserve(head.size() + 1 + tail.size());
    entry.second.assign(head);
    entry.second.push_back(joiner_);
    entry.second.append(tail);
  } else {
    entry.second.assign(head);
  }
  std::size_t i = hash & mask_;
  while (slots_[i].hash.load(std::memory_order_relaxed) != 0) {
    i = (i + 1) & mask_;  // load factor <= 1/2: an empty slot always exists
  }
  slots_[i].id.store(id, std::memory_order_relaxed);
  slots_[i].hash.store(hash, std::memory_order_release);
  size_.store(n + 1, std::memory_order_release);
  return id;
}

std::uint32_t PairInterner::intern(std::string_view first,
                                   std::string_view second) {
  return internHashed(pairHash(first, second, {}, false), first, second, {},
                      false);
}

std::uint32_t PairInterner::intern(std::string_view first,
                                   std::string_view secondHead,
                                   std::string_view secondTail) {
  return internHashed(pairHash(first, secondHead, secondTail, true), first,
                      secondHead, secondTail, true);
}

const std::string& PairInterner::first(std::uint32_t id) const {
  TP_REQUIRE(id < size(), "PairInterner: id " << id << " out of range");
  return entries_[id].first;
}

const std::string& PairInterner::second(std::uint32_t id) const {
  TP_REQUIRE(id < size(), "PairInterner: id " << id << " out of range");
  return entries_[id].second;
}

}  // namespace tp::common
