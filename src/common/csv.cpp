#include "common/csv.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace tp::common {

namespace {

bool needsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void writeField(std::ostream& os, const std::string& s) {
  if (!needsQuoting(s)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

enum class RecordStatus { Ok, Eof, UnterminatedQuote };

/// Parse one CSV record (handles quoted fields spanning lines). `line`
/// advances past every newline consumed, including those inside quotes.
RecordStatus readRecord(std::istream& is, std::vector<std::string>& fields,
                        std::size_t& line) {
  fields.clear();
  std::string field;
  bool inQuotes = false;
  bool sawAnything = false;
  int c;
  while ((c = is.get()) != EOF) {
    sawAnything = true;
    const char ch = static_cast<char>(c);
    if (ch == '\n') ++line;
    if (inQuotes) {
      if (ch == '"') {
        if (is.peek() == '"') {
          field.push_back('"');
          is.get();
        } else {
          inQuotes = false;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"') {
      inQuotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\r') {
      // tolerate CRLF
    } else if (ch == '\n') {
      fields.push_back(std::move(field));
      return RecordStatus::Ok;
    } else {
      field.push_back(ch);
    }
  }
  if (inQuotes) return RecordStatus::UnterminatedQuote;
  if (!sawAnything) return RecordStatus::Eof;
  fields.push_back(std::move(field));
  return RecordStatus::Ok;
}

}  // namespace

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  TP_REQUIRE(!columns_.empty(), "Table requires at least one column");
}

std::size_t Table::columnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  throw IoError("Table: no such column: " + name);
}

bool Table::hasColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c == name) return true;
  }
  return false;
}

void Table::addRow(std::vector<std::string> cells) {
  TP_REQUIRE(cells.size() == columns_.size(),
             "Table::addRow: expected " << columns_.size() << " cells, got "
                                        << cells.size());
  rows_.push_back(std::move(cells));
  rowLines_.push_back(0);
}

std::string Table::rowLocation(std::size_t row) const {
  if (row >= rowLines_.size() || rowLines_[row] == 0) return "";
  return " (" + source_ + ":" + std::to_string(rowLines_[row]) + ")";
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  TP_ASSERT(row < rows_.size() && col < columns_.size());
  return rows_[row][col];
}

const std::string& Table::cell(std::size_t row,
                               const std::string& column) const {
  return cell(row, columnIndex(column));
}

double Table::cellDouble(std::size_t row, const std::string& column) const {
  const std::string& s = cell(row, column);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw IoError("Table: cell is not a double: '" + s + "' in column " +
                  column + rowLocation(row));
  }
  return v;
}

long long Table::cellInt(std::size_t row, const std::string& column) const {
  const std::string& s = cell(row, column);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw IoError("Table: cell is not an integer: '" + s + "' in column " +
                  column + rowLocation(row));
  }
  return v;
}

void Table::setCell(std::size_t row, const std::string& column,
                    std::string value) {
  TP_ASSERT(row < rows_.size());
  rows_[row][columnIndex(column)] = std::move(value);
}

std::vector<double> Table::columnDoubles(const std::string& column) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out.push_back(cellDouble(r, column));
  }
  return out;
}

void Table::writeCsv(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ',';
    writeField(os, columns_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      writeField(os, row[i]);
    }
    os << '\n';
  }
}

void Table::writeCsvFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for writing: " + path);
  writeCsv(os);
  if (!os) throw IoError("write failed: " + path);
}

Table Table::readCsv(std::istream& is, const std::string& source) {
  const std::string name = source.empty() ? std::string("<csv>") : source;
  std::size_t line = 1;
  std::size_t recordLine = line;
  std::vector<std::string> fields;

  auto next = [&]() -> RecordStatus {
    recordLine = line;
    const RecordStatus status = readRecord(is, fields, line);
    if (status == RecordStatus::UnterminatedQuote) {
      throw IoError(name + ":" + std::to_string(recordLine) +
                    ": unterminated quoted field");
    }
    return status;
  };

  if (next() == RecordStatus::Eof) throw IoError(name + ": empty input");
  Table t(fields);
  t.source_ = name;
  while (next() == RecordStatus::Ok) {
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != t.columns_.size()) {
      throw IoError(name + ":" + std::to_string(recordLine) + ": expected " +
                    std::to_string(t.columns_.size()) + " columns, got " +
                    std::to_string(fields.size()));
    }
    t.rows_.push_back(fields);
    t.rowLines_.push_back(recordLine);
  }
  return t;
}

Table Table::readCsvFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  return readCsv(is, path);
}

}  // namespace tp::common
