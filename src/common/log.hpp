#pragma once

// Minimal leveled logger. Thread-safe, writes to stderr.
// Level is process-global; benchmarks lower it to Warn to keep output clean.

#include <sstream>
#include <string>

namespace tp::common {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, ErrorLevel = 4, Off = 5 };

/// Set the global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one log record (used by the TP_LOG macro; callable directly too).
void logMessage(LogLevel level, const std::string& message);

const char* logLevelName(LogLevel level);

}  // namespace tp::common

#define TP_LOG(level, stream_expr)                                      \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::tp::common::logLevel())) {                   \
      std::ostringstream tp_log_os_;                                    \
      tp_log_os_ << stream_expr;                                        \
      ::tp::common::logMessage(level, tp_log_os_.str());                \
    }                                                                   \
  } while (0)

#define TP_INFO(stream_expr) TP_LOG(::tp::common::LogLevel::Info, stream_expr)
#define TP_WARN(stream_expr) TP_LOG(::tp::common::LogLevel::Warn, stream_expr)
#define TP_DEBUG(stream_expr) TP_LOG(::tp::common::LogLevel::Debug, stream_expr)
