#pragma once

// Minimal leveled logger. Thread-safe, writes to stderr and retains a
// bounded ring of recent records for the obs exposition (the tp::obs
// registry includes recentLogRecords() in its JSON dump, so a metrics
// snapshot carries the log context that led up to it).
// Level is process-global; benchmarks lower it to Warn to keep output clean.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/annotations.hpp"

namespace tp::common {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, ErrorLevel = 4, Off = 5 };

namespace detail {
/// The sink lock: serializes stderr writes (whole-message atomicity) and
/// guards the recent-events ring. Exposed only so the sink entry points
/// can carry TP_EXCLUDES — under the clang TSA build, code that logs
/// while holding it (i.e. logs from inside the sink) fails to compile.
extern Mutex logSinkMutex;
}  // namespace detail

/// Set the global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one log record (used by the TP_LOG macro; callable directly too).
void logMessage(LogLevel level, const std::string& message)
    TP_EXCLUDES(detail::logSinkMutex);

const char* logLevelName(LogLevel level);

/// One retained record of the recent-events ring. `seq` increases
/// monotonically across the process (a monotonic sequence, not a
/// timestamp: common sits below obs/clock.hpp, and the obs dump pairs
/// the tap with trace timestamps anyway).
struct LogRecord {
  LogLevel level = LogLevel::Info;
  std::uint64_t seq = 0;
  std::string message;
};

/// Resize the recent-events ring (default 256 records; 0 disables
/// capture and drops the retained records).
void setLogCaptureCapacity(std::size_t capacity)
    TP_EXCLUDES(detail::logSinkMutex);

/// Oldest-first copy of the retained recent records.
std::vector<LogRecord> recentLogRecords() TP_EXCLUDES(detail::logSinkMutex);

}  // namespace tp::common

#define TP_LOG(level, stream_expr)                                      \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::tp::common::logLevel())) {                   \
      std::ostringstream tp_log_os_;                                    \
      tp_log_os_ << stream_expr;                                        \
      ::tp::common::logMessage(level, tp_log_os_.str());                \
    }                                                                   \
  } while (0)

#define TP_INFO(stream_expr) TP_LOG(::tp::common::LogLevel::Info, stream_expr)
#define TP_WARN(stream_expr) TP_LOG(::tp::common::LogLevel::Warn, stream_expr)
#define TP_DEBUG(stream_expr) TP_LOG(::tp::common::LogLevel::Debug, stream_expr)
