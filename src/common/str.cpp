#include "common/str.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace tp::common {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string formatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string withThousands(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

}  // namespace tp::common
