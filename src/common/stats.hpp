#pragma once

// Descriptive statistics used by benchmark harnesses and model evaluation.

#include <cstddef>
#include <vector>

namespace tp::common {

double mean(const std::vector<double>& xs);
double geomean(const std::vector<double>& xs);  ///< xs must be all-positive
double stddev(const std::vector<double>& xs);   ///< sample stddev (n-1)
double median(std::vector<double> xs);          ///< by value: sorts a copy
/// Linear-interpolated percentile, p in [0,100].
double percentile(std::vector<double> xs, double p);
double minOf(const std::vector<double>& xs);
double maxOf(const std::vector<double>& xs);

/// Streaming mean/variance (Welford). Numerically stable.
class RunningStats {
public:
  void add(double x);
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const;  ///< sample variance; 0 when n < 2
  double stddev() const;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation coefficient; requires equal sizes and n >= 2.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace tp::common
