#pragma once

// Deterministic random number generation.
//
// Everything stochastic in taskpart (forest bagging, MLP init, synthetic
// workload data, noise injection) draws from tp::common::Rng so that runs
// are reproducible bit-for-bit from a seed. The generator is xoshiro256**,
// which is fast, has 256-bit state and passes BigCrush.

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace tp::common {

class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialize state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    TP_ASSERT(n > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    TP_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box-Muller.
  double gaussian() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(6.283185307179586 * u2);
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derive an independent child generator (for per-task streams).
  Rng split() { return Rng((*this)()); }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tp::common
