#pragma once

// PairInterner — a fixed-capacity symbol table mapping (first, second)
// string pairs to dense integer ids, with a lock-free, allocation-free
// read path.
//
// The serving layer interns (machine name, "program/kernel") pairs so the
// warm-request path never materializes a program-key string: a lookup
// hashes the parts as string_views (the joined form never exists in
// memory) and probes an open-addressing table of published slots with
// atomic loads only. Inserts are rare (one per distinct pair, ever) and
// serialize on a mutex; they publish a slot with a release store of its
// hash word, so readers that observe the hash also observe the entry it
// points at. Slots are never removed, which is what makes the lock-free
// probe safe. When the table fills, intern() returns kInvalid and callers
// fall back to their uncached slow path — new pairs degrade, existing
// ones keep their fast path.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/annotations.hpp"

namespace tp::common {

class PairInterner {
public:
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  /// `capacity` is the maximum number of distinct pairs. `joiner` is the
  /// separator assumed by the split-form overloads: find(a, head, tail)
  /// is exactly find(a, head + joiner + tail) without building the
  /// concatenation.
  explicit PairInterner(std::size_t capacity = 4096, char joiner = '/');

  /// Lock-free lookup; kInvalid when the pair was never interned.
  std::uint32_t find(std::string_view first, std::string_view second)
      const noexcept
      TP_LOCK_FREE_AUDITED(
          "open-addressing probe over release-published slots; entries are "
          "immutable once their hash word is visible; TSan: "
          "test_common InternerTest.ConcurrentInternAndFind");
  std::uint32_t find(std::string_view first, std::string_view secondHead,
                     std::string_view secondTail) const noexcept
      TP_LOCK_FREE_AUDITED(
          "split-form probe, same publication contract as find(a, b); "
          "TSan: test_common InternerTest.ConcurrentInternAndFind");

  /// Insert-or-get under a mutex; kInvalid when the table is full.
  std::uint32_t intern(std::string_view first, std::string_view second);
  std::uint32_t intern(std::string_view first, std::string_view secondHead,
                       std::string_view secondTail);

  /// The interned strings of an id returned by find()/intern(). The
  /// second part is stored joined.
  const std::string& first(std::uint32_t id) const;
  const std::string& second(std::uint32_t id) const;

  std::size_t size() const noexcept
      TP_LOCK_FREE_AUDITED(
          "acquire-load pairs with the release publish of each new entry in "
          "internHashed; TSan: test_common "
          "InternerTest.ConcurrentInternAndFind") {
    return size_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Number of intern() calls rejected because the table was full (each
  /// such call degraded its caller to the uncached slow path). Monotonic;
  /// a nonzero value usually means the configured capacity is undersized
  /// for the traffic's pair variety.
  std::uint64_t fullRejections() const noexcept
      TP_LOCK_FREE_AUDITED(
          "relaxed monotonic stat counter, no payload ordered behind it; "
          "TSan: test_common InternerTest.ConcurrentReadersAtCapacity") {
    return fullRejections_.load(std::memory_order_relaxed);
  }

private:
  struct Slot {
    std::atomic<std::uint64_t> hash{0};  ///< 0 = empty; published last
    std::atomic<std::uint32_t> id{0};
  };
  struct Entry {
    std::string first;
    std::string second;
  };

  std::uint64_t pairHash(std::string_view first, std::string_view head,
                         std::string_view tail, bool split) const noexcept;
  bool equals(const Entry& e, std::string_view first, std::string_view head,
              std::string_view tail, bool split) const noexcept;
  std::uint32_t findHashed(std::uint64_t hash, std::string_view first,
                           std::string_view head, std::string_view tail,
                           bool split) const noexcept
      TP_LOCK_FREE_AUDITED(
          "reader half of the slot publication protocol: acquire-load of "
          "the hash word orders the entry bytes; slots never removed; "
          "TSan: test_common InternerTest.ConcurrentInternAndFind");
  std::uint32_t internHashed(std::uint64_t hash, std::string_view first,
                             std::string_view head, std::string_view tail,
                             bool split) TP_EXCLUDES(insertMutex_);

  std::size_t capacity_;
  char joiner_;
  std::size_t mask_;  ///< table size - 1 (power of two)
  // slots_/entries_ are written only under insertMutex_ but read lock-free
  // (the audited probes above), so they carry no TP_GUARDED_BY — the
  // publication protocol, not a capability, is their contract.
  std::unique_ptr<Slot[]> slots_;
  std::unique_ptr<Entry[]> entries_;  ///< indexed by id, set before publish
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> fullRejections_{0};
  Mutex insertMutex_;
};

}  // namespace tp::common
