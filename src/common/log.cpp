#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <deque>

#include "common/annotations.hpp"

namespace tp::common {

namespace detail {
Mutex logSinkMutex;
}  // namespace detail

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
// The recent-events tap: a bounded ring of the latest records, included
// in the obs metrics dump. Guarded by the sink mutex along with the
// stderr stream (one lock, one critical section per record).
std::size_t g_captureCapacity TP_GUARDED_BY(detail::logSinkMutex) = 256;
std::uint64_t g_nextSeq TP_GUARDED_BY(detail::logSinkMutex) = 0;
std::deque<LogRecord> g_recent TP_GUARDED_BY(detail::logSinkMutex);
}  // namespace

// The level word is a standalone filter knob: no other data is published
// through it, so relaxed is enough — a racing reader sees either the old
// or the new level, both valid filter states.
void setLogLevel(LogLevel level)
    TP_LOCK_FREE_AUDITED(
        "relaxed store of an independent filter knob; no payload is ordered "
        "behind it; TSan: test_serve "
        "PartitionService.ConcurrentClientsGetConsistentDecisions") {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel()
    TP_LOCK_FREE_AUDITED(
        "relaxed load of the filter knob, see setLogLevel; TSan: test_serve "
        "PartitionService.ConcurrentClientsGetConsistentDecisions") {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::ErrorLevel: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void logMessage(LogLevel level, const std::string& message) {
  MutexLock lock(detail::logSinkMutex);
  std::fprintf(stderr, "[tp:%s] %s\n", logLevelName(level), message.c_str());
  const std::uint64_t seq = g_nextSeq++;
  if (g_captureCapacity == 0) return;
  g_recent.push_back(LogRecord{level, seq, message});
  while (g_recent.size() > g_captureCapacity) g_recent.pop_front();
}

void setLogCaptureCapacity(std::size_t capacity) {
  MutexLock lock(detail::logSinkMutex);
  g_captureCapacity = capacity;
  while (g_recent.size() > g_captureCapacity) g_recent.pop_front();
}

std::vector<LogRecord> recentLogRecords() {
  MutexLock lock(detail::logSinkMutex);
  return std::vector<LogRecord>(g_recent.begin(), g_recent.end());
}

}  // namespace tp::common
