#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/annotations.hpp"

namespace tp::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
// Serializes stderr writes so interleaved log lines stay whole; guards no
// data members (fprintf's stream lock handles the bytes, this keeps whole
// messages atomic).
Mutex g_mutex;
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel logLevel() { return static_cast<LogLevel>(g_level.load()); }

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::ErrorLevel: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void logMessage(LogLevel level, const std::string& message) {
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[tp:%s] %s\n", logLevelName(level), message.c_str());
}

}  // namespace tp::common
