#pragma once

// Small string utilities shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace tp::common {

std::vector<std::string> split(std::string_view s, char sep);
std::string trim(std::string_view s);
bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);
std::string toLower(std::string_view s);
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Format a double compactly for tables ("12.34", "0.001", "1.2e+09").
std::string formatDouble(double v, int precision = 4);

/// Render "12345678" as "12,345,678" for human-readable table output.
std::string withThousands(long long v);

}  // namespace tp::common
