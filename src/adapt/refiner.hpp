#pragma once

// Online partition refinement — the closed half of the feedback loop.
//
// The deployed model predicts one partitioning per launch; the paper's
// premise is that the best split is problem-size sensitive, and a model
// trained offline is only as good as the traffic it saw. The Refiner
// hill-climbs around the model's prediction at serving time: per
// (machine, program, rounded launch-signature) key it keeps a small
// measured-performance history over the prediction and its partitioning
// neighborhood (PartitioningSpace::neighbors), spends a configurable
// epsilon fraction of warm traffic probing the least-measured candidate,
// and immediately exploits any measured win. When the incumbent moves,
// the neighborhood re-centers on it (bounded by maxArms), so repeated
// traffic walks downhill toward a local optimum of the *measured*
// execution time — the service gets faster the longer it runs.
//
// A retrain() bumps the model version; the next decision under the new
// version discards the key's history and decays back to the fresh model
// prediction (the new model already learned from the recorded traffic,
// including every explored win).
//
// Keys are addressed by a 128-bit common::Fingerprint (the serving fast
// path computes one per request anyway; the refiner reuses it instead of
// rehashing the key's strings). Every fingerprint fed to one Refiner
// instance must come from a single consistent scheme: either the
// instance's fingerprinter (the convenience overloads and mergeWins use
// it) or a caller that precomputes with the same scheme (the hot-path
// overloads). Mixing schemes would split one key into two entries.
//
// Thread-safe: state is sharded, each shard independently mutex-guarded,
// exploration draws from a per-shard deterministic Rng.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "runtime/partitioning.hpp"

namespace tp::adapt {

/// Identity of a refinable decision: everything the cache key carries
/// except the model version (history must survive until the version
/// change is *seen*, so the decay is observable and countable).
struct RefineKey {
  std::string machine;
  std::string program;
  std::vector<double> signature;  ///< quantized launch signature

  bool operator==(const RefineKey& o) const = default;
};

struct RefineKeyHash {
  std::size_t operator()(const RefineKey& k) const noexcept;
};

/// The default (string-hashing) fingerprint scheme: standalone users and
/// tests address refiner keys with this. The serving layer instead
/// injects a fingerprinter built on its interned pair ids, so the
/// fingerprint computed once on the request fast path is reused verbatim.
common::Fingerprint refineFingerprint(const RefineKey& key) noexcept;

/// Maps a key to its fingerprint under the owning instance's scheme;
/// nullopt means the key cannot be fingerprinted right now (e.g. the
/// serving layer's intern table is full) and the record is dropped.
using Fingerprinter =
    std::function<std::optional<common::Fingerprint>(const RefineKey&)>;

struct RefinerConfig {
  /// Fraction of decisions (per key, after the baseline is measured) spent
  /// probing the least-measured candidate instead of exploiting.
  double exploreFraction = 0.15;
  /// Units moved per neighborhood step (PartitioningSpace::neighbors).
  int neighborRadius = 1;
  /// Observations of a candidate before its mean may unseat the incumbent.
  std::size_t minSamples = 1;
  /// Relative improvement over the incumbent mean required to adopt a win
  /// (guards against measurement jitter promoting noise).
  double minImprovement = 1e-3;
  /// Candidate-arm bound per key as the neighborhood re-centers.
  std::size_t maxArms = 24;
  /// Tracked-key bound (new keys beyond it serve unrefined).
  std::size_t maxKeys = 4096;
  std::size_t numShards = 16;
  std::uint64_t seed = 0x5EEDu;
  /// Probe budget per arm: with a value N > 0 a key stops exploring once
  /// every candidate arm has at least N measurements (the neighborhood is
  /// converged; new arms from a re-centering win re-open it). 0 keeps the
  /// unbounded policy (probe the least-measured arm forever at epsilon).
  /// Fleet gossip relies on a finite budget: merged remote evidence fills
  /// the budget, so a win measured on one replica is served — not
  /// re-probed — everywhere else.
  std::size_t probeSamples = 0;
};

struct RefineDecision {
  std::size_t label = 0;
  bool explore = false;  ///< probing: bypasses the decision cache
  bool refined = false;  ///< label differs from the model's prediction
};

struct Observation {
  bool improved = false;     ///< this measurement moved the incumbent
  bool tracked = false;      ///< bestLabel/bestSeconds are meaningful
  std::size_t bestLabel = 0; ///< current incumbent for the key
  double bestSeconds = 0.0;  ///< its mean measured time
};

/// One measured candidate arm inside an exported win record.
struct WinArm {
  std::size_t label = 0;
  std::uint64_t count = 0;
  double meanSeconds = 0.0;
};

/// A refined key's transferable state: the adopted incumbent plus the
/// measured evidence backing it, tagged with the model version it was
/// learned against. This is what gossip rounds and snapshots carry
/// between replicas.
struct WinRecord {
  RefineKey key;
  std::uint64_t modelVersion = 0;
  std::size_t baseLabel = 0;       ///< model prediction the key was seeded with
  std::size_t incumbentLabel = 0;  ///< adopted best label
  double incumbentMean = 0.0;      ///< its measured mean seconds
  std::vector<WinArm> arms;        ///< every measured arm (count > 0)
};

/// Per-record outcomes of mergeWins(); received == adopted + updated +
/// stale + dropped.
struct MergeResult {
  std::size_t adopted = 0;  ///< merge moved the key's incumbent
  std::size_t updated = 0;  ///< evidence merged, incumbent unchanged
  std::size_t stale = 0;    ///< model-version mismatch: rejected
  std::size_t dropped = 0;  ///< key-capacity (or no-refiner) drop

  std::size_t merged() const noexcept { return adopted + updated; }
};

/// Monotonic event counters, aggregated across shards by counters().
struct RefinerCounters {
  std::uint64_t decisions = 0;
  std::uint64_t explorations = 0;   ///< probe decisions issued
  std::uint64_t exploitations = 0;  ///< incumbent decisions issued
  std::uint64_t observations = 0;   ///< measurements accepted
  std::uint64_t wins = 0;           ///< incumbent moved to a better label
  std::uint64_t mergedWins = 0;     ///< incumbent moved by a remote merge
  std::uint64_t resets = 0;         ///< version decays back to the model
  std::uint64_t staleObservations = 0;  ///< dropped: version/key mismatch
  /// Decisions served unrefined: key capacity reached, or the request
  /// was stamped with a version the key has already moved past.
  std::uint64_t untracked = 0;
};

class Refiner {
public:
  /// `fingerprinter` addresses every key of this instance; the default is
  /// refineFingerprint (string hashing). Callers of the hot-path
  /// overloads must precompute fingerprints with the same scheme.
  explicit Refiner(RefinerConfig config = {},
                   Fingerprinter fingerprinter = {});
  ~Refiner();  ///< out-of-line: Shard is incomplete here

  Refiner(const Refiner&) = delete;
  Refiner& operator=(const Refiner&) = delete;

  /// Choose the label to serve for this launch. `baseLabel` is the label
  /// serving would use without refinement (cached decision or a fresh
  /// model prediction); `modelVersion` is the generation that produced
  /// it. The first decision for a key always exploits the baseline so the
  /// incumbent is measured before any probe. `key` is only consulted when
  /// the fingerprint is untracked and an entry must be created; the
  /// serving hit path passes nullptr (don't create — a cache hit whose
  /// refiner entry was capacity-evicted serves unrefined until the next
  /// miss or version change recreates it) so warm traffic never
  /// materializes key strings.
  RefineDecision decide(const common::Fingerprint& fp, const RefineKey* key,
                        std::uint64_t modelVersion, std::size_t baseLabel,
                        const runtime::PartitioningSpace& space);
  /// Convenience: fingerprint via the instance's fingerprinter, creation
  /// allowed.
  RefineDecision decide(const RefineKey& key, std::uint64_t modelVersion,
                        std::size_t baseLabel,
                        const runtime::PartitioningSpace& space);

  /// Feed back the measured execution time of a served decision. Returns
  /// whether the measurement moved the incumbent (callers write wins back
  /// into their decision cache); on a win the candidate set re-centers on
  /// the new incumbent's neighborhood in `space`. Measurements stamped
  /// with a version the key has moved past are dropped.
  Observation observe(const common::Fingerprint& fp,
                      std::uint64_t modelVersion, std::size_t label,
                      double seconds, const runtime::PartitioningSpace& space);
  Observation observe(const RefineKey& key, std::uint64_t modelVersion,
                      std::size_t label, double seconds,
                      const runtime::PartitioningSpace& space);

  /// Current incumbent for a key, if tracked at this version.
  /// (Test/introspection surface.)
  struct Incumbent {
    bool tracked = false;
    std::size_t label = 0;
    double meanSeconds = 0.0;
    std::size_t armsMeasured = 0;
  };
  Incumbent incumbent(const common::Fingerprint& fp,
                      std::uint64_t modelVersion) const;
  Incumbent incumbent(const RefineKey& key, std::uint64_t modelVersion) const;

  /// Export transferable per-key state. With `refinedOnly` (the gossip
  /// path) only keys whose incumbent differs from the model prediction —
  /// adopted wins — are emitted; without it (the snapshot path) every
  /// tracked key is, so a restored replica reproduces incumbent means
  /// exactly. Deterministic order: shard index, then unordered_map
  /// iteration order within a shard.
  std::vector<WinRecord> exportWins(bool refinedOnly = true) const;

  /// Merge remote win records (fingerprinted via the instance's
  /// fingerprinter; records it cannot fingerprint count as dropped).
  /// Records whose model version differs from
  /// `currentVersion` (or from a newer version a tracked key has already
  /// moved to) are rejected as stale. Per arm the better-measured side
  /// wins — higher count, ties broken by lower measured mean — which
  /// makes the merge idempotent and convergent under repeated
  /// anti-entropy exchange. The incumbent is then re-elected under the
  /// usual minSamples/minImprovement rules. Merged keys do NOT re-center:
  /// remote evidence is served, not used to seed a second local search,
  /// so a replica adopting a win issues no probes for it — the search
  /// frontier stays with the replica whose own observation won (its
  /// recenter opened the frontier), and everyone else rides along.
  MergeResult mergeWins(const std::vector<WinRecord>& wins,
                        std::uint64_t currentVersion);

  std::size_t trackedKeys() const;
  RefinerCounters counters() const;
  const RefinerConfig& config() const noexcept { return config_; }

private:
  struct Arm {
    std::size_t label = 0;
    std::uint64_t count = 0;
    double meanSeconds = 0.0;
  };
  struct Entry {
    RefineKey key;               ///< full key, for exportWins()
    std::uint64_t modelVersion = 0;
    std::size_t baseLabel = 0;   ///< the model-side label at this version
    std::size_t incumbent = 0;   ///< arms index of the current best
    std::vector<Arm> arms;       ///< baseline + (re-centered) neighborhood
  };
  struct Shard;

  Shard& shardFor(const common::Fingerprint& fp) const;
  void resetEntry(Entry& entry, std::uint64_t modelVersion,
                  std::size_t baseLabel,
                  const runtime::PartitioningSpace& space) const;
  void recenter(Entry& entry, const runtime::PartitioningSpace& space) const;
  /// Re-elect the incumbent under the minSamples/minImprovement rules;
  /// true when it moved. Caller holds the shard lock.
  bool electIncumbent(Entry& entry) const;
  /// Evict entries of superseded generations so a full shard can accept
  /// current-generation keys. Caller holds the shard lock.
  static void sweepSuperseded(Shard& shard, std::uint64_t version);

  RefinerConfig config_;
  Fingerprinter fingerprinter_;
  std::size_t maxKeysPerShard_ = 0;
  mutable std::vector<Shard> shards_;
};

}  // namespace tp::adapt
