#include "adapt/refiner.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace tp::adapt {

std::size_t RefineKeyHash::operator()(const RefineKey& k) const noexcept {
  return static_cast<std::size_t>(
      common::hashLaunchKey(k.machine, k.program, k.signature));
}

common::Fingerprint refineFingerprint(const RefineKey& key) noexcept {
  common::FingerprintBuilder fb;
  fb.str(key.machine);
  fb.str(key.program);
  fb.u64(key.signature.size());
  for (const double v : key.signature) fb.f64(v);
  return fb.take();
}

struct Refiner::Shard {
  mutable common::Mutex mutex;
  std::unordered_map<common::Fingerprint, Entry, common::FingerprintHash>
      entries TP_GUARDED_BY(mutex);
  common::Rng rng TP_GUARDED_BY(mutex);
  RefinerCounters counters TP_GUARDED_BY(mutex);
};

Refiner::Refiner(RefinerConfig config, Fingerprinter fingerprinter)
    : config_(config), fingerprinter_(std::move(fingerprinter)) {
  if (!fingerprinter_) {
    fingerprinter_ = [](const RefineKey& key) {
      return std::optional<common::Fingerprint>(refineFingerprint(key));
    };
  }
  TP_REQUIRE(config_.exploreFraction >= 0.0 && config_.exploreFraction <= 1.0,
             "Refiner: exploreFraction must be in [0, 1], got "
                 << config_.exploreFraction);
  TP_REQUIRE(config_.numShards > 0, "Refiner: numShards must be > 0");
  TP_REQUIRE(config_.maxArms >= 2,
             "Refiner: maxArms must be >= 2 (baseline + one neighbor)");
  TP_REQUIRE(config_.minSamples >= 1, "Refiner: minSamples must be >= 1");
  // A probe budget below minSamples would stop probing every arm before
  // any challenger becomes electable: all exploration cost, zero
  // possible wins. Reject the silent misconfiguration.
  TP_REQUIRE(config_.probeSamples == 0 ||
                 config_.probeSamples >= config_.minSamples,
             "Refiner: probeSamples ("
                 << config_.probeSamples << ") must be 0 (unbounded) or >= "
                    "minSamples ("
                 << config_.minSamples << ")");
  const std::size_t shards = std::min(config_.numShards,
                                      std::max<std::size_t>(1, config_.maxKeys));
  maxKeysPerShard_ =
      std::max<std::size_t>(1, (config_.maxKeys + shards - 1) / shards);
  shards_ = std::vector<Shard>(shards);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].rng.reseed(config_.seed + 0x9E3779B9u * (s + 1));
  }
}

Refiner::~Refiner() = default;

Refiner::Shard& Refiner::shardFor(const common::Fingerprint& fp) const {
  return shards_[fp.lo % shards_.size()];
}

void Refiner::resetEntry(Entry& entry, std::uint64_t modelVersion,
                         std::size_t baseLabel,
                         const runtime::PartitioningSpace& space) const {
  entry.modelVersion = modelVersion;
  entry.baseLabel = baseLabel;
  entry.incumbent = 0;
  entry.arms.clear();
  entry.arms.push_back(Arm{baseLabel, 0, 0.0});
  for (const std::size_t n :
       space.neighbors(baseLabel, config_.neighborRadius)) {
    if (entry.arms.size() >= config_.maxArms) break;
    entry.arms.push_back(Arm{n, 0, 0.0});
  }
}

void Refiner::recenter(Entry& entry,
                       const runtime::PartitioningSpace& space) const {
  // Extend the candidate set with the new incumbent's neighborhood so the
  // search keeps walking downhill, without forgetting measured history.
  const std::size_t center = entry.arms[entry.incumbent].label;
  for (const std::size_t n : space.neighbors(center, config_.neighborRadius)) {
    if (entry.arms.size() >= config_.maxArms) break;
    const bool known =
        std::any_of(entry.arms.begin(), entry.arms.end(),
                    [&](const Arm& a) { return a.label == n; });
    if (!known) entry.arms.push_back(Arm{n, 0, 0.0});
  }
}

bool Refiner::electIncumbent(Entry& entry) const {
  // Re-elect the incumbent among sufficiently-measured arms. The baseline
  // arm only needs one sample (it is what serving falls back to anyway),
  // and a challenger must beat the incumbent by the minImprovement margin
  // so measurement jitter cannot promote noise.
  const std::size_t before = entry.incumbent;
  std::size_t bestArm = entry.incumbent;
  double bestMean = entry.arms[bestArm].count > 0
                        ? entry.arms[bestArm].meanSeconds
                        : std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < entry.arms.size(); ++a) {
    const Arm& c = entry.arms[a];
    if (c.count == 0) continue;
    if (a != entry.incumbent && c.count < config_.minSamples) continue;
    if (c.meanSeconds < bestMean * (1.0 - config_.minImprovement)) {
      bestArm = a;
      bestMean = c.meanSeconds;
    }
  }
  entry.incumbent = bestArm;
  return bestArm != before;
}

void Refiner::sweepSuperseded(Shard& shard, std::uint64_t version)
    TP_REQUIRES(shard.mutex) {
  for (auto e = shard.entries.begin(); e != shard.entries.end();) {
    if (e->second.modelVersion < version) {
      e = shard.entries.erase(e);
    } else {
      ++e;
    }
  }
}

RefineDecision Refiner::decide(const RefineKey& key,
                               std::uint64_t modelVersion,
                               std::size_t baseLabel,
                               const runtime::PartitioningSpace& space) {
  const auto fp = fingerprinter_(key);
  if (!fp.has_value()) {
    Shard& shard = shardFor(common::Fingerprint{});
    common::MutexLock lock(shard.mutex);
    ++shard.counters.decisions;
    ++shard.counters.untracked;
    return RefineDecision{baseLabel, false, false};
  }
  return decide(*fp, &key, modelVersion, baseLabel, space);
}

RefineDecision Refiner::decide(const common::Fingerprint& fp,
                               const RefineKey* key,
                               std::uint64_t modelVersion,
                               std::size_t baseLabel,
                               const runtime::PartitioningSpace& space) {
  Shard& shard = shardFor(fp);
  common::MutexLock lock(shard.mutex);
  ++shard.counters.decisions;

  auto it = shard.entries.find(fp);
  if (it == shard.entries.end()) {
    if (key == nullptr) {
      // The caller cannot (cheaply) supply the full key — the serving
      // warm-hit path. Serve unrefined; the next miss-path sighting
      // carries the key and creates the entry.
      ++shard.counters.untracked;
      return RefineDecision{baseLabel, false, false};
    }
    if (shard.entries.size() >= maxKeysPerShard_) {
      // Reclaim before refusing: entries of superseded generations are
      // dead weight (their history decays on next sight anyway), and
      // without this sweep a long-running service whose traffic mix
      // shifts would permanently stop refining new signatures.
      sweepSuperseded(shard, modelVersion);
    }
    if (shard.entries.size() >= maxKeysPerShard_) {
      ++shard.counters.untracked;
      return RefineDecision{baseLabel, false, false};
    }
    it = shard.entries.emplace(fp, Entry{}).first;
    it->second.key = *key;
    resetEntry(it->second, modelVersion, baseLabel, space);
  } else if (modelVersion > it->second.modelVersion) {
    // The model was retrained: its new prediction supersedes everything
    // this entry learned about the old one. Decay back and start over.
    resetEntry(it->second, modelVersion, baseLabel, space);
    ++shard.counters.resets;
  } else if (modelVersion < it->second.modelVersion) {
    // A lagging request stamped before the retrain: it must not reset
    // the entry *backward* and wipe post-retrain learning. Serve its own
    // baseline unrefined.
    ++shard.counters.untracked;
    return RefineDecision{baseLabel, false, false};
  }
  Entry& entry = it->second;

  RefineDecision decision;
  const Arm& best = entry.arms[entry.incumbent];
  // Measure the baseline before probing anything: an unmeasured incumbent
  // cannot be compared against.
  const bool baselineMeasured = best.count > 0;
  std::size_t probe = entry.arms.size();  // sentinel: nothing to probe
  if (baselineMeasured && shard.rng.uniform() < config_.exploreFraction) {
    // Probe the least-measured candidate; ties break uniformly at random
    // (single-pass reservoir draw) rather than positionally, so fleet
    // replicas exploring the same neighborhood concurrently fan out over
    // different arms instead of re-measuring the same one in lockstep.
    // Under a finite probeSamples budget only under-measured arms
    // qualify: a fully measured neighborhood is converged and serves the
    // incumbent until a re-centering win (or a version reset) re-opens
    // it.
    std::uint64_t minCount = 0;
    std::size_t ties = 0;
    for (std::size_t a = 0; a < entry.arms.size(); ++a) {
      const std::uint64_t count = entry.arms[a].count;
      if (config_.probeSamples > 0 && count >= config_.probeSamples) {
        continue;
      }
      if (probe == entry.arms.size() || count < minCount) {
        minCount = count;
        ties = 1;
        probe = a;
      } else if (count == minCount) {
        ++ties;
        if (shard.rng.below(ties) == 0) probe = a;
      }
    }
  }
  if (probe != entry.arms.size()) {
    decision.label = entry.arms[probe].label;
    decision.explore = true;
    ++shard.counters.explorations;
    // Probes are rare by construction (exploreFraction of warm traffic),
    // so an unsampled instant never shows up on the fast path.
    TP_TRACE_INSTANT("adapt.probe", decision.label);
  } else {
    decision.label = best.label;
    ++shard.counters.exploitations;
  }
  // "Refined" is measured against the model-side label the entry was
  // seeded with, not the passed-in baseline: once a win is written back
  // into the decision cache, the caller's baseline *is* the refined label
  // and comparing against it would under-report.
  decision.refined = decision.label != entry.baseLabel;
  return decision;
}

Observation Refiner::observe(const RefineKey& key, std::uint64_t modelVersion,
                             std::size_t label, double seconds,
                             const runtime::PartitioningSpace& space) {
  const auto fp = fingerprinter_(key);
  if (!fp.has_value()) {
    Shard& shard = shardFor(common::Fingerprint{});
    common::MutexLock lock(shard.mutex);
    ++shard.counters.staleObservations;
    return Observation{};
  }
  return observe(*fp, modelVersion, label, seconds, space);
}

Observation Refiner::observe(const common::Fingerprint& fp,
                             std::uint64_t modelVersion, std::size_t label,
                             double seconds,
                             const runtime::PartitioningSpace& space) {
  Shard& shard = shardFor(fp);
  common::MutexLock lock(shard.mutex);

  Observation obs;
  const auto it = shard.entries.find(fp);
  if (it == shard.entries.end() || it->second.modelVersion != modelVersion) {
    ++shard.counters.staleObservations;
    return obs;
  }
  Entry& entry = it->second;
  obs.tracked = true;
  const auto arm = std::find_if(entry.arms.begin(), entry.arms.end(),
                                [&](const Arm& a) { return a.label == label; });
  if (arm == entry.arms.end()) {
    // A label outside the tracked neighborhood (e.g. served while the
    // entry was being re-seeded): nothing to learn against, but the
    // entry's incumbent is still valid for the caller.
    ++shard.counters.staleObservations;
    obs.bestLabel = entry.arms[entry.incumbent].label;
    obs.bestSeconds = entry.arms[entry.incumbent].meanSeconds;
    return obs;
  }
  ++shard.counters.observations;
  ++arm->count;
  arm->meanSeconds +=
      (seconds - arm->meanSeconds) / static_cast<double>(arm->count);

  if (electIncumbent(entry)) {
    ++shard.counters.wins;
    obs.improved = true;
    TP_TRACE_INSTANT("adapt.win", entry.arms[entry.incumbent].label);
    recenter(entry, space);
  }
  obs.bestLabel = entry.arms[entry.incumbent].label;
  obs.bestSeconds = entry.arms[entry.incumbent].meanSeconds;
  return obs;
}

std::vector<WinRecord> Refiner::exportWins(bool refinedOnly) const {
  std::vector<WinRecord> out;
  for (Shard& shard : shards_) {
    common::MutexLock lock(shard.mutex);
    for (const auto& [fp, entry] : shard.entries) {
      (void)fp;
      const Arm& best = entry.arms[entry.incumbent];
      if (refinedOnly && (best.label == entry.baseLabel || best.count == 0)) {
        continue;
      }
      WinRecord rec;
      rec.key = entry.key;
      rec.modelVersion = entry.modelVersion;
      rec.baseLabel = entry.baseLabel;
      rec.incumbentLabel = best.label;
      rec.incumbentMean = best.meanSeconds;
      for (const Arm& a : entry.arms) {
        if (a.count > 0) {
          rec.arms.push_back(WinArm{a.label, a.count, a.meanSeconds});
        }
      }
      out.push_back(std::move(rec));
    }
  }
  return out;
}

MergeResult Refiner::mergeWins(const std::vector<WinRecord>& wins,
                               std::uint64_t currentVersion) {
  TP_TRACE_SPAN_ARG("adapt.merge_wins", wins.size());
  MergeResult result;
  for (const WinRecord& rec : wins) {
    if (rec.modelVersion != currentVersion) {
      // Learned against a model this fleet has already replaced (or not
      // yet installed): its measurements say nothing about the current
      // prediction's neighborhood.
      ++result.stale;
      continue;
    }
    const auto fp = fingerprinter_(rec.key);
    if (!fp.has_value()) {
      ++result.dropped;
      continue;
    }
    Shard& shard = shardFor(*fp);
    common::MutexLock lock(shard.mutex);
    auto it = shard.entries.find(*fp);
    if (it == shard.entries.end()) {
      if (shard.entries.size() >= maxKeysPerShard_) {
        sweepSuperseded(shard, currentVersion);
      }
      if (shard.entries.size() >= maxKeysPerShard_) {
        ++result.dropped;
        continue;
      }
      it = shard.entries.emplace(*fp, Entry{}).first;
      Entry& entry = it->second;
      entry.key = rec.key;
      entry.modelVersion = rec.modelVersion;
      entry.baseLabel = rec.baseLabel;
      entry.incumbent = 0;
      // Seed with the baseline arm only; the remote evidence below is
      // the neighborhood. (resetEntry's unmeasured neighbor spawn would
      // make this replica re-probe arms the sender already measured.)
      entry.arms.push_back(Arm{rec.baseLabel, 0, 0.0});
    } else if (it->second.modelVersion > rec.modelVersion) {
      ++result.stale;
      continue;
    } else if (it->second.modelVersion < rec.modelVersion) {
      // This key has not served traffic since the version moved on: the
      // merge carries the same decay decide() would apply on next sight.
      Entry& entry = it->second;
      entry.modelVersion = rec.modelVersion;
      entry.baseLabel = rec.baseLabel;
      entry.incumbent = 0;
      entry.arms.clear();
      entry.arms.push_back(Arm{rec.baseLabel, 0, 0.0});
      ++shard.counters.resets;
    }
    Entry& entry = it->second;
    for (const WinArm& ra : rec.arms) {
      const auto arm =
          std::find_if(entry.arms.begin(), entry.arms.end(),
                       [&](const Arm& a) { return a.label == ra.label; });
      if (arm == entry.arms.end()) {
        if (entry.arms.size() >= config_.maxArms) continue;
        entry.arms.push_back(Arm{ra.label, ra.count, ra.meanSeconds});
      } else if (ra.count > arm->count ||
                 (ra.count == arm->count &&
                  ra.meanSeconds < arm->meanSeconds)) {
        // The better-measured side wins; equal counts break to the lower
        // measured mean. Replacing (never summing) keeps repeated
        // anti-entropy exchange of the same state idempotent.
        arm->count = ra.count;
        arm->meanSeconds = ra.meanSeconds;
      }
    }
    // Anchor on the record's incumbent before re-electing: the
    // minImprovement hysteresis makes elections path-dependent when two
    // arms sit within the margin of each other, and replicas must still
    // converge on ONE winner (and a snapshot restore must reproduce the
    // saved incumbent exactly). The record's incumbent takes over when
    // it is measured and strictly below the local incumbent's mean —
    // merge ties break to the lower measured mean — and a local arm
    // that is strictly better past the margin still wins the
    // re-election below.
    const std::size_t before = entry.incumbent;
    const auto anchor =
        std::find_if(entry.arms.begin(), entry.arms.end(), [&](const Arm& a) {
          return a.label == rec.incumbentLabel;
        });
    if (anchor != entry.arms.end() && anchor->count > 0) {
      const Arm& current = entry.arms[entry.incumbent];
      if (current.count == 0 || anchor->meanSeconds < current.meanSeconds) {
        entry.incumbent =
            static_cast<std::size_t>(anchor - entry.arms.begin());
      }
    }
    const bool elected = electIncumbent(entry);
    if (elected || entry.incumbent != before) {
      ++shard.counters.mergedWins;
      ++result.adopted;
      // No recenter here, deliberately: spawning unmeasured local arms
      // around a merged incumbent would make every replica re-open the
      // search the sender is already running. The sender's own recenter
      // keeps the frontier alive — at exactly one replica.
    } else {
      ++result.updated;
    }
  }
  return result;
}

Refiner::Incumbent Refiner::incumbent(const RefineKey& key,
                                      std::uint64_t modelVersion) const {
  const auto fp = fingerprinter_(key);
  if (!fp.has_value()) return Incumbent{};
  return incumbent(*fp, modelVersion);
}

Refiner::Incumbent Refiner::incumbent(const common::Fingerprint& fp,
                                      std::uint64_t modelVersion) const {
  Shard& shard = shardFor(fp);
  common::MutexLock lock(shard.mutex);
  Incumbent out;
  const auto it = shard.entries.find(fp);
  if (it == shard.entries.end() || it->second.modelVersion != modelVersion) {
    return out;
  }
  const Entry& entry = it->second;
  out.tracked = true;
  out.label = entry.arms[entry.incumbent].label;
  out.meanSeconds = entry.arms[entry.incumbent].meanSeconds;
  for (const Arm& a : entry.arms) {
    if (a.count > 0) ++out.armsMeasured;
  }
  return out;
}

std::size_t Refiner::trackedKeys() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    common::MutexLock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

RefinerCounters Refiner::counters() const {
  RefinerCounters total;
  for (Shard& shard : shards_) {
    common::MutexLock lock(shard.mutex);
    total.decisions += shard.counters.decisions;
    total.explorations += shard.counters.explorations;
    total.exploitations += shard.counters.exploitations;
    total.observations += shard.counters.observations;
    total.wins += shard.counters.wins;
    total.mergedWins += shard.counters.mergedWins;
    total.resets += shard.counters.resets;
    total.staleObservations += shard.counters.staleObservations;
    total.untracked += shard.counters.untracked;
  }
  return total;
}

}  // namespace tp::adapt
