#include "adapt/refiner.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace tp::adapt {

namespace {

std::uint64_t hashKey(const RefineKey& k) {
  std::uint64_t h = common::kFnvOffset;
  h = common::fnvBytes(h, k.machine.data(), k.machine.size());
  h = common::fnvU64(h, 0x1full);  // field separator
  h = common::fnvBytes(h, k.program.data(), k.program.size());
  for (const double f : k.signature) {
    h = common::fnvU64(h, std::bit_cast<std::uint64_t>(f));
  }
  return h;
}

}  // namespace

std::size_t RefineKeyHash::operator()(const RefineKey& k) const noexcept {
  return static_cast<std::size_t>(hashKey(k));
}

struct Refiner::Shard {
  mutable std::mutex mutex;
  std::unordered_map<RefineKey, Entry, RefineKeyHash> entries;
  common::Rng rng;
  RefinerCounters counters;
};

Refiner::Refiner(RefinerConfig config) : config_(config) {
  TP_REQUIRE(config_.exploreFraction >= 0.0 && config_.exploreFraction <= 1.0,
             "Refiner: exploreFraction must be in [0, 1], got "
                 << config_.exploreFraction);
  TP_REQUIRE(config_.numShards > 0, "Refiner: numShards must be > 0");
  TP_REQUIRE(config_.maxArms >= 2,
             "Refiner: maxArms must be >= 2 (baseline + one neighbor)");
  TP_REQUIRE(config_.minSamples >= 1, "Refiner: minSamples must be >= 1");
  const std::size_t shards = std::min(config_.numShards,
                                      std::max<std::size_t>(1, config_.maxKeys));
  maxKeysPerShard_ =
      std::max<std::size_t>(1, (config_.maxKeys + shards - 1) / shards);
  shards_ = std::vector<Shard>(shards);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].rng.reseed(config_.seed + 0x9E3779B9u * (s + 1));
  }
}

Refiner::~Refiner() = default;

Refiner::Shard& Refiner::shardFor(const RefineKey& key) const {
  return shards_[hashKey(key) % shards_.size()];
}

void Refiner::resetEntry(Entry& entry, std::uint64_t modelVersion,
                         std::size_t baseLabel,
                         const runtime::PartitioningSpace& space) const {
  entry.modelVersion = modelVersion;
  entry.baseLabel = baseLabel;
  entry.incumbent = 0;
  entry.arms.clear();
  entry.arms.push_back(Arm{baseLabel, 0, 0.0});
  for (const std::size_t n :
       space.neighbors(baseLabel, config_.neighborRadius)) {
    if (entry.arms.size() >= config_.maxArms) break;
    entry.arms.push_back(Arm{n, 0, 0.0});
  }
}

void Refiner::recenter(Entry& entry,
                       const runtime::PartitioningSpace& space) const {
  // Extend the candidate set with the new incumbent's neighborhood so the
  // search keeps walking downhill, without forgetting measured history.
  const std::size_t center = entry.arms[entry.incumbent].label;
  for (const std::size_t n : space.neighbors(center, config_.neighborRadius)) {
    if (entry.arms.size() >= config_.maxArms) break;
    const bool known =
        std::any_of(entry.arms.begin(), entry.arms.end(),
                    [&](const Arm& a) { return a.label == n; });
    if (!known) entry.arms.push_back(Arm{n, 0, 0.0});
  }
}

RefineDecision Refiner::decide(const RefineKey& key,
                               std::uint64_t modelVersion,
                               std::size_t baseLabel,
                               const runtime::PartitioningSpace& space) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.counters.decisions;

  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    if (shard.entries.size() >= maxKeysPerShard_) {
      // Reclaim before refusing: entries of superseded generations are
      // dead weight (their history decays on next sight anyway), and
      // without this sweep a long-running service whose traffic mix
      // shifts would permanently stop refining new signatures.
      for (auto e = shard.entries.begin(); e != shard.entries.end();) {
        if (e->second.modelVersion < modelVersion) {
          e = shard.entries.erase(e);
        } else {
          ++e;
        }
      }
    }
    if (shard.entries.size() >= maxKeysPerShard_) {
      ++shard.counters.untracked;
      return RefineDecision{baseLabel, false, false};
    }
    it = shard.entries.emplace(key, Entry{}).first;
    resetEntry(it->second, modelVersion, baseLabel, space);
  } else if (modelVersion > it->second.modelVersion) {
    // The model was retrained: its new prediction supersedes everything
    // this entry learned about the old one. Decay back and start over.
    resetEntry(it->second, modelVersion, baseLabel, space);
    ++shard.counters.resets;
  } else if (modelVersion < it->second.modelVersion) {
    // A lagging request stamped before the retrain: it must not reset
    // the entry *backward* and wipe post-retrain learning. Serve its own
    // baseline unrefined.
    ++shard.counters.untracked;
    return RefineDecision{baseLabel, false, false};
  }
  Entry& entry = it->second;

  RefineDecision decision;
  const Arm& best = entry.arms[entry.incumbent];
  // Measure the baseline before probing anything: an unmeasured incumbent
  // cannot be compared against.
  const bool baselineMeasured = best.count > 0;
  if (baselineMeasured && shard.rng.uniform() < config_.exploreFraction) {
    // Probe the least-measured candidate (ties to the earliest arm, so
    // probing order is deterministic given the explore draw).
    std::size_t probe = 0;
    for (std::size_t a = 1; a < entry.arms.size(); ++a) {
      if (entry.arms[a].count < entry.arms[probe].count) probe = a;
    }
    decision.label = entry.arms[probe].label;
    decision.explore = true;
    ++shard.counters.explorations;
  } else {
    decision.label = best.label;
    ++shard.counters.exploitations;
  }
  // "Refined" is measured against the model-side label the entry was
  // seeded with, not the passed-in baseline: once a win is written back
  // into the decision cache, the caller's baseline *is* the refined label
  // and comparing against it would under-report.
  decision.refined = decision.label != entry.baseLabel;
  return decision;
}

Observation Refiner::observe(const RefineKey& key, std::uint64_t modelVersion,
                             std::size_t label, double seconds,
                             const runtime::PartitioningSpace& space) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);

  Observation obs;
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end() || it->second.modelVersion != modelVersion) {
    ++shard.counters.staleObservations;
    return obs;
  }
  Entry& entry = it->second;
  obs.tracked = true;
  const auto arm = std::find_if(entry.arms.begin(), entry.arms.end(),
                                [&](const Arm& a) { return a.label == label; });
  if (arm == entry.arms.end()) {
    // A label outside the tracked neighborhood (e.g. served while the
    // entry was being re-seeded): nothing to learn against, but the
    // entry's incumbent is still valid for the caller.
    ++shard.counters.staleObservations;
    obs.bestLabel = entry.arms[entry.incumbent].label;
    obs.bestSeconds = entry.arms[entry.incumbent].meanSeconds;
    return obs;
  }
  ++shard.counters.observations;
  ++arm->count;
  arm->meanSeconds +=
      (seconds - arm->meanSeconds) / static_cast<double>(arm->count);

  // Re-elect the incumbent among sufficiently-measured arms. The baseline
  // arm only needs one sample (it is what serving falls back to anyway).
  const std::size_t before = entry.incumbent;
  std::size_t bestArm = entry.incumbent;
  double bestMean = entry.arms[bestArm].count > 0
                        ? entry.arms[bestArm].meanSeconds
                        : std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < entry.arms.size(); ++a) {
    const Arm& c = entry.arms[a];
    if (c.count == 0) continue;
    if (a != entry.incumbent && c.count < config_.minSamples) continue;
    if (c.meanSeconds < bestMean * (1.0 - config_.minImprovement)) {
      bestArm = a;
      bestMean = c.meanSeconds;
    }
  }
  if (bestArm != before) {
    entry.incumbent = bestArm;
    ++shard.counters.wins;
    obs.improved = true;
    recenter(entry, space);
  }
  obs.bestLabel = entry.arms[entry.incumbent].label;
  obs.bestSeconds = entry.arms[entry.incumbent].meanSeconds;
  return obs;
}

Refiner::Incumbent Refiner::incumbent(const RefineKey& key,
                                      std::uint64_t modelVersion) const {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Incumbent out;
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end() || it->second.modelVersion != modelVersion) {
    return out;
  }
  const Entry& entry = it->second;
  out.tracked = true;
  out.label = entry.arms[entry.incumbent].label;
  out.meanSeconds = entry.arms[entry.incumbent].meanSeconds;
  for (const Arm& a : entry.arms) {
    if (a.count > 0) ++out.armsMeasured;
  }
  return out;
}

std::size_t Refiner::trackedKeys() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

RefinerCounters Refiner::counters() const {
  RefinerCounters total;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.decisions += shard.counters.decisions;
    total.explorations += shard.counters.explorations;
    total.exploitations += shard.counters.exploitations;
    total.observations += shard.counters.observations;
    total.wins += shard.counters.wins;
    total.resets += shard.counters.resets;
    total.staleObservations += shard.counters.staleObservations;
    total.untracked += shard.counters.untracked;
  }
  return total;
}

}  // namespace tp::adapt
