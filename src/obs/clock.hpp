#pragma once

// The single sanctioned monotonic clock for the whole tree.
//
// Every steady-clock read outside common/rng and bench mains goes
// through these helpers (lint rule R8 enforces the textual invariant:
// `std::chrono::steady_clock` may only be spelled here). Centralizing
// the clock keeps trace timestamps, latency accounting, and gossip
// deadlines on one timebase, and gives a future simulated/virtual clock
// exactly one seam to replace.
//
// Ticks are nanoseconds since the steady clock's (arbitrary) epoch —
// monotonic within a process, meaningless across processes.

#include <chrono>
#include <cstdint>

namespace tp::obs {

using Clock = std::chrono::steady_clock;

/// Monotonic nanoseconds-since-epoch, the trace recorder's event unit.
inline std::uint64_t nowTicks() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Chrome trace-event timestamps are microseconds (fractional ok).
inline double ticksToMicros(std::uint64_t ticks) noexcept {
  return static_cast<double>(ticks) / 1000.0;
}

inline double ticksToSeconds(std::uint64_t ticks) noexcept {
  return static_cast<double>(ticks) * 1e-9;
}

/// Elapsed seconds between two nowTicks() reads.
inline double secondsBetween(std::uint64_t beginTicks,
                             std::uint64_t endTicks) noexcept {
  return ticksToSeconds(endTicks - beginTicks);
}

/// Elapsed seconds since a Clock::time_point (latency accounting).
inline double secondsSince(Clock::time_point start) noexcept {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace tp::obs
