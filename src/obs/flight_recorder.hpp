#pragma once

// tp::obs flight recorder: the black box. On a health breach (or on
// demand) it freezes the process's telemetry into one atomic postmortem
// bundle — `postmortem-<seq>.json`, written tmp+rename, pruned to the
// last K like fleet::SnapshotStore — so the evidence of what went wrong
// survives the process that produced it.
//
// Bundle anatomy (schema "tp-postmortem-v1", validated by
// scripts/validate_postmortem.py):
//
//   {
//     "schema": "tp-postmortem-v1",
//     "seq": 3, "reason": "health: serve.latency_slo", "ticks": ...,
//     "kept_events": N, "dropped_events": M,   // trace ring accounting
//     "trace": { Chrome trace-event object },  // drained rings
//     "metrics": { Registry::exportJson },     // incl. recent-log tap
//     "health_events": [ HealthEvent... ],     // bounded history
//     "health_counters": { ... }
//   }
//
// kept/dropped and the embedded trace come from ONE TraceRecorder
// snapshot, so `kept_events == len(trace.traceEvents)` and
// `dropped_events == trace.otherData.dropped_events` hold exactly —
// the validator asserts the accounting carried through. Sections whose
// source is not configured are emitted empty-but-valid, never omitted.
//
// dump() is serialized by a mutex (sequence allocation + the fs window)
// and safe concurrently with traffic: everything it reads is a
// thread-safe snapshot surface. attach() wires dump() as the monitor's
// onEvent callback: every non-cleared event at or above dumpAtOrAbove
// severity writes one bundle — the monitor's dedup/hysteresis already
// guarantees one event (hence one bundle) per sustained breach.

#include <cstdint>
#include <string>

#include "common/annotations.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tp::obs {

struct FlightRecorderConfig {
  std::string dir;          ///< bundle directory, created on first dump
  std::size_t keepLast = 8; ///< prune older bundles; 0 keeps every one
  /// Sources; any may be nullptr (its section is emitted empty).
  Registry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  HealthMonitor* health = nullptr;
  /// attach(): minimum severity of a non-cleared event that triggers an
  /// automatic dump.
  Severity dumpAtOrAbove = Severity::Warning;
};

class FlightRecorder {
public:
  explicit FlightRecorder(FlightRecorderConfig config);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Write one bundle; returns its sequence number. Sequences continue
  /// past bundles already in the directory (tmp+rename, then prune).
  std::uint64_t dump(const std::string& reason) TP_EXCLUDES(mutex_);

  /// Register as config.health's event callback (replaces any previous
  /// one): dump on every non-cleared event at or above dumpAtOrAbove.
  /// Requires config.health. The recorder must outlive the monitor's
  /// last evaluation.
  void attach();

  std::string pathFor(std::uint64_t seq) const;
  /// Highest bundle sequence in dir (0 = none).
  std::uint64_t highestSequence() const TP_EXCLUDES(mutex_);
  /// Bundles currently on disk.
  std::size_t bundleCount() const TP_EXCLUDES(mutex_);
  const std::string& dir() const noexcept { return config_.dir; }

private:
  FlightRecorderConfig config_;
  mutable common::Mutex mutex_;  ///< serializes dump's seq + fs window
};

}  // namespace tp::obs
