#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tp::obs {

namespace {

/// Error budgets implied by the target percentile names: a p99 target
/// tolerates 1% of samples over it, a p99.9 target 0.1%.
constexpr double kBudgetP99 = 0.01;
constexpr double kBudgetP999 = 0.001;

std::uint64_t targetTicks(double seconds) noexcept {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
}

}  // namespace

SloTracker::SloTracker(SloConfig config) : config_(config) {
  TP_REQUIRE(config_.windowSeconds > 0.0,
             "SloTracker: windowSeconds must be positive, got "
                 << config_.windowSeconds);
  TP_REQUIRE(config_.subWindows >= 2,
             "SloTracker: need at least 2 sub-windows, got "
                 << config_.subWindows);
  const double sliceNs =
      config_.windowSeconds * 1e9 / static_cast<double>(config_.subWindows);
  sliceTicks_ = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(sliceNs));
  targetP99Ticks_ = targetTicks(config_.targetP99Seconds);
  targetP999Ticks_ = targetTicks(config_.targetP999Seconds);
  const std::size_t stripes =
      config_.stripes == 0 ? common::defaultStripes() : config_.stripes;
  subs_ = std::vector<SubWindow>(config_.subWindows);
  for (SubWindow& sub : subs_) {
    sub.stripes = std::vector<Stripe>(stripes);
  }
}

void SloTracker::rotate(SubWindow& sub, std::uint64_t slice) {
  common::ClaimGuard claim(sub.rotateBusy);
  if (!claim.claimed()) return;  // a concurrent rotation owns this window
  const std::uint64_t current = sub.slice.load(std::memory_order_relaxed);
  // Never rotate backwards: a recorder whose tick read is stale must not
  // resurrect an older slice (its sample lands in the newer one instead).
  if (current != kIdleSlice && current >= slice) return;
  for (Stripe& stripe : sub.stripes) {
    const std::uint32_t claimed = common::seqClaim(stripe.seq);
    stripe.count = 0;
    stripe.sum = 0;
    stripe.violationsP99 = 0;
    stripe.violationsP999 = 0;
    stripe.buckets.fill(0);
    common::seqRelease(stripe.seq, claimed);
  }
  // Publishes the zeroed stripes to recorders that saw the new stamp.
  sub.slice.store(slice, std::memory_order_release);
}

void SloTracker::record(std::uint64_t latencyNs, std::uint64_t atTicks)
    TP_LOCK_FREE_AUDITED(
        "per-stripe seqlock on the caller's own stripe, same discipline "
        "as Histogram::record; the slice-stamp acquire pairs with "
        "rotate()'s release of the zeroed window; TSan: test_health "
        "SloTracker.ConcurrentRecordWhileRotateKeepsTotalsSane") {
  const std::uint64_t slice = atTicks / sliceTicks_;
  SubWindow& sub = subs_[slice % subs_.size()];
  if (sub.slice.load(std::memory_order_acquire) != slice) {
    rotate(sub, slice);
  }
  Stripe& stripe = sub.stripes[common::threadStripe(sub.stripes.size())];
  const std::uint32_t claimed = common::seqClaim(stripe.seq);
  ++stripe.count;
  stripe.sum += latencyNs;
  ++stripe.buckets[Histogram::bucketIndex(latencyNs)];
  if (targetP99Ticks_ != 0 && latencyNs > targetP99Ticks_) {
    ++stripe.violationsP99;
  }
  if (targetP999Ticks_ != 0 && latencyNs > targetP999Ticks_) {
    ++stripe.violationsP999;
  }
  common::seqRelease(stripe.seq, claimed);
}

void SloTracker::WindowSnapshot::merge(const WindowSnapshot& other) noexcept {
  hist.merge(other.hist);
  violationsP99 += other.violationsP99;
  violationsP999 += other.violationsP999;
}

SloTracker::WindowSnapshot SloTracker::snapshotSub(SubWindow& sub) const {
  // Bounded retry: a rotation mid-copy restamps the slice, invalidating
  // the mixed old/new stripe contents. Rotations are once per slice per
  // sub-window, so one retry almost always suffices; after the cap the
  // sub-window is reported idle (it was being zeroed anyway).
  for (int attempt = 0; attempt < 4; ++attempt) {
    WindowSnapshot snap;
    snap.slice = sub.slice.load(std::memory_order_acquire);
    if (snap.slice == kIdleSlice) return snap;
    for (Stripe& stripe : sub.stripes) {
      const std::uint32_t claimed = common::seqClaim(stripe.seq);
      snap.hist.count += stripe.count;
      snap.hist.sum += stripe.sum;
      snap.violationsP99 += stripe.violationsP99;
      snap.violationsP999 += stripe.violationsP999;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        snap.hist.buckets[b] += stripe.buckets[b];
      }
      common::seqRelease(stripe.seq, claimed);
    }
    if (sub.slice.load(std::memory_order_acquire) == snap.slice) return snap;
  }
  return WindowSnapshot{};
}

std::vector<SloTracker::WindowSnapshot> SloTracker::liveSubWindows(
    std::uint64_t atTicks) const {
  const std::uint64_t cur = atTicks / sliceTicks_;
  std::vector<WindowSnapshot> live;
  live.reserve(subs_.size());
  for (SubWindow& sub : subs_) {
    WindowSnapshot snap = snapshotSub(sub);
    if (snap.slice == kIdleSlice) continue;
    if (snap.slice > cur) continue;  // a racing recorder is ahead of us
    if (cur - snap.slice >= subs_.size()) continue;  // aged out of horizon
    live.push_back(std::move(snap));
  }
  std::sort(live.begin(), live.end(),
            [](const WindowSnapshot& a, const WindowSnapshot& b) {
              return a.slice < b.slice;
            });
  return live;
}

SloTracker::Report SloTracker::reportAt(std::uint64_t atTicks) const {
  Report report;
  report.windowSeconds = config_.windowSeconds;
  WindowSnapshot merged;
  for (const WindowSnapshot& snap : liveSubWindows(atTicks)) {
    merged.merge(snap);
    ++report.subWindowsMerged;
  }
  report.count = merged.hist.count;
  report.meanSeconds = merged.hist.mean() * 1e-9;
  report.p50Seconds =
      static_cast<double>(merged.hist.quantile(0.50)) * 1e-9;
  report.p99Seconds =
      static_cast<double>(merged.hist.quantile(0.99)) * 1e-9;
  report.p999Seconds =
      static_cast<double>(merged.hist.quantile(0.999)) * 1e-9;
  report.violationsP99 = merged.violationsP99;
  report.violationsP999 = merged.violationsP999;
  if (report.count > 0) {
    const double n = static_cast<double>(report.count);
    if (targetP99Ticks_ != 0) {
      report.burnRateP99 =
          (static_cast<double>(report.violationsP99) / n) / kBudgetP99;
    }
    if (targetP999Ticks_ != 0) {
      report.burnRateP999 =
          (static_cast<double>(report.violationsP999) / n) / kBudgetP999;
    }
  }
  report.breached = report.count >= config_.minSamples &&
                    (report.burnRateP99 > 1.0 || report.burnRateP999 > 1.0);
  return report;
}

}  // namespace tp::obs
