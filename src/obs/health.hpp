#pragma once

// tp::obs health monitor: registered detector rules evaluated against
// live telemetry, emitting structured HealthEvents with hysteresis and
// dedup — a sustained breach is ONE event, not a log flood.
//
// A DetectorRule is a named closure returning std::nullopt (quiet) or a
// Firing{value, threshold, message}. The monitor evaluates every rule
// serially (manually via evaluateOnce(), or from a background thread
// via start(period)) and runs a small state machine per rule:
//
//     quiet --triggerAfter consecutive firings--> active  (emit event)
//     active --stays firing--> active                     (suppressed)
//     active --clearAfter consecutive quiets--> quiet     (emit cleared)
//
// so a breach produces exactly one event until it genuinely recovers,
// and a recovery produces exactly one cleared event (severity Info).
//
// Threading contract: rule closures run on the evaluating thread under
// the monitor mutex, one at a time — they may keep mutable state (delta
// counters between evaluations) without their own locking, must be
// fast, must only touch thread-safe surfaces (striped counters, SLO
// reports, cache counter snapshots), and must never call back into the
// monitor. The onEvent callback runs on the same thread AFTER the
// mutex is released, so it may read the monitor (the FlightRecorder
// dumps event history from inside it). A throwing rule is counted
// (ruleErrors) and skipped, never fatal. Components registering rules
// must outlive the monitor's last evaluation: stop() the monitor (or
// removeRulesByPrefix()) before tearing the component down.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "obs/clock.hpp"

namespace tp::obs {

enum class Severity { Info = 0, Warning = 1, Critical = 2 };

const char* severityName(Severity severity) noexcept;

/// What a rule reports when its condition holds.
struct Firing {
  double value = 0.0;      ///< the observed quantity
  double threshold = 0.0;  ///< the configured bound it crossed
  std::string message;     ///< human-readable description
};

struct DetectorRule {
  /// Namespaced like metrics ("serve.latency_slo", "replica-0.gossip_stall").
  std::string name;
  Severity severity = Severity::Warning;
  /// Consecutive firing evaluations before the event is emitted
  /// (debounce); >= 1.
  std::size_t triggerAfter = 1;
  /// Consecutive quiet evaluations before the cleared event; >= 1.
  std::size_t clearAfter = 2;
  std::function<std::optional<Firing>()> evaluate;
};

/// One emitted judgment. cleared == true marks a recovery event (its
/// value/threshold repeat the last firing's).
struct HealthEvent {
  std::uint64_t seq = 0;    ///< monotonic per monitor, from 1
  std::uint64_t ticks = 0;  ///< nowTicks() at emission
  Severity severity = Severity::Warning;
  std::string rule;
  std::string message;
  double value = 0.0;
  double threshold = 0.0;
  bool cleared = false;
};

struct HealthCounters {
  std::uint64_t evaluations = 0;       ///< evaluateOnce() passes
  std::uint64_t firings = 0;           ///< rule evaluations that fired
  std::uint64_t eventsEmitted = 0;     ///< non-cleared events
  std::uint64_t eventsCleared = 0;
  std::uint64_t suppressedFirings = 0; ///< firings deduped into an active event
  std::uint64_t ruleErrors = 0;        ///< rule closures that threw
};

class HealthMonitor {
public:
  explicit HealthMonitor(std::size_t historyCapacity = 256);
  ~HealthMonitor();  ///< stop()s the background thread

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void addRule(DetectorRule rule) TP_EXCLUDES(mutex_);
  /// Drop every rule whose name starts with `prefix` (a component
  /// unhooking before destruction). Returns the number removed.
  std::size_t removeRulesByPrefix(const std::string& prefix)
      TP_EXCLUDES(mutex_);
  std::size_t ruleCount() const TP_EXCLUDES(mutex_);

  /// Run every rule once; returns how many events (incl. cleared) this
  /// pass emitted. Safe concurrently with the background thread and
  /// with events()/counters() readers.
  std::size_t evaluateOnce() TP_EXCLUDES(mutex_);

  /// Start/stop a background thread evaluating every periodSeconds.
  /// Idempotent stop; start throws if already running.
  void start(double periodSeconds) TP_EXCLUDES(mutex_);
  void stop() TP_EXCLUDES(mutex_);
  bool running() const TP_EXCLUDES(mutex_);

  /// Invoked once per emitted event, outside the monitor mutex, on the
  /// evaluating thread. Replaces any previous callback.
  void onEvent(std::function<void(const HealthEvent&)> callback)
      TP_EXCLUDES(mutex_);

  /// Bounded event history, oldest first.
  std::vector<HealthEvent> events() const TP_EXCLUDES(mutex_);
  HealthCounters counters() const TP_EXCLUDES(mutex_);

private:
  struct RuleState {
    DetectorRule rule;
    std::size_t firingStreak = 0;
    std::size_t quietStreak = 0;
    bool active = false;
    Firing lastFiring;  ///< echoed into the cleared event
  };

  void runLoop(double periodSeconds);

  mutable common::Mutex mutex_;
  common::CondVar stopCv_;
  std::vector<RuleState> rules_ TP_GUARDED_BY(mutex_);
  std::deque<HealthEvent> history_ TP_GUARDED_BY(mutex_);
  std::function<void(const HealthEvent&)> callback_ TP_GUARDED_BY(mutex_);
  HealthCounters counters_ TP_GUARDED_BY(mutex_);
  std::uint64_t nextSeq_ TP_GUARDED_BY(mutex_) = 0;
  std::size_t historyCapacity_;
  bool stopRequested_ TP_GUARDED_BY(mutex_) = false;
  std::thread thread_ TP_GUARDED_BY(mutex_);
};

}  // namespace tp::obs
