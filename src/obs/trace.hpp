#pragma once

// tp::obs trace recorder: per-thread lock-free span/instant capture,
// drained into Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// Recording discipline (the same seqlock pattern as LatencyRecorder and
// common/striped): each recording thread owns a private fixed-size ring
// of POD TraceEvents, guarded by a per-buffer sequence word. A writer
// claims its OWN buffer with one CAS — uncontended except against a
// concurrent snapshot() drain — writes one slot, and releases. No mutex,
// no allocation on the record path (the ring is preallocated when a
// thread records its first event of a session).
//
// Cost model, enforced by bench/obs_overhead (BENCH_obs.json):
//   - compiled out (TP_TRACING=OFF): the macros expand to nothing;
//   - runtime-disabled: one relaxed load + branch per macro site;
//   - enabled, SAMPLED spans: 1-in-N threads-local sampling keeps the
//     warm serving path allocation- and lock-free (CI gates warm
//     throughput with sampled tracing to within 5% of compiled-out).
//
// Events carry begin/end ticks from the single sanctioned monotonic
// clock (obs/clock.hpp), an interned name id, the recording thread's
// ordinal, and one u64 argument. Ring overflow overwrites the oldest
// event and counts the drop exactly (trace ring wraparound test).

#ifndef TP_OBS_TRACING
#define TP_OBS_TRACING 1
#endif

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "obs/clock.hpp"

namespace tp::obs {

/// One POD ring slot. end == 0 marks an instant event (spans never
/// record a zero end: nowTicks() is never 0 on a running clock).
struct TraceEvent {
  std::uint64_t begin = 0;  ///< nowTicks() at open (or the instant time)
  std::uint64_t end = 0;    ///< nowTicks() at close; 0 = instant
  std::uint32_t nameId = 0;
  std::uint32_t tid = 0;  ///< common::threadOrdinal() of the recorder
  std::uint64_t arg = 0;
};

class TraceRecorder {
public:
  struct Config {
    std::size_t ringCapacity = 1 << 14;  ///< events retained per thread
    std::uint32_t sampleEveryN = 64;     ///< 1-in-N for *_SAMPLED spans
  };

  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Start a fresh capture session: previous buffers leave the snapshot
  /// set (they stay alive for stragglers mid-record), the session base
  /// timestamp resets, and recording turns on.
  void enable(Config config) TP_EXCLUDES(mutex_);
  void enable() TP_EXCLUDES(mutex_) { enable(Config()); }
  /// Stop recording; buffered events stay drainable via snapshot().
  void disable() noexcept
      TP_LOCK_FREE_AUDITED(
          "relaxed flip of the recording flag; an in-flight record() may "
          "keep one more event, which snapshot() tolerates; TSan: test_obs "
          "TraceRecorder.ConcurrentRecordAndSnapshotUnderContention") {
    enabled_.store(false, std::memory_order_relaxed);
  }
  bool enabled() const noexcept
      TP_LOCK_FREE_AUDITED(
          "relaxed read of the recording flag, see disable(); TSan: "
          "test_obs TraceRecorder.ConcurrentRecordAndSnapshotUnderContention") {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Stable id for a span/instant name. Ids survive enable() cycles, so
  /// macro sites can cache them in function-local statics. Takes the
  /// registry mutex — call once per site, not per event.
  std::uint32_t internName(std::string_view name) TP_EXCLUDES(mutex_);

  /// Thread-local 1-in-N tick for sampled spans (N from the session
  /// config; N <= 1 keeps every event).
  bool shouldSample() noexcept
      TP_LOCK_FREE_AUDITED(
          "relaxed read of the session's sampling knob; a stale N only "
          "shifts which events a racing thread keeps; TSan: test_obs "
          "TraceRecorder.ConcurrentRecordAndSnapshotUnderContention") {
    const std::uint32_t n = sampleEveryN_.load(std::memory_order_relaxed);
    if (n <= 1) return true;
    thread_local std::uint32_t counter = 0;
    return (counter++ % n) == 0;
  }

  /// Append one event to the calling thread's ring (no-op when
  /// disabled). Pass end == 0 for an instant.
  void record(std::uint32_t nameId, std::uint64_t begin, std::uint64_t end,
              std::uint64_t arg)
      TP_LOCK_FREE_AUDITED(
          "per-thread ring guarded by its own seqlock word: one CAS claim "
          "on the caller's buffer, release publish; contends only with a "
          "concurrent snapshot drain; TSan: test_obs "
          "TraceRecorder.ConcurrentRecordAndSnapshotUnderContention");

  struct ThreadEvents {
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;  ///< exact count of overwritten events
    std::vector<TraceEvent> events;  ///< oldest first
  };
  struct Snapshot {
    std::uint64_t baseTicks = 0;  ///< session start (ts 0 of the trace)
    std::vector<std::string> names;  ///< indexed by TraceEvent::nameId
    std::vector<ThreadEvents> threads;
    std::uint64_t totalEvents = 0;
    std::uint64_t totalDropped = 0;
  };
  /// Consistent per-buffer drain (each ring is claimed while copied; a
  /// writer racing the drain spins for the copy, never tears).
  Snapshot snapshot() const TP_EXCLUDES(mutex_);

  /// Chrome trace-event JSON ("traceEvents" array of ph:"X" spans and
  /// ph:"i" instants, ts/dur in microseconds, tid = thread ordinal).
  /// Load via chrome://tracing or https://ui.perfetto.dev.
  void writeChromeTrace(std::ostream& os) const;
  void writeChromeTraceFile(const std::string& path) const;
  /// Render an already-taken snapshot (the FlightRecorder embeds the
  /// trace AND accounts kept/dropped from one consistent drain).
  static void writeChromeTrace(std::ostream& os, const Snapshot& snap);

private:
  struct ThreadBuffer;

  /// The calling thread's buffer for `epoch` (created on first use;
  /// nullptr when racing an enable() that already moved the epoch on).
  ThreadBuffer* threadBuffer(std::uint64_t epoch) TP_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_{0};  ///< bumped by every enable()
  std::atomic<std::uint32_t> sampleEveryN_{64};
  std::atomic<std::uint64_t> baseTicks_{0};

  mutable common::Mutex mutex_;
  std::size_t ringCapacity_ TP_GUARDED_BY(mutex_) = 1 << 14;
  /// Current-session buffers (snapshot set), one per recording thread.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ TP_GUARDED_BY(mutex_);
  /// Previous sessions' buffers: kept alive (a writer that cached one
  /// may complete a stale record into it harmlessly) but never drained.
  std::vector<std::unique_ptr<ThreadBuffer>> retired_ TP_GUARDED_BY(mutex_);
  std::vector<std::string> names_ TP_GUARDED_BY(mutex_);
  std::map<std::string, std::uint32_t, std::less<>> nameIds_
      TP_GUARDED_BY(mutex_);
};

/// The process-wide recorder every macro site records into.
TraceRecorder& traceRecorder();

/// RAII span: open() stamps the begin tick, the destructor records the
/// completed span. A default-constructed (never-opened) span costs one
/// branch in the destructor and records nothing.
class ScopedSpan {
public:
  ScopedSpan() noexcept = default;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (begin_ != 0) {
      traceRecorder().record(nameId_, begin_, nowTicks(), arg_);
    }
  }

  /// Arm the span (macro internals; callers use TP_TRACE_SPAN*). With
  /// `sampled` set the span records only on the thread's 1-in-N tick.
  void open(std::uint32_t nameId, std::uint64_t arg, bool sampled) noexcept {
    if (sampled && !traceRecorder().shouldSample()) return;
    nameId_ = nameId;
    arg_ = arg;
    begin_ = nowTicks();
  }

  /// Update the recorded argument before close (e.g. a batch size known
  /// only mid-span). No-op on an unarmed span.
  void setArg(std::uint64_t arg) noexcept {
    if (begin_ != 0) arg_ = arg;
  }

private:
  std::uint64_t begin_ = 0;  ///< 0 = not armed (disabled or unsampled)
  std::uint64_t arg_ = 0;
  std::uint32_t nameId_ = 0;
};

}  // namespace tp::obs

// ---------------------------------------------------------------------------
// Macro API. `name` must be a string literal (the id is interned once
// per site in a function-local static); `arg` must be side-effect-free
// (it is not evaluated when tracing is compiled out or disabled).

#define TP_OBS_CAT_(a, b) a##b
#define TP_OBS_CAT(a, b) TP_OBS_CAT_(a, b)

#if TP_OBS_TRACING

#define TP_OBS_SPAN_IMPL(name, arg, sampled)                             \
  ::tp::obs::ScopedSpan TP_OBS_CAT(tp_obs_span_, __LINE__);              \
  if (::tp::obs::traceRecorder().enabled()) {                            \
    static const std::uint32_t TP_OBS_CAT(tp_obs_nid_, __LINE__) =       \
        ::tp::obs::traceRecorder().internName(name);                     \
    TP_OBS_CAT(tp_obs_span_, __LINE__)                                   \
        .open(TP_OBS_CAT(tp_obs_nid_, __LINE__), (arg), (sampled));      \
  }                                                                      \
  static_assert(true, "")

/// Scoped span, recorded on every pass (cold/slow paths).
#define TP_TRACE_SPAN(name) TP_OBS_SPAN_IMPL(name, 0, false)
#define TP_TRACE_SPAN_ARG(name, arg) TP_OBS_SPAN_IMPL(name, arg, false)
/// Scoped span recorded on the thread's 1-in-N sampling tick only —
/// the required form on warm/hot paths.
#define TP_TRACE_SPAN_SAMPLED(name, arg) TP_OBS_SPAN_IMPL(name, arg, true)

/// Point event (no duration), recorded on every pass.
#define TP_TRACE_INSTANT(name, arg)                                      \
  do {                                                                   \
    if (::tp::obs::traceRecorder().enabled()) {                          \
      static const std::uint32_t tp_obs_nid =                            \
          ::tp::obs::traceRecorder().internName(name);                   \
      ::tp::obs::traceRecorder().record(tp_obs_nid,                      \
                                        ::tp::obs::nowTicks(), 0,        \
                                        (arg));                          \
    }                                                                    \
  } while (0)

#else  // !TP_OBS_TRACING: every macro compiles to nothing.

#define TP_TRACE_SPAN(name) static_assert(true, "")
#define TP_TRACE_SPAN_ARG(name, arg) static_assert(true, "")
#define TP_TRACE_SPAN_SAMPLED(name, arg) static_assert(true, "")
#define TP_TRACE_INSTANT(name, arg) static_assert(true, "")

#endif  // TP_OBS_TRACING
