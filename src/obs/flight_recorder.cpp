#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace tp::obs {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSchema = "tp-postmortem-v1";
constexpr const char* kPrefix = "postmortem-";
constexpr const char* kSuffix = ".json";

std::string fileName(std::uint64_t seq) {
  std::ostringstream os;
  os << kPrefix;
  os.width(8);
  os.fill('0');
  os << seq << kSuffix;
  return os.str();
}

/// Sequence number of a bundle file name; 0 when it is not one.
std::uint64_t sequenceOf(const std::string& name) {
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.compare(0, prefix.size(), prefix) != 0) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return 0;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void appendDouble(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "0";  // JSON has no inf/nan; the bundle must stay parseable
    return;
  }
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
}

void appendEvent(std::ostringstream& os, const HealthEvent& event) {
  os << "{\"seq\":" << event.seq << ",\"ticks\":" << event.ticks
     << ",\"severity\":\"" << severityName(event.severity) << "\",\"rule\":\""
     << escapeJson(event.rule) << "\",\"message\":\""
     << escapeJson(event.message) << "\",\"value\":";
  appendDouble(os, event.value);
  os << ",\"threshold\":";
  appendDouble(os, event.threshold);
  os << ",\"cleared\":" << (event.cleared ? "true" : "false") << "}";
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  TP_REQUIRE(!config_.dir.empty(), "FlightRecorder: needs a directory");
}

std::string FlightRecorder::pathFor(std::uint64_t seq) const {
  return (fs::path(config_.dir) / fileName(seq)).string();
}

std::uint64_t FlightRecorder::highestSequence() const {
  common::MutexLock lock(mutex_);
  std::uint64_t highest = 0;
  if (!fs::exists(config_.dir)) return highest;
  for (const auto& entry : fs::directory_iterator(config_.dir)) {
    highest = std::max(highest, sequenceOf(entry.path().filename().string()));
  }
  return highest;
}

std::size_t FlightRecorder::bundleCount() const {
  common::MutexLock lock(mutex_);
  std::size_t count = 0;
  if (!fs::exists(config_.dir)) return count;
  for (const auto& entry : fs::directory_iterator(config_.dir)) {
    if (sequenceOf(entry.path().filename().string()) != 0) ++count;
  }
  return count;
}

std::uint64_t FlightRecorder::dump(const std::string& reason) {
  // Snapshot the sources BEFORE taking the recorder mutex: none of these
  // reads depend on it, and the trace drain can spin against recording
  // threads. One snapshot feeds both the embedded trace and the
  // kept/dropped accounting, so they agree exactly.
  TraceRecorder::Snapshot traceSnap;
  if (config_.trace != nullptr) traceSnap = config_.trace->snapshot();
  std::string metricsJson =
      config_.metrics != nullptr
          ? config_.metrics->exportJson()
          : std::string(
                "{\"counters\":{},\"gauges\":{},\"histograms\":{},"
                "\"summaries\":{},\"recent_log\":[]}");
  std::vector<HealthEvent> events;
  HealthCounters health;
  if (config_.health != nullptr) {
    events = config_.health->events();
    health = config_.health->counters();
  }

  std::ostringstream os;
  os << "{\"schema\":\"" << kSchema << "\"";
  os << ",\"reason\":\"" << escapeJson(reason) << "\"";
  os << ",\"ticks\":" << nowTicks();
  os << ",\"kept_events\":" << traceSnap.totalEvents;
  os << ",\"dropped_events\":" << traceSnap.totalDropped;
  os << ",\"health_events\":[";
  bool first = true;
  for (const HealthEvent& event : events) {
    if (!first) os << ",";
    first = false;
    appendEvent(os, event);
  }
  os << "],\"health_counters\":{\"evaluations\":" << health.evaluations
     << ",\"firings\":" << health.firings
     << ",\"events_emitted\":" << health.eventsEmitted
     << ",\"events_cleared\":" << health.eventsCleared
     << ",\"suppressed_firings\":" << health.suppressedFirings
     << ",\"rule_errors\":" << health.ruleErrors << "}";
  os << ",\"metrics\":" << metricsJson;
  os << ",\"trace\":";
  std::ostringstream traceOs;
  TraceRecorder::writeChromeTrace(traceOs, traceSnap);
  os << traceOs.str();

  common::MutexLock lock(mutex_);
  std::uint64_t seq = 0;
  fs::create_directories(config_.dir);
  for (const auto& entry : fs::directory_iterator(config_.dir)) {
    seq = std::max(seq, sequenceOf(entry.path().filename().string()));
  }
  ++seq;
  os << ",\"seq\":" << seq << "}\n";

  // tmp+rename: a bundle is either absent or complete, never torn — a
  // crash mid-write leaves only the tmp file behind.
  const fs::path finalPath = fs::path(config_.dir) / fileName(seq);
  const fs::path tmpPath = finalPath.string() + ".tmp";
  {
    std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
    TP_REQUIRE(out.good(),
               "FlightRecorder: cannot open '" << tmpPath.string() << "'");
    out << os.str();
    out.flush();
    TP_REQUIRE(out.good(),
               "FlightRecorder: write to '" << tmpPath.string() << "' failed");
  }
  fs::rename(tmpPath, finalPath);

  if (config_.keepLast > 0) {
    std::vector<std::uint64_t> seqs;
    for (const auto& entry : fs::directory_iterator(config_.dir)) {
      const std::uint64_t s = sequenceOf(entry.path().filename().string());
      if (s != 0) seqs.push_back(s);
    }
    std::sort(seqs.begin(), seqs.end());
    while (seqs.size() > config_.keepLast) {
      fs::remove(fs::path(config_.dir) / fileName(seqs.front()));
      seqs.erase(seqs.begin());
    }
  }
  return seq;
}

void FlightRecorder::attach() {
  TP_REQUIRE(config_.health != nullptr,
             "FlightRecorder: attach() needs a HealthMonitor source");
  const Severity bar = config_.dumpAtOrAbove;
  config_.health->onEvent([this, bar](const HealthEvent& event) {
    if (event.cleared) return;
    if (static_cast<int>(event.severity) < static_cast<int>(bar)) return;
    dump("health: " + event.rule);
  });
}

}  // namespace tp::obs
