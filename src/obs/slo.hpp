#pragma once

// tp::obs SLO tracker: sliding-window latency quantiles + error-budget
// burn rate, the judgment layer on top of the raw log-bucketed
// Histogram.
//
// Structure: a ring of K sub-windows, each covering windowSeconds/K of
// wall time on the obs::Clock timebase. A sub-window holds the same
// striped log-bucketed state as obs::Histogram (per-stripe seqlock, one
// CAS claim on the caller's own stripe) plus exact violation counters
// against the configured latency targets. record() maps nowTicks() to a
// slice id; the sub-window at slice % K is lazily rotated (zeroed and
// restamped) by the first recorder to enter a new slice, so there is no
// timer thread and an idle tracker costs nothing. report() merges the
// sub-windows whose slice falls inside the horizon — so quantiles and
// burn rate always cover the last ~windowSeconds, with sub-window
// granularity.
//
// Record-path discipline (the PR 5/7 striping rules):
//   - recording claims only the caller's own stripe (one CAS), exactly
//     like Histogram::record — uncontended except against a concurrent
//     report() drain or a rotation;
//   - rotation is guarded by a per-sub-window ClaimGuard flag; the loser
//     of a rotation race records into whichever slice the winner
//     publishes. At a slice boundary that can mis-attribute a sample by
//     one slice width (documented skew, bounded by one sub-window) —
//     never a torn or lost count;
//   - report() claims each stripe in turn for a per-stripe-consistent
//     copy and re-checks the sub-window's slice stamp afterwards,
//     dropping the copy if a rotation landed mid-read.
//
// Semantics: a sample "violates" a target when it exceeds it. The error
// budget of a p99 target is the classic 1% (p99.9: 0.1%); burn rate is
// the observed violation fraction divided by the budget, so burn > 1
// means the budget is exhausted over the window and the SLO is
// breached. Quantile estimates inherit Histogram's bucket upper-bound
// contract (over-estimate by at most 2x); violation counts are exact.

#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/striped.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace tp::obs {

struct SloConfig {
  /// Sliding horizon covered by report(); <= 0 disables the tracker.
  double windowSeconds = 10.0;
  /// Ring granularity: the horizon advances in windowSeconds/subWindows
  /// steps. Must be >= 2 (one live slice + history).
  std::size_t subWindows = 8;
  /// Latency targets in seconds; 0 leaves a target unset. A p99 target
  /// carries a 1% error budget, a p99.9 target 0.1%.
  double targetP99Seconds = 0.0;
  double targetP999Seconds = 0.0;
  /// Below this many samples in the window the tracker never reports a
  /// breach (cold starts and idle periods must not page anyone).
  std::uint64_t minSamples = 100;
  /// Stripes per sub-window; 0 = common::defaultStripes(). Memory is
  /// subWindows * stripes * ~0.6 KiB — shrink for per-machine trackers.
  std::size_t stripes = 0;

  /// Whether a tracker built from this config would do anything useful.
  bool enabled() const noexcept {
    return windowSeconds > 0.0 && subWindows >= 2 &&
           (targetP99Seconds > 0.0 || targetP999Seconds > 0.0);
  }
};

class SloTracker {
public:
  /// Slice stamp of a sub-window that has never held samples.
  static constexpr std::uint64_t kIdleSlice = ~std::uint64_t{0};

  explicit SloTracker(SloConfig config);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Record one served-request latency at the current clock tick.
  void record(std::uint64_t latencyNs) { record(latencyNs, nowTicks()); }
  /// Deterministic-time seam (tests pin rollover boundaries exactly).
  void record(std::uint64_t latencyNs, std::uint64_t atTicks);

  /// One merged sub-window: the mergeable unit report() is built from.
  /// merge() combines histogram + violation counts; it is associative
  /// and commutative (bucket-wise sums), so merge order never matters.
  /// The slice stamp describes THIS snapshot's origin and is left
  /// untouched by merge().
  struct WindowSnapshot {
    std::uint64_t slice = kIdleSlice;
    Histogram::Snapshot hist;
    std::uint64_t violationsP99 = 0;
    std::uint64_t violationsP999 = 0;
    void merge(const WindowSnapshot& other) noexcept;
  };

  struct Report {
    std::uint64_t count = 0;
    double meanSeconds = 0.0;
    double p50Seconds = 0.0;
    double p99Seconds = 0.0;
    double p999Seconds = 0.0;
    std::uint64_t violationsP99 = 0;
    std::uint64_t violationsP999 = 0;
    /// Violation fraction / error budget; > 1 = budget exhausted. 0 when
    /// the matching target is unset or the window is empty.
    double burnRateP99 = 0.0;
    double burnRateP999 = 0.0;
    /// True when count >= minSamples and a configured budget is burning
    /// past 1.0.
    bool breached = false;
    double windowSeconds = 0.0;   ///< configured horizon
    std::size_t subWindowsMerged = 0;
  };
  Report report() const { return reportAt(nowTicks()); }
  Report reportAt(std::uint64_t atTicks) const;

  /// The live (in-horizon) sub-window snapshots at a given tick, oldest
  /// slice first. report() is exactly the fold of merge() over these —
  /// exposed so tests can pin merge associativity and rollover edges.
  std::vector<WindowSnapshot> liveSubWindows(std::uint64_t atTicks) const;

  const SloConfig& config() const noexcept { return config_; }
  /// Width of one sub-window in clock ticks (ns).
  std::uint64_t sliceTicks() const noexcept { return sliceTicks_; }

private:
  struct alignas(common::kCacheLineBytes) Stripe {
    std::atomic<std::uint32_t> seq{0};  ///< odd = writer/reader inside
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t violationsP99 = 0;
    std::uint64_t violationsP999 = 0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };
  struct SubWindow {
    /// Slice id currently held; kIdleSlice until first rotation.
    std::atomic<std::uint64_t> slice{kIdleSlice};
    /// Rotation ownership flag (ClaimGuard CAS; losers skip).
    std::atomic<std::uint32_t> rotateBusy{0};
    std::vector<Stripe> stripes;
  };

  void rotate(SubWindow& sub, std::uint64_t slice)
      TP_LOCK_FREE_AUDITED(
          "rotation owns the sub-window via a ClaimGuard CAS and zeroes "
          "each stripe under its own seqlock before the release store of "
          "the new slice stamp; racing recorders skip and land in the "
          "published slice (bounded one-slice skew); TSan: test_health "
          "SloTracker.ConcurrentRecordWhileRotateKeepsTotalsSane");
  /// Per-stripe-consistent copy of one sub-window, slice re-checked
  /// after the copy; slice == kIdleSlice when it raced a rotation out.
  WindowSnapshot snapshotSub(SubWindow& sub) const
      TP_LOCK_FREE_AUDITED(
          "claims each stripe's seqlock in turn, then re-checks the "
          "sub-window slice stamp (acquire) and discards the copy if a "
          "rotation landed mid-read; TSan: test_health "
          "SloTracker.ConcurrentRecordWhileRotateKeepsTotalsSane");

  SloConfig config_;
  std::uint64_t sliceTicks_ = 1;
  std::uint64_t targetP99Ticks_ = 0;   ///< 0 = target unset
  std::uint64_t targetP999Ticks_ = 0;
  mutable std::vector<SubWindow> subs_;
};

}  // namespace tp::obs
