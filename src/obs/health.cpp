#include "obs/health.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace tp::obs {

const char* severityName(Severity severity) noexcept {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Critical: return "critical";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(std::size_t historyCapacity)
    : historyCapacity_(historyCapacity == 0 ? 1 : historyCapacity) {}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::addRule(DetectorRule rule) {
  TP_REQUIRE(!rule.name.empty(), "HealthMonitor: rule needs a name");
  TP_REQUIRE(rule.evaluate != nullptr,
             "HealthMonitor: rule '" << rule.name << "' has no evaluate fn");
  TP_REQUIRE(rule.triggerAfter >= 1 && rule.clearAfter >= 1,
             "HealthMonitor: rule '" << rule.name
                                     << "' needs triggerAfter/clearAfter >= 1");
  common::MutexLock lock(mutex_);
  for (const RuleState& state : rules_) {
    TP_REQUIRE(state.rule.name != rule.name,
               "HealthMonitor: duplicate rule '" << rule.name << "'");
  }
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
}

std::size_t HealthMonitor::removeRulesByPrefix(const std::string& prefix) {
  common::MutexLock lock(mutex_);
  const std::size_t before = rules_.size();
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const RuleState& state) {
                                return state.rule.name.compare(
                                           0, prefix.size(), prefix) == 0;
                              }),
               rules_.end());
  return before - rules_.size();
}

std::size_t HealthMonitor::ruleCount() const {
  common::MutexLock lock(mutex_);
  return rules_.size();
}

std::size_t HealthMonitor::evaluateOnce() {
  std::vector<HealthEvent> emitted;
  std::function<void(const HealthEvent&)> callback;
  {
    common::MutexLock lock(mutex_);
    ++counters_.evaluations;
    for (RuleState& state : rules_) {
      std::optional<Firing> firing;
      try {
        firing = state.rule.evaluate();
      } catch (const std::exception& e) {
        ++counters_.ruleErrors;
        TP_WARN("HealthMonitor: rule '" << state.rule.name
                                        << "' threw: " << e.what());
        continue;
      } catch (...) {
        ++counters_.ruleErrors;
        TP_WARN("HealthMonitor: rule '" << state.rule.name << "' threw");
        continue;
      }
      if (firing.has_value()) {
        ++counters_.firings;
        ++state.firingStreak;
        state.quietStreak = 0;
        state.lastFiring = *firing;
        if (state.active) {
          ++counters_.suppressedFirings;
        } else if (state.firingStreak >= state.rule.triggerAfter) {
          state.active = true;
          HealthEvent event;
          event.seq = ++nextSeq_;
          event.ticks = nowTicks();
          event.severity = state.rule.severity;
          event.rule = state.rule.name;
          event.message = firing->message;
          event.value = firing->value;
          event.threshold = firing->threshold;
          ++counters_.eventsEmitted;
          history_.push_back(event);
          emitted.push_back(std::move(event));
        }
      } else {
        state.firingStreak = 0;
        if (state.active && ++state.quietStreak >= state.rule.clearAfter) {
          state.active = false;
          state.quietStreak = 0;
          HealthEvent event;
          event.seq = ++nextSeq_;
          event.ticks = nowTicks();
          event.severity = Severity::Info;
          event.rule = state.rule.name;
          event.message = "recovered";
          event.value = state.lastFiring.value;
          event.threshold = state.lastFiring.threshold;
          event.cleared = true;
          ++counters_.eventsCleared;
          history_.push_back(event);
          emitted.push_back(std::move(event));
        }
      }
    }
    while (history_.size() > historyCapacity_) history_.pop_front();
    callback = callback_;
  }
  // Outside the mutex: the callback may read the monitor (the flight
  // recorder snapshots event history from here).
  if (callback) {
    for (const HealthEvent& event : emitted) callback(event);
  }
  return emitted.size();
}

void HealthMonitor::start(double periodSeconds) {
  TP_REQUIRE(periodSeconds > 0.0,
             "HealthMonitor: period must be positive, got " << periodSeconds);
  common::MutexLock lock(mutex_);
  TP_REQUIRE(!thread_.joinable(), "HealthMonitor: already started");
  stopRequested_ = false;
  thread_ = std::thread([this, periodSeconds] { runLoop(periodSeconds); });
}

void HealthMonitor::stop() {
  std::thread worker;
  {
    common::MutexLock lock(mutex_);
    if (!thread_.joinable()) return;
    stopRequested_ = true;
    stopCv_.notify_all();
    worker = std::move(thread_);
  }
  worker.join();
}

bool HealthMonitor::running() const {
  common::MutexLock lock(mutex_);
  return thread_.joinable();
}

void HealthMonitor::runLoop(double periodSeconds) {
  const auto period = std::chrono::duration<double>(periodSeconds);
  for (;;) {
    {
      common::MutexLock lock(mutex_);
      if (stopRequested_) return;
    }
    evaluateOnce();
    common::MutexLock lock(mutex_);
    while (!stopRequested_) {
      if (stopCv_.wait_for(mutex_, period) == std::cv_status::timeout) break;
    }
    if (stopRequested_) return;
  }
}

void HealthMonitor::onEvent(std::function<void(const HealthEvent&)> callback) {
  common::MutexLock lock(mutex_);
  callback_ = std::move(callback);
}

std::vector<HealthEvent> HealthMonitor::events() const {
  common::MutexLock lock(mutex_);
  return std::vector<HealthEvent>(history_.begin(), history_.end());
}

HealthCounters HealthMonitor::counters() const {
  common::MutexLock lock(mutex_);
  return counters_;
}

}  // namespace tp::obs
