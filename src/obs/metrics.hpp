#pragma once

// tp::obs metrics registry: named counters, gauges and log-bucketed
// latency histograms, with JSON and Prometheus-style text exposition.
//
// Two kinds of entries share one namespace:
//
//   - OWNED instruments, created on first use (counter()/gauge()/
//     histogram()) and recorded through the returned reference. The hot
//     write paths reuse the common/striped machinery: counters are
//     common::StripedCounter, histograms stripe per thread with the same
//     per-stripe seqlock snapshot discipline as LatencyRecorder.
//   - EXTERNAL readouts (registerCounter()/registerGauge()/
//     registerHistogram()/registerSummary()): callbacks sampling state a
//     subsystem already maintains. This is how PartitionService exposes
//     its existing StripedCounters and LatencyRecorder without double
//     accounting — the service's counters stay the single source of
//     truth, the registry reads them at exposition time.
//
// Registration/exposition take the registry mutex; recording through an
// owned instrument reference never does. Readout callbacks run under the
// registry mutex: they must not call back into the registry, and any
// lock they take must never be held around a registry call.
//
// Lifecycle: references returned by counter()/gauge()/histogram() stay
// valid until removeByPrefix() removes the entry. Components register
// under a unique prefix and remove it on destruction (readout callbacks
// capture `this`), so prefixes double as ownership scopes.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/striped.hpp"

namespace tp::obs {

/// Last-write-wins double value (model versions, hit rates, sizes).
class Gauge {
public:
  void set(double v) noexcept
      TP_LOCK_FREE_AUDITED(
          "relaxed last-write-wins word, no payload ordered behind it; "
          "TSan: test_obs Registry.OwnedInstrumentsAndExposition") {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double v) noexcept { common::atomicAdd(value_, v); }
  double value() const noexcept
      TP_LOCK_FREE_AUDITED(
          "relaxed read of the last-write-wins word, see set(); TSan: "
          "test_obs Registry.OwnedInstrumentsAndExposition") {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed u64 histogram (bucket b holds values with bit_width b:
/// [2^(b-1), 2^b - 1]; bucket 0 holds exactly 0). Values are typically
/// nanoseconds; 64 power-of-two buckets span 1ns..584 years. Striped per
/// thread: record() claims the caller's own stripe with one CAS (the
/// seqlock discipline of common/striped), so snapshots are per-stripe
/// consistent — count, sum and buckets of one stripe always agree.
class Histogram {
public:
  static constexpr std::size_t kBuckets = 65;

  explicit Histogram(std::size_t stripes = 0);  ///< 0 = auto
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value)
      TP_LOCK_FREE_AUDITED(
          "per-stripe seqlock: one CAS claim on the caller's own stripe, "
          "release publish; TSan: test_obs "
          "Histogram.ConcurrentRecordAndSnapshotAgree");

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Associative, commutative bucket-wise sum (merge-order free).
    void merge(const Snapshot& other) noexcept;
    double mean() const noexcept;
    /// Upper bound of the bucket holding rank ceil(q * count); 0 when
    /// empty. An over-estimate by at most 2x (the bucket width).
    std::uint64_t quantile(double q) const noexcept;
  };
  Snapshot snapshot() const
      TP_LOCK_FREE_AUDITED(
          "claims each stripe's seqlock in turn for a per-stripe-atomic "
          "copy; TSan: test_obs Histogram.ConcurrentRecordAndSnapshot"
          "Agree");

  static std::size_t bucketIndex(std::uint64_t value) noexcept {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  }
  static std::uint64_t bucketUpperBound(std::size_t bucket) noexcept {
    if (bucket == 0) return 0;
    if (bucket >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << bucket) - 1;
  }

private:
  struct alignas(common::kCacheLineBytes) Stripe {
    std::atomic<std::uint32_t> seq{0};  ///< odd = writer/reader inside
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  mutable std::vector<Stripe> stripes_;
};

/// Pre-digested distribution readout (seconds-domain), the shape
/// LatencyRecorder::Summary already has.
struct SummarySnapshot {
  std::uint64_t count = 0;
  double meanSeconds = 0.0;
  double maxSeconds = 0.0;
  double p50Seconds = 0.0;
  double p95Seconds = 0.0;
};

class Registry {
public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registered names must match [a-zA-Z_][a-zA-Z0-9_.:]* — dots are the
  /// project's namespacing convention and map to '_' in the Prometheus
  /// exposition. Every registration path validates and throws tp::Error
  /// on a name that would sanitize ambiguously (spaces, dashes, empty).
  static bool validName(const std::string& name) noexcept;

  /// Owned instruments, created on first use. Throws tp::Error when the
  /// name is already registered as a different kind.
  common::StripedCounter& counter(const std::string& name)
      TP_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) TP_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, std::size_t stripes = 0)
      TP_EXCLUDES(mutex_);

  /// External readouts, sampled at exposition time. Re-registering a
  /// name replaces its callback.
  void registerCounter(const std::string& name,
                       std::function<std::uint64_t()> read)
      TP_EXCLUDES(mutex_);
  void registerGauge(const std::string& name, std::function<double()> read)
      TP_EXCLUDES(mutex_);
  void registerHistogram(const std::string& name,
                         std::function<Histogram::Snapshot()> read)
      TP_EXCLUDES(mutex_);
  void registerSummary(const std::string& name,
                       std::function<SummarySnapshot()> read)
      TP_EXCLUDES(mutex_);

  /// Attach a # HELP string to a metric (exposition metadata; the name
  /// itself is emitted when unset). May be called before or after the
  /// instrument exists; removed with the entry by removeByPrefix().
  void setHelp(const std::string& name, const std::string& help)
      TP_EXCLUDES(mutex_);

  /// Drop every entry whose name starts with `prefix` (a component
  /// unhooking its readouts before destruction). Returns the number
  /// removed. Invalidates owned-instrument references under the prefix.
  std::size_t removeByPrefix(const std::string& prefix) TP_EXCLUDES(mutex_);

  std::size_t size() const TP_EXCLUDES(mutex_);

  /// One JSON object: counters/gauges/histograms/summaries keyed by
  /// name, plus (by default) the common/log recent-events tap.
  std::string exportJson(bool includeRecentLog = true) const
      TP_EXCLUDES(mutex_);
  /// Prometheus text exposition (names sanitized, tp_ prefixed): a
  /// # HELP and # TYPE line per metric, cumulative _bucket{le=}/+Inf
  /// plus _sum/_count series for histograms, {quantile=} series plus
  /// _sum/_count for summaries.
  std::string exportPrometheus() const TP_EXCLUDES(mutex_);

private:
  struct Entry {
    /// Exposition metadata, orthogonal to the kind (may be set before
    /// the instrument registers).
    std::string help;
    // Exactly one instrument member is set; the entry's kind follows
    // from which.
    std::unique_ptr<common::StripedCounter> ownedCounter;
    std::unique_ptr<Gauge> ownedGauge;
    std::unique_ptr<Histogram> ownedHistogram;
    std::function<std::uint64_t()> counterFn;
    std::function<double()> gaugeFn;
    std::function<Histogram::Snapshot()> histogramFn;
    std::function<SummarySnapshot()> summaryFn;
  };

  /// Reset `name`'s instrument for re-registration, preserving help.
  Entry& resetEntry(const std::string& name) TP_REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  std::map<std::string, Entry> entries_ TP_GUARDED_BY(mutex_);
};

/// Process-wide registry for tools that expose one exposition endpoint
/// (benches, examples). Libraries take a Registry* instead.
Registry& defaultRegistry();

}  // namespace tp::obs
