#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace tp::obs {

namespace {

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void appendDouble(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "0";  // JSON has no inf/nan; exposition must stay parseable
    return;
  }
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string promName(const std::string& name) {
  std::string out = "tp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// # HELP text: the exposition format escapes backslash and newline.
std::string escapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// One # HELP + # TYPE preamble (the name doubles as default help).
void promPreamble(std::ostringstream& os, const std::string& metric,
                  const std::string& name, const std::string& help,
                  const char* type) {
  os << "# HELP " << metric << " "
     << escapeHelp(help.empty() ? name : help) << "\n";
  os << "# TYPE " << metric << " " << type << "\n";
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::size_t stripes)
    : stripes_(stripes == 0 ? common::defaultStripes() : stripes) {}

void Histogram::record(std::uint64_t value) {
  Stripe& stripe = stripes_[common::threadStripe(stripes_.size())];
  const std::uint32_t claimed = common::seqClaim(stripe.seq);
  ++stripe.count;
  stripe.sum += value;
  ++stripe.buckets[bucketIndex(value)];
  common::seqRelease(stripe.seq, claimed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (Stripe& stripe : stripes_) {
    const std::uint32_t claimed = common::seqClaim(stripe.seq);
    snap.count += stripe.count;
    snap.sum += stripe.sum;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += stripe.buckets[b];
    }
    common::seqRelease(stripe.seq, claimed);
  }
  return snap;
}

void Histogram::Snapshot::merge(const Snapshot& other) noexcept {
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
}

double Histogram::Snapshot::mean() const noexcept {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

std::uint64_t Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) return bucketUpperBound(b);
  }
  return bucketUpperBound(kBuckets - 1);
}

// ---------------------------------------------------------------------------
// Registry

bool Registry::validName(const std::string& name) noexcept {
  if (name.empty()) return false;
  const char first = name.front();
  const bool firstOk = (first >= 'a' && first <= 'z') ||
                       (first >= 'A' && first <= 'Z') || first == '_';
  if (!firstOk) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':';
    if (!ok) return false;
  }
  return true;
}

namespace {

void requireValidName(const std::string& name) {
  TP_REQUIRE(Registry::validName(name),
             "Registry: invalid metric name '"
                 << name << "' (want [a-zA-Z_][a-zA-Z0-9_.:]*)");
}

}  // namespace

common::StripedCounter& Registry::counter(const std::string& name) {
  requireValidName(name);
  common::MutexLock lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.ownedCounter == nullptr) {
    TP_REQUIRE(!entry.ownedGauge && !entry.ownedHistogram &&
                   !entry.counterFn && !entry.gaugeFn && !entry.histogramFn &&
                   !entry.summaryFn,
               "Registry: '" << name
                             << "' is already registered as another kind");
    entry.ownedCounter = std::make_unique<common::StripedCounter>();
  }
  return *entry.ownedCounter;
}

Gauge& Registry::gauge(const std::string& name) {
  requireValidName(name);
  common::MutexLock lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.ownedGauge == nullptr) {
    TP_REQUIRE(!entry.ownedCounter && !entry.ownedHistogram &&
                   !entry.counterFn && !entry.gaugeFn && !entry.histogramFn &&
                   !entry.summaryFn,
               "Registry: '" << name
                             << "' is already registered as another kind");
    entry.ownedGauge = std::make_unique<Gauge>();
  }
  return *entry.ownedGauge;
}

Histogram& Registry::histogram(const std::string& name, std::size_t stripes) {
  requireValidName(name);
  common::MutexLock lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.ownedHistogram == nullptr) {
    TP_REQUIRE(!entry.ownedCounter && !entry.ownedGauge && !entry.counterFn &&
                   !entry.gaugeFn && !entry.histogramFn && !entry.summaryFn,
               "Registry: '" << name
                             << "' is already registered as another kind");
    entry.ownedHistogram = std::make_unique<Histogram>(stripes);
  }
  return *entry.ownedHistogram;
}

Registry::Entry& Registry::resetEntry(const std::string& name) {
  // Re-registering replaces the instrument but keeps the help metadata.
  Entry& entry = entries_[name];
  std::string help = std::move(entry.help);
  entry = Entry{};
  entry.help = std::move(help);
  return entry;
}

void Registry::registerCounter(const std::string& name,
                               std::function<std::uint64_t()> read) {
  requireValidName(name);
  common::MutexLock lock(mutex_);
  resetEntry(name).counterFn = std::move(read);
}

void Registry::registerGauge(const std::string& name,
                             std::function<double()> read) {
  requireValidName(name);
  common::MutexLock lock(mutex_);
  resetEntry(name).gaugeFn = std::move(read);
}

void Registry::registerHistogram(const std::string& name,
                                 std::function<Histogram::Snapshot()> read) {
  requireValidName(name);
  common::MutexLock lock(mutex_);
  resetEntry(name).histogramFn = std::move(read);
}

void Registry::registerSummary(const std::string& name,
                               std::function<SummarySnapshot()> read) {
  requireValidName(name);
  common::MutexLock lock(mutex_);
  resetEntry(name).summaryFn = std::move(read);
}

void Registry::setHelp(const std::string& name, const std::string& help) {
  requireValidName(name);
  common::MutexLock lock(mutex_);
  entries_[name].help = help;
}

std::size_t Registry::removeByPrefix(const std::string& prefix) {
  common::MutexLock lock(mutex_);
  std::size_t removed = 0;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = entries_.erase(it);
    ++removed;
  }
  return removed;
}

std::size_t Registry::size() const {
  common::MutexLock lock(mutex_);
  return entries_.size();
}

std::string Registry::exportJson(bool includeRecentLog) const {
  common::MutexLock lock(mutex_);
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  std::ostringstream summaries;
  bool firstCounter = true;
  bool firstGauge = true;
  bool firstHistogram = true;
  bool firstSummary = true;
  for (const auto& [name, entry] : entries_) {
    const std::string key = "\"" + escapeJson(name) + "\":";
    if (entry.ownedCounter != nullptr || entry.counterFn) {
      if (!firstCounter) counters << ",";
      firstCounter = false;
      const std::uint64_t v = entry.ownedCounter != nullptr
                                  ? entry.ownedCounter->total()
                                  : entry.counterFn();
      counters << key << v;
    } else if (entry.ownedGauge != nullptr || entry.gaugeFn) {
      if (!firstGauge) gauges << ",";
      firstGauge = false;
      const double v = entry.ownedGauge != nullptr ? entry.ownedGauge->value()
                                                   : entry.gaugeFn();
      gauges << key;
      appendDouble(gauges, v);
    } else if (entry.ownedHistogram != nullptr || entry.histogramFn) {
      if (!firstHistogram) histograms << ",";
      firstHistogram = false;
      const Histogram::Snapshot snap = entry.ownedHistogram != nullptr
                                           ? entry.ownedHistogram->snapshot()
                                           : entry.histogramFn();
      histograms << key << "{\"count\":" << snap.count
                 << ",\"sum\":" << snap.sum << ",\"mean\":";
      appendDouble(histograms, snap.mean());
      histograms << ",\"p50\":" << snap.quantile(0.50)
                 << ",\"p90\":" << snap.quantile(0.90)
                 << ",\"p99\":" << snap.quantile(0.99) << ",\"buckets\":[";
      bool firstBucket = true;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (snap.buckets[b] == 0) continue;
        if (!firstBucket) histograms << ",";
        firstBucket = false;
        histograms << "[" << Histogram::bucketUpperBound(b) << ","
                   << snap.buckets[b] << "]";
      }
      histograms << "]}";
    } else if (entry.summaryFn) {
      if (!firstSummary) summaries << ",";
      firstSummary = false;
      const SummarySnapshot snap = entry.summaryFn();
      summaries << key << "{\"count\":" << snap.count << ",\"mean_seconds\":";
      appendDouble(summaries, snap.meanSeconds);
      summaries << ",\"max_seconds\":";
      appendDouble(summaries, snap.maxSeconds);
      summaries << ",\"p50_seconds\":";
      appendDouble(summaries, snap.p50Seconds);
      summaries << ",\"p95_seconds\":";
      appendDouble(summaries, snap.p95Seconds);
      summaries << "}";
    }
  }

  std::ostringstream os;
  os << "{\"counters\":{" << counters.str() << "},\"gauges\":{"
     << gauges.str() << "},\"histograms\":{" << histograms.str()
     << "},\"summaries\":{" << summaries.str() << "}";
  if (includeRecentLog) {
    os << ",\"recent_log\":[";
    bool first = true;
    for (const common::LogRecord& rec : common::recentLogRecords()) {
      if (!first) os << ",";
      first = false;
      os << "{\"level\":\"" << common::logLevelName(rec.level)
         << "\",\"seq\":" << rec.seq << ",\"message\":\""
         << escapeJson(rec.message) << "\"}";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::string Registry::exportPrometheus() const {
  common::MutexLock lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, entry] : entries_) {
    const std::string metric = promName(name);
    if (entry.ownedCounter != nullptr || entry.counterFn) {
      const std::uint64_t v = entry.ownedCounter != nullptr
                                  ? entry.ownedCounter->total()
                                  : entry.counterFn();
      promPreamble(os, metric, name, entry.help, "counter");
      os << metric << " " << v << "\n";
    } else if (entry.ownedGauge != nullptr || entry.gaugeFn) {
      const double v = entry.ownedGauge != nullptr ? entry.ownedGauge->value()
                                                   : entry.gaugeFn();
      promPreamble(os, metric, name, entry.help, "gauge");
      os << metric << " " << v << "\n";
    } else if (entry.ownedHistogram != nullptr || entry.histogramFn) {
      const Histogram::Snapshot snap = entry.ownedHistogram != nullptr
                                           ? entry.ownedHistogram->snapshot()
                                           : entry.histogramFn();
      promPreamble(os, metric, name, entry.help, "histogram");
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (snap.buckets[b] == 0) continue;
        cumulative += snap.buckets[b];
        os << metric << "_bucket{le=\"" << Histogram::bucketUpperBound(b)
           << "\"} " << cumulative << "\n";
      }
      os << metric << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
      os << metric << "_sum " << snap.sum << "\n";
      os << metric << "_count " << snap.count << "\n";
    } else if (entry.summaryFn) {
      const SummarySnapshot snap = entry.summaryFn();
      promPreamble(os, metric, name, entry.help, "summary");
      os << metric << "{quantile=\"0.5\"} " << snap.p50Seconds << "\n";
      os << metric << "{quantile=\"0.95\"} " << snap.p95Seconds << "\n";
      os << metric << "_sum "
         << snap.meanSeconds * static_cast<double>(snap.count) << "\n";
      os << metric << "_count " << snap.count << "\n";
    }
  }
  return os.str();
}

Registry& defaultRegistry() {
  static Registry instance;
  return instance;
}

}  // namespace tp::obs
