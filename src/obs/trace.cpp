#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/striped.hpp"

namespace tp::obs {

namespace {

/// Minimal JSON string escaper (names are identifiers in practice, but
/// the format must stay loadable whatever a caller interns).
std::string escapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

/// One recording thread's ring for one capture session. The seqlock
/// word is the only synchronization: the owning thread claims it to
/// write a slot, snapshot() claims it to copy the ring. All other
/// fields are plain — they are only ever touched under the claim.
struct TraceRecorder::ThreadBuffer {
  std::atomic<std::uint32_t> seq{0};  ///< odd = writer or drain inside
  std::uint32_t tid = 0;
  std::uint64_t epoch = 0;
  std::vector<TraceEvent> ring;  ///< preallocated to the session capacity
  std::uint64_t head = 0;        ///< events ever recorded; next slot head%cap
  std::uint64_t dropped = 0;     ///< exact overwrite count
};

TraceRecorder::TraceRecorder() = default;
TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::enable(Config config) {
  common::MutexLock lock(mutex_);
  // Retire the previous session's buffers instead of freeing them: a
  // writer that cached a buffer pointer across the epoch bump may still
  // complete one stale record into it, which must stay harmless. Retired
  // buffers are invisible to snapshot().
  for (auto& buffer : buffers_) {
    retired_.push_back(std::move(buffer));
  }
  buffers_.clear();
  ringCapacity_ = std::max<std::size_t>(config.ringCapacity, 2);
  sampleEveryN_.store(std::max<std::uint32_t>(1, config.sampleEveryN),
                      std::memory_order_relaxed);
  baseTicks_.store(nowTicks(), std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

std::uint32_t TraceRecorder::internName(std::string_view name) {
  common::MutexLock lock(mutex_);
  const auto it = nameIds_.find(name);
  if (it != nameIds_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  nameIds_.emplace(std::string(name), id);
  return id;
}

TraceRecorder::ThreadBuffer* TraceRecorder::threadBuffer(std::uint64_t epoch) {
  struct Cached {
    const TraceRecorder* owner = nullptr;
    std::uint64_t epoch = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cached cached;
  if (cached.owner == this && cached.epoch == epoch) return cached.buffer;

  common::MutexLock lock(mutex_);
  if (epoch != epoch_.load(std::memory_order_relaxed)) {
    // Raced an enable(): the caller's epoch is already stale. Drop the
    // event rather than file it under the wrong session.
    return nullptr;
  }
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(common::threadOrdinal());
  buffer->epoch = epoch;
  buffer->ring.resize(ringCapacity_);
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  cached = Cached{this, epoch, raw};
  return raw;
}

void TraceRecorder::record(std::uint32_t nameId, std::uint64_t begin,
                           std::uint64_t end, std::uint64_t arg) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  ThreadBuffer* buffer = threadBuffer(epoch);
  if (buffer == nullptr) return;
  const std::uint32_t claimed = common::seqClaim(buffer->seq);
  const std::size_t cap = buffer->ring.size();
  if (buffer->head >= cap) ++buffer->dropped;
  buffer->ring[buffer->head % cap] =
      TraceEvent{begin, end, nameId, buffer->tid, arg};
  ++buffer->head;
  common::seqRelease(buffer->seq, claimed);
}

TraceRecorder::Snapshot TraceRecorder::snapshot() const {
  Snapshot snap;
  common::MutexLock lock(mutex_);
  snap.baseTicks = baseTicks_.load(std::memory_order_relaxed);
  snap.names = names_;
  snap.threads.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    ThreadEvents out;
    out.tid = buffer->tid;
    // The claim excludes the owning writer for the duration of the
    // copy; record() spins, it never tears. Drains are rare (end of a
    // session / bench phase), so the stall is acceptable.
    const std::uint32_t claimed = common::seqClaim(buffer->seq);
    out.dropped = buffer->dropped;
    const std::size_t cap = buffer->ring.size();
    const std::size_t kept =
        static_cast<std::size_t>(std::min<std::uint64_t>(buffer->head, cap));
    out.events.reserve(kept);
    const std::uint64_t oldest = buffer->head - kept;
    for (std::size_t i = 0; i < kept; ++i) {
      out.events.push_back(buffer->ring[(oldest + i) % cap]);
    }
    common::seqRelease(buffer->seq, claimed);
    snap.totalEvents += out.events.size();
    snap.totalDropped += out.dropped;
    snap.threads.push_back(std::move(out));
  }
  return snap;
}

void TraceRecorder::writeChromeTrace(std::ostream& os) const {
  writeChromeTrace(os, snapshot());
}

void TraceRecorder::writeChromeTrace(std::ostream& os, const Snapshot& snap) {
  std::vector<TraceEvent> events;
  events.reserve(snap.totalEvents);
  for (const ThreadEvents& thread : snap.threads) {
    events.insert(events.end(), thread.events.begin(), thread.events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.tid != b.tid) return a.tid < b.tid;
              // Ties on one thread: the longer span is the outer one.
              return a.end > b.end;
            });

  const std::ios::fmtflags flags = os.flags();
  os << std::fixed << std::setprecision(3);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    const std::string& name = event.nameId < snap.names.size()
                                  ? snap.names[event.nameId]
                                  : std::string("unknown");
    // Rebase onto the session start so traces open at ts ~0. A stale
    // pre-session tick (clamped to 0) cannot occur in current sessions;
    // guard anyway so the emitted JSON stays schema-valid.
    const std::uint64_t begin =
        event.begin > snap.baseTicks ? event.begin - snap.baseTicks : 0;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escapeJson(name) << "\",";
    if (event.end == 0) {
      os << "\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ticksToMicros(begin);
    } else {
      const std::uint64_t dur = event.end > event.begin
                                    ? event.end - event.begin
                                    : 0;
      os << "\"ph\":\"X\",\"ts\":" << ticksToMicros(begin)
         << ",\"dur\":" << ticksToMicros(dur);
    }
    os << ",\"pid\":1,\"tid\":" << event.tid << ",\"args\":{\"arg\":"
       << event.arg << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << snap.totalDropped << "}}\n";
  os.flags(flags);
}

void TraceRecorder::writeChromeTraceFile(const std::string& path) const {
  std::ofstream os(path);
  TP_REQUIRE(os.good(),
             "TraceRecorder: cannot open trace output '" << path << "'");
  writeChromeTrace(os);
  TP_REQUIRE(os.good(), "TraceRecorder: write to '" << path << "' failed");
}

TraceRecorder& traceRecorder() {
  static TraceRecorder instance;
  return instance;
}

}  // namespace tp::obs
