#include "runtime/compiler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "frontend/parser.hpp"
#include "ir/verify.hpp"

namespace tp::runtime {

CompiledKernel CompiledKernel::compile(const std::string& source) {
  auto state = std::make_shared<State>();
  state->source = source;
  state->kernel = frontend::parseSingleKernel(source);
  ir::verifyKernelOrThrow(*state->kernel);
  state->features = features::extractFeatures(*state->kernel);
  state->accesses = features::analyzeBufferAccesses(*state->kernel);
  return CompiledKernel(std::move(state));
}

const features::BufferAccess& CompiledKernel::accessFor(
    const std::string& param) const {
  for (const auto& a : state_->accesses) {
    if (a.param == param) return a;
  }
  TP_THROW("no buffer access info for parameter '" << param << "'");
}

std::size_t CompiledKernel::blockElemsFor(
    const std::string& param,
    const std::map<std::string, double>& bindings) const {
  const auto& access = accessFor(param);
  TP_REQUIRE(access.kind == features::AccessKind::Split,
             "parameter '" << param << "' is not a split buffer");
  const double value = access.blockSize.eval(bindings);
  TP_REQUIRE(value >= 0.5, "split block for '" << param
                                               << "' evaluates to " << value);
  return static_cast<std::size_t>(std::llround(value));
}

TaskBuilder::TaskBuilder(const CompiledKernel& compiled,
                         std::string programName)
    : compiled_(compiled) {
  task_.programName = std::move(programName);
  task_.kernelName = compiled_.kernel().name();
  task_.features = compiled_.features();
}

TaskBuilder& TaskBuilder::global(std::size_t items) {
  task_.globalSize = items;
  return *this;
}

TaskBuilder& TaskBuilder::local(std::size_t groupSize) {
  task_.localSize = groupSize;
  return *this;
}

TaskBuilder& TaskBuilder::arg(std::shared_ptr<vcl::Buffer> buffer) {
  const auto& params = compiled_.kernel().params();
  TP_REQUIRE(nextParam_ < params.size(), "too many kernel arguments");
  const auto& param = params[nextParam_++];
  TP_REQUIRE(param.type.isPointer(),
             "argument for '" << param.name << "' should be a scalar");

  if (param.type.addrSpace() == ir::AddrSpace::Local) {
    // __local buffers are device-side scratch: no distribution decision.
    BufferArg b;
    b.buffer = std::move(buffer);
    b.access = features::AccessKind::Unused;
    b.isRead = false;
    b.isWritten = false;
    task_.args.emplace_back(std::move(b));
    return *this;
  }

  const auto& access = compiled_.accessFor(param.name);
  BufferArg b;
  b.buffer = std::move(buffer);
  b.access = access.kind;
  b.isWritten = access.isWritten;
  b.isRead = access.isRead;
  task_.args.emplace_back(std::move(b));
  return *this;
}

TaskBuilder& TaskBuilder::arg(int scalar) {
  const auto& params = compiled_.kernel().params();
  TP_REQUIRE(nextParam_ < params.size(), "too many kernel arguments");
  const auto& param = params[nextParam_++];
  TP_REQUIRE(!param.type.isPointer() && param.type.isIntegral(),
             "argument for '" << param.name << "' should be "
                              << param.type.toString());
  // Integer scalars are the problem-size knobs: record them as bindings so
  // the symbolic features can be evaluated for this launch.
  task_.sizeBindings[param.name] = static_cast<double>(scalar);
  task_.args.emplace_back(scalar);
  return *this;
}

TaskBuilder& TaskBuilder::arg(float scalar) {
  const auto& params = compiled_.kernel().params();
  TP_REQUIRE(nextParam_ < params.size(), "too many kernel arguments");
  const auto& param = params[nextParam_++];
  TP_REQUIRE(!param.type.isPointer() && param.type.isFloat(),
             "argument for '" << param.name << "' should be "
                              << param.type.toString());
  task_.args.emplace_back(scalar);
  return *this;
}

TaskBuilder& TaskBuilder::native(vcl::NativeKernel fn) {
  task_.native = std::move(fn);
  return *this;
}

TaskBuilder& TaskBuilder::bind(const std::string& param, double value) {
  task_.sizeBindings[param] = value;
  return *this;
}

TaskBuilder& TaskBuilder::transferAmortization(double iterations) {
  TP_REQUIRE(iterations >= 1.0,
             "transferAmortization: iterations must be >= 1");
  task_.transferScale = 1.0 / iterations;
  return *this;
}

Task TaskBuilder::build() {
  const auto& params = compiled_.kernel().params();
  TP_REQUIRE(nextParam_ == params.size(),
             "kernel '" << task_.kernelName << "' expects " << params.size()
                        << " arguments, got " << nextParam_);
  // Resolve split block sizes now that all bindings are known.
  const auto bindings = task_.fullBindings();
  std::size_t argIndex = 0;
  for (auto& arg : task_.args) {
    const auto& param = params[argIndex++];
    auto* b = std::get_if<BufferArg>(&arg);
    if (b == nullptr || b->access != features::AccessKind::Split) continue;
    b->blockElems = compiled_.blockElemsFor(param.name, bindings);
  }
  task_.validate();
  return std::move(task_);
}

}  // namespace tp::runtime
