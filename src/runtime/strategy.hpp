#pragma once

// Partitioning strategies.
//
//   CpuOnly / GpuOnly  — the paper's two default strategies (Figure 1
//                        baselines).
//   Static             — any fixed point of the space.
//   Oracle             — exhaustive search over the space on the simulator
//                        (the training-label generator; also the upper
//                        bound that predicted partitionings are scored
//                        against).
//   Predicted          — the paper's contribution: an ML model over
//                        static ⊕ runtime features picks the partitioning.

#include <memory>

#include "ml/classifier.hpp"
#include "runtime/scheduler.hpp"

namespace tp::runtime {

class PartitioningStrategy {
public:
  virtual ~PartitioningStrategy() = default;
  /// Pick a partitioning for `task` on the machine behind `context`.
  virtual std::size_t choose(const Task& task, vcl::Context& context,
                             const PartitioningSpace& space) = 0;
  virtual std::string name() const = 0;
};

class CpuOnlyStrategy final : public PartitioningStrategy {
public:
  std::size_t choose(const Task&, vcl::Context&,
                     const PartitioningSpace& space) override {
    return space.cpuOnlyIndex();
  }
  std::string name() const override { return "cpu-only"; }
};

/// All work on one GPU (device index 1 by convention — the paper's
/// GPU-only default uses a single GPU).
class GpuOnlyStrategy final : public PartitioningStrategy {
public:
  explicit GpuOnlyStrategy(std::size_t gpuDevice = 1) : device_(gpuDevice) {}
  std::size_t choose(const Task&, vcl::Context&,
                     const PartitioningSpace& space) override {
    return space.singleDeviceIndex(device_);
  }
  std::string name() const override { return "gpu-only"; }

private:
  std::size_t device_;
};

class StaticStrategy final : public PartitioningStrategy {
public:
  explicit StaticStrategy(std::size_t index) : index_(index) {}
  std::size_t choose(const Task&, vcl::Context&,
                     const PartitioningSpace& space) override {
    TP_REQUIRE(index_ < space.size(), "static partitioning out of range");
    return index_;
  }
  std::string name() const override { return "static"; }

private:
  std::size_t index_;
};

/// Exhaustively simulates every partitioning (TimeOnly) and returns the
/// argmin. With `timings` non-null, also reports the full time vector.
std::size_t oracleSearch(const Task& task, const sim::MachineConfig& machine,
                         const PartitioningSpace& space,
                         std::vector<double>* timings = nullptr);

class OracleStrategy final : public PartitioningStrategy {
public:
  std::size_t choose(const Task& task, vcl::Context& context,
                     const PartitioningSpace& space) override {
    return oracleSearch(task, context.machine(), space);
  }
  std::string name() const override { return "oracle"; }
};

/// The ML-guided strategy (deployment phase of the paper).
class PredictedStrategy final : public PartitioningStrategy {
public:
  explicit PredictedStrategy(std::shared_ptr<const ml::Classifier> model)
      : model_(std::move(model)) {}

  std::size_t choose(const Task& task, vcl::Context&,
                     const PartitioningSpace& space) override {
    TP_REQUIRE(model_ != nullptr, "PredictedStrategy: no model");
    const auto x =
        features::combinedFeatureVector(task.features, task.launchInfo());
    const int label = model_->predict(x);
    TP_REQUIRE(label >= 0 && static_cast<std::size_t>(label) < space.size(),
               "model predicted label " << label << " outside the space");
    return static_cast<std::size_t>(label);
  }
  std::string name() const override { return "predicted"; }

private:
  std::shared_ptr<const ml::Classifier> model_;
};

}  // namespace tp::runtime
