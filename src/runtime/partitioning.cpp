#include "runtime/partitioning.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace tp::runtime {

bool Partitioning::isSingleDevice() const {
  int nonZero = 0;
  for (const int u : units) {
    if (u > 0) ++nonZero;
  }
  return nonZero == 1;
}

std::size_t Partitioning::singleDevice() const {
  TP_ASSERT(isSingleDevice());
  for (std::size_t d = 0; d < units.size(); ++d) {
    if (units[d] > 0) return d;
  }
  TP_ASSERT(false);
  return 0;
}

int Partitioning::activeDevices() const {
  int count = 0;
  for (const int u : units) {
    if (u > 0) ++count;
  }
  return count;
}

std::string Partitioning::toString() const {
  std::ostringstream os;
  for (std::size_t d = 0; d < units.size(); ++d) {
    if (d > 0) os << '/';
    os << units[d] * 100 / divisions;
  }
  return os.str();
}

std::vector<std::size_t> apportion(std::size_t total, const Partitioning& p) {
  const std::size_t n = p.numDevices();
  std::vector<std::size_t> counts(n, 0);
  if (total == 0) return counts;

  // Denominator is the actual unit sum, so the result is exact even for
  // hand-built partitionings whose units do not sum to `divisions`.
  std::size_t unitSum = 0;
  for (const int u : p.units) {
    TP_REQUIRE(u >= 0, "apportion: negative unit share");
    unitSum += static_cast<std::size_t>(u);
  }
  TP_REQUIRE(unitSum > 0, "apportion: partitioning assigns no work");

  // Largest-remainder in integer arithmetic: floor(total * units / sum)
  // per device, then hand the < n leftover items to the active devices
  // with the largest remainders (stable sort: ties to lower index).
  std::vector<std::size_t> remainder(n, 0);
  std::size_t assigned = 0;
  for (std::size_t d = 0; d < n; ++d) {
    const std::size_t scaled = total * static_cast<std::size_t>(p.units[d]);
    counts[d] = scaled / unitSum;
    remainder[d] = scaled % unitSum;
    assigned += counts[d];
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    if (p.units[d] > 0) order.push_back(d);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  // sum(remainder) == (total - assigned) * unitSum, so the leftover count
  // is at most the number of active devices: one pass suffices.
  std::size_t leftover = total - assigned;
  TP_ASSERT(leftover <= order.size());
  for (std::size_t k = 0; k < leftover; ++k) ++counts[order[k]];
  return counts;
}

PartitioningSpace::PartitioningSpace(std::size_t numDevices, int divisions)
    : numDevices_(numDevices), divisions_(divisions) {
  TP_REQUIRE(numDevices >= 1, "PartitioningSpace: need at least one device");
  TP_REQUIRE(divisions >= 1, "PartitioningSpace: divisions must be >= 1");

  // Enumerate compositions of `divisions` into numDevices parts.
  std::vector<int> current(numDevices, 0);
  // Recursive lambda via explicit stack-free recursion.
  auto enumerate = [&](auto&& self, std::size_t device, int remaining) -> void {
    if (device + 1 == numDevices) {
      current[device] = remaining;
      all_.push_back(Partitioning{current, divisions});
      return;
    }
    for (int u = 0; u <= remaining; ++u) {
      current[device] = u;
      self(self, device + 1, remaining - u);
    }
  };
  enumerate(enumerate, 0, divisions);
  for (std::size_t i = 0; i < all_.size(); ++i) {
    index_.emplace(all_[i].units, i);
  }
}

const Partitioning& PartitioningSpace::at(std::size_t index) const {
  TP_ASSERT_MSG(index < all_.size(),
                "partitioning index " << index << " out of range");
  return all_[index];
}

std::size_t PartitioningSpace::indexOf(const Partitioning& p) const {
  if (p.divisions == divisions_) {
    const auto it = index_.find(p.units);
    if (it != index_.end()) return it->second;
  }
  TP_THROW("partitioning " << p.toString() << " not in space");
}

std::size_t PartitioningSpace::cpuOnlyIndex() const {
  return singleDeviceIndex(0);
}

std::size_t PartitioningSpace::singleDeviceIndex(std::size_t device) const {
  TP_REQUIRE(device < numDevices_, "device index out of range");
  Partitioning p;
  p.divisions = divisions_;
  p.units.assign(numDevices_, 0);
  p.units[device] = divisions_;
  return indexOf(p);
}

PartitionFamily PartitioningSpace::family(std::size_t index) const {
  const Partitioning& p = at(index);
  const bool usesCpu = p.units[0] > 0;
  int gpusUsed = 0;
  for (std::size_t d = 1; d < p.units.size(); ++d) {
    if (p.units[d] > 0) ++gpusUsed;
  }
  if (usesCpu && gpusUsed == 0) return PartitionFamily::CpuOnly;
  if (!usesCpu && gpusUsed == 1) return PartitionFamily::SingleGpu;
  if (!usesCpu) return PartitionFamily::MultiGpu;
  return PartitionFamily::Mixed;
}

std::vector<std::size_t> PartitioningSpace::neighbors(std::size_t index,
                                                      int radius) const {
  const Partitioning& base = at(index);
  std::vector<std::size_t> out;
  if (radius <= 0) return out;
  Partitioning candidate = base;
  for (std::size_t from = 0; from < numDevices_; ++from) {
    for (std::size_t to = 0; to < numDevices_; ++to) {
      if (from == to) continue;
      const int movable = std::min(base.units[from], radius);
      for (int m = 1; m <= movable; ++m) {
        candidate.units = base.units;
        candidate.units[from] -= m;
        candidate.units[to] += m;
        out.push_back(indexOf(candidate));
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> PartitioningSpace::familyLabels() const {
  std::vector<int> out(all_.size());
  for (std::size_t i = 0; i < all_.size(); ++i) {
    out[i] = static_cast<int>(family(i));
  }
  return out;
}

}  // namespace tp::runtime
