#include "runtime/partitioning.hpp"

#include <sstream>

#include "common/error.hpp"

namespace tp::runtime {

bool Partitioning::isSingleDevice() const {
  int nonZero = 0;
  for (const int u : units) {
    if (u > 0) ++nonZero;
  }
  return nonZero == 1;
}

std::size_t Partitioning::singleDevice() const {
  TP_ASSERT(isSingleDevice());
  for (std::size_t d = 0; d < units.size(); ++d) {
    if (units[d] > 0) return d;
  }
  TP_ASSERT(false);
  return 0;
}

int Partitioning::activeDevices() const {
  int count = 0;
  for (const int u : units) {
    if (u > 0) ++count;
  }
  return count;
}

std::string Partitioning::toString() const {
  std::ostringstream os;
  for (std::size_t d = 0; d < units.size(); ++d) {
    if (d > 0) os << '/';
    os << units[d] * 100 / divisions;
  }
  return os.str();
}

PartitioningSpace::PartitioningSpace(std::size_t numDevices, int divisions)
    : numDevices_(numDevices), divisions_(divisions) {
  TP_REQUIRE(numDevices >= 1, "PartitioningSpace: need at least one device");
  TP_REQUIRE(divisions >= 1, "PartitioningSpace: divisions must be >= 1");

  // Enumerate compositions of `divisions` into numDevices parts.
  std::vector<int> current(numDevices, 0);
  // Recursive lambda via explicit stack-free recursion.
  auto enumerate = [&](auto&& self, std::size_t device, int remaining) -> void {
    if (device + 1 == numDevices) {
      current[device] = remaining;
      all_.push_back(Partitioning{current, divisions});
      return;
    }
    for (int u = 0; u <= remaining; ++u) {
      current[device] = u;
      self(self, device + 1, remaining - u);
    }
  };
  enumerate(enumerate, 0, divisions);
}

const Partitioning& PartitioningSpace::at(std::size_t index) const {
  TP_ASSERT_MSG(index < all_.size(),
                "partitioning index " << index << " out of range");
  return all_[index];
}

std::size_t PartitioningSpace::indexOf(const Partitioning& p) const {
  for (std::size_t i = 0; i < all_.size(); ++i) {
    if (all_[i] == p) return i;
  }
  TP_THROW("partitioning " << p.toString() << " not in space");
}

std::size_t PartitioningSpace::cpuOnlyIndex() const {
  return singleDeviceIndex(0);
}

std::size_t PartitioningSpace::singleDeviceIndex(std::size_t device) const {
  TP_REQUIRE(device < numDevices_, "device index out of range");
  Partitioning p;
  p.divisions = divisions_;
  p.units.assign(numDevices_, 0);
  p.units[device] = divisions_;
  return indexOf(p);
}

PartitionFamily PartitioningSpace::family(std::size_t index) const {
  const Partitioning& p = at(index);
  const bool usesCpu = p.units[0] > 0;
  int gpusUsed = 0;
  for (std::size_t d = 1; d < p.units.size(); ++d) {
    if (p.units[d] > 0) ++gpusUsed;
  }
  if (usesCpu && gpusUsed == 0) return PartitionFamily::CpuOnly;
  if (!usesCpu && gpusUsed == 1) return PartitionFamily::SingleGpu;
  if (!usesCpu) return PartitionFamily::MultiGpu;
  return PartitionFamily::Mixed;
}

std::vector<int> PartitioningSpace::familyLabels() const {
  std::vector<int> out(all_.size());
  for (std::size_t i = 0; i < all_.size(); ++i) {
    out[i] = static_cast<int>(family(i));
  }
  return out;
}

}  // namespace tp::runtime
