#include "runtime/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace tp::runtime {

using features::AccessKind;

std::vector<std::pair<std::size_t, std::size_t>> splitGroups(
    std::size_t totalGroups, const Partitioning& p) {
  // Exact integer apportioning (runtime/partitioning.cpp): counts always
  // sum to totalGroups and zero-share devices receive nothing.
  const std::vector<std::size_t> counts = apportion(totalGroups, p);
  const std::size_t n = p.numDevices();
  std::vector<std::pair<std::size_t, std::size_t>> chunks(n);
  std::size_t begin = 0;
  for (std::size_t d = 0; d < n; ++d) {
    chunks[d] = {begin, begin + counts[d]};
    begin += counts[d];
  }
  TP_ASSERT(begin == totalGroups);
  return chunks;
}

ExecutionResult Scheduler::execute(const Task& task, const Partitioning& p) {
  task.validate();
  TP_REQUIRE(p.numDevices() == context_.numDevices(),
             "partitioning has " << p.numDevices() << " devices, machine has "
                                 << context_.numDevices());
  TP_REQUIRE(p.activeDevices() > 0, "partitioning assigns no work");

  context_.resetClocks();
  const std::size_t totalGroups = task.numGroups();
  const auto chunks = splitGroups(totalGroups, p);
  const auto bindings = task.fullBindings();
  const bool compute = context_.mode() == vcl::ExecMode::Compute;

  // Private full-size scratch copies for MergeSum buffers, per device.
  // scratch[argIndex][device] — only allocated for active writers.
  struct MergeScratch {
    std::size_t argIndex;
    std::vector<std::vector<std::byte>> perDevice;  // indexed by device
    double bytes = 0.0;
    int writers = 0;
  };
  std::vector<MergeScratch> merges;
  if (compute) {
    for (std::size_t a = 0; a < task.args.size(); ++a) {
      const auto* b = std::get_if<BufferArg>(&task.args[a]);
      if (b != nullptr && b->access == AccessKind::MergeSum) {
        MergeScratch m;
        m.argIndex = a;
        m.perDevice.resize(context_.numDevices());
        m.bytes = static_cast<double>(b->buffer->bytes());
        merges.push_back(std::move(m));
      }
    }
  }

  ExecutionResult result;
  double mergeBytes = 0.0;
  int mergeWriters = 0;

  vcl::WorkGroupCtx ctxTemplate;
  ctxTemplate.localSize = task.localSize;
  ctxTemplate.globalSize = task.globalSize;
  ctxTemplate.numGroups = totalGroups;

  for (std::size_t d = 0; d < context_.numDevices(); ++d) {
    const auto [gBegin, gEnd] = chunks[d];
    if (gBegin == gEnd) continue;
    const std::size_t itemBegin = gBegin * task.localSize;
    const std::size_t itemCount = (gEnd - gBegin) * task.localSize;

    auto& queue = context_.queue(d);
    DeviceExecution exec;
    exec.device = d;
    exec.groupBegin = gBegin;
    exec.groupEnd = gEnd;

    // ---- host → device transfers -------------------------------------
    // dramBytes doubles as the chunk's unique global-memory footprint: each
    // split slice and each replicated/merged buffer streams from device
    // DRAM once; repeated accesses are cache hits.
    double bytesIn = 0.0;
    double dramBytes = 0.0;
    for (const auto& arg : task.args) {
      const auto* b = std::get_if<BufferArg>(&arg);
      if (b == nullptr) continue;
      switch (b->access) {
        case AccessKind::Split: {
          const auto slice =
              static_cast<double>(itemCount * b->blockElems * 4);
          if (b->isRead) bytesIn += slice;
          dramBytes += slice;
          if (b->isRead && b->isWritten) dramBytes += slice;
          break;
        }
        case AccessKind::Replicate:
          bytesIn += static_cast<double>(b->buffer->bytes());
          dramBytes += static_cast<double>(b->buffer->bytes());
          break;
        case AccessKind::MergeSum:
          // Private copy is zero-initialized on the device; nothing moves.
          dramBytes += static_cast<double>(b->buffer->bytes());
          break;
        case AccessKind::Unused:
          break;
      }
    }
    const auto inEvent = queue.enqueueWrite(bytesIn * task.transferScale);
    exec.transferInSeconds = inEvent.duration();

    // ---- kernel chunk -------------------------------------------------
    vcl::LaunchArgs launchArgs;
    if (compute) {
      for (const auto& arg : task.args) {
        if (const auto* iv = std::get_if<int>(&arg)) {
          launchArgs.addScalar(*iv);
          continue;
        }
        if (const auto* fv = std::get_if<float>(&arg)) {
          launchArgs.addScalar(*fv);
          continue;
        }
        const auto& b = std::get<BufferArg>(arg);
        std::size_t offset = 0;
        std::size_t count = b.buffer->size();
        std::byte* base = nullptr;
        switch (b.access) {
          case AccessKind::Split:
            offset = itemBegin * b.blockElems;
            count = itemCount * b.blockElems;
            break;
          case AccessKind::Replicate:
          case AccessKind::Unused:
            break;  // full view of the shared host buffer
          case AccessKind::MergeSum: {
            // Redirect to this device's private zero-filled copy.
            for (auto& m : merges) {
              const auto* mb = std::get_if<BufferArg>(&task.args[m.argIndex]);
              if (mb == &b) {
                m.perDevice[d].assign(b.buffer->bytes(), std::byte{0});
                base = m.perDevice[d].data();
                ++m.writers;
                break;
              }
            }
            TP_ASSERT(base != nullptr);
            break;
          }
        }
        switch (b.buffer->kind()) {
          case vcl::ElemKind::F32:
            launchArgs.addView(vcl::BufferView<float>(
                base != nullptr ? reinterpret_cast<float*>(base)
                                : b.buffer->data<float>(),
                offset, count));
            break;
          case vcl::ElemKind::I32:
            launchArgs.addView(vcl::BufferView<int>(
                base != nullptr ? reinterpret_cast<int*>(base)
                                : b.buffer->data<int>(),
                offset, count));
            break;
          case vcl::ElemKind::U32:
            launchArgs.addView(vcl::BufferView<unsigned>(
                base != nullptr ? reinterpret_cast<unsigned*>(base)
                                : b.buffer->data<unsigned>(),
                offset, count));
            break;
        }
      }
    }
    const auto kernelEvent =
        queue.enqueueKernel(task.features, bindings, gBegin, gEnd, ctxTemplate,
                            task.native, launchArgs, dramBytes);
    exec.kernelSeconds = kernelEvent.duration();

    // ---- device → host transfers --------------------------------------
    double bytesOut = 0.0;
    for (const auto& arg : task.args) {
      const auto* b = std::get_if<BufferArg>(&arg);
      if (b == nullptr || !b->isWritten) continue;
      switch (b->access) {
        case AccessKind::Split:
          bytesOut += static_cast<double>(itemCount * b->blockElems * 4);
          break;
        case AccessKind::MergeSum:
          bytesOut += static_cast<double>(b->buffer->bytes());
          break;
        case AccessKind::Replicate:
        case AccessKind::Unused:
          break;
      }
    }
    const auto outEvent = queue.enqueueRead(bytesOut * task.transferScale);
    exec.transferOutSeconds = outEvent.duration();
    exec.endTime = queue.now();

    // Merge accounting (time model; independent of Compute mode).
    for (const auto& arg : task.args) {
      const auto* b = std::get_if<BufferArg>(&arg);
      if (b != nullptr && b->access == AccessKind::MergeSum && b->isWritten) {
        mergeBytes += static_cast<double>(b->buffer->bytes());
        ++mergeWriters;
      }
    }

    result.devices.push_back(exec);
  }

  // ---- host-side combination of MergeSum buffers ----------------------
  if (compute) {
    for (auto& m : merges) {
      const auto& b = std::get<BufferArg>(task.args[m.argIndex]);
      const std::size_t elems = b.buffer->size();
      for (std::size_t d = 0; d < m.perDevice.size(); ++d) {
        if (m.perDevice[d].empty()) continue;
        switch (b.buffer->kind()) {
          case vcl::ElemKind::F32: {
            auto* out = b.buffer->data<float>();
            const auto* part =
                reinterpret_cast<const float*>(m.perDevice[d].data());
            for (std::size_t i = 0; i < elems; ++i) out[i] += part[i];
            break;
          }
          case vcl::ElemKind::I32: {
            auto* out = b.buffer->data<int>();
            const auto* part =
                reinterpret_cast<const int*>(m.perDevice[d].data());
            for (std::size_t i = 0; i < elems; ++i) out[i] += part[i];
            break;
          }
          case vcl::ElemKind::U32: {
            auto* out = b.buffer->data<unsigned>();
            const auto* part =
                reinterpret_cast<const unsigned*>(m.perDevice[d].data());
            for (std::size_t i = 0; i < elems; ++i) out[i] += part[i];
            break;
          }
        }
      }
    }
  }

  double latest = 0.0;
  for (const auto& exec : result.devices) {
    latest = std::max(latest, exec.endTime);
  }
  // Host combine touches each merged byte once per writing device (read
  // partial + accumulate), bounded by host memory bandwidth.
  result.mergeSeconds =
      mergeWriters > 1 ? mergeBytes / context_.machine().cpu().memBandwidth : 0.0;
  result.makespan = latest + result.mergeSeconds;
  return result;
}

}  // namespace tp::runtime
