#pragma once

// The feature database of the training phase (paper §2: features and
// performance measurements "are collected and added to the database").
//
// One LaunchRecord per (program, problem size, machine): the static and
// runtime feature vectors plus the measured execution time of *every*
// partitioning in the space. Storing the full time vector makes every
// downstream question (best label, speedup of any strategy, regret of a
// prediction) a lookup instead of a re-simulation. Persisted as CSV.

#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace tp::runtime {

enum class FeatureSet { StaticOnly, RuntimeOnly, Combined };

const char* featureSetName(FeatureSet fs);

struct LaunchRecord {
  std::string program;
  std::string machine;
  std::string sizeLabel;  ///< e.g. "n=1048576"
  std::vector<double> staticFeatures;
  std::vector<double> runtimeFeatures;
  std::vector<double> times;  ///< seconds, indexed by partitioning label

  int bestLabel() const;
  double bestTime() const;
};

class FeatureDatabase {
public:
  FeatureDatabase(std::size_t numPartitionings,
                  std::vector<std::string> staticNames,
                  std::vector<std::string> runtimeNames);

  /// Convenience: schema from the feature modules' canonical name lists.
  static FeatureDatabase withDefaultSchema(std::size_t numPartitionings);

  std::size_t numPartitionings() const noexcept { return numPartitionings_; }
  const std::vector<std::string>& staticNames() const noexcept {
    return staticNames_;
  }
  const std::vector<std::string>& runtimeNames() const noexcept {
    return runtimeNames_;
  }
  std::size_t size() const noexcept { return records_.size(); }
  const std::vector<LaunchRecord>& records() const noexcept { return records_; }

  void add(LaunchRecord record);

  /// Records for one machine, in insertion order.
  std::vector<const LaunchRecord*> forMachine(const std::string& machine) const;

  /// Training matrix for one machine and feature subset; labels are best
  /// partitioning indices; groups are program names.
  ml::Dataset toDataset(const std::string& machine, FeatureSet fs) const;

  void saveCsv(const std::string& path) const;
  static FeatureDatabase loadCsv(const std::string& path);

private:
  std::size_t numPartitionings_;
  std::vector<std::string> staticNames_;
  std::vector<std::string> runtimeNames_;
  std::vector<LaunchRecord> records_;
};

}  // namespace tp::runtime
