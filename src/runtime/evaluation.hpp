#pragma once

// Training sweep + Figure-1-style evaluation.
//
// measureLaunch() is one training pattern of the paper: run a task under
// every partitioning (TimeOnly), record features + the full time vector.
// evaluateFigure1() reproduces the paper's headline experiment: train with
// leave-one-program-out, predict a partitioning for every launch of the
// held-out program, and report per-program speedups of the prediction over
// the CPU-only and GPU-only defaults.

#include <cstdint>

#include "ml/crossval.hpp"
#include "runtime/database.hpp"
#include "runtime/partitioning.hpp"
#include "runtime/strategy.hpp"
#include "runtime/task.hpp"

namespace tp::runtime {

/// Simulate every partitioning of `space` for `task` on `machine` and
/// build the training record.
LaunchRecord measureLaunch(const Task& task, const sim::MachineConfig& machine,
                           const PartitioningSpace& space,
                           const std::string& sizeLabel);

struct Fig1Row {
  std::string program;
  double speedupOverCpu = 0.0;  ///< geomean across problem sizes
  double speedupOverGpu = 0.0;
  double speedupOverOracle = 0.0;  ///< ≤ 1; fraction of oracle performance
};

struct Fig1Result {
  std::string machine;
  std::vector<Fig1Row> rows;       ///< one per program, suite order
  double meanSpeedupOverCpu = 0.0;   ///< geomean over programs
  double meanSpeedupOverGpu = 0.0;
  double oracleFraction = 0.0;       ///< geomean of per-program oracle fractions
  double exactLabelAccuracy = 0.0;   ///< LOGO exact-match accuracy
  /// How often each default wins against the other (paper §3's
  /// "CPU-only usually best on mc1" observation).
  int cpuDefaultWins = 0;
  int gpuDefaultWins = 0;
};

/// LOGO-CV evaluation of a model spec on one machine's records.
Fig1Result evaluateFigure1(const FeatureDatabase& db,
                           const std::string& machine,
                           const PartitioningSpace& space,
                           const ml::ClassifierFactoryFn& factory,
                           FeatureSet featureSet = FeatureSet::Combined);

/// Train a deployable model on ALL of a machine's records (the paper's
/// offline-generated prediction model for that target architecture).
std::unique_ptr<ml::Classifier> trainDeploymentModel(
    const FeatureDatabase& db, const std::string& machine,
    const std::string& spec, FeatureSet featureSet = FeatureSet::Combined,
    std::uint64_t seed = 42);

}  // namespace tp::runtime
