#pragma once

// Multi-device scheduler/executor.
//
// Given a Task and a Partitioning it splits the NDRange into contiguous,
// group-aligned chunks (largest-remainder apportioning of work-groups),
// enqueues transfers + kernel chunks on every active device's command
// queue, and reports the simulated makespan — devices run concurrently, so
// the makespan is the slowest device's completion plus any host-side merge
// of MergeSum buffers. In Compute mode the chunks also execute natively,
// with each device's buffer views restricted to exactly the slice the
// access classification assigned to it.

#include <vector>

#include "ocl/context.hpp"
#include "runtime/partitioning.hpp"
#include "runtime/task.hpp"

namespace tp::runtime {

struct DeviceExecution {
  std::size_t device = 0;
  std::size_t groupBegin = 0;
  std::size_t groupEnd = 0;
  double transferInSeconds = 0.0;
  double kernelSeconds = 0.0;
  double transferOutSeconds = 0.0;
  double endTime = 0.0;  ///< completion time on the device's queue

  std::size_t items(std::size_t localSize) const {
    return (groupEnd - groupBegin) * localSize;
  }
};

struct ExecutionResult {
  double makespan = 0.0;   ///< seconds, including host merge
  double mergeSeconds = 0.0;
  std::vector<DeviceExecution> devices;  ///< active devices only
};

/// Apportion `totalGroups` work-groups according to the partitioning using
/// the largest-remainder method; returns per-device [begin, end) chunks
/// covering [0, totalGroups) contiguously in device order.
std::vector<std::pair<std::size_t, std::size_t>> splitGroups(
    std::size_t totalGroups, const Partitioning& p);

class Scheduler {
public:
  explicit Scheduler(vcl::Context& context) : context_(context) {}

  /// Execute `task` under partitioning `p`. Resets device clocks first, so
  /// results are independent per call.
  ExecutionResult execute(const Task& task, const Partitioning& p);

private:
  vcl::Context& context_;
};

}  // namespace tp::runtime
