#include "runtime/task.hpp"

#include "common/error.hpp"

namespace tp::runtime {

std::map<std::string, double> Task::fullBindings() const {
  auto bindings = sizeBindings;
  bindings[features::kGlobalSizeParam] = static_cast<double>(globalSize);
  return bindings;
}

double Task::totalBytesIn() const {
  double bytes = 0.0;
  for (const auto& arg : args) {
    const auto* b = std::get_if<BufferArg>(&arg);
    if (b == nullptr || !b->isRead) continue;
    bytes += static_cast<double>(b->buffer->bytes());
  }
  return bytes * transferScale;
}

double Task::totalBytesOut() const {
  double bytes = 0.0;
  for (const auto& arg : args) {
    const auto* b = std::get_if<BufferArg>(&arg);
    if (b == nullptr || !b->isWritten) continue;
    bytes += static_cast<double>(b->buffer->bytes());
  }
  return bytes * transferScale;
}

features::LaunchInfo Task::launchInfo() const {
  features::LaunchInfo info;
  info.sizeBindings = sizeBindings;
  info.globalSize = globalSize;
  info.localSize = localSize;
  info.bytesToDevice = totalBytesIn();
  info.bytesFromDevice = totalBytesOut();
  return info;
}

void Task::validate() const {
  TP_REQUIRE(globalSize > 0, "Task: empty NDRange");
  TP_REQUIRE(localSize > 0, "Task: zero work-group size");
  TP_REQUIRE(globalSize % localSize == 0,
             "Task: global size " << globalSize
                                  << " not a multiple of work-group size "
                                  << localSize);
  for (const auto& arg : args) {
    const auto* b = std::get_if<BufferArg>(&arg);
    if (b == nullptr) continue;
    TP_REQUIRE(b->buffer != nullptr, "Task: null buffer argument");
    if (b->access == features::AccessKind::Split) {
      TP_REQUIRE(b->blockElems >= 1, "Task: split buffer with zero block");
      TP_REQUIRE(
          b->buffer->size() >= globalSize * b->blockElems,
          "Task: split buffer '" << b->buffer->size() << "' smaller than "
                                 << globalSize << " items x "
                                 << b->blockElems << " elements");
    }
  }
}

}  // namespace tp::runtime
