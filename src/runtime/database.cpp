#include "runtime/database.hpp"

#include <algorithm>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "features/runtime_features.hpp"
#include "features/static_features.hpp"

namespace tp::runtime {

const char* featureSetName(FeatureSet fs) {
  switch (fs) {
    case FeatureSet::StaticOnly: return "static-only";
    case FeatureSet::RuntimeOnly: return "runtime-only";
    case FeatureSet::Combined: return "static+runtime";
  }
  return "?";
}

int LaunchRecord::bestLabel() const {
  TP_ASSERT(!times.empty());
  return static_cast<int>(std::min_element(times.begin(), times.end()) -
                          times.begin());
}

double LaunchRecord::bestTime() const {
  TP_ASSERT(!times.empty());
  return *std::min_element(times.begin(), times.end());
}

FeatureDatabase::FeatureDatabase(std::size_t numPartitionings,
                                 std::vector<std::string> staticNames,
                                 std::vector<std::string> runtimeNames)
    : numPartitionings_(numPartitionings),
      staticNames_(std::move(staticNames)),
      runtimeNames_(std::move(runtimeNames)) {
  TP_REQUIRE(numPartitionings_ > 0, "FeatureDatabase: empty space");
}

FeatureDatabase FeatureDatabase::withDefaultSchema(
    std::size_t numPartitionings) {
  return FeatureDatabase(numPartitionings, features::staticFeatureNames(),
                         features::runtimeFeatureNames());
}

void FeatureDatabase::add(LaunchRecord record) {
  TP_REQUIRE(record.staticFeatures.size() == staticNames_.size(),
             "FeatureDatabase: static feature count mismatch");
  TP_REQUIRE(record.runtimeFeatures.size() == runtimeNames_.size(),
             "FeatureDatabase: runtime feature count mismatch");
  TP_REQUIRE(record.times.size() == numPartitionings_,
             "FeatureDatabase: expected " << numPartitionings_
                                          << " times, got "
                                          << record.times.size());
  records_.push_back(std::move(record));
}

std::vector<const LaunchRecord*> FeatureDatabase::forMachine(
    const std::string& machine) const {
  std::vector<const LaunchRecord*> out;
  for (const auto& r : records_) {
    if (r.machine == machine) out.push_back(&r);
  }
  return out;
}

ml::Dataset FeatureDatabase::toDataset(const std::string& machine,
                                       FeatureSet fs) const {
  ml::Dataset data;
  switch (fs) {
    case FeatureSet::StaticOnly:
      data.featureNames = staticNames_;
      break;
    case FeatureSet::RuntimeOnly:
      data.featureNames = runtimeNames_;
      break;
    case FeatureSet::Combined:
      data.featureNames = staticNames_;
      data.featureNames.insert(data.featureNames.end(), runtimeNames_.begin(),
                               runtimeNames_.end());
      break;
  }
  for (const auto* r : forMachine(machine)) {
    std::vector<double> x;
    if (fs != FeatureSet::RuntimeOnly) {
      x.insert(x.end(), r->staticFeatures.begin(), r->staticFeatures.end());
    }
    if (fs != FeatureSet::StaticOnly) {
      x.insert(x.end(), r->runtimeFeatures.begin(), r->runtimeFeatures.end());
    }
    data.add(std::move(x), r->bestLabel(), r->program);
  }
  data.numClasses = static_cast<int>(numPartitionings_);
  return data;
}

void FeatureDatabase::saveCsv(const std::string& path) const {
  std::vector<std::string> columns = {"program", "machine", "size"};
  columns.insert(columns.end(), staticNames_.begin(), staticNames_.end());
  columns.insert(columns.end(), runtimeNames_.begin(), runtimeNames_.end());
  for (std::size_t i = 0; i < numPartitionings_; ++i) {
    columns.push_back("t_" + std::to_string(i));
  }
  common::Table table(columns);
  for (const auto& r : records_) {
    std::vector<std::string> row = {r.program, r.machine, r.sizeLabel};
    auto emit = [&row](double v) {
      std::ostringstream os;
      os.precision(17);
      os << v;
      row.push_back(os.str());
    };
    for (const double v : r.staticFeatures) emit(v);
    for (const double v : r.runtimeFeatures) emit(v);
    for (const double v : r.times) emit(v);
    table.addRow(std::move(row));
  }
  table.writeCsvFile(path);
}

FeatureDatabase FeatureDatabase::loadCsv(const std::string& path) {
  const common::Table table = common::Table::readCsvFile(path);
  // Recover the schema from column names.
  std::vector<std::string> staticNames, runtimeNames;
  std::size_t numPartitionings = 0;
  for (const auto& c : table.columns()) {
    if (c.rfind("s_", 0) == 0) staticNames.push_back(c);
    if (c.rfind("r_", 0) == 0) runtimeNames.push_back(c);
    if (c.rfind("t_", 0) == 0) ++numPartitionings;
  }
  TP_REQUIRE(numPartitionings > 0, "FeatureDatabase CSV has no time columns");
  FeatureDatabase db(numPartitionings, staticNames, runtimeNames);
  for (std::size_t r = 0; r < table.numRows(); ++r) {
    LaunchRecord rec;
    rec.program = table.cell(r, "program");
    rec.machine = table.cell(r, "machine");
    rec.sizeLabel = table.cell(r, "size");
    for (const auto& c : staticNames) {
      rec.staticFeatures.push_back(table.cellDouble(r, c));
    }
    for (const auto& c : runtimeNames) {
      rec.runtimeFeatures.push_back(table.cellDouble(r, c));
    }
    for (std::size_t i = 0; i < numPartitionings; ++i) {
      rec.times.push_back(table.cellDouble(r, "t_" + std::to_string(i)));
    }
    db.add(std::move(rec));
  }
  return db;
}

}  // namespace tp::runtime
