#include "runtime/strategy.hpp"

namespace tp::runtime {

std::size_t oracleSearch(const Task& task, const sim::MachineConfig& machine,
                         const PartitioningSpace& space,
                         std::vector<double>* timings) {
  // Private TimeOnly context: the search must not disturb the caller's
  // clocks and needs no native execution.
  vcl::Context probe(machine, vcl::ExecMode::TimeOnly, nullptr);
  Scheduler scheduler(probe);

  std::size_t best = 0;
  double bestTime = -1.0;
  if (timings != nullptr) timings->assign(space.size(), 0.0);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const double t = scheduler.execute(task, space.at(i)).makespan;
    if (timings != nullptr) (*timings)[i] = t;
    if (bestTime < 0.0 || t < bestTime) {
      bestTime = t;
      best = i;
    }
  }
  return best;
}

}  // namespace tp::runtime
