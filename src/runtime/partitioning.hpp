#pragma once

// The discretized task-partitioning space (paper §2.1: "p is selected from
// a discretized partitioning space with a stepsize of 10%").
//
// A Partitioning assigns each device an integral number of `divisions`
// units summing to `divisions` (10 units of 10% by default). For a machine
// with 3 devices and 10% steps the space has C(12,2) = 66 elements; the
// CPU-only and GPU-only default strategies are particular corners of it.
// The step size is a parameter so the step-size ablation
// (bench/ablation_stepsize) can compare coarser/finer spaces.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace tp::runtime {

/// Share of work per device, in units of (100/divisions)%.
struct Partitioning {
  std::vector<int> units;
  int divisions = 10;

  double fraction(std::size_t device) const {
    return static_cast<double>(units[device]) / static_cast<double>(divisions);
  }

  std::size_t numDevices() const noexcept { return units.size(); }

  /// True when exactly one device receives all work.
  bool isSingleDevice() const;
  /// Index of the only active device; requires isSingleDevice().
  std::size_t singleDevice() const;
  /// Number of devices with a non-zero share.
  int activeDevices() const;

  /// "50/30/20" (percentages).
  std::string toString() const;

  bool operator==(const Partitioning& o) const {
    return units == o.units && divisions == o.divisions;
  }
};

/// Apportion `total` indivisible work items among the devices of `p` in
/// exact proportion to their unit shares (largest-remainder method over
/// integer arithmetic — no floating point, so the result always sums to
/// exactly `total`). Zero-share devices receive zero items; leftovers go
/// to the active devices with the largest integer remainders (ties to the
/// lower device index). Requires at least one active device when
/// total > 0; throws tp::Error otherwise.
std::vector<std::size_t> apportion(std::size_t total, const Partitioning& p);

/// Coarse family of a partitioning, used by the two-stage model:
/// 0 = CPU only, 1 = single GPU, 2 = GPU-mixed (no CPU), 3 = CPU+GPU mixed.
enum class PartitionFamily : int {
  CpuOnly = 0,
  SingleGpu = 1,
  MultiGpu = 2,
  Mixed = 3,
};

class PartitioningSpace {
public:
  /// Enumerates all assignments of `divisions` units to `numDevices`
  /// devices (lexicographic, deterministic).
  PartitioningSpace(std::size_t numDevices, int divisions = 10);

  std::size_t size() const noexcept { return all_.size(); }
  std::size_t numDevices() const noexcept { return numDevices_; }
  int divisions() const noexcept { return divisions_; }

  const Partitioning& at(std::size_t index) const;
  const std::vector<Partitioning>& all() const noexcept { return all_; }

  /// Index of an existing partitioning; throws tp::Error if absent.
  std::size_t indexOf(const Partitioning& p) const;

  /// The two default strategies of the paper.
  std::size_t cpuOnlyIndex() const;
  /// All work on GPU `gpuDevice` (a device index, not a GPU ordinal).
  std::size_t singleDeviceIndex(std::size_t device) const;

  PartitionFamily family(std::size_t index) const;
  /// label→family map for ml::TwoStageClassifier.
  std::vector<int> familyLabels() const;

  /// Indices of every partitioning reachable from `index` by moving
  /// between 1 and `radius` units from one device to another — the local
  /// search neighborhood of the online refiner (tp::adapt). Sorted,
  /// deduplicated, never contains `index` itself. Radius 0 is empty.
  std::vector<std::size_t> neighbors(std::size_t index, int radius = 1) const;

private:
  std::size_t numDevices_;
  int divisions_;
  std::vector<Partitioning> all_;
  /// units -> index, so indexOf (hot inside adapt's neighborhood
  /// enumeration, which runs under a shard lock) avoids a linear scan.
  std::map<std::vector<int>, std::size_t> index_;
};

}  // namespace tp::runtime
