#pragma once

// A Task is one multi-device-ready kernel launch: the compiled kernel's
// features and buffer access classification, the native work-group
// semantics, the bound arguments, and the NDRange. Tasks are what
// partitioning strategies decide about and what the scheduler executes.

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "features/access_analysis.hpp"
#include "features/runtime_features.hpp"
#include "features/static_features.hpp"
#include "ocl/buffer.hpp"
#include "ocl/kernel.hpp"

namespace tp::runtime {

/// One bound kernel argument.
struct BufferArg {
  std::shared_ptr<vcl::Buffer> buffer;
  features::AccessKind access = features::AccessKind::Replicate;
  /// For Split buffers: elements owned per work item (blockSize evaluated
  /// under this launch's bindings).
  std::size_t blockElems = 1;
  bool isWritten = false;
  bool isRead = true;
};

using TaskArg = std::variant<BufferArg, int, float>;

struct Task {
  std::string programName;   ///< benchmark / application name
  std::string kernelName;

  features::KernelFeatures features;
  std::vector<TaskArg> args;           ///< in kernel-parameter order
  vcl::NativeKernel native;            ///< work-group semantics (Compute mode)

  std::size_t globalSize = 0;          ///< total work items, dimension 0
  std::size_t localSize = 64;          ///< work-group size
  std::map<std::string, double> sizeBindings;  ///< param name → value

  /// Transfer amortization (Gregg & Hazelwood [5]): iterative applications
  /// (stencil solvers, CG, k-means, MD timesteps) keep data resident on the
  /// device across kernel launches, so one measured launch carries only
  /// 1/iterations of the transfer volume. 1.0 = one-shot kernel, every
  /// launch pays full transfers.
  double transferScale = 1.0;

  std::size_t numGroups() const { return globalSize / localSize; }

  /// Bindings including the get_global_size pseudo-parameter.
  std::map<std::string, double> fullBindings() const;

  /// Host→device / device→host volume of an *unsplit* (single device)
  /// execution; used for the partitioning-independent runtime features.
  double totalBytesIn() const;
  double totalBytesOut() const;

  /// The paper's runtime feature view of this launch.
  features::LaunchInfo launchInfo() const;

  /// Sanity checks (group-aligned NDRange, split sizes match buffers, ...).
  /// Throws tp::Error on violations.
  void validate() const;
};

}  // namespace tp::runtime
