#include "runtime/evaluation.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "features/runtime_features.hpp"

namespace tp::runtime {

LaunchRecord measureLaunch(const Task& task, const sim::MachineConfig& machine,
                           const PartitioningSpace& space,
                           const std::string& sizeLabel) {
  LaunchRecord rec;
  rec.program = task.programName;
  rec.machine = machine.name;
  rec.sizeLabel = sizeLabel;
  rec.staticFeatures = features::staticFeatureVector(task.features);
  rec.runtimeFeatures =
      features::runtimeFeatureVector(task.features, task.launchInfo());
  oracleSearch(task, machine, space, &rec.times);
  return rec;
}

Fig1Result evaluateFigure1(const FeatureDatabase& db,
                           const std::string& machine,
                           const PartitioningSpace& space,
                           const ml::ClassifierFactoryFn& factory,
                           FeatureSet featureSet) {
  const auto records = db.forMachine(machine);
  TP_REQUIRE(!records.empty(), "no records for machine " << machine);

  ml::Dataset data = db.toDataset(machine, featureSet);
  const ml::CrossValResult cv = ml::leaveOneGroupOut(data, factory);

  const std::size_t cpuIdx = space.cpuOnlyIndex();
  const std::size_t gpuIdx = space.singleDeviceIndex(1);

  Fig1Result result;
  result.machine = machine;
  result.exactLabelAccuracy = cv.accuracy;

  // Per-program ratios across sizes.
  struct Ratios {
    std::vector<double> overCpu, overGpu, overOracle;
  };
  std::map<std::string, Ratios> perProgram;
  std::vector<std::string> programOrder;

  for (std::size_t i = 0; i < records.size(); ++i) {
    const LaunchRecord& r = *records[i];
    const int predicted = cv.predictions[i];
    TP_ASSERT(predicted >= 0 &&
              static_cast<std::size_t>(predicted) < r.times.size());
    const double tPred = r.times[static_cast<std::size_t>(predicted)];
    const double tCpu = r.times[cpuIdx];
    const double tGpu = r.times[gpuIdx];
    const double tBest = r.bestTime();
    TP_ASSERT(tPred > 0.0 && tCpu > 0.0 && tGpu > 0.0 && tBest > 0.0);

    if (perProgram.find(r.program) == perProgram.end()) {
      programOrder.push_back(r.program);
    }
    auto& ratios = perProgram[r.program];
    ratios.overCpu.push_back(tCpu / tPred);
    ratios.overGpu.push_back(tGpu / tPred);
    ratios.overOracle.push_back(tBest / tPred);

    if (tCpu < tGpu) {
      ++result.cpuDefaultWins;
    } else {
      ++result.gpuDefaultWins;
    }
  }

  std::vector<double> allCpu, allGpu, allOracle;
  for (const auto& program : programOrder) {
    const auto& ratios = perProgram[program];
    Fig1Row row;
    row.program = program;
    row.speedupOverCpu = common::geomean(ratios.overCpu);
    row.speedupOverGpu = common::geomean(ratios.overGpu);
    row.speedupOverOracle = common::geomean(ratios.overOracle);
    allCpu.push_back(row.speedupOverCpu);
    allGpu.push_back(row.speedupOverGpu);
    allOracle.push_back(row.speedupOverOracle);
    result.rows.push_back(std::move(row));
  }
  result.meanSpeedupOverCpu = common::geomean(allCpu);
  result.meanSpeedupOverGpu = common::geomean(allGpu);
  result.oracleFraction = common::geomean(allOracle);
  return result;
}

std::unique_ptr<ml::Classifier> trainDeploymentModel(
    const FeatureDatabase& db, const std::string& machine,
    const std::string& spec, FeatureSet featureSet, std::uint64_t seed) {
  ml::Dataset data = db.toDataset(machine, featureSet);
  TP_REQUIRE(data.size() > 0, "no training data for machine " << machine);
  auto model = ml::makeClassifier(spec, seed);
  model->train(data);
  return model;
}

}  // namespace tp::runtime
