#pragma once

// The source-to-source "compiler" entry point: OpenCL-C-subset source →
// verified IR → static features + buffer access classification. This is
// the training- and deployment-phase front half of the paper's framework
// (Insieme code analyzer + multi-device backend).
//
// A CompiledKernel is immutable and cheaply copyable (shared state); the
// suite compiles each benchmark once and instantiates many Tasks from it.

#include <memory>
#include <string>

#include "features/access_analysis.hpp"
#include "features/static_features.hpp"
#include "ir/node.hpp"
#include "runtime/task.hpp"

namespace tp::runtime {

class CompiledKernel {
public:
  /// Parse + verify + analyze. Throws tp::ParseError / tp::Error on
  /// malformed source.
  static CompiledKernel compile(const std::string& source);

  const std::string& source() const { return state_->source; }
  const ir::KernelDecl& kernel() const { return *state_->kernel; }
  const features::KernelFeatures& features() const { return state_->features; }
  const std::vector<features::BufferAccess>& accesses() const {
    return state_->accesses;
  }

  /// Access classification of a named __global pointer parameter.
  const features::BufferAccess& accessFor(const std::string& param) const;

  /// Elements per work item of a Split buffer under the given bindings.
  std::size_t blockElemsFor(const std::string& param,
                            const std::map<std::string, double>& bindings) const;

private:
  struct State {
    std::string source;
    std::unique_ptr<ir::KernelDecl> kernel;
    features::KernelFeatures features;
    std::vector<features::BufferAccess> accesses;
  };

  explicit CompiledKernel(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// Fluent Task construction. Buffer/scalar arguments are supplied in kernel
/// parameter order; buffer access modes and split block sizes come from the
/// compiled kernel's analysis, and integer scalar arguments are
/// automatically recorded as size bindings (they are exactly the
/// problem-size values the runtime features depend on).
class TaskBuilder {
public:
  TaskBuilder(const CompiledKernel& compiled, std::string programName);

  TaskBuilder& global(std::size_t items);
  TaskBuilder& local(std::size_t groupSize);
  TaskBuilder& arg(std::shared_ptr<vcl::Buffer> buffer);
  TaskBuilder& arg(int scalar);
  TaskBuilder& arg(float scalar);
  TaskBuilder& native(vcl::NativeKernel fn);
  /// Extra size binding not expressible as a scalar argument.
  TaskBuilder& bind(const std::string& param, double value);
  /// The application launches this kernel `iterations` times with data
  /// resident on the device; transfers amortize accordingly.
  TaskBuilder& transferAmortization(double iterations);

  /// Finalize; validates argument count/kinds against the kernel signature.
  Task build();

private:
  const CompiledKernel compiled_;
  Task task_;
  std::size_t nextParam_ = 0;
};

}  // namespace tp::runtime
