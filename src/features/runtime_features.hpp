#pragma once

// Problem-size dependent runtime features (paper §2: "runtime features,
// whose values are collected during program execution").
//
// At kernel launch the runtime knows the NDRange, the scalar argument
// values, and the buffer transfer volumes. Binding those into the symbolic
// static counts yields the input-sensitive half of the model's feature
// vector.

#include <map>
#include <string>
#include <vector>

#include "features/static_features.hpp"

namespace tp::features {

/// Everything the runtime knows at launch time.
struct LaunchInfo {
  /// Integer kernel arguments by parameter name (e.g. {"K", 512}).
  std::map<std::string, double> sizeBindings;
  std::size_t globalSize = 0;  ///< total work items (dimension 0)
  std::size_t localSize = 0;   ///< work-group size
  double bytesToDevice = 0.0;  ///< host→device transfer volume (all buffers)
  double bytesFromDevice = 0.0;  ///< device→host transfer volume
};

std::vector<std::string> runtimeFeatureNames();

/// Evaluate the symbolic features under the launch bindings.
std::vector<double> runtimeFeatureVector(const KernelFeatures& f,
                                         const LaunchInfo& launch);

/// Combined schema: staticFeatureNames() ++ runtimeFeatureNames().
std::vector<std::string> combinedFeatureNames();
std::vector<double> combinedFeatureVector(const KernelFeatures& f,
                                          const LaunchInfo& launch);

}  // namespace tp::features
