#include "features/runtime_features.hpp"

#include <cmath>

namespace tp::features {

std::vector<std::string> runtimeFeatureNames() {
  return {
      "r_global_size",
      "r_local_size",
      "r_per_item_ops",
      "r_per_item_flops",
      "r_per_item_special",
      "r_per_item_loads",
      "r_per_item_stores",
      "r_per_item_branches",
      "r_total_ops",
      "r_bytes_to_device",
      "r_bytes_from_device",
      "r_arith_intensity",
      "r_transfer_compute_ratio",
  };
}

std::vector<double> runtimeFeatureVector(const KernelFeatures& f,
                                         const LaunchInfo& launch) {
  std::map<std::string, double> bindings = launch.sizeBindings;
  bindings[kGlobalSizeParam] = static_cast<double>(launch.globalSize);

  const double perItemOps = f.arithmeticOps().eval(bindings);
  const double perItemFlops = f.floatOps.eval(bindings);
  const double perItemSpecial = f.specialOps.eval(bindings);
  const double perItemLoads = f.globalLoads.eval(bindings);
  const double perItemStores = f.globalStores.eval(bindings);
  const double perItemBranches = f.branches.eval(bindings);
  const double items = static_cast<double>(launch.globalSize);
  const double totalOps = perItemOps * items;
  const double transfer = launch.bytesToDevice + launch.bytesFromDevice;

  return {
      items,
      static_cast<double>(launch.localSize),
      perItemOps,
      perItemFlops,
      perItemSpecial,
      perItemLoads,
      perItemStores,
      perItemBranches,
      totalOps,
      launch.bytesToDevice,
      launch.bytesFromDevice,
      f.arithmeticIntensity(bindings),
      totalOps > 0.0 ? transfer / totalOps : 0.0,
  };
}

std::vector<std::string> combinedFeatureNames() {
  auto names = staticFeatureNames();
  const auto rt = runtimeFeatureNames();
  names.insert(names.end(), rt.begin(), rt.end());
  return names;
}

std::vector<double> combinedFeatureVector(const KernelFeatures& f,
                                          const LaunchInfo& launch) {
  auto v = staticFeatureVector(f);
  const auto rt = runtimeFeatureVector(f, launch);
  v.insert(v.end(), rt.begin(), rt.end());
  return v;
}

}  // namespace tp::features
