#include "features/static_features.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "frontend/builtins.hpp"

namespace tp::features {

using namespace tp::ir;

double KernelFeatures::arithmeticIntensity(
    const std::map<std::string, double>& bindings) const {
  const double bytes = globalBytes().eval(bindings);
  if (bytes <= 0.0) return 0.0;
  return arithmeticOps().eval(bindings) / bytes;
}

namespace {

/// Converts an integer-valued IR expression into a symbolic WorkExpr for
/// trip-count analysis. Anything not analyzable becomes the unknown-trip
/// pseudo-parameter.
class TripCountAnalyzer {
public:
  explicit TripCountAnalyzer(const KernelDecl& kernel) : kernel_(kernel) {}

  WorkExpr analyze(const Expr& e, bool* exact) const {
    switch (e.kind()) {
      case ExprKind::IntLit:
        return WorkExpr::constant(
            static_cast<double>(static_cast<const IntLit&>(e).value()));
      case ExprKind::VarRef: {
        const auto& v = static_cast<const VarRef&>(e);
        if (kernel_.findParam(v.name()) != nullptr &&
            !v.type().isPointer() && v.type().isIntegral()) {
          return WorkExpr::variable(v.name());
        }
        *exact = false;
        return WorkExpr::variable(kUnknownTripParam);
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        const WorkExpr lhs = analyze(b.lhs(), exact);
        const WorkExpr rhs = analyze(b.rhs(), exact);
        switch (b.op()) {
          case BinaryOp::Add: return lhs + rhs;
          case BinaryOp::Sub: return lhs - rhs;
          case BinaryOp::Mul: return lhs * rhs;
          case BinaryOp::Div:
            if (rhs.isConstant() && rhs.constantTerm() != 0.0) {
              return lhs * (1.0 / rhs.constantTerm());
            }
            *exact = false;
            return WorkExpr::variable(kUnknownTripParam);
          case BinaryOp::Shr:
            if (rhs.isConstant()) {
              return lhs * (1.0 / static_cast<double>(
                                      1ll << static_cast<long long>(
                                          rhs.constantTerm())));
            }
            *exact = false;
            return WorkExpr::variable(kUnknownTripParam);
          case BinaryOp::Shl:
            if (rhs.isConstant()) {
              return lhs * static_cast<double>(
                               1ll << static_cast<long long>(
                                   rhs.constantTerm()));
            }
            [[fallthrough]];
          default:
            *exact = false;
            return WorkExpr::variable(kUnknownTripParam);
        }
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        if (c.callee() == "get_global_size") {
          return WorkExpr::variable(kGlobalSizeParam);
        }
        *exact = false;
        return WorkExpr::variable(kUnknownTripParam);
      }
      case ExprKind::Cast:
        return analyze(static_cast<const CastExpr&>(e).value(), exact);
      default:
        *exact = false;
        return WorkExpr::variable(kUnknownTripParam);
    }
  }

private:
  const KernelDecl& kernel_;
};

class Extractor {
public:
  explicit Extractor(const KernelDecl& kernel)
      : kernel_(kernel), trips_(kernel) {}

  KernelFeatures run() {
    f_.numParams = static_cast<int>(kernel_.params().size());
    for (const auto& p : kernel_.params()) {
      if (p.type.isPointer() && p.type.addrSpace() == AddrSpace::Global) {
        ++f_.numBuffers;
      }
      if (p.type.isPointer() && p.type.addrSpace() == AddrSpace::Local) {
        f_.usesLocalMemory = true;
      }
    }
    countStmt(kernel_.body(), WorkExpr::constant(1.0), 0);
    return std::move(f_);
  }

private:
  /// Count all operations in an rvalue expression, scaled by `mult`.
  void countExpr(const Expr& e, const WorkExpr& mult) {
    switch (e.kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
        break;
      case ExprKind::VarRef:
        break;
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        addArith(u.type(), mult);
        countExpr(u.operand(), mult);
        break;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        // Comparison cost follows the operand type, not the bool result.
        if (isComparison(b.op()) &&
            (b.lhs().type().isFloat() || b.rhs().type().isFloat())) {
          f_.floatOps += mult;
        } else {
          addArith(b.type(), mult);
        }
        countExpr(b.lhs(), mult);
        countExpr(b.rhs(), mult);
        break;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        countCall(c, mult);
        break;
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        addMemoryAccess(ix.addrSpace(), mult, /*isStore=*/false);
        countExpr(ix.index(), mult);
        // Address computation: one integer op per subscript.
        f_.intOps += mult;
        break;
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const CastExpr&>(e);
        // int<->float conversions cost one ALU op; same-class casts are free.
        if (c.type().isFloat() != c.value().type().isFloat()) {
          f_.intOps += mult;
        }
        countExpr(c.value(), mult);
        break;
      }
      case ExprKind::Select: {
        const auto& s = static_cast<const SelectExpr&>(e);
        // Selects are usually compiled to predication: cheaper than a real
        // branch but still a divergence point — count half a branch.
        f_.branches += mult * 0.5;
        countExpr(s.cond(), mult);
        countExpr(s.ifTrue(), mult * kBalancedBranchWeight);
        countExpr(s.ifFalse(), mult * kBalancedBranchWeight);
        break;
      }
    }
  }

  void countCall(const CallExpr& c, const WorkExpr& mult) {
    const auto builtin = frontend::findBuiltin(c.callee());
    TP_ASSERT_MSG(builtin.has_value(), "unknown builtin " << c.callee());
    switch (builtin->cls) {
      case frontend::BuiltinClass::WorkItemQuery:
        // Reads a register set up by the runtime: ~one integer op.
        f_.intOps += mult;
        break;
      case frontend::BuiltinClass::MathLight:
        if (c.type().isFloat()) {
          f_.floatOps += mult;
        } else {
          f_.intOps += mult;
        }
        break;
      case frontend::BuiltinClass::MathHeavy:
        f_.specialOps += mult;
        break;
      case frontend::BuiltinClass::Atomic: {
        f_.atomics += mult;
        // atomic_add(&buf[i], v) appears in the IR as
        // atomic_add(buf[i], v); the IndexExpr argument is the RMW access.
        break;
      }
    }
    for (const auto& a : c.args()) {
      if (builtin->cls == frontend::BuiltinClass::Atomic &&
          a->kind() == ExprKind::Index) {
        const auto& ix = static_cast<const IndexExpr&>(*a);
        // The atomic performs the load+store itself.
        addMemoryAccess(ix.addrSpace(), mult, false);
        addMemoryAccess(ix.addrSpace(), mult, true);
        countExpr(ix.index(), mult);
        continue;
      }
      countExpr(*a, mult);
    }
  }

  void addArith(const Type& t, const WorkExpr& mult) {
    if (t.isFloat()) {
      f_.floatOps += mult;
    } else {
      f_.intOps += mult;
    }
  }

  void addMemoryAccess(AddrSpace space, const WorkExpr& mult, bool isStore) {
    switch (space) {
      case AddrSpace::Global:
        if (isStore) {
          f_.globalStores += mult;
        } else {
          f_.globalLoads += mult;
        }
        break;
      case AddrSpace::Local:
        f_.usesLocalMemory = true;
        f_.localAccesses += mult;
        break;
      case AddrSpace::Private:
        f_.privateAccesses += mult;
        break;
      case AddrSpace::None:
        TP_ASSERT(false);
    }
  }

  void countStmt(const Stmt& s, const WorkExpr& mult, int loopDepth) {
    f_.maxLoopDepth = std::max(f_.maxLoopDepth, loopDepth);
    switch (s.kind()) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init() != nullptr) countExpr(*d.init(), mult);
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        countExpr(a.value(), mult);
        if (a.target().kind() == ExprKind::Index) {
          const auto& ix = static_cast<const IndexExpr&>(a.target());
          addMemoryAccess(ix.addrSpace(), mult, /*isStore=*/true);
          countExpr(ix.index(), mult);
          f_.intOps += mult;  // address computation
        }
        break;
      }
      case StmtKind::ExprEval:
        countExpr(static_cast<const ExprStmt&>(s).expr(), mult);
        break;
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).stmts()) {
          countStmt(*st, mult, loopDepth);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        countExpr(i.cond(), mult);
        f_.branches += mult;
        if (i.elseBody() == nullptr) {
          countStmt(i.thenBody(), mult * kThenOnlyWeight, loopDepth);
        } else {
          countStmt(i.thenBody(), mult * kBalancedBranchWeight, loopDepth);
          countStmt(*i.elseBody(), mult * kBalancedBranchWeight, loopDepth);
        }
        break;
      }
      case StmtKind::For: {
        const auto& l = static_cast<const ForStmt&>(s);
        ++f_.numLoops;
        bool exact = true;
        const WorkExpr init = trips_.analyze(l.init(), &exact);
        const WorkExpr bound = trips_.analyze(l.bound(), &exact);
        WorkExpr trip = (bound - init) * (1.0 / static_cast<double>(l.step()));
        if (!exact) f_.hasUnboundedLoop = true;
        countExpr(l.init(), mult);
        const WorkExpr bodyMult = mult * trip;
        // Per iteration: condition test + increment.
        countExpr(l.bound(), bodyMult);
        f_.intOps += bodyMult;  // comparison
        f_.intOps += bodyMult;  // increment
        // The backward branch of a counted loop is uniform across work items
        // (no divergence) and perfectly predicted — not counted as a branch.
        countStmt(l.body(), bodyMult, loopDepth + 1);
        break;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        ++f_.numLoops;
        f_.hasUnboundedLoop = true;
        const WorkExpr trip = WorkExpr::variable(kUnknownTripParam);
        const WorkExpr bodyMult = mult * trip;
        countExpr(w.cond(), bodyMult);
        f_.branches += bodyMult;
        countStmt(w.body(), bodyMult, loopDepth + 1);
        break;
      }
      case StmtKind::Barrier:
        f_.barriers += mult;
        break;
      case StmtKind::Return:
      case StmtKind::Break:
      case StmtKind::Continue:
        // Control-transfer: a branch decision.
        f_.branches += mult * 0.5;
        break;
    }
  }

  const KernelDecl& kernel_;
  TripCountAnalyzer trips_;
  KernelFeatures f_;
};

}  // namespace

KernelFeatures extractFeatures(const KernelDecl& kernel) {
  return Extractor(kernel).run();
}

std::vector<std::string> staticFeatureNames() {
  return {
      "s_int_ops",     "s_float_ops",      "s_special_ops",
      "s_global_loads", "s_global_stores", "s_local_accesses",
      "s_private_accesses", "s_branches",  "s_atomics",
      "s_barriers",    "s_num_loops",      "s_max_loop_depth",
      "s_num_buffers", "s_uses_local_mem", "s_arith_intensity",
  };
}

std::vector<double> staticFeatureVector(const KernelFeatures& f,
                                        double structuralDefault) {
  const std::map<std::string, double> none;
  auto ev = [&](const ir::WorkExpr& e) { return e.eval(none, structuralDefault); };
  return {
      ev(f.intOps),
      ev(f.floatOps),
      ev(f.specialOps),
      ev(f.globalLoads),
      ev(f.globalStores),
      ev(f.localAccesses),
      ev(f.privateAccesses),
      ev(f.branches),
      ev(f.atomics),
      ev(f.barriers),
      static_cast<double>(f.numLoops),
      static_cast<double>(f.maxLoopDepth),
      static_cast<double>(f.numBuffers),
      f.usesLocalMemory ? 1.0 : 0.0,
      f.arithmeticIntensity(none),
  };
}

}  // namespace tp::features
