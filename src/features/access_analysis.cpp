#include "features/access_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "features/static_features.hpp"

namespace tp::features {

using namespace tp::ir;

const char* accessKindName(AccessKind k) {
  switch (k) {
    case AccessKind::Split: return "split";
    case AccessKind::Replicate: return "replicate";
    case AccessKind::MergeSum: return "merge_sum";
    case AccessKind::Unused: return "unused";
  }
  return "?";
}

namespace {

constexpr const char* kGidVar = "__gid";
constexpr const char* kOpaqueVar = "__opaque";

/// One recorded subscript of a buffer.
struct Subscript {
  WorkExpr poly;    ///< subscript as polynomial over __gid/params/loop vars
  bool isWrite = false;
  bool analyzable = true;  ///< false if the subscript contained __opaque
};

/// Symbolic subscript analysis: converts index expressions into polynomials
/// over the gid pseudo-variable, kernel parameters, and loop variables.
/// Simple copy propagation handles the ubiquitous
/// `int i = get_global_id(0);` idiom.
class SubscriptCollector {
public:
  explicit SubscriptCollector(const KernelDecl& kernel) : kernel_(kernel) {
    collectReassigned(kernel.body());
  }

  void run() { walkStmt(kernel_.body()); }

  const std::map<std::string, std::vector<Subscript>>& accesses() const {
    return accesses_;
  }
  const std::map<std::string, WorkExpr>& loopBounds() const {
    return loopBounds_;
  }

private:
  /// Variables that are assigned outside their declaration; those are not
  /// safe to copy-propagate.
  void collectReassigned(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        if (a.target().kind() == ExprKind::VarRef) {
          reassigned_.insert(static_cast<const VarRef&>(a.target()).name());
        }
        break;
      }
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).stmts()) {
          collectReassigned(*st);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        collectReassigned(i.thenBody());
        if (i.elseBody() != nullptr) collectReassigned(*i.elseBody());
        break;
      }
      case StmtKind::For:
        collectReassigned(static_cast<const ForStmt&>(s).body());
        break;
      case StmtKind::While:
        collectReassigned(static_cast<const WhileStmt&>(s).body());
        break;
      default:
        break;
    }
  }

  WorkExpr exprToPoly(const Expr& e, bool* analyzable) const {
    switch (e.kind()) {
      case ExprKind::IntLit:
        return WorkExpr::constant(
            static_cast<double>(static_cast<const IntLit&>(e).value()));
      case ExprKind::VarRef: {
        const auto& v = static_cast<const VarRef&>(e);
        const auto env = env_.find(v.name());
        if (env != env_.end()) return env->second;
        if (kernel_.findParam(v.name()) != nullptr && v.type().isIntegral()) {
          return WorkExpr::variable(v.name());
        }
        if (loopBounds_.count(v.name()) != 0) {
          return WorkExpr::variable(v.name());
        }
        *analyzable = false;
        return WorkExpr::variable(kOpaqueVar);
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        const WorkExpr lhs = exprToPoly(b.lhs(), analyzable);
        const WorkExpr rhs = exprToPoly(b.rhs(), analyzable);
        switch (b.op()) {
          case BinaryOp::Add: return lhs + rhs;
          case BinaryOp::Sub: return lhs - rhs;
          case BinaryOp::Mul: return lhs * rhs;
          default:
            *analyzable = false;
            return WorkExpr::variable(kOpaqueVar);
        }
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        if (c.callee() == "get_global_id" && c.args().size() == 1 &&
            c.args()[0]->kind() == ExprKind::IntLit &&
            static_cast<const IntLit&>(*c.args()[0]).value() == 0) {
          return WorkExpr::variable(kGidVar);
        }
        if (c.callee() == "get_global_size") {
          return WorkExpr::variable(kGlobalSizeParam);
        }
        *analyzable = false;
        return WorkExpr::variable(kOpaqueVar);
      }
      case ExprKind::Cast:
        return exprToPoly(static_cast<const CastExpr&>(e).value(), analyzable);
      default:
        *analyzable = false;
        return WorkExpr::variable(kOpaqueVar);
    }
  }

  void recordAccess(const IndexExpr& ix, bool isWrite) {
    if (ix.base().kind() != ExprKind::VarRef) return;
    const auto& base = static_cast<const VarRef&>(ix.base());
    if (ix.addrSpace() != AddrSpace::Global) return;
    Subscript sub;
    sub.isWrite = isWrite;
    sub.analyzable = true;
    sub.poly = exprToPoly(ix.index(), &sub.analyzable);
    accesses_[base.name()].push_back(std::move(sub));
  }

  void walkExpr(const Expr& e, bool isAtomicArg = false) {
    switch (e.kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::VarRef:
        break;
      case ExprKind::Unary:
        walkExpr(static_cast<const UnaryExpr&>(e).operand());
        break;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        walkExpr(b.lhs());
        walkExpr(b.rhs());
        break;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        const bool isAtomic =
            c.callee() == "atomic_add" || c.callee() == "atomic_inc";
        for (std::size_t i = 0; i < c.args().size(); ++i) {
          walkExpr(*c.args()[i], isAtomic && i == 0);
        }
        break;
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        // Atomic first arguments are read-modify-write accesses.
        recordAccess(ix, /*isWrite=*/isAtomicArg);
        if (isAtomicArg) recordAccess(ix, /*isWrite=*/false);
        walkExpr(ix.index());
        break;
      }
      case ExprKind::Cast:
        walkExpr(static_cast<const CastExpr&>(e).value());
        break;
      case ExprKind::Select: {
        const auto& s = static_cast<const SelectExpr&>(e);
        walkExpr(s.cond());
        walkExpr(s.ifTrue());
        walkExpr(s.ifFalse());
        break;
      }
    }
  }

  void walkStmt(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init() != nullptr) {
          walkExpr(*d.init());
          if (d.declType().isIntegral() && reassigned_.count(d.name()) == 0) {
            bool ok = true;
            const WorkExpr poly = exprToPoly(*d.init(), &ok);
            if (ok) env_[d.name()] = poly;
          }
        }
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        walkExpr(a.value());
        if (a.target().kind() == ExprKind::Index) {
          const auto& ix = static_cast<const IndexExpr&>(a.target());
          recordAccess(ix, /*isWrite=*/true);
          walkExpr(ix.index());
        }
        break;
      }
      case StmtKind::ExprEval:
        walkExpr(static_cast<const ExprStmt&>(s).expr());
        break;
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).stmts()) {
          walkStmt(*st);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        walkExpr(i.cond());
        walkStmt(i.thenBody());
        if (i.elseBody() != nullptr) walkStmt(*i.elseBody());
        break;
      }
      case StmtKind::For: {
        const auto& l = static_cast<const ForStmt&>(s);
        walkExpr(l.init());
        walkExpr(l.bound());
        bool ok = true;
        loopBounds_[l.var()] = exprToPoly(l.bound(), &ok);
        if (!ok) loopBounds_[l.var()] = WorkExpr::variable(kOpaqueVar);
        walkStmt(l.body());
        break;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        walkExpr(w.cond());
        walkStmt(w.body());
        break;
      }
      default:
        break;
    }
  }

  const KernelDecl& kernel_;
  std::set<std::string> reassigned_;
  std::map<std::string, WorkExpr> env_;        ///< copy-propagated int vars
  std::map<std::string, WorkExpr> loopBounds_; ///< loop var → bound poly
  std::map<std::string, std::vector<Subscript>> accesses_;
};

/// Numeric probing: evaluate `poly` with all size parameters set to `value`
/// and loop variables at their extreme points, returning [min, max].
struct Range {
  double lo;
  double hi;
};

Range remainderRange(const WorkExpr& poly,
                     const std::map<std::string, WorkExpr>& loopBounds,
                     double paramValue) {
  std::map<std::string, double> base;
  // Bind every non-loop variable to paramValue.
  for (const auto& name : poly.parameters()) {
    if (loopBounds.count(name) == 0) base[name] = paramValue;
  }
  std::vector<std::string> loopVars;
  for (const auto& name : poly.parameters()) {
    if (loopBounds.count(name) != 0) loopVars.push_back(name);
  }
  // Affine-in-loop-vars polynomials attain extremes at corner points;
  // enumerate all 2^L corners (L is tiny in practice).
  TP_ASSERT(loopVars.size() <= 8);
  Range r{1e300, -1e300};
  const std::size_t corners = 1ull << loopVars.size();
  for (std::size_t mask = 0; mask < corners; ++mask) {
    std::map<std::string, double> bind = base;
    for (std::size_t i = 0; i < loopVars.size(); ++i) {
      const double bound =
          std::max(1.0, loopBounds.at(loopVars[i]).eval(base, paramValue));
      bind[loopVars[i]] = (mask >> i) & 1 ? bound - 1.0 : 0.0;
    }
    const double v = poly.eval(bind, paramValue);
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  return r;
}

}  // namespace

std::vector<BufferAccess> analyzeBufferAccesses(const KernelDecl& kernel) {
  SubscriptCollector collector(kernel);
  collector.run();
  const auto& accesses = collector.accesses();
  const auto& loopBounds = collector.loopBounds();

  std::vector<BufferAccess> out;
  for (const auto& p : kernel.params()) {
    if (!p.type.isPointer() || p.type.addrSpace() != AddrSpace::Global) {
      continue;
    }
    BufferAccess acc;
    acc.param = p.name;

    const auto it = accesses.find(p.name);
    if (it == accesses.end() || it->second.empty()) {
      acc.kind = AccessKind::Unused;
      out.push_back(std::move(acc));
      continue;
    }

    for (const auto& sub : it->second) {
      acc.isWritten = acc.isWritten || sub.isWrite;
      acc.isRead = acc.isRead || !sub.isWrite;
    }

    // Try to prove Split: all subscripts linear in gid with one coefficient
    // and remainders confined to the per-item block (numeric probing at
    // several parameter scales; the runtime's bounds-checked views are the
    // dynamic backstop).
    bool splittable = true;
    WorkExpr coeff;
    bool haveCoeff = false;
    double worstOverhang = 0.0;
    for (const auto& sub : it->second) {
      if (!sub.analyzable || sub.poly.degreeIn(kGidVar) != 1) {
        splittable = false;
        break;
      }
      const WorkExpr c = sub.poly.coefficientOf(kGidVar);
      if (c.contains(kGidVar) || c.contains(kOpaqueVar)) {
        splittable = false;
        break;
      }
      if (!haveCoeff) {
        coeff = c;
        haveCoeff = true;
      } else if (!(coeff == c)) {
        splittable = false;
        break;
      }
      const WorkExpr remainder = sub.poly.without(kGidVar);
      if (remainder.contains(kOpaqueVar)) {
        splittable = false;
        break;
      }
      // Probe remainder ∈ [0, c) at several parameter magnitudes.
      for (const double paramValue : {16.0, 64.0, 256.0, 1024.0}) {
        const Range r = remainderRange(remainder, loopBounds, paramValue);
        const double cv = coeff.eval({}, paramValue);
        if (r.lo < -1e-9 || r.hi > cv - 1.0 + 1e-9) {
          worstOverhang =
              std::max({worstOverhang, -r.lo, r.hi - (cv - 1.0)});
        }
      }
    }
    if (splittable && haveCoeff && worstOverhang == 0.0) {
      acc.kind = AccessKind::Split;
      acc.blockSize = coeff;
    } else if (!acc.isWritten) {
      acc.kind = AccessKind::Replicate;
    } else {
      acc.kind = AccessKind::MergeSum;
    }
    out.push_back(std::move(acc));
  }
  return out;
}

}  // namespace tp::features
