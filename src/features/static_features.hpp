#pragma once

// Static program feature extraction (paper §2: "static program features,
// whose values can be extracted from the source code at compile time").
//
// Features are *symbolic*: per-work-item operation counts are polynomials
// (ir::WorkExpr) over the kernel's integer parameters. A matmul kernel with
// inner dimension K yields floatOps = 2*K per work item. Binding K at launch
// time turns the static description into the paper's problem-size dependent
// *runtime features* — see runtime_features.hpp.

#include <map>
#include <string>

#include "ir/node.hpp"
#include "ir/workexpr.hpp"

namespace tp::features {

/// Per-work-item symbolic operation counts plus structural counters.
struct KernelFeatures {
  // Symbolic per-work-item counts.
  ir::WorkExpr intOps;        ///< integer ALU ops (incl. address arithmetic)
  ir::WorkExpr floatOps;      ///< float add/sub/mul/div + light math builtins
  ir::WorkExpr specialOps;    ///< sqrt/exp/log/sin/cos/pow/rsqrt
  ir::WorkExpr globalLoads;   ///< loads from __global buffers
  ir::WorkExpr globalStores;  ///< stores to __global buffers
  ir::WorkExpr localAccesses; ///< loads+stores on __local memory
  ir::WorkExpr privateAccesses; ///< accesses to __private arrays
  ir::WorkExpr branches;      ///< control-flow decisions (if/select/loop exits)
  ir::WorkExpr atomics;       ///< atomic RMW ops on global memory
  ir::WorkExpr barriers;      ///< work-group barriers executed per item

  // Structural (plain integers).
  int numLoops = 0;
  int maxLoopDepth = 0;
  int numParams = 0;
  int numBuffers = 0;       ///< __global pointer parameters
  bool usesLocalMemory = false;
  bool hasUnboundedLoop = false;  ///< contains a while / unknown-trip loop

  /// Bytes moved per work item between the device and global memory.
  ir::WorkExpr globalBytes() const {
    return (globalLoads + globalStores) * 4.0;
  }

  /// Total "useful" arithmetic per work item.
  ir::WorkExpr arithmeticOps() const { return floatOps + intOps + specialOps; }

  /// Compute-to-memory ratio evaluated with the given parameter bindings
  /// (flops per byte; 0 when the kernel touches no global memory).
  double arithmeticIntensity(const std::map<std::string, double>& bindings) const;
};

/// Weight applied to the body of an `if` without an `else` (bounds-check
/// guards almost always pass).
inline constexpr double kThenOnlyWeight = 0.9;
/// Weight applied to each arm of an if/else.
inline constexpr double kBalancedBranchWeight = 0.5;
/// Name of the pseudo-parameter standing in for unknown loop trip counts.
inline constexpr const char* kUnknownTripParam = "__unknown_loop";
/// Pseudo-parameter bound to get_global_size(0) at launch.
inline constexpr const char* kGlobalSizeParam = "__global_size_0";

/// Extract features from a verified kernel.
KernelFeatures extractFeatures(const ir::KernelDecl& kernel);

/// Names/values of the static feature vector used by the ML model. The
/// symbolic counts are evaluated with every parameter at `structuralDefault`
/// so the vector characterizes code structure independent of problem size.
std::vector<std::string> staticFeatureNames();
std::vector<double> staticFeatureVector(const KernelFeatures& f,
                                        double structuralDefault = 16.0);

}  // namespace tp::features
