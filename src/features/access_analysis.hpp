#pragma once

// Buffer access analysis — the "backend" half of the source-to-source
// compiler that turns a single-device kernel into a multi-device one.
//
// To split an NDRange across devices, the runtime must know, for every
// __global buffer parameter, which part of it a contiguous range of work
// items touches:
//
//   - Split(c):   every subscript is affine in get_global_id(0) with a
//                 uniform symbolic stride c, i.e. work item g accesses only
//                 indices in [g*c, (g+1)*c). Device d working on items
//                 [b, e) receives exactly the slice [b*c, e*c).
//   - Replicate:  read-only buffer whose subscripts are not gid-affine
//                 (e.g. matmul's B matrix) — every device gets a full copy.
//   - MergeSum:   buffer written at data-dependent indices (histogram bins,
//                 reduction outputs addressed by group) — every device gets
//                 a private full-size copy, combined element-wise afterward.
//
// The analysis proves Split where it can and conservatively degrades to
// Replicate (reads) / MergeSum (writes) otherwise. The suite cross-checks
// these results against each benchmark's declared access modes, and the
// bounds-checked vcl::BufferView catches any misclassification at runtime.

#include <map>
#include <string>
#include <vector>

#include "ir/node.hpp"
#include "ir/workexpr.hpp"

namespace tp::features {

enum class AccessKind {
  Split,      ///< contiguous per-item block; distributable
  Replicate,  ///< read-only, full copy per device
  MergeSum,   ///< written non-affinely; private copies merged by summation
  Unused,     ///< parameter never accessed
};

const char* accessKindName(AccessKind k);

struct BufferAccess {
  std::string param;
  AccessKind kind = AccessKind::Unused;
  /// For Split: per-work-item element stride (symbolic; often constant 1).
  ir::WorkExpr blockSize;
  bool isWritten = false;
  bool isRead = false;
};

/// Analyze every __global pointer parameter of the kernel.
std::vector<BufferAccess> analyzeBufferAccesses(const ir::KernelDecl& kernel);

}  // namespace tp::features
