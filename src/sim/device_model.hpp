#pragma once

// Analytic device performance models.
//
// These stand in for the paper's physical OpenCL devices (see DESIGN.md,
// "Hardware substitutions"). A DeviceModel converts the per-work-item
// feature counts of a kernel chunk into simulated execution time using a
// roofline-style formula:
//
//   t_kernel = launchOverhead
//            + max(t_compute + t_branch, t_memory)
//            + t_atomics + t_barriers
//
// with throughput terms scaled by a utilization factor
// items / (items + saturationItems), which models how many concurrent work
// items a device needs before it reaches peak throughput. That factor is
// what makes the *optimal partitioning problem-size sensitive*: a GPU with
// saturationItems ≈ 10^5 is slower than the CPU on small NDRanges even when
// its peak rate is 10× higher.
//
// Transfers follow Gregg & Hazelwood [5]: every buffer movement is charged
// latency + bytes/bandwidth, and CPU devices get near-zero-copy transfers.

#include <map>
#include <string>

#include "features/static_features.hpp"

namespace tp::sim {

enum class DeviceType { CPU, GPU };

const char* deviceTypeName(DeviceType t);

struct DeviceModel {
  std::string name;
  DeviceType type = DeviceType::CPU;

  // Effective throughput for untuned scalar OpenCL code, ops/second.
  double intRate = 50e9;
  double floatRate = 50e9;
  double specialRate = 5e9;
  /// Architecture efficiency multiplier applied to all compute rates.
  /// Models e.g. the Radeon HD 5870's VLIW lanes staying idle on scalar,
  /// untuned kernels (Thoman et al. [7]); 1.0 = no penalty.
  double archEfficiency = 1.0;

  /// Cost of one dynamic branch decision, expressed in equivalent float
  /// operations (a device-wide throughput term, not a per-lane latency).
  /// Captures divergence: SIMT hardware executes both paths of divergent
  /// branches, VLIW hardware additionally drains its bundles.
  double branchWeight = 1.5;

  double memBandwidth = 20e9;    ///< bytes/s, global memory (peak)
  /// Fraction of peak bandwidth achieved by *untuned* access patterns
  /// (coalescing hardware quality / prefetchers).
  double memEfficiency = 0.9;
  double localBandwidth = 200e9; ///< bytes/s, __local / cache
  double atomicRate = 1e9;       ///< global atomic RMW ops/s, device-wide
  double barrierCost = 20e-9;    ///< seconds per barrier per work-group

  double launchOverhead = 5e-6;  ///< seconds per kernel launch
  /// Work items needed to approach peak throughput (GPU ≫ CPU).
  double saturationItems = 2e3;

  // Host<->device link (PCIe for GPUs; ~zero-copy for the CPU device).
  double transferBandwidth = 5e9;  ///< bytes/s
  double transferLatency = 20e-6;  ///< seconds per transfer operation

  /// Simulated execution time of `items` work items of a kernel whose
  /// per-work-item symbolic counts are `f`, with size parameters bound.
  /// `localSize` is the work-group size (for barrier accounting).
  ///
  /// `dramBytes` is the unique global-memory footprint the chunk streams
  /// from DRAM (the scheduler derives it from buffer sizes and access
  /// classes: split slices count once, replicated buffers once in total —
  /// their repeated accesses hit cache at localBandwidth). Pass a negative
  /// value to charge every access to DRAM (no-reuse upper bound).
  double kernelTime(const features::KernelFeatures& f,
                    const std::map<std::string, double>& bindings,
                    double items, double localSize,
                    double dramBytes = -1.0) const;

  /// Simulated time of one host<->device transfer of `bytes`.
  double transferTime(double bytes) const;

  /// Throughput utilization for a chunk of `items` work items, in (0, 1).
  double utilization(double items) const;
};

}  // namespace tp::sim
