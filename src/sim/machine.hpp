#pragma once

// Machine configurations: the two evaluation platforms of the paper.
//
//   mc1: 2× AMD Opteron 6168 (one OpenCL CPU device) + 2× ATI Radeon HD 5870
//   mc2: 2× Intel Xeon X5650 (one OpenCL CPU device) + 2× NVIDIA GTX 480
//
// Parameter choices (see DESIGN.md): the HD 5870 has enormous peak FLOPs
// but a VLIW architecture that achieves a small fraction of it on untuned
// scalar kernels and pays dearly for divergent branches — so on mc1 the
// CPU-only default usually wins, as the paper reports. The GTX 480 sustains
// a much larger fraction of peak on the same code, so on mc2 the GPU-only
// default usually wins. Device 0 is always the CPU (matching the paper's
// "two CPUs reported as a single OpenCL device").

#include <cstddef>
#include <string>
#include <vector>

#include "sim/device_model.hpp"

namespace tp::sim {

struct MachineConfig {
  std::string name;
  std::vector<DeviceModel> devices;  ///< devices[0] is the CPU

  std::size_t numDevices() const noexcept { return devices.size(); }
  const DeviceModel& cpu() const { return devices.front(); }

  /// Indices of GPU devices.
  std::vector<std::size_t> gpuIndices() const;
};

/// 2× AMD Opteron 6168 + 2× ATI Radeon HD 5870 (VLIW GPUs).
MachineConfig makeMc1();

/// 2× Intel Xeon X5650 + 2× NVIDIA GeForce GTX 480.
MachineConfig makeMc2();

/// Look up by name ("mc1" / "mc2"); throws tp::Error on unknown names.
MachineConfig machineByName(const std::string& name);

/// All evaluation machines, in paper order.
std::vector<MachineConfig> evaluationMachines();

}  // namespace tp::sim
