#include "sim/device_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tp::sim {

const char* deviceTypeName(DeviceType t) {
  switch (t) {
    case DeviceType::CPU: return "CPU";
    case DeviceType::GPU: return "GPU";
  }
  return "?";
}

double DeviceModel::utilization(double items) const {
  TP_ASSERT(items >= 0.0);
  if (items <= 0.0) return 1.0;
  return items / (items + saturationItems);
}

double DeviceModel::kernelTime(const features::KernelFeatures& f,
                               const std::map<std::string, double>& bindings,
                               double items, double localSize,
                               double dramBytes) const {
  TP_ASSERT_MSG(items >= 0.0, "negative work size " << items);
  if (items == 0.0) return 0.0;
  TP_ASSERT(localSize >= 1.0);

  auto per = [&](const ir::WorkExpr& e) {
    // Clamp: symbolic counts can evaluate slightly negative for degenerate
    // bindings (e.g. zero-trip loops); they mean "no work".
    return std::max(0.0, e.eval(bindings));
  };

  const double util = utilization(items);
  const double eff = archEfficiency * util;

  const double intTotal = per(f.intOps) * items;
  const double floatTotal = per(f.floatOps) * items;
  const double specialTotal = per(f.specialOps) * items;
  const double branchTotal = per(f.branches) * items;
  const double atomicTotal = per(f.atomics) * items;
  const double barrierTotal = per(f.barriers);  // per item; cost per group

  // Transcendentals run on dedicated units (VLIW T-lane / SFUs), which
  // scalar code feeds just as well as tuned code — no archEfficiency there.
  const double tCompute = intTotal / (intRate * eff) +
                          floatTotal / (floatRate * eff) +
                          specialTotal / (specialRate * util);
  // Divergent branches behave like extra (weighted) ALU work.
  const double tBranch = branchTotal * branchWeight / (floatRate * eff);

  const double accessBytes = per(f.globalBytes()) * items;
  // Accesses beyond the unique DRAM footprint are cache hits.
  const double uniqueBytes =
      dramBytes < 0.0 ? accessBytes : std::min(dramBytes, accessBytes);
  const double cachedBytes = accessBytes - uniqueBytes;
  const double localBytes = (per(f.localAccesses) + per(f.privateAccesses)) *
                            4.0 * items;
  const double tMemory =
      uniqueBytes / (memBandwidth * memEfficiency * util) +
      (cachedBytes + localBytes) / localBandwidth;

  const double numGroups = std::ceil(items / localSize);
  const double tBarriers = barrierTotal * numGroups * barrierCost;
  const double tAtomics = atomicTotal / atomicRate;

  return launchOverhead + std::max(tCompute + tBranch, tMemory) + tAtomics +
         tBarriers;
}

double DeviceModel::transferTime(double bytes) const {
  TP_ASSERT(bytes >= 0.0);
  if (bytes == 0.0) return 0.0;
  return transferLatency + bytes / transferBandwidth;
}

}  // namespace tp::sim
