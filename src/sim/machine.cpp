#include "sim/machine.hpp"

#include "common/error.hpp"

namespace tp::sim {

std::vector<std::size_t> MachineConfig::gpuIndices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].type == DeviceType::GPU) out.push_back(i);
  }
  return out;
}

namespace {

DeviceModel opteron6168Pair() {
  DeviceModel d;
  d.name = "2x AMD Opteron 6168 (24 cores)";
  d.type = DeviceType::CPU;
  // Strong many-core CPU: 24 cores at 1.9 GHz, achieved scalar throughput.
  d.intRate = 90e9;
  d.floatRate = 70e9;
  d.specialRate = 2.2e9;  // scalar libm transcendentals
  d.archEfficiency = 1.0;
  d.branchWeight = 1.5;   // deep OoO branch predictors
  d.memBandwidth = 28e9;  // 4-channel DDR3, dual socket
  d.memEfficiency = 0.9;  // hardware prefetchers handle streaming well
  d.localBandwidth = 400e9;
  d.atomicRate = 1.2e9;
  // Work-group barriers compile to loop fission on CPUs: nearly free.
  d.barrierCost = 8e-9;
  d.launchOverhead = 3e-6;
  d.saturationItems = 3e3;
  // The CPU device computes in host memory: effectively zero-copy.
  d.transferBandwidth = 400e9;
  d.transferLatency = 1e-6;
  return d;
}

DeviceModel radeonHd5870() {
  DeviceModel d;
  d.name = "ATI Radeon HD 5870";
  d.type = DeviceType::GPU;
  // 2.72 TFLOP/s peak, but VLIW5 lanes go mostly idle on scalar untuned
  // kernels; high divergence penalty (Thoman et al. [7]).
  d.intRate = 500e9;
  d.floatRate = 850e9;
  d.specialRate = 70e9;
  d.archEfficiency = 0.16;
  d.branchWeight = 30.0;  // divergence drains VLIW bundles
  d.memBandwidth = 154e9;
  d.memEfficiency = 0.30;  // uncoalesced scalar accesses on Evergreen
  d.localBandwidth = 1000e9;
  d.atomicRate = 0.15e9;  // Evergreen atomics are notoriously slow
  d.barrierCost = 12e-9;
  d.launchOverhead = 25e-6;
  d.saturationItems = 6e4;
  d.transferBandwidth = 4.2e9;  // PCIe 2.0 x16, achieved
  d.transferLatency = 25e-6;
  return d;
}

DeviceModel xeonX5650Pair() {
  DeviceModel d;
  d.name = "2x Intel Xeon X5650 (12 cores)";
  d.type = DeviceType::CPU;
  // 12 Westmere cores at 2.67 GHz: fewer cores than mc1's Opterons but
  // higher per-core throughput; overall a weaker CPU device.
  d.intRate = 55e9;
  d.floatRate = 42e9;
  d.specialRate = 1.6e9;  // scalar libm transcendentals
  d.archEfficiency = 1.0;
  d.branchWeight = 1.5;
  d.memBandwidth = 30e9;  // 3-channel DDR3 per socket
  d.memEfficiency = 0.9;
  d.localBandwidth = 450e9;
  d.atomicRate = 1e9;
  d.barrierCost = 8e-9;
  d.launchOverhead = 3e-6;
  d.saturationItems = 1.5e3;
  d.transferBandwidth = 400e9;
  d.transferLatency = 1e-6;
  return d;
}

DeviceModel geforceGtx480() {
  DeviceModel d;
  d.name = "NVIDIA GeForce GTX 480";
  d.type = DeviceType::GPU;
  // 1.34 TFLOP/s peak; Fermi's scalar SIMT pipeline sustains a much larger
  // fraction of peak on untuned code than the VLIW Radeon.
  d.intRate = 650e9;
  d.floatRate = 1100e9;
  d.specialRate = 180e9;
  d.archEfficiency = 0.60;
  d.branchWeight = 10.0;  // SIMT executes both divergent paths
  d.memBandwidth = 177e9;
  d.memEfficiency = 0.55;  // Fermi L2 + coalescing hardware
  d.localBandwidth = 1300e9;
  d.atomicRate = 0.7e9;
  d.barrierCost = 10e-9;
  d.launchOverhead = 18e-6;
  d.saturationItems = 4e4;
  d.transferBandwidth = 5.6e9;  // PCIe 2.0 x16, achieved
  d.transferLatency = 18e-6;
  return d;
}

}  // namespace

MachineConfig makeMc1() {
  MachineConfig m;
  m.name = "mc1";
  m.devices = {opteron6168Pair(), radeonHd5870(), radeonHd5870()};
  m.devices[1].name += " #0";
  m.devices[2].name += " #1";
  return m;
}

MachineConfig makeMc2() {
  MachineConfig m;
  m.name = "mc2";
  m.devices = {xeonX5650Pair(), geforceGtx480(), geforceGtx480()};
  m.devices[1].name += " #0";
  m.devices[2].name += " #1";
  return m;
}

MachineConfig machineByName(const std::string& name) {
  if (name == "mc1") return makeMc1();
  if (name == "mc2") return makeMc2();
  TP_THROW("unknown machine '" << name << "' (expected mc1 or mc2)");
}

std::vector<MachineConfig> evaluationMachines() { return {makeMc1(), makeMc2()}; }

}  // namespace tp::sim
