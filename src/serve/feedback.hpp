#pragma once

// Online feedback: the measure half of the train→deploy→measure loop.
//
// Every launch the service executes can be turned into a training record:
// a full sweep over the partitioning space (exactly the paper's training
// pattern, via runtime::measureLaunch) appended to a FeatureDatabase.
// Records are deduplicated on the quantized launch signature, so replayed
// traffic measures each distinct (machine, program, problem size) once —
// the accumulated database stays proportional to the variety of traffic,
// not its volume. PartitionService::retrain() feeds the snapshot back
// through runtime::trainDeploymentModel().

#include <cstddef>
#include <string>
#include <unordered_set>

#include "common/annotations.hpp"
#include "runtime/database.hpp"
#include "runtime/partitioning.hpp"
#include "runtime/task.hpp"
#include "serve/cache.hpp"
#include "sim/machine.hpp"

namespace tp::serve {

class FeedbackRecorder {
public:
  /// `roundDigits` controls signature quantization for deduplication
  /// (match the cache's setting so "same launch" means the same thing).
  explicit FeedbackRecorder(std::size_t numPartitionings,
                            int roundDigits = 6);

  /// Measure and append one launch; returns false when an identical
  /// (machine, program, signature) launch is already recorded. Safe to
  /// call concurrently — the sweep runs outside the lock.
  bool record(const runtime::Task& task, const sim::MachineConfig& machine,
              const runtime::PartitioningSpace& space,
              const std::string& sizeLabel);

  std::size_t size() const;

  /// Consistent copy of the accumulated database.
  runtime::FeatureDatabase snapshot() const;

  void saveCsv(const std::string& path) const;

private:
  DecisionKey dedupKey(const runtime::Task& task,
                       const std::string& machine) const;

  int roundDigits_;
  mutable common::Mutex mutex_;
  runtime::FeatureDatabase db_ TP_GUARDED_BY(mutex_);
  std::unordered_set<DecisionKey, DecisionKeyHash> seen_ TP_GUARDED_BY(mutex_);
};

}  // namespace tp::serve
