#include "serve/cache.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace tp::serve {

double roundSignificant(double v, int digits) {
  if (digits <= 0 || v == 0.0 || !std::isfinite(v)) {
    return v == 0.0 ? 0.0 : v;
  }
  const double exponent = std::floor(std::log10(std::fabs(v)));
  const double scale =
      std::pow(10.0, static_cast<double>(digits - 1) - exponent);
  // Near the double range limits (|v| ~ 1e±308) the scale or the product
  // can overflow; an unrounded key is still a valid, self-equal key,
  // whereas a NaN component would never equal itself.
  if (!std::isfinite(scale) || scale == 0.0) return v;
  const double rounded = std::round(v * scale) / scale;
  if (!std::isfinite(rounded)) return v;
  return rounded == 0.0 ? 0.0 : rounded;
}

std::vector<double> launchSignature(const runtime::Task& task) {
  std::vector<double> sig;
  sig.reserve(5 + task.sizeBindings.size());
  sig.push_back(static_cast<double>(task.globalSize));
  sig.push_back(static_cast<double>(task.localSize));
  sig.push_back(task.totalBytesIn());
  sig.push_back(task.totalBytesOut());
  sig.push_back(task.transferScale);
  // std::map iterates in name order, so the layout is deterministic.
  for (const auto& [name, value] : task.sizeBindings) {
    (void)name;
    sig.push_back(value);
  }
  return sig;
}

std::string programKey(const runtime::Task& task) {
  return task.programName + "/" + task.kernelName;
}

namespace {

/// Hash of everything but the model version (shard selection must be
/// stable across versions).
std::uint64_t unversionedHash(const DecisionKey& k) {
  return common::hashLaunchKey(k.machine, k.program, k.features);
}

}  // namespace

std::size_t DecisionKeyHash::operator()(const DecisionKey& k) const noexcept {
  return static_cast<std::size_t>(
      common::fnvU64(unversionedHash(k), k.modelVersion));
}

ShardedDecisionCache::ShardedDecisionCache(std::size_t capacity,
                                           std::size_t numShards,
                                           int roundDigits)
    : capacity_(capacity), roundDigits_(roundDigits) {
  TP_REQUIRE(capacity_ > 0, "ShardedDecisionCache: capacity must be > 0");
  TP_REQUIRE(numShards > 0, "ShardedDecisionCache: numShards must be > 0");
  const std::size_t shards = std::min(numShards, capacity_);
  shards_ = std::vector<Shard>(shards);
  // Distribute the budget so per-shard capacities sum to exactly capacity_.
  for (std::size_t s = 0; s < shards; ++s) {
    shards_[s].capacity = capacity_ / shards + (s < capacity_ % shards ? 1 : 0);
  }
}

DecisionKey ShardedDecisionCache::makeKey(std::string machine,
                                          std::string program,
                                          std::vector<double> features) const {
  DecisionKey key;
  key.machine = std::move(machine);
  key.program = std::move(program);
  key.modelVersion = version_.load(std::memory_order_acquire);
  key.features = std::move(features);
  for (double& f : key.features) f = roundSignificant(f, roundDigits_);
  return key;
}

ShardedDecisionCache::Shard& ShardedDecisionCache::shardFor(
    const DecisionKey& key) const {
  return shards_[unversionedHash(key) % shards_.size()];
}

std::optional<std::size_t> ShardedDecisionCache::lookup(
    const DecisionKey& key) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.counters.lookups;
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.counters.misses;
    return std::nullopt;
  }
  ++shard.counters.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->label;
}

void ShardedDecisionCache::insert(const DecisionKey& key, std::size_t label) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  // A retrain may have raced ahead of this decision: never let a
  // stale-model label into the fresh cache generation. Checked under the
  // shard lock — bumpVersion() increments before its clear() takes this
  // lock, so an insert that passes here either carries the new version or
  // is swept by that clear().
  if (key.modelVersion != version_.load(std::memory_order_acquire)) return;
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->label = label;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, label});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.counters.insertions;
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.counters.evictions;
  }
}

std::uint64_t ShardedDecisionCache::version() const noexcept {
  return version_.load(std::memory_order_acquire);
}

std::uint64_t ShardedDecisionCache::bumpVersion() {
  const std::uint64_t v =
      version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Sweep stale generations only. A full clear() here would race with
  // concurrent fresh-version inserts: an entry inserted (correctly) at the
  // new version into a not-yet-swept shard would be thrown away and its
  // invalidation counted against a generation it never belonged to.
  clearStale();
  return v;
}

std::uint64_t ShardedDecisionCache::advanceVersion(std::uint64_t version) {
  std::uint64_t current = version_.load(std::memory_order_acquire);
  while (current < version &&
         !version_.compare_exchange_weak(current, version,
                                         std::memory_order_acq_rel)) {
  }
  if (current < version) {
    // We won the race to move the version forward: sweep, like
    // bumpVersion() does (fresh-version inserts racing the sweep survive).
    clearStale();
    return version;
  }
  return current;
}

void ShardedDecisionCache::clearStale() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.modelVersion != v) {
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.counters.invalidations;
      } else {
        ++it;
      }
    }
  }
}

void ShardedDecisionCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counters.invalidations += shard.lru.size();
    shard.index.clear();
    shard.lru.clear();
  }
}

std::size_t ShardedDecisionCache::size() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

CacheCounters ShardedDecisionCache::counters() const {
  CacheCounters total;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.lookups += shard.counters.lookups;
    total.hits += shard.counters.hits;
    total.misses += shard.counters.misses;
    total.insertions += shard.counters.insertions;
    total.evictions += shard.counters.evictions;
    total.invalidations += shard.counters.invalidations;
  }
  return total;
}

}  // namespace tp::serve
